"""The paper's three competitors (RWS, MW, AHMW) plus the lifeline
extension from its related work."""

from .ahmw import AHMW_DEGREE, AHMWNode, build_ahmw_tree
from .lifeline import LifelineWorker
from .master_worker import MWMaster, MWWorker
from .rws import RWSWorker, detection_tree

__all__ = [
    "RWSWorker", "detection_tree", "MWMaster", "MWWorker", "AHMWNode",
    "build_ahmw_tree", "AHMW_DEGREE", "LifelineWorker",
]
