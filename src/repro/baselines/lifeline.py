"""Lifeline-based global load balancing (Saraswat et al., PPoPP 2011).

The related-work system the paper contrasts itself with (§I-C): random work
stealing augmented with a *lifeline graph* — here the hypercube the X10
implementation uses. An idle thief first makes ``w`` random steal attempts;
if all fail it activates its lifelines: requests that *queue* at its
hypercube neighbours instead of bouncing. A node that later obtains work
first satisfies its queued lifelines (pushing shares), so waves of work
propagate back along the lifeline graph and blind re-probing stops.

This is an extension beyond the paper's own evaluation: it lets the
repository compare the paper's tree-with-bridges overlay against the other
published overlay-flavoured work-stealing design on identical workloads
(see ``benchmarks/bench_extensions.py``).
"""

from __future__ import annotations

from ..apps.base import Application
from ..core.termination import TerminationWaves
from ..core.worker import WorkerConfig, WorkerProcess
from ..overlay.topology import hypercube_edges, neighbors_from_edges
from ..sim.messages import Message
from ..sim.rng import RngStream
from ..work.sharing import LinkKind, ShareContext, get_policy
from .rws import detection_tree

STEAL = "LL_STEAL"
NACK = "LL_NACK"
LIFELINE = "LL_LIFELINE"

#: Random attempts before falling back to lifelines (X10's default w=2 for
#: small clusters; the PPoPP paper explores w in 1..4).
DEFAULT_W = 2


class LifelineWorker(WorkerProcess):
    """One peer of lifeline-based global load balancing."""

    def __init__(self, pid: int, n: int, app: Application, cfg: WorkerConfig,
                 initial_pid: int = 0, w: int = DEFAULT_W,
                 sharing: str = "half") -> None:
        super().__init__(pid, app, cfg, has_initial_work=(pid == initial_pid))
        self.n = n
        self.w = max(1, w)
        self.policy = get_policy(sharing)
        self.rng = RngStream(cfg.seed, "lifeline", pid)
        self.lifelines = sorted(neighbors_from_edges(
            n, hypercube_edges(n))[pid])
        self.steal_outstanding = False
        self.failed_attempts = 0
        self.lifelines_armed = False
        self.incoming_lifelines: list[int] = []  # queued requesters
        parent, children = detection_tree(pid, n)
        self.waves = TerminationWaves(
            host=self, parent=parent, children=children,
            get_counters=self._counters, on_terminate=self.finish,
            should_wave=self._root_trigger, retry_delay=2e-3)

    # -- thief side -----------------------------------------------------------

    def on_idle(self) -> None:
        if self.terminated:
            return
        if self.n == 1:
            self._root_check()
            return
        if not self.steal_outstanding and self.failed_attempts < self.w:
            victim = self.rng.randrange(self.n - 1)
            if victim >= self.pid:
                victim += 1
            self.steal_outstanding = True
            self.note_steal_request()
            self.send(victim, STEAL, None)
        elif (self.failed_attempts >= self.w and not self.lifelines_armed):
            self.lifelines_armed = True
            for nb in self.lifelines:
                self.note_steal_request()
                self.send(nb, LIFELINE, None)
        self._root_check()

    def on_work_received(self, msg: Message) -> None:
        self.steal_outstanding = False
        self.failed_attempts = 0
        self.lifelines_armed = False
        self._push_lifelines()

    # -- victim side ---------------------------------------------------------------

    def handle(self, msg: Message) -> None:
        if self.waves.handles(msg.kind):
            self.waves.handle(msg)
            return
        if msg.kind == STEAL:
            if not self._give(msg.src):
                self.send(msg.src, NACK, None)
            return
        if msg.kind == NACK:
            self.steal_outstanding = False
            self.failed_attempts += 1
            if self.work.is_empty() and not self.terminated:
                self.on_idle()
            return
        if msg.kind == LIFELINE:
            if not self._give(msg.src):
                if msg.src not in self.incoming_lifelines:
                    self.incoming_lifelines.append(msg.src)
            return

    def on_quantum_done(self, units: int) -> None:
        if self.incoming_lifelines:
            self._push_lifelines()

    def quantum_boundary_quiet(self) -> bool:
        # lifelines only register inside message handlers, so an empty
        # list stays empty for the whole fused block
        return not self.incoming_lifelines

    def _give(self, thief: int) -> bool:
        if self.work.is_empty():
            return False
        ctx = ShareContext(link=LinkKind.PEER,
                           work_amount=self.work.amount())
        piece = self.work.split(self.policy.fraction(ctx))
        if piece is None:
            return False
        self.send_work(thief, piece, channel="lifeline")
        return True

    def _push_lifelines(self) -> None:
        """Serve queued lifeline requesters from freshly obtained work."""
        still: list[int] = []
        for thief in self.incoming_lifelines:
            if not self._give(thief):
                still.append(thief)
        self.incoming_lifelines = still

    def gossip_targets(self) -> list[int]:
        return self.lifelines

    # -- termination -------------------------------------------------------------------

    def _root_trigger(self) -> bool:
        return (self.pid == 0 and not self.terminated
                and self.work.is_empty() and not self.cpu_busy)

    def _root_check(self) -> None:
        if self._root_trigger():
            self.waves.root_try()

    def _counters(self) -> tuple[int, int, bool]:
        st = self.stats
        return (st.work_msgs_sent, st.work_msgs_received,
                not self.work.is_empty() or self.cpu_busy)


__all__ = ["LifelineWorker", "DEFAULT_W", "STEAL", "NACK", "LIFELINE"]
