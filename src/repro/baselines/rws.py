"""Random Work Stealing — the generic state-of-the-art baseline.

"an idle node selects at random another node and tries to steal work from
it. We consider the standard steal-half strategy [...] we use the standard
tree based Dijkstra termination detection algorithm taken from previous
work stealing studies" (paper §IV-C).

An idle thief keeps one steal request outstanding; a NACK triggers an
immediate retry at a fresh uniformly random victim (the round trip is the
natural pacing). Termination runs the four-counter waves of
:mod:`repro.core.termination` over the implicit binary tree on pids — the
standard arrangement in distributed work-stealing implementations (Dinan et
al., SC'09).
"""

from __future__ import annotations

from ..apps.base import Application
from ..core.termination import TerminationWaves
from ..core.worker import WorkerConfig, WorkerProcess
from ..sim.messages import Message
from ..sim.rng import RngStream
from ..work.sharing import LinkKind, ShareContext, get_policy

STEAL = "STEAL"
NACK = "NACK"


def detection_tree(pid: int, n: int) -> tuple[int, list[int]]:
    """Binary detection tree over pids: parent and children of ``pid``."""
    parent = (pid - 1) // 2 if pid > 0 else -1
    children = [c for c in (2 * pid + 1, 2 * pid + 2) if c < n]
    return parent, children


class RWSWorker(WorkerProcess):
    """One peer of random work stealing."""

    def __init__(self, pid: int, n: int, app: Application, cfg: WorkerConfig,
                 initial_pid: int = 0, sharing: str = "half") -> None:
        super().__init__(pid, app, cfg, has_initial_work=(pid == initial_pid))
        self.n = n
        self.policy = get_policy(sharing)
        self.rng = RngStream(cfg.seed, "rws", pid)
        self.steal_outstanding = False
        self._steal_target = -1
        parent, children = detection_tree(pid, n)
        self.det_parent, self.det_children = parent, children
        self.waves = TerminationWaves(
            host=self, parent=parent, children=children,
            get_counters=self._counters, on_terminate=self.finish,
            should_wave=self._root_trigger, retry_delay=2e-3,
            counters_vs=self._counters_vs, absorb_dead=self._absorb_dead,
            n_total=n)

    # -- stealing --------------------------------------------------------------

    def on_idle(self) -> None:
        if self.terminated or self.steal_outstanding or self.n == 1:
            self._root_check()
            return
        if self._reliable is not None and (self.dead or self.suspect):
            live = [p for p in range(self.n) if p != self.pid
                    and p not in self.dead and p not in self.suspect]
            if not live:
                # everyone else dead or routed around: wait — a recovery
                # (on_peer_recovered) or a death re-enters on_idle
                self._root_check()
                return
            victim = live[self.rng.randrange(len(live))]
        else:
            victim = self.rng.randrange(self.n - 1)
            if victim >= self.pid:
                victim += 1
        self.steal_outstanding = True
        self._steal_target = victim
        self.note_steal_request()
        self.send(victim, STEAL, None)
        self._root_check()

    def handle(self, msg: Message) -> None:
        if self.waves.handles(msg.kind):
            self.waves.handle(msg)
            return
        if msg.kind == STEAL:
            piece = None
            if not self.work.is_empty():
                ctx = ShareContext(link=LinkKind.PEER,
                                   work_amount=self.work.amount())
                piece = self.work.split(self.policy.fraction(ctx))
            if piece is not None:
                self.send_work(msg.src, piece, channel="steal")
            else:
                self.send(msg.src, NACK, None)
            return
        if msg.kind == NACK:
            self.steal_outstanding = False
            self._steal_target = -1
            if self.work.is_empty() and not self.terminated:
                # retry immediately at a fresh victim (round-trip paced)
                self.on_idle()
            return

    def on_work_received(self, msg: Message) -> None:
        self.steal_outstanding = False
        self._steal_target = -1

    def quantum_boundary_quiet(self) -> bool:
        # RWS does nothing at quantum boundaries (victims answer STEAL
        # messages, which cannot arrive mid-fusion by construction)
        return True

    # -- crash repair (only reached when fault injection is active) --------------

    def static_parent(self, pid: int) -> int:
        return (pid - 1) // 2 if pid > 0 else -1

    def static_children(self, pid: int):
        return [c for c in (2 * pid + 1, 2 * pid + 2) if c < self.n]

    def _repair_parent(self) -> int:
        return self.waves.parent

    def _current_children(self):
        return self.waves.children

    def _set_parent_link(self, pid: int) -> None:
        self.waves.set_parent(pid)

    def _add_child_link(self, pid: int, size: float) -> None:
        self.waves.add_child(pid)

    def _drop_child(self, pid: int) -> None:
        self.waves.child_dead(pid)

    def on_peer_dead(self, pid: int) -> None:
        if pid == self._steal_target:
            # the outstanding steal died with the victim; retry elsewhere
            self._steal_target = -1
            self.steal_outstanding = False
            if (not self.terminated and self.work.is_empty()
                    and not self.cpu_busy):
                self.on_idle()

    def on_peer_suspected(self, pid: int) -> None:
        # the victim is alive but routed around: abandon the outstanding
        # steal and retry at a reachable peer (the parked request resolves
        # after the heal; a late NACK/WORK is absorbed normally)
        if pid == self._steal_target:
            self._steal_target = -1
            self.steal_outstanding = False
            if (not self.terminated and self.work.is_empty()
                    and not self.cpu_busy):
                self.on_idle()

    def on_peer_recovered(self, pid: int) -> None:
        if (not self.terminated and not self.steal_outstanding
                and self.work.is_empty() and not self.cpu_busy):
            self.on_idle()
        else:
            self._root_check()

    def gossip_targets(self) -> list[int]:
        """Bound diffusion over the detection tree (log-diameter, cheap)."""
        out = list(self.det_children)
        if self.det_parent >= 0:
            out.append(self.det_parent)
        return out

    # -- termination ----------------------------------------------------------------

    def _root_trigger(self) -> bool:
        return (self.pid == 0 and not self.terminated
                and self.work.is_empty() and not self.cpu_busy)

    def _root_check(self) -> None:
        if self._root_trigger():
            self.waves.root_try()

    def _counters(self) -> tuple[int, int, bool]:
        st = self.stats
        return (st.work_msgs_sent, st.work_msgs_received,
                not self.work.is_empty() or self.cpu_busy)


__all__ = ["RWSWorker", "detection_tree", "STEAL", "NACK"]
