"""The Master–Worker B&B of Mezmaz, Melab & Talbi (IPDPS 2007).

A dedicated master (pid 0) manages the global pool of B&B intervals; its
view of each worker's interval is refreshed by periodic position updates.
An idle worker requests the master; the master picks the *largest* interval
it knows of, splits it at its midpoint, ships the right half to the
requester and notifies the owner to truncate — an asynchronous steal-half
"tuned at the aim of minimizing the communication bottleneck around the
master" (paper §IV-C).

Because the master's view is stale, a split midpoint can fall below the
owner's true position: the overlap is explored twice. This *redundancy* is
inherent to the scheme ([17] reports 0.39% of explored nodes); we track it
per worker in :attr:`MWWorker.redundancy`.

Upper bounds diffuse through the master: a worker reports improvements,
the master rebroadcasts — one more duty that saturates it at scale, which
is exactly the paper's Fig. 4 collapse mechanism.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..apps.bnb_app import BnBApplication
from ..bnb.work import BnBWork
from ..core.worker import WorkerConfig, WorkerProcess
from ..sim.errors import SimConfigError
from ..sim.messages import Message

REQ = "MW_REQ"          # worker -> master: I am empty, give me work
UPDATE = "MW_UPDATE"    # worker -> master: my interval is now [pos, end)
NOTIFY = "MW_NOTIFY"    # master -> owner: truncate your interval to mid
TERM = "MW_TERM"

#: Intervals shorter than this are handed over whole instead of split.
MIN_SPLIT = 2


class MWMaster(WorkerProcess):
    """The dedicated master (pid 0). Never computes application work."""

    def __init__(self, pid: int, n: int, app: BnBApplication,
                 cfg: WorkerConfig) -> None:
        if pid != 0:
            raise SimConfigError("the MW master must be pid 0")
        if not isinstance(app, BnBApplication):
            raise SimConfigError("MW is a B&B-specific scheme (paper §IV-C)")
        super().__init__(pid, app, cfg, has_initial_work=False)
        self.n = n
        # the master's view: pid -> [pos, end) or None (known empty)
        self.view: dict[int, Optional[list[int]]] = {
            w: None for w in range(1, n)}
        self.unassigned: list[list[int]] = [
            [0, BnBWork.full_tree(app.instance.n_jobs).amount()]]
        self.waiting: deque[int] = deque()

    # the master never runs quanta; its work container stays empty
    def on_idle(self) -> None:
        pass

    def handle(self, msg: Message) -> None:
        if msg.kind == REQ:
            self.view[msg.src] = None
            if msg.src not in self.waiting:
                self.waiting.append(msg.src)
            self._assign()
            self._check_done()
            return
        if msg.kind == UPDATE:
            pos, end = msg.payload
            self.view[msg.src] = [pos, end] if pos < end else None
            self._assign()
            self._check_done()
            return

    def gossip_targets(self) -> list[int]:
        """The master rebroadcasts bound improvements to every worker."""
        return list(range(1, self.n))

    # -- pool management -----------------------------------------------------------

    def _assign(self) -> None:
        while self.waiting:
            w = self.waiting[0]
            granted = self._grant_for(w)
            if granted is None:
                return  # nothing splittable right now; keep them waiting
            self.waiting.popleft()
            piece = BnBWork(self.app.instance.n_jobs)
            piece.intervals.append(granted)
            self.view[w] = [granted[0], granted[1]]
            self.send_work(w, piece, channel="mw")

    def _grant_for(self, w: int) -> Optional[list[int]]:
        if self.unassigned:
            # bootstrap pool: hand whole intervals out, largest first
            best = max(range(len(self.unassigned)),
                       key=lambda i: self.unassigned[i][1]
                       - self.unassigned[i][0])
            return self.unassigned.pop(best)
        owner, iv = None, None
        for o, v in self.view.items():
            if v is not None and o != w and (
                    iv is None or v[1] - v[0] > iv[1] - iv[0]):
                owner, iv = o, v
        if iv is None or iv[1] - iv[0] < MIN_SPLIT:
            return None
        mid = (iv[0] + iv[1]) // 2
        right = [mid, iv[1]]
        iv[1] = mid  # the master's view of the owner shrinks
        self.send(owner, NOTIFY, mid, body_bytes=8)
        return right

    def _check_done(self) -> None:
        if self.terminated:
            return
        pool_empty = not self.unassigned and all(
            v is None for v in self.view.values())
        all_waiting = len(self.waiting) == self.n - 1
        if pool_empty and all_waiting:
            for w in range(1, self.n):
                self.send(w, TERM, None)
            self.finish()


class MWWorker(WorkerProcess):
    """A worker: explores its interval, reports positions, asks when empty."""

    def __init__(self, pid: int, n: int, app: BnBApplication,
                 cfg: WorkerConfig, update_every: int = 4) -> None:
        super().__init__(pid, app, cfg, has_initial_work=False)
        self.n = n
        self.update_every = max(1, update_every)
        self.req_outstanding = False
        self.redundancy = 0          # positions explored twice (stale splits)
        self._quanta_since_update = 0
        self._current_end = 0        # right edge of the interval in progress
        self._last_reached = 0       # right edge of the last exhausted region
        self._claimed_from = 0       # lowest split point seen this assignment

    def on_idle(self) -> None:
        if self.terminated or self.req_outstanding:
            return
        self.req_outstanding = True
        self.note_steal_request()
        self.send(0, REQ, None)

    def on_work_received(self, msg: Message) -> None:
        self.req_outstanding = False
        self._quanta_since_update = 0
        head = self.work.head()
        if head is not None:
            self._current_end = head[1]
            self._claimed_from = head[1]

    def on_quantum_done(self, units: int) -> None:
        head = self.work.head() if isinstance(self.work, BnBWork) else None
        if head is None:
            self._last_reached = max(self._last_reached, self._current_end)
            return
        self._current_end = head[1]
        self._quanta_since_update += 1
        if self._quanta_since_update >= self.update_every:
            self._quanta_since_update = 0
            self.send(0, UPDATE, (head[0], head[1]), body_bytes=16)

    def handle(self, msg: Message) -> None:
        if msg.kind == NOTIFY:
            # Redundancy: the overlap between what we have explored in this
            # assignment and what the master just re-granted elsewhere.
            # _claimed_from is a low-water mark so the cascade of splits of
            # one stale view counts each overlapping region exactly once.
            mid = msg.payload
            head = self.work.head() if isinstance(self.work, BnBWork) else None
            reached = head[0] if head is not None else self._last_reached
            self.redundancy += max(0, min(reached, self._claimed_from) - mid)
            self._claimed_from = min(self._claimed_from, mid)
            if head is None:
                return
            pos, end = head
            if mid <= pos:
                self.work.pop_head()
                self._last_reached = max(self._last_reached, pos)
                # tell the master immediately that we are empty
                self.on_idle()
            else:
                head[1] = mid
                self._current_end = mid
            return
        if msg.kind == TERM:
            self.finish()
            return

    def gossip_targets(self) -> list[int]:
        return [0]  # bound improvements go to the master, which rebroadcasts


__all__ = ["MWMaster", "MWWorker", "REQ", "UPDATE", "NOTIFY", "TERM",
           "MIN_SPLIT"]
