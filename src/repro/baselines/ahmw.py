"""AHMW — the Adaptive Hierarchical Master–Worker of Bendjoudi et al.

(JPDC 2012 / FGCS 2012, the paper's §IV-B comparison.) Nodes form a
degree-10 tree (the configuration those papers report as best — "which is
in a way consistent with our study"). Interior nodes are *masters*, leaves
are *workers*; with degree 10 masters are ~10% of the deployment, matching
the share reported in [2], [3].

Each master owns a pool of B&B subproblems. The work grain is the depth of
the subproblems a master distributes, a function of its level: the root
decomposes the whole problem into depth-1 subproblems, a level-1 master
re-decomposes a received depth-1 subproblem into depth-2 ones, and so on —
the deeper the master, the finer the grain it hands out. Decomposition is
genuine B&B branching (children are bounded and pruned on the master's own
CPU). A master with an empty pool steals one subproblem from its parent;
workers explore their subproblem to completion.

Subproblems are carried as aligned position blocks, so this scheme shares
the interval substrate with everything else while keeping the AHMW
semantics (pool-of-subproblems, level-dependent grain, hierarchy-only work
flow). Upper bounds diffuse along the hierarchy. Termination uses the
four-counter waves (a drained master may still revive through its pending
parent request, so the naive hierarchical rule is unsound; the waves
verify actual global quiescence).
"""

from __future__ import annotations

from collections import deque
from ..apps.bnb_app import BnBApplication
from ..bnb.interval import factorials
from ..bnb.work import BnBWork
from ..core.termination import TerminationWaves
from ..core.worker import WorkerConfig, WorkerProcess
from ..overlay.tree import TreeOverlay
from ..sim.errors import SimConfigError
from ..sim.messages import Message

REQ = "AHMW_REQ"        # child (worker or master) -> master: a subproblem?
SIB_REQ = "AHMW_SIB"    # master -> same-level master: spare a subproblem?
SIB_NACK = "AHMW_SIBN"  # sibling has nothing to spare

#: The degree reported as best for AHMW in [2], [3].
AHMW_DEGREE = 10


class AHMWNode(WorkerProcess):
    """One node of the AHMW hierarchy: master (interior) or worker (leaf)."""

    def __init__(self, pid: int, app: BnBApplication, cfg: WorkerConfig,
                 tree: TreeOverlay, sibling_sharing: bool = False) -> None:
        if not isinstance(app, BnBApplication):
            raise SimConfigError("AHMW is a B&B-specific scheme (paper §IV-B)")
        super().__init__(pid, app, cfg, has_initial_work=False)
        self.tree = tree
        self.parent = tree.parent[pid]
        self.children = list(tree.children[pid])
        self.is_master = bool(self.children) or tree.n == 1
        self.level = tree.depth[pid]
        # "masters belonging to the same hierarchy level can directly
        # communicate and share work with each other" — optional variant
        self.sibling_sharing = sibling_sharing
        self.siblings = ([s for s in tree.children[self.parent]
                          if s != pid and tree.children[s]]
                         if self.parent >= 0 else [])
        self.sib_outstanding = False
        from ..sim.rng import RngStream
        self._sib_rng = RngStream(cfg.seed, "ahmw-sib", pid)
        n_jobs = app.instance.n_jobs
        self.fact = factorials(n_jobs)
        # a master at level l serves subproblems of depth l+1 (clamped)
        self.target_depth = min(self.level + 1, n_jobs - 1)
        self.pool: deque[list[int]] = deque()
        self.pending_children: deque[int] = deque()
        self.req_outstanding = False
        self.decomposing = False
        if pid == 0:
            self.pool.append([0, self.fact[n_jobs]])
        self.waves = TerminationWaves(
            host=self, parent=self.parent, children=self.children,
            get_counters=self._counters, on_terminate=self.finish,
            should_wave=self._root_trigger, retry_delay=2e-3)

    # -- worker side -----------------------------------------------------------

    def on_idle(self) -> None:
        if self.terminated:
            return
        if self.is_master:
            self._master_step()
            return
        if not self.req_outstanding:
            self.req_outstanding = True
            self.note_steal_request()
            self.send(self.parent, REQ, None)

    def on_work_received(self, msg: Message) -> None:
        if msg.payload[1] == "ahmw-sib":
            self.sib_outstanding = False
        else:
            self.req_outstanding = False
        if self.is_master:
            # a subproblem stolen from our parent: into the pool, then
            # decompose/serve (the base class never runs quanta on masters
            # because their work container is drained into the pool here)
            piece: BnBWork = self.work  # merged by the base class
            while piece.head() is not None:
                self.pool.append(list(piece.head()))
                piece.pop_head()
            self._master_step()

    # -- master side --------------------------------------------------------------

    def handle(self, msg: Message) -> None:
        if self.waves.handles(msg.kind):
            self.waves.handle(msg)
            return
        if msg.kind == REQ:
            self.pending_children.append(msg.src)
            self._master_step()
            return
        if msg.kind == SIB_REQ:
            # a same-level master asks for one spare subproblem
            if self.is_master and len(self.pool) > 1:
                block = self.pool.pop()
                piece = BnBWork(self.app.instance.n_jobs)
                piece.intervals.append(block)
                self.send_work(msg.src, piece, channel="ahmw-sib")
            else:
                self.send(msg.src, SIB_NACK, None)
            return
        if msg.kind == SIB_NACK:
            self.sib_outstanding = False
            self._master_step()
            return

    def _master_step(self) -> None:
        """Serve pending children; decompose or steal when the pool is dry."""
        if self.terminated or not self.is_master or self.decomposing:
            return
        if self.cpu_busy:
            return
        while self.pending_children and self.pool:
            head = self.pool[0]
            depth = self._depth_of(head)
            if depth < self.target_depth:
                self._decompose(head)
                return  # resumes via the decomposition completion
            self.pool.popleft()
            child = self.pending_children.popleft()
            piece = BnBWork(self.app.instance.n_jobs)
            piece.intervals.append(head)
            self.send_work(child, piece, channel="ahmw")
        if self.pending_children and not self.pool:
            if (self.sibling_sharing and self.siblings
                    and not self.sib_outstanding):
                self.sib_outstanding = True
                self.note_steal_request()
                self.send(self._sib_rng.choice(self.siblings), SIB_REQ, None)
            if self.parent >= 0 and not self.req_outstanding:
                self.req_outstanding = True
                self.note_steal_request()
                self.send(self.parent, REQ, None)
            elif self.parent < 0:
                self._root_check()

    def _depth_of(self, block: list[int]) -> int:
        width = block[1] - block[0]
        n_jobs = self.app.instance.n_jobs
        for k in range(n_jobs + 1):
            if self.fact[k] == width:
                return n_jobs - k
        raise SimConfigError(f"pool block {block} is not depth-aligned")

    def _decompose(self, block: list[int]) -> None:
        """Branch one level of the head subproblem on this master's CPU."""
        self.pool.popleft()
        children, nodes, improved = self.app.engine.decompose_block(
            block[0], self.shared, block[1] - block[0])
        self.decomposing = True
        duration = nodes * self.app.unit_cost / self.cfg.speed
        self.stats.work_units += nodes
        self.stats.busy_time += duration

        def done() -> None:
            self.decomposing = False
            self.sim.note_work_done()
            for a, b in children:
                self.pool.append([a, b])
            if improved and self.cfg.gossip_bounds:
                self._gossip(exclude=-1)
            self._master_step()

        self.occupy(duration, done, tag=f"decompose@{self.pid}")

    def gossip_targets(self) -> list[int]:
        out = list(self.children)
        if self.parent >= 0:
            out.append(self.parent)
        return out

    # -- termination ------------------------------------------------------------------

    def _root_trigger(self) -> bool:
        return (self.pid == 0 and not self.terminated and not self.pool
                and not self.decomposing
                and len(set(self.pending_children)) == len(self.children))

    def _root_check(self) -> None:
        if self._root_trigger():
            self.waves.root_try()

    def _counters(self) -> tuple[int, int, bool]:
        st = self.stats
        active = (bool(self.pool) or self.decomposing or self.cpu_busy
                  or not self.work.is_empty())
        return (st.work_msgs_sent, st.work_msgs_received, active)


def build_ahmw_tree(n: int, degree: int = AHMW_DEGREE) -> TreeOverlay:
    """The degree-10 hierarchy of [2], [3]."""
    from ..overlay.tree import deterministic_tree
    return deterministic_tree(n, degree)


__all__ = ["AHMWNode", "build_ahmw_tree", "AHMW_DEGREE", "REQ"]
