"""Fig. 1 — degree/diameter analysis at n = 500 (paper top + bottom).

Top: execution time as a function of dmax for two B&B instances (Ta21,
Ta23) — time falls with degree, the gain saturates around dmax ~ 6.
Bottom: number of messages sent per node (nodes in BFS order) for
dmax = 2, 5, 10 — message load concentrates at interior (non-leaf) nodes
as the degree grows.
"""

from __future__ import annotations

from ..overlay.tree import deterministic_tree
from .base import ExperimentReport, make_grid, timed
from .config import Scale, bnb_spec
from .report import Series, render_series, render_table

DMAX_SWEEP = (2, 3, 4, 5, 6, 7, 8, 9, 10)
BOTTOM_DMAX = (2, 5, 10)


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="fig1",
            title=f"degree/diameter study at n={scale.fig1_n}",
            expectation=("execution time decreases with dmax, marginal gain "
                         "beyond ~6; message traffic concentrates on "
                         "interior nodes for larger dmax"),
        )
        n = scale.fig1_n
        grid = make_grid(scale)
        for idx, label in ((1, "Ta21"), (3, "Ta23")):
            for dmax in DMAX_SWEEP:
                grid.add(("top", label, dmax), bnb_spec(scale, idx, big=True),
                         trials=scale.scaling_trials,
                         label=f"fig1-top {label} dmax={dmax}",
                         protocol="TD", n=n, dmax=dmax,
                         quantum=scale.bnb_quantum)
        for dmax in BOTTOM_DMAX:
            grid.add(("bottom", dmax), bnb_spec(scale, 1, big=True),
                     trials=1, label=f"fig1-bottom dmax={dmax}",
                     protocol="TD", n=n, dmax=dmax,
                     quantum=scale.bnb_quantum)
        grid.run()

        # ---- top: time vs dmax ----
        series = []
        data_top = {}
        for idx, label in ((1, "Ta21"), (3, "Ta23")):
            s = Series(name=label)
            for dmax in DMAX_SWEEP:
                ts = grid.stats(("top", label, dmax))
                s.add(dmax, ts.t_avg * 1e3)
                data_top[(label, dmax)] = ts
            series.append(s)
        report.sections.append(render_series(
            series, "dmax", "execution time (ms)",
            title="-- Fig 1 top: TD execution time vs dmax --", digits=1))
        report.sections.append("")

        # ---- bottom: per-node message counts by BFS id ----
        data_bottom = {}
        rows = []
        for dmax in BOTTOM_DMAX:
            res = grid.result(("bottom", dmax))
            msgs = res.msgs_by_pid  # TD pids are BFS ids already
            tree = deterministic_tree(n, dmax)
            interior = [p for p in range(n) if tree.children[p]]
            leaves = [p for p in range(n) if not tree.children[p]]
            data_bottom[dmax] = msgs
            rows.append([
                dmax, len(interior), max(msgs),
                sum(msgs[p] for p in interior) / max(1, len(interior)),
                sum(msgs[p] for p in leaves) / max(1, len(leaves)),
                (sum(msgs[p] for p in interior) / max(1, len(interior)))
                / max(1e-9, sum(msgs[p] for p in leaves)
                      / max(1, len(leaves))),
            ])
        report.sections.append(render_table(
            ["dmax", "#interior", "max msgs/node", "mean msgs interior",
             "mean msgs leaf", "interior/leaf ratio"],
            rows, title="-- Fig 1 bottom: message distribution over nodes "
                        "(full per-node series in report.data) --",
            digits=1))
        report.data = {"top": data_top, "bottom": data_bottom}
        # shape check: saturation of the gain beyond dmax ~ 6
        for s in series:
            early = s.ys[s.xs.index(2)] - s.ys[s.xs.index(6)]
            late = s.ys[s.xs.index(6)] - s.ys[s.xs.index(10)]
            report.sections.append(
                f"shape check {s.name}: gain 2->6 = {early:.1f} ms, "
                f"gain 6->10 = {late:.1f} ms "
                f"({'saturating' if abs(late) < abs(early) else 'NOT saturating'})")
        return report

    return timed(build)


__all__ = ["run", "DMAX_SWEEP", "BOTTOM_DMAX"]
