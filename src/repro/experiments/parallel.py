"""Multiprocess grid execution with content-addressed result caching.

The paper's evaluation is a large grid — protocols x worker counts x
trials x applications — and every cell is an independent, bit-deterministic
simulation.  This module fans those cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and memoises finished
cells on disk (:mod:`repro.experiments.cache`), so a table regenerates in
``wall/ncores`` time the first run and near-instantly the second.

Execution contract (asserted by the test suite):

* Cells derive from :func:`repro.experiments.runner.cell_configs` — the
  single canonical ``(RunConfig, trial)`` expansion — and each worker
  rebuilds the application fresh from its picklable spec, exactly as the
  serial loop calls ``app_factory()`` per trial.  Parallel, serial and
  cached paths therefore return **bit-identical**
  :class:`~repro.experiments.runner.ExperimentResult` lists.
* ``jobs=1`` (the default without ``$REPRO_JOBS``/``--jobs``) never spawns
  a pool: cells run in-process through the plain serial loop.
* Plain-callable factories (closures) still work everywhere: such cells
  cannot be pickled or content-addressed, so they run serially in the
  parent and skip the cache.

``jobs`` resolution order: explicit argument > :func:`configure` (set by
the CLIs) > ``$REPRO_JOBS`` > 1.  ``jobs <= 0`` means "all cores".
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence

from ..sim.errors import SimConfigError
from .cache import ResultCache, cache_disabled_by_env, cell_key
from .runner import (ExperimentResult, RunConfig, TrialStats, cell_configs,
                     run_once)
from .specs import is_spec

#: Process-wide defaults installed by the CLIs (``--jobs`` / ``--no-cache``)
#: so the table/figure generators pick them up without threading arguments
#: through every call site.
_configured: dict = {"jobs": None, "use_cache": None}


def configure(jobs: Optional[int] = None,
              use_cache: Optional[bool] = None) -> None:
    """Install process-wide defaults for ``jobs`` and cache usage."""
    _configured["jobs"] = jobs
    _configured["use_cache"] = use_cache


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count for a grid (see module docstring for order)."""
    if jobs is None:
        jobs = _configured["jobs"]
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise SimConfigError(f"REPRO_JOBS must be an integer, "
                                     f"got {env!r}")
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def resolve_use_cache(use_cache: Optional[bool] = None) -> bool:
    """Cache enablement: explicit > configured > $REPRO_NO_CACHE > on."""
    if use_cache is None:
        use_cache = _configured["use_cache"]
    if use_cache is None:
        use_cache = not cache_disabled_by_env()
    return bool(use_cache)


def _run_cell(cfg: RunConfig, spec) -> ExperimentResult:
    """Pool worker: rebuild the application from its spec, run the cell."""
    return run_once(cfg, spec())


def run_cells(cells: Sequence[tuple], *, jobs: Optional[int] = None,
              use_cache: Optional[bool] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[int, int, str], None]] = None,
              labels: Optional[Sequence[str]] = None
              ) -> list[ExperimentResult]:
    """Execute independent grid cells; returns results in input order.

    ``cells`` is a sequence of ``(RunConfig, app_factory)`` pairs;
    ``progress(done, total, label)`` is invoked (in the parent) as each
    cell completes, cache hits included.
    """
    jobs = resolve_jobs(jobs)
    if cache is None and resolve_use_cache(use_cache):
        cache = ResultCache()
    total = len(cells)
    results: list[Optional[ExperimentResult]] = [None] * total
    done = 0

    def label_of(i: int) -> str:
        if labels is not None and labels[i]:
            return labels[i]
        cfg = cells[i][0]
        return f"{cfg.protocol} n={cfg.n} seed={cfg.seed}"

    def report(i: int, note: str) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, f"{label_of(i)}{note}")

    # -- cache lookup (parent-side) -----------------------------------------
    pending: list[tuple[int, RunConfig, object, Optional[str]]] = []
    for i, (cfg, factory) in enumerate(cells):
        key = cell_key(cfg, factory) if (cache is not None
                                         and is_spec(factory)) else None
        hit = cache.get(key) if key is not None else None
        if hit is not None:
            results[i] = hit
            report(i, " [cached]")
        else:
            pending.append((i, cfg, factory, key))

    def finish(i: int, key: Optional[str], result: ExperimentResult) -> None:
        results[i] = result
        if key is not None:
            cache.put(key, result)
        report(i, "")

    # -- execution ----------------------------------------------------------
    poolable = [c for c in pending if is_spec(c[2])]
    serial_only = [c for c in pending if not is_spec(c[2])]
    if jobs == 1 or len(poolable) < 2:
        serial_only = pending
        poolable = []
    if poolable:
        max_workers = min(jobs, len(poolable))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {pool.submit(_run_cell, cfg, spec): (i, key)
                       for i, cfg, spec, key in poolable}
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                for fut in finished:
                    i, key = futures[fut]
                    finish(i, key, fut.result())
    for i, cfg, factory, key in serial_only:
        finish(i, key, run_once(cfg, factory()))
    return results  # type: ignore[return-value]


class ExperimentGrid:
    """Accumulate a whole grid of trial groups, run it in one fan-out.

    The table/figure generators declare every configuration up front
    (:meth:`add`), execute all cells with one :func:`run_cells` call
    (:meth:`run` — maximum pool utilisation across the whole grid), then
    read per-configuration :class:`TrialStats` back (:meth:`stats`).
    """

    def __init__(self, *, seed: int = 0, default_trials: int = 1,
                 jobs: Optional[int] = None,
                 use_cache: Optional[bool] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[int, int, str], None]] = None
                 ) -> None:
        self.seed = seed
        self.default_trials = default_trials
        self.jobs = jobs
        self.use_cache = use_cache
        self.cache = cache
        self.progress = progress
        self._cells: list[tuple[RunConfig, object]] = []
        self._labels: list[str] = []
        self._groups: dict = {}
        self._results: Optional[list[ExperimentResult]] = None

    def add(self, key, app_factory, *, trials: Optional[int] = None,
            label: Optional[str] = None, **cfg_kwargs) -> None:
        """Register one configuration (expanded into per-trial cells)."""
        if self._results is not None:
            raise SimConfigError("grid already ran; create a new one")
        if key in self._groups:
            raise SimConfigError(f"duplicate grid key {key!r}")
        cfg_kwargs.setdefault("seed", self.seed)
        cfg = RunConfig(**cfg_kwargs)
        expanded = cell_configs(cfg, trials if trials is not None
                                else self.default_trials)
        start = len(self._cells)
        base = label or f"{cfg.protocol} n={cfg.n}"
        for t, trial_cfg in enumerate(expanded):
            self._cells.append((trial_cfg, app_factory))
            self._labels.append(f"{base} trial {t + 1}/{len(expanded)}")
        self._groups[key] = (start, len(expanded))

    def __len__(self) -> int:
        return len(self._cells)

    def run(self) -> "ExperimentGrid":
        """Execute every registered cell (pool + cache); idempotent."""
        if self._results is None:
            self._results = run_cells(
                self._cells, jobs=self.jobs, use_cache=self.use_cache,
                cache=self.cache, progress=self.progress,
                labels=self._labels)
        return self

    def stats(self, key) -> TrialStats:
        """Aggregated trials of one configuration (runs the grid if needed)."""
        self.run()
        start, count = self._groups[key]
        return TrialStats.of(self._results[start:start + count])

    def result(self, key) -> ExperimentResult:
        """First-trial result of one configuration."""
        return self.stats(key).results[0]


__all__ = ["ExperimentGrid", "configure", "resolve_jobs",
           "resolve_use_cache", "run_cells"]
