"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments --all --scale quick
    python -m repro.experiments table1 fig5 --scale default --out results.txt
    python -m repro.experiments report --app uts --preset bin_mini --n 16
    python -m repro.experiments live --n 4 --kill 2@500u --expect-conserved
    python -m repro.experiments scale --nodes 10000 --json sweep.json
    repro-experiments fig3                      # console script

Subcommands (each has its own ``--help``):

* ``report`` — one instrumented *simulated* run, rendered as a full
  observability report (:mod:`repro.experiments.runreport`);
* ``live`` — one *wall-clock multi-process* run over real sockets, same
  report format, with optional fault injection and simulator
  cross-validation (:mod:`repro.experiments.live`);
* ``scale`` — the macro-event engine's fleet-scale sweep
  (:mod:`repro.experiments.scale`);
* ``serve`` — the long-lived work-distribution daemon over a warm
  live fleet (:mod:`repro.serve`).
"""

from __future__ import annotations

import argparse
import sys

from .config import SCALES, get_scale
from .registry import ORDER, get_experiment

#: subcommand -> (module summary line, entry point import path); the
#: --help epilog is generated from this so it cannot drift from dispatch
SUBCOMMANDS = {
    "report": "run one instrumented simulation and emit a run report",
    "live": "run the protocols over real OS processes and sockets "
            "(optionally injecting worker kills)",
    "scale": "fleet-scale sweep of the macro-event engine "
             "(10^4-node runs on one host; --shards K runs the fleet "
             "sharded over K cores)",
    "serve": "start the long-lived work-distribution daemon: a stream "
             "of jobs over one warm live fleet, with admission control "
             "(see docs/serve.md)",
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        from .runreport import report_main
        return report_main(argv[1:])
    if argv and argv[0] == "live":
        from .live import live_main
        return live_main(argv[1:])
    if argv and argv[0] == "scale":
        from .scale import scale_main
        return scale_main(argv[1:])
    if argv and argv[0] == "serve":
        from ..serve.daemon import serve_main
        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of 'Overlay-Centric "
                    "Load Balancing' (CLUSTER 2012) on the simulator.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="subcommands:\n" + "\n".join(
            f"  {name:<8} {desc}" for name, desc in SUBCOMMANDS.items())
        + "\n  (use '<subcommand> --help' for their flags)")
    parser.add_argument("experiments", nargs="*",
                        help=f"experiment ids: {', '.join(ORDER)} "
                             f"(or a subcommand: "
                             f"{', '.join(SUBCOMMANDS)})")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment in paper order")
    parser.add_argument("--scale", default="default", choices=sorted(SCALES),
                        help="workload scale (default: default)")
    parser.add_argument("--trials", type=int, default=None,
                        help="override the scale's trial count")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scale's base seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the experiment grids "
                             "(default: $REPRO_JOBS or 1; 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--out", default=None,
                        help="also append the reports to this file")
    parser.add_argument("--json", default=None,
                        help="write JSON summaries of the reports here")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in ORDER:
            print(exp_id)
        return 0
    ids = list(ORDER) if args.all else args.experiments
    if not ids:
        parser.error("give experiment ids or --all (see --list)")
    from .parallel import configure
    configure(jobs=args.jobs, use_cache=False if args.no_cache else None)
    scale = get_scale(args.scale)
    if args.trials is not None or args.seed is not None:
        import dataclasses
        overrides = {}
        if args.trials is not None:
            if args.trials < 1:
                parser.error("--trials must be >= 1")
            overrides["trials"] = args.trials
        if args.seed is not None:
            overrides["seed"] = args.seed
        scale = dataclasses.replace(scale, **overrides)
    out_fh = open(args.out, "a") if args.out else None
    summaries = []
    try:
        for exp_id in ids:
            report = get_experiment(exp_id)(scale)
            text = report.render()
            print(text)
            print()
            summaries.append(report.summary())
            if out_fh:
                out_fh.write(text + "\n\n")
                out_fh.flush()
            if args.json:
                import json
                with open(args.json, "w") as fh:
                    json.dump({"scale": scale.name,
                               "reports": summaries}, fh, indent=2)
    finally:
        if out_fh:
            out_fh.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
