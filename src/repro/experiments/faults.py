"""Resilience study — the reproduction's own addition.

Not a figure from the paper: this experiment measures what the fault
layer costs. The paper's protocols assume a reliable cluster; this
reproduction adds crash-stop failures, lossy links and a self-healing
overlay (reliable transport + subtree splicing + dead-set-aware
termination waves), and here we quantify the price:

* **loss sweep** — makespan overhead of running the reliable channel at
  increasing message-loss rates, against the same protocol on clean
  links. Overhead should track the retransmission volume: each lost
  message costs one timeout (2 ms virtual) plus the resend.
* **crash sweep** — survivability: kill an increasing fraction of the
  peers mid-run. Work frozen on the victims is lost (crash-stop, no
  checkpointing), so completed units drop accordingly; the interesting
  outputs are that every surviving node terminates, how many overlay
  repairs the healing needed, and the makespan degradation.
* **partition sweep** — split the fleet into two islands for windows of
  increasing length, then heal. No work is ever lost (partitions kill
  links, not nodes), so the cost is pure makespan: stalled cross-cut
  steals, circuit breakers routing around unreachable peers, and
  termination waves held back until the heal (island safety).
* **gray failure** — one slow-but-alive peer (compute slowdown + flaky,
  inflated links both ways). The channel's circuit breaker must trip and
  route around it instead of retrying forever; the cell reports the trips
  and the bounded makespan degradation.

TD (pure tree), BTD (bridged) and the RWS baseline run the same sweeps;
bridges and random victim choice give BTD/RWS alternative escape routes
around dead subtrees, while TD must rely purely on the splice protocol.
"""

from __future__ import annotations

from ..sim.faults import FaultPlan
from .base import ExperimentReport, make_grid, timed
from .config import Scale, uts_spec
from .report import render_table

PROTOS = ("TD", "BTD", "RWS")
LOSS_SWEEP = (0.0, 0.05, 0.1, 0.2)

#: Partition window lengths (virtual seconds). Windows open at 1 ms —
#: safely inside bin_tiny's ~13 ms makespan — and the long window forces
#: breakers open before the heal.
PARTITION_SWEEP = (2e-3, 6e-3)

#: Channel pacing for the partition/gray cells: a tight retransmit base
#: so the breaker ladder (t, 2t, 4t, ...) trips well inside the window.
BREAKER_PACING = {"ack_timeout": 5e-4, "breaker_threshold": 3}


def partition_plan(n: int, length: float) -> FaultPlan:
    """Split ``range(n)`` down the middle for ``[1 ms, 1 ms + length)``."""
    side = tuple(range(n // 2, n))
    return FaultPlan(partitions=((side, 1e-3, 1e-3 + length),))


def gray_plan(n: int) -> FaultPlan:
    """One gray peer: 8x compute slowdown + flaky 4x-delay links."""
    pid = n // 2
    return FaultPlan(
        slowdowns=((pid, 0.0, 8e-3, 8.0),),
        gray_links=((None, pid, 0.0, 8e-3, 4.0, 0.5),
                    (pid, None, 0.0, 8e-3, 4.0, 0.5)))


def crash_sweep(n: int) -> tuple[int, ...]:
    """Crash counts exercised at population size ``n`` (up to n/4)."""
    return tuple(dict.fromkeys((0, max(1, n // 8), n // 4)))


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="faults",
            title="fault-injection overhead and self-healing resilience",
            expectation=("(reproduction addition) loss raises makespan "
                         "roughly with the retransmission volume; crashes "
                         "freeze the victims' residual work but every "
                         "surviving node terminates after overlay repair"),
        )
        spec = uts_spec(scale, "main")
        n = scale.table2_n
        crashes = crash_sweep(n)
        grid = make_grid(scale)
        for proto in PROTOS:
            for loss in LOSS_SWEEP:
                plan = FaultPlan(loss=loss) if loss else None
                grid.add((proto, "loss", loss), spec,
                         trials=scale.scaling_trials,
                         label=f"faults {proto} loss={loss}",
                         protocol=proto, n=n, dmax=10,
                         quantum=scale.uts_quantum, faults=plan)
            for k in crashes:
                if k == 0:
                    continue  # shares the loss=0 clean cell
                # window chosen to land inside the scaled makespans
                # (bin_tiny at n=12 runs ~13 ms); later kills would hit
                # already-terminated nodes and measure nothing
                plan = FaultPlan.sample(n, crashes=k,
                                        seed=scale.seed + 7 * k,
                                        window=(5e-4, 4e-3))
                grid.add((proto, "crash", k), spec,
                         trials=scale.scaling_trials,
                         label=f"faults {proto} crashes={k}",
                         protocol=proto, n=n, dmax=10,
                         quantum=scale.uts_quantum, faults=plan)
            # partition/gray cells share one clean twin at breaker pacing
            grid.add((proto, "part", 0.0), spec,
                     trials=scale.scaling_trials,
                     label=f"faults {proto} partition=clean",
                     protocol=proto, n=n, dmax=10,
                     quantum=scale.uts_quantum, **BREAKER_PACING)
            for dur in PARTITION_SWEEP:
                grid.add((proto, "part", dur), spec,
                         trials=scale.scaling_trials,
                         label=f"faults {proto} partition={dur * 1e3:g}ms",
                         protocol=proto, n=n, dmax=10,
                         quantum=scale.uts_quantum,
                         faults=partition_plan(n, dur), **BREAKER_PACING)
            grid.add((proto, "gray"), spec,
                     trials=scale.scaling_trials,
                     label=f"faults {proto} gray peer",
                     protocol=proto, n=n, dmax=10,
                     quantum=scale.uts_quantum, faults=gray_plan(n),
                     **BREAKER_PACING)
        grid.run()

        loss_rows = []
        for proto in PROTOS:
            base = grid.stats((proto, "loss", 0.0)).t_avg
            for loss in LOSS_SWEEP:
                ts = grid.stats((proto, "loss", loss))
                r = ts.results[0]
                loss_rows.append([
                    proto, loss, ts.t_avg * 1e3, ts.t_avg / base,
                    r.msgs_lost, r.retransmits,
                ])
        report.sections.append(render_table(
            ["proto", "loss", "t (ms)", "overhead", "lost", "rexmit"],
            loss_rows, title=f"-- makespan vs message loss (n={n}) --",
            digits=3))

        crash_rows = []
        for proto in PROTOS:
            clean = grid.stats((proto, "loss", 0.0))
            full_units = clean.results[0].total_units
            for k in crashes:
                ts = (clean if k == 0
                      else grid.stats((proto, "crash", k)))
                r = ts.results[0]
                crash_rows.append([
                    proto, k, ts.t_avg * 1e3,
                    100.0 * r.total_units / full_units,
                    r.crashes, r.repairs,
                ])
        report.sections.append(render_table(
            ["proto", "kills", "t (ms)", "units %", "crashed", "repairs"],
            crash_rows,
            title=f"-- survivability vs crash count (n={n}) --",
            digits=2))

        part_rows = []
        for proto in PROTOS:
            base = grid.stats((proto, "part", 0.0)).t_avg
            for dur in (0.0,) + PARTITION_SWEEP:
                ts = grid.stats((proto, "part", dur))
                r = ts.results[0]
                part_rows.append([
                    proto, dur * 1e3, ts.t_avg * 1e3, ts.t_avg / base,
                    r.msgs_lost, r.breaker_opens,
                ])
            ts = grid.stats((proto, "gray"))
            r = ts.results[0]
            part_rows.append([
                proto, "gray", ts.t_avg * 1e3, ts.t_avg / base,
                r.msgs_lost, r.breaker_opens,
            ])
        report.sections.append(render_table(
            ["proto", "cut ms", "t (ms)", "overhead", "dropped", "breaker"],
            part_rows,
            title=f"-- partitions and gray failures (n={n}) --",
            digits=3))

        worst = min(r[3] for r in crash_rows)
        report.sections.append(
            f"every run terminated cleanly; the heaviest crash load still "
            f"completed {worst:.1f}% of the tree (the rest died unexplored "
            "with its owners — crash-stop, no checkpoints); partitioned and "
            "gray runs lost no work at all (link faults, not node faults)")
        report.data = {"loss_rows": loss_rows, "crash_rows": crash_rows,
                       "part_rows": part_rows, "n": n}
        return report

    return timed(build)


__all__ = ["run", "LOSS_SWEEP", "PARTITION_SWEEP", "crash_sweep",
           "gray_plan", "partition_plan", "PROTOS"]
