"""Fleet-scale sweeps: the macro-event engine at 10^4 simulated nodes.

The quantum-fusion fast path (:mod:`repro.sim.engine`,
:meth:`repro.core.worker.WorkerProcess._run_fused`) collapses the
per-quantum event class — the dominant one once every worker is busy —
into one engine event per fused block, so runs at 10,000 nodes complete
on a single host.  This module is the harness around that claim:

* :func:`scale_run` executes one protocol x application cell at fleet
  size, wall-clocks it, and checks the **conservation oracle**: the
  total work units processed must equal the workload's exact size
  (synthetic: ``units_per_node * n``; UTS: the preset's measured node
  count).  Conservation is schedule-independent, so it holds no matter
  how simultaneous events are ordered — the right invariant for runs
  too large to diff trace-by-trace.
* :func:`scale_sweep` runs the {TD, BTD, RWS} x {UTS, synthetic} grid
  fused, plus one *unfused twin* of the synthetic TD cell to measure
  the engine speedup in events-equivalent per wall second
  (``RunStats.events_equivalent`` counts the events an unfused engine
  would have fired for the same run).

On a multi-core host the sweep can additionally split each run over
shard processes (:mod:`repro.sim.shard` — conservative-lookahead
parallel DES): ``--shards K`` partitions the fleet by overlay subtree
into K single-core event loops that advance in lock-step windows of
``min_delay()``. The conservation oracle applies unchanged — it is
schedule-independent — and the per-cell report carries the wall/CPU
split plus per-shard compute seconds.

CLI (``python -m repro.experiments scale``)::

    python -m repro.experiments scale --nodes 10000 --json sweep.json
    python -m repro.experiments scale --nodes 2000 --units-per-node 5000 \
        --preset bin_small --no-twin     # CI-sized smoke
    python -m repro.experiments scale --nodes 100000 --shards 0 \
        --units-per-node 200 --protocols TD --apps synthetic --no-twin

The committed 10k recording lives in ``benchmarks/BENCH_scale.json``
(``python benchmarks/record.py scale``); CI re-records the quick variant
and gates it with ``benchmarks/check_regression.py``. The sharded
recording is ``benchmarks/BENCH_shard.json`` (``record.py shard``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, dataclass

from ..apps.base import Application
from ..apps.synthetic import SyntheticApplication
from ..apps.uts_app import UTSApplication
from ..core.config import OCLBConfig
from ..sim.errors import SimConfigError
from ..sim.network import uniform_network
from ..uts.params import get_preset
from .runner import RunConfig, run_instrumented

#: Default knobs of the headline sweep. A 10 ms flat latency models the
#: WAN/grid regime a 10^4-node fleet actually lives in (Grid'5000
#: inter-site RTTs are ~10-20 ms; grid5000's modelled topology caps out
#: at 1312 cores and cannot place 10k processes) — and a long RTT is
#: exactly where fusion shines: the horizon window covers hundreds of
#: 16 us quanta, so whole stretches of compute collapse into single
#: events. Quantum 16 keeps stealing responsive — affordable precisely
#: because fusion decouples engine cost from quantum granularity.
DEFAULT_LATENCY = 1e-2
DEFAULT_QUANTUM = 16
DEFAULT_UNITS_PER_NODE = 50_000
DEFAULT_UNIT_COST = 1e-6
DEFAULT_PROTOCOLS = ("TD", "BTD", "RWS")
DEFAULT_APPS = ("synthetic", "uts")


def fleet_network(n: int, latency: float = DEFAULT_LATENCY,
                  handler_cost: float = 1e-5):
    """A flat cluster big enough to place ``n`` processes."""
    return uniform_network(cores=max(n, 4096), latency=latency,
                           handler_cost=handler_cost)


def fleet_pacing(latency: float) -> tuple[OCLBConfig, float]:
    """Protocol retry timers scaled to the fleet's round-trip time.

    The stock ``OCLBConfig`` paces idle probing at 250 µs and the reliable
    channel retransmits after 2 ms — tuned for grid5000's 50–500 µs links.
    On a 1 ms+ fleet link those constants poll *faster than a round trip*:
    every idle node fires several redundant probe rounds per RTT and every
    work transfer retransmits before its ACK can possibly return, drowning
    the run in messages that carry no information.  Polling slower than
    an RTT is the classic fix; results are unchanged (the protocols are
    correct under any pacing), only the junk traffic disappears.

    Returns ``(oclb_config, ack_timeout)`` for :class:`RunConfig`.
    """
    rtt = 2.0 * latency
    oclb = OCLBConfig(wave_retry=max(2e-3, 2.0 * rtt),
                      probe_retry=max(2.5e-4, rtt))
    ack_timeout = max(2e-3, 2.0 * rtt)
    return oclb, ack_timeout


@dataclass(slots=True)
class ScaleRow:
    """One cell of the sweep, with its engine-side throughput numbers."""

    protocol: str
    app: str                  # "synthetic" or the UTS preset name
    n: int
    fuse: bool
    makespan: float           # virtual seconds
    wall_s: float             # host seconds
    events: int               # engine events actually fired
    events_equivalent: int    # events an unfused engine would have fired
    macro_events: int
    fused_quanta: int
    total_units: int
    total_msgs: int
    total_steals: int
    shards: int = 1           # event-loop processes the run was split over
    cpu_s: float = 0.0        # CPU seconds (sum over shards when sharded)
    shard_walls: tuple = ()   # per-shard compute seconds (empty serial)

    @property
    def fused_ratio(self) -> float:
        """Fraction of equivalent events absorbed by fusion."""
        if self.events_equivalent <= 0:
            return 0.0
        return (self.fused_quanta - self.macro_events) / self.events_equivalent

    @property
    def eq_per_s(self) -> float:
        return self.events_equivalent / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> dict:
        out = asdict(self)
        out["fused_ratio"] = round(self.fused_ratio, 4)
        out["eq_per_s"] = round(self.eq_per_s)
        out["events_per_s"] = round(self.events_per_s)
        out["wall_s"] = round(self.wall_s, 2)
        out["cpu_s"] = round(self.cpu_s, 2)
        out["shard_walls"] = [round(w, 2) for w in self.shard_walls]
        return out


def build_app(app: str, n: int, *, units_per_node: int, unit_cost: float,
              preset: str) -> tuple[Application, int]:
    """``(application, exact expected total units)`` for one cell."""
    if app == "synthetic":
        return (SyntheticApplication(units_per_node * n,
                                     unit_cost=unit_cost),
                units_per_node * n)
    if app == "uts":
        p = get_preset(preset)
        if p.nodes <= 0:
            raise SimConfigError(
                f"preset {preset!r} has no recorded exact size; the scale "
                "sweep needs one for its conservation oracle")
        return UTSApplication(p.params), p.nodes
    raise SimConfigError(f"unknown scale app {app!r}; known: synthetic, uts")


class _CellApp:
    """Picklable zero-arg application builder for sharded cells.

    :func:`repro.sim.shard.run_sharded` re-creates the application inside
    each shard child; under the spawn fallback the builder crosses a
    process boundary, so it must be a module-level callable, not a
    closure.
    """

    __slots__ = ("app", "n", "units_per_node", "unit_cost", "preset")

    def __init__(self, app: str, n: int, units_per_node: int,
                 unit_cost: float, preset: str) -> None:
        self.app = app
        self.n = n
        self.units_per_node = units_per_node
        self.unit_cost = unit_cost
        self.preset = preset

    def __call__(self) -> Application:
        return build_app(self.app, self.n, units_per_node=self.units_per_node,
                         unit_cost=self.unit_cost, preset=self.preset)[0]


def scale_run(protocol: str, app: str, n: int, *,
              quantum: int = DEFAULT_QUANTUM, seed: int = 42,
              latency: float = DEFAULT_LATENCY,
              units_per_node: int = DEFAULT_UNITS_PER_NODE,
              unit_cost: float = DEFAULT_UNIT_COST,
              preset: str = "bin_large", fuse: bool = True,
              shards: int = 1) -> ScaleRow:
    """Run one fleet-scale cell and verify work conservation.

    ``shards > 1`` splits the run over that many OS processes
    (:func:`repro.sim.shard.run_sharded`); the conservation oracle is
    checked identically — it holds under any event schedule.
    """
    builder = _CellApp(app, n, units_per_node, unit_cost, preset)
    _app0, expected = build_app(app, n, units_per_node=units_per_node,
                                unit_cost=unit_cost, preset=preset)
    oclb, ack_timeout = fleet_pacing(latency)
    cfg = RunConfig(protocol=protocol, n=n, quantum=quantum, seed=seed,
                    network=fleet_network(n, latency), oclb=oclb,
                    ack_timeout=ack_timeout, fuse=fuse)
    t0 = time.perf_counter()
    cpu0 = time.process_time()
    if shards > 1:
        from ..sim.shard import run_sharded
        res, _stats, shard_walls = run_sharded(cfg, builder, shards)
        cpu = sum(shard_walls)
    else:
        res, _stats = run_instrumented(cfg, _app0)
        shard_walls = []
        cpu = time.process_time() - cpu0
    wall = time.perf_counter() - t0
    if res.total_units != expected:
        raise RuntimeError(
            f"conservation violated: {protocol}/{app} n={n} processed "
            f"{res.total_units} units, expected exactly {expected}")
    return ScaleRow(
        protocol=protocol,
        app=app if app == "synthetic" else preset,
        n=n, fuse=fuse,
        makespan=res.makespan, wall_s=wall,
        events=res.events, events_equivalent=res.events_equivalent,
        macro_events=res.macro_events, fused_quanta=res.fused_quanta,
        total_units=res.total_units, total_msgs=res.total_msgs,
        total_steals=res.total_steals,
        shards=max(1, shards), cpu_s=cpu, shard_walls=tuple(shard_walls))


def scale_sweep(nodes: int, protocols=DEFAULT_PROTOCOLS, apps=DEFAULT_APPS,
                *, quantum: int = DEFAULT_QUANTUM, seed: int = 42,
                latency: float = DEFAULT_LATENCY,
                units_per_node: int = DEFAULT_UNITS_PER_NODE,
                unit_cost: float = DEFAULT_UNIT_COST,
                preset: str = "bin_large", twin: bool = True,
                shards: int = 1, progress=None) -> dict:
    """The full grid, fused — plus the unfused synthetic-TD twin.

    Returns a JSON-ready document: ``rows`` (fused cells), optionally
    ``twin`` (the unfused comparison run) and ``fused_speedup`` (fused
    events-equivalent/s over unfused events/s on the same workload —
    the engine-throughput multiple fusion buys).
    """
    say = progress or (lambda msg: None)
    rows: list[ScaleRow] = []
    for app in apps:
        for proto in protocols:
            say(f"{proto:4s} x {app:9s} n={nodes} fused "
                f"shards={shards} ...")
            row = scale_run(proto, app, nodes, quantum=quantum, seed=seed,
                            latency=latency, units_per_node=units_per_node,
                            unit_cost=unit_cost, preset=preset,
                            shards=shards)
            say(f"{proto:4s} x {app:9s} done: makespan {row.makespan:.3f}s "
                f"wall {row.wall_s:.1f}s ratio {row.fused_ratio:.3f}")
            rows.append(row)
    import os as _os
    doc: dict = {
        "nodes": nodes,
        "quantum": quantum,
        "seed": seed,
        "latency": latency,
        "units_per_node": units_per_node,
        "unit_cost": unit_cost,
        "preset": preset,
        "shards": shards,
        "cores": _os.cpu_count(),
        "rows": [r.to_json() for r in rows],
    }
    if twin and "synthetic" in apps and protocols:
        twin_proto = protocols[0]
        say(f"{twin_proto:4s} x synthetic n={nodes} unfused twin ...")
        u = scale_run(twin_proto, "synthetic", nodes, quantum=quantum,
                      seed=seed, latency=latency,
                      units_per_node=units_per_node, unit_cost=unit_cost,
                      preset=preset, fuse=False, shards=shards)
        f = next(r for r in rows
                 if r.protocol == twin_proto and r.app == "synthetic")
        speedup = f.eq_per_s / u.events_per_s if u.events_per_s else 0.0
        say(f"twin done: wall {u.wall_s:.1f}s vs {f.wall_s:.1f}s fused "
            f"-> {speedup:.2f}x events-equivalent/s")
        doc["twin"] = u.to_json()
        doc["fused_speedup"] = round(speedup, 2)
        doc["twin_makespan_match"] = (u.makespan == f.makespan)
    return doc


def render_sweep(doc: dict) -> str:
    """Plain-text table of a sweep document."""
    shard_note = (f" shards={doc['shards']} (cores={doc.get('cores')})"
                  if doc.get("shards", 1) > 1 else "")
    lines = [f"fleet-scale sweep: n={doc['nodes']} quantum={doc['quantum']} "
             f"latency={doc['latency']:g}s seed={doc['seed']}{shard_note}",
             f"{'protocol':9s} {'app':10s} {'makespan':>10s} {'wall':>8s} "
             f"{'events':>12s} {'eq-events':>12s} {'fused%':>7s} "
             f"{'eq/s':>10s}",
             "-" * 84]
    for r in doc["rows"]:
        lines.append(
            f"{r['protocol']:9s} {r['app']:10s} {r['makespan']:>10.4f} "
            f"{r['wall_s']:>7.1f}s {r['events']:>12,} "
            f"{r['events_equivalent']:>12,} {r['fused_ratio']:>6.1%} "
            f"{r['eq_per_s']:>10,}")
    if "twin" in doc:
        t = doc["twin"]
        lines.append(
            f"{t['protocol']:9s} {t['app']:10s} {t['makespan']:>10.4f} "
            f"{t['wall_s']:>7.1f}s {t['events']:>12,} "
            f"{t['events_equivalent']:>12,} {'unfused':>7s} "
            f"{t['events_per_s']:>10,}")
        lines.append(f"fused engine speedup: {doc['fused_speedup']:.2f}x "
                     "events-equivalent per wall second"
                     + ("" if doc.get("twin_makespan_match")
                        else "  (makespans differ: simultaneous-event "
                             "ordering, see docs/simulation.md)"))
    return "\n".join(lines)


def scale_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments scale",
        description="Fleet-scale sweep of the macro-event engine "
                    "(10^4-node runs on one host).")
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--protocols", default=",".join(DEFAULT_PROTOCOLS),
                        help="comma-separated (default: TD,BTD,RWS)")
    parser.add_argument("--apps", default=",".join(DEFAULT_APPS),
                        help="comma-separated out of synthetic,uts")
    parser.add_argument("--preset", default="bin_large",
                        help="UTS preset for the uts cells")
    parser.add_argument("--quantum", type=int, default=DEFAULT_QUANTUM)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--latency", type=float, default=DEFAULT_LATENCY)
    parser.add_argument("--units-per-node", type=int,
                        default=DEFAULT_UNITS_PER_NODE)
    parser.add_argument("--unit-cost", type=float, default=DEFAULT_UNIT_COST)
    parser.add_argument("--no-twin", action="store_true",
                        help="skip the unfused comparison run")
    parser.add_argument("--shards", "--jobs", dest="shards", type=int,
                        default=None,
                        help="split each run over this many shard processes "
                             "(conservative-lookahead parallel DES; see "
                             "docs/simulation.md). Resolution order matches "
                             "the grid runner: explicit --shards/--jobs > "
                             "$REPRO_JOBS > 1; 0 = all cores")
    parser.add_argument("--json", default=None,
                        help="write the sweep document here")
    args = parser.parse_args(argv)

    from .parallel import resolve_jobs
    shards = resolve_jobs(args.shards)
    doc = scale_sweep(
        args.nodes,
        protocols=tuple(p.strip() for p in args.protocols.split(",") if p),
        apps=tuple(a.strip() for a in args.apps.split(",") if a),
        quantum=args.quantum, seed=args.seed, latency=args.latency,
        units_per_node=args.units_per_node, unit_cost=args.unit_cost,
        preset=args.preset, twin=not args.no_twin, shards=shards,
        progress=lambda msg: print(msg, file=sys.stderr, flush=True))
    print(render_sweep(doc))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


__all__ = ["ScaleRow", "build_app", "fleet_network", "fleet_pacing",
           "render_sweep", "scale_main", "scale_run", "scale_sweep"]
