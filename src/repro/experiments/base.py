"""Shared plumbing for the table/figure reproduction modules."""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable

from ..apps.base import Application
from .config import Scale
from .parallel import ExperimentGrid
from .report import banner
from .runner import RunConfig, TrialStats, run_trials


@dataclass
class ExperimentReport:
    """The textual + structured outcome of one reproduced table/figure."""

    exp_id: str
    title: str
    expectation: str                  # the paper's qualitative claim
    sections: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    def render(self) -> str:
        """The full human-readable report."""
        parts = [banner(f"{self.exp_id}: {self.title}"),
                 f"paper expectation: {self.expectation}", ""]
        parts.extend(self.sections)
        parts.append(f"\n[generated in {self.wall_seconds:.1f}s wall time]")
        return "\n".join(parts)

    def summary(self) -> dict:
        """JSON-safe summary (for --json): metadata + rendered sections."""
        return {
            "experiment": self.exp_id,
            "title": self.title,
            "expectation": self.expectation,
            "sections": list(self.sections),
            "wall_seconds": round(self.wall_seconds, 2),
        }


def timed(fn: Callable[[], ExperimentReport]) -> ExperimentReport:
    """Run an experiment builder and stamp its wall time."""
    t0 = time.perf_counter()
    report = fn()
    report.wall_seconds = time.perf_counter() - t0
    return report


def progress(msg: str) -> None:
    """Lightweight progress line (stderr, so stdout stays clean)."""
    print(f"    .. {msg}", file=sys.stderr, flush=True)


def cell_progress(done: int, total: int, label: str) -> None:
    """Cell-level progress line of the grid runner (one per finished cell)."""
    progress(f"[{done}/{total}] {label}")


def make_grid(scale: Scale, jobs: int | None = None,
              use_cache: bool | None = None) -> ExperimentGrid:
    """A grid runner preconfigured with the scale's seed and trial count.

    The generators declare every configuration with :meth:`~.ExperimentGrid
    .add`, then one :meth:`~.ExperimentGrid.run` executes the whole grid —
    over the process pool when ``--jobs``/``$REPRO_JOBS`` asks for it,
    reporting each finished cell through :func:`cell_progress`.
    """
    return ExperimentGrid(seed=scale.seed, default_trials=scale.trials,
                          jobs=jobs, use_cache=use_cache,
                          progress=cell_progress)


def trial_stats(scale: Scale, app_factory: Callable[[], Application],
                trials: int | None = None, **cfg_kwargs) -> TrialStats:
    """Run seeded trials of one configuration (default: ``scale.trials``)."""
    cfg = RunConfig(seed=scale.seed, **cfg_kwargs)
    return run_trials(cfg, app_factory, trials or scale.trials,
                      progress=cell_progress)


__all__ = ["ExperimentReport", "cell_progress", "make_grid", "progress",
           "timed", "trial_stats"]
