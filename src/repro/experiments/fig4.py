"""Fig. 4 — scalability of BTD vs MW on Ta21 and Ta23 (200..1000 workers).

Paper finding: MW slows down as it scales — beyond ~600 cores Ta21's
execution time *increases* with more cores (severe communication bottleneck
at the master under fine-grain work), while fully-distributed BTD keeps
scaling smoothly.
"""

from __future__ import annotations

from .base import ExperimentReport, make_grid, timed
from .config import Scale, bnb_spec
from .report import Series, ascii_chart, render_series


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="fig4",
            title="execution time vs n: BTD vs MW (Ta21, Ta23)",
            expectation=("MW deteriorates past ~600 workers (master "
                         "saturation); BTD keeps improving or holds"),
        )
        grid = make_grid(scale)
        for idx, label in ((1, "Ta21"), (3, "Ta23")):
            for proto in ("MW", "BTD"):
                for n in scale.fig45_n:
                    grid.add((label, proto, n), bnb_spec(scale, idx, big=True),
                             trials=scale.scaling_trials,
                             label=f"fig4 {label} {proto} n={n}",
                             protocol=proto, n=n, dmax=10,
                             quantum=scale.bnb_quantum)
        grid.run()
        series = []
        data = {}
        for idx, label in ((1, "Ta21"), (3, "Ta23")):
            for proto in ("MW", "BTD"):
                s = Series(name=f"{proto} {label}")
                for n in scale.fig45_n:
                    ts = grid.stats((label, proto, n))
                    s.add(n, ts.t_avg * 1e3)
                    data[(label, proto, n)] = ts
                series.append(s)
        report.sections.append(render_series(
            series, "n", "execution time (ms)", title="-- Fig 4 --",
            digits=1))
        report.sections.append("")
        report.sections.append(ascii_chart(
            series, x_label="n", y_label="execution time (ms)"))
        # shape checks: MW curve flattens/reverses, BTD's keeps falling,
        # and BTD beats MW at the top scale
        checks = []
        ns = scale.fig45_n
        for idx, label in ((1, "Ta21"), (3, "Ta23")):
            mw_first = data[(label, "MW", ns[0])].t_avg
            mw_last = data[(label, "MW", ns[-1])].t_avg
            btd_first = data[(label, "BTD", ns[0])].t_avg
            btd_last = data[(label, "BTD", ns[-1])].t_avg
            checks.append(
                f"{label}: MW speedup {ns[0]}->{ns[-1]}: "
                f"{mw_first / mw_last:.2f}x | BTD: "
                f"{btd_first / btd_last:.2f}x | BTD faster than MW at "
                f"n={ns[-1]}: {'YES' if btd_last < mw_last else 'no'}")
        report.sections.append("shape checks:\n  " + "\n  ".join(checks))
        report.data = data
        return report

    return timed(build)


__all__ = ["run"]
