"""Plain-text rendering of tables and series for the experiment reports.

Everything the harness prints goes through these helpers so tables look the
same in the terminal, in EXPERIMENTS.md and in the benchmark logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def fmt(value, digits: int = 1) -> str:
    """Human formatting: floats rounded, ints grouped, None blank."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "", digits: int = 1) -> str:
    """Monospace table with right-aligned numeric columns."""
    srows = [[fmt(c, digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """One named (x, y) series of a figure."""

    name: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)


def render_series(series: list[Series], x_label: str, y_label: str,
                  title: str = "", digits: int = 3) -> str:
    """Column-per-series table (the textual form of a figure)."""
    xs = sorted({x for s in series for x in s.xs})
    headers = [x_label] + [s.name for s in series]
    rows = []
    for x in xs:
        row = [x]
        for s in series:
            row.append(s.ys[s.xs.index(x)] if x in s.xs else None)
        rows.append(row)
    head = f"{title}  [y: {y_label}]" if title else f"[y: {y_label}]"
    return render_table(headers, rows, title=head, digits=digits)


def banner(text: str) -> str:
    """A boxed section header."""
    bar = "=" * max(60, len(text) + 4)
    return f"{bar}\n  {text}\n{bar}"


def ascii_chart(series: list[Series], width: int = 60, height: int = 14,
                x_label: str = "x", y_label: str = "y",
                title: str = "") -> str:
    """A rough terminal line chart of one or more (x, y) series.

    Each series gets a marker (``*``, ``o``, ``+``, ...); collisions show
    the marker of the later series. Made for the monotone-ish sweeps the
    experiments produce — a reading aid next to the exact tables, not a
    replacement for them.
    """
    points = [(x, y) for s in series for x, y in zip(s.xs, s.ys)]
    if not points:
        return "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x@%&#"
    for si, s in enumerate(series):
        mark = markers[si % len(markers)]
        for x, y in zip(s.xs, s.ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{markers[i % len(markers)]} {s.name}"
                        for i, s in enumerate(series))
    lines.append(legend)
    for r, row in enumerate(grid):
        label = ""
        if r == 0:
            label = fmt(y_hi, 1)
        elif r == height - 1:
            label = fmt(y_lo, 1)
        lines.append(f"{label:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>11}{fmt(x_lo, 0):<10}{x_label:^{max(0, width - 20)}}"
                 f"{fmt(x_hi, 0):>10}")
    lines.append(f"[y: {y_label}]")
    return "\n".join(lines)


__all__ = ["fmt", "render_table", "Series", "render_series", "banner",
           "ascii_chart"]
