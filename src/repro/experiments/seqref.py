"""Sequential reference times for parallel-efficiency computation.

PE(n) = T_seq / (n * T_n). For UTS the sequential time is exact (tree size
x unit cost); for B&B it is measured by one warm-started sequential solve
per (instance, bound) and memoised for the whole process lifetime.
"""

from __future__ import annotations

from ..apps.base import Application
from ..apps.bnb_app import BnBApplication
from ..apps.uts_app import UTSApplication
from ..sim.errors import SimConfigError
from ..uts.sequential import count_tree

_BNB_CACHE: dict[tuple, tuple[int, int]] = {}
_UTS_CACHE: dict[tuple, int] = {}


def sequential_units(app: Application) -> int:
    """Work units a single worker processes to finish the whole job."""
    if isinstance(app, UTSApplication):
        import dataclasses
        key = dataclasses.astuple(app.params)
        if key not in _UTS_CACHE:
            _UTS_CACHE[key] = count_tree(app.params).nodes
        return _UTS_CACHE[key]
    if isinstance(app, BnBApplication):
        key = (app.instance.name, app.instance.p, app.engine.bound.name,
               app.warm_start)
        if key not in _BNB_CACHE:
            shared = app.make_shared()
            work = app.initial_work()
            nodes = 0
            while not work.is_empty():
                nodes += app.engine.explore(work, shared, 1_000_000).nodes
            _BNB_CACHE[key] = (nodes, shared.value)
        return _BNB_CACHE[key][0]
    raise SimConfigError(f"no sequential reference for {type(app).__name__}")


def sequential_time(app: Application) -> float:
    """T_seq in virtual seconds."""
    return sequential_units(app) * app.unit_cost


def sequential_optimum(app: BnBApplication) -> int:
    """Exact optimum of a B&B application (via the memoised solve)."""
    sequential_units(app)
    key = (app.instance.name, app.instance.p, app.engine.bound.name,
           app.warm_start)
    return _BNB_CACHE[key][1]


__all__ = ["sequential_units", "sequential_time", "sequential_optimum"]
