"""Picklable application specs for the parallel experiment harness.

The table/figure generators used to describe workloads as closures
(``lambda: bnb_app(scale, idx)``).  Closures cannot cross a process
boundary and cannot be hashed into a cache key, so the grid runner works
with *specs* instead: small frozen dataclasses that

* **build** the application on demand (``spec()`` — specs are callable, so
  every existing factory call site keeps working),
* carry their **heavyweight derived inputs** (the Taillard processing-time
  matrix, the NEH warm-start permutation) precomputed in the parent
  process, so pool workers reconstruct applications without redoing that
  work per cell, and
* expose a canonical :meth:`cache_key` used by
  :mod:`repro.experiments.cache` to content-address finished cells.

The derived payload fields are excluded from equality — two specs with the
same parameters are the same workload regardless of whether the payload
has been materialised.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..apps.bnb_app import BNB_UNIT_COST, BnBApplication
from ..apps.synthetic import SyntheticApplication
from ..apps.uts_app import UTS_UNIT_COST, UTSApplication
from ..bnb.flowshop import FlowshopInstance
from ..bnb.neh import neh as neh_heuristic
from ..bnb.taillard import scaled_instance
from ..uts.tree import UTSParams


def is_spec(obj) -> bool:
    """True for callables that also carry a canonical ``cache_key()``."""
    return callable(obj) and hasattr(obj, "cache_key")


@dataclass(frozen=True)
class UTSSpec:
    """An Unbalanced-Tree-Search workload, by generator parameters."""

    params: UTSParams
    unit_cost: float = UTS_UNIT_COST

    def cache_key(self) -> tuple:
        return ("uts", dataclasses.astuple(self.params), self.unit_cost)

    def build(self) -> UTSApplication:
        return UTSApplication(self.params, unit_cost=self.unit_cost)

    def __call__(self) -> UTSApplication:
        return self.build()


@dataclass(frozen=True)
class BnBSpec:
    """A scaled Taillard flow-shop B&B workload, by instance coordinates.

    ``index`` selects Ta(20+index); ``n_jobs`` x ``n_machines`` is the
    truncation (see :func:`repro.bnb.taillard.scaled_instance`).  The
    instance matrix and (when ``warm_start``) the NEH solution are computed
    once at spec construction and shipped with the pickle.
    """

    index: int
    n_jobs: int = 10
    n_machines: int = 10
    bound: str = "lb1"
    warm_start: bool = True
    unit_cost: float = BNB_UNIT_COST
    instance: FlowshopInstance = field(init=False, compare=False, repr=False)
    neh: tuple[int, list[int]] | None = field(init=False, compare=False,
                                              repr=False)

    def __post_init__(self) -> None:
        inst = scaled_instance(self.index, n_jobs=self.n_jobs,
                               n_machines=self.n_machines)
        object.__setattr__(self, "instance", inst)
        object.__setattr__(
            self, "neh", neh_heuristic(inst) if self.warm_start else None)

    def cache_key(self) -> tuple:
        return ("bnb", self.index, self.n_jobs, self.n_machines, self.bound,
                self.warm_start, self.unit_cost)

    def build(self) -> BnBApplication:
        return BnBApplication(self.instance, bound=self.bound,
                              unit_cost=self.unit_cost,
                              warm_start=self.warm_start, neh=self.neh)

    def __call__(self) -> BnBApplication:
        return self.build()


@dataclass(frozen=True)
class SyntheticSpec:
    """A divisible synthetic workload of ``units`` identical work units.

    The cheap oracle workload (total processed must equal ``units``
    exactly), used by tests and by the :mod:`repro.serve` job stream
    where per-job wall time must be small and verifiable.
    """

    units: int
    unit_cost: float = 1e-5

    def cache_key(self) -> tuple:
        return ("synthetic", self.units, self.unit_cost)

    def build(self) -> SyntheticApplication:
        return SyntheticApplication(self.units, unit_cost=self.unit_cost)

    def __call__(self) -> SyntheticApplication:
        return self.build()


AppSpec = UTSSpec | BnBSpec | SyntheticSpec

__all__ = ["AppSpec", "BnBSpec", "SyntheticSpec", "UTSSpec", "is_spec"]
