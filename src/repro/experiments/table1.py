"""Table I — overlay shape study: TD(dmax = 2, 5, 10) vs TR at n = 100, 200.

For one B&B instance (Ta21) and one UTS instance, report
t_avg / sigma / t_max / t_min over repeated trials. Paper findings: time
decreases as dmax grows; larger dmax is more stable (smaller sigma); the
deterministic tree beats the randomized one.
"""

from __future__ import annotations

from .base import ExperimentReport, make_grid, timed
from .config import Scale, bnb_spec, uts_spec
from .report import render_table

OVERLAYS = (("TD", 2), ("TD", 5), ("TD", 10), ("TR", 0))


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="table1",
            title="execution time vs overlay shape (TD dmax=2/5/10, TR)",
            expectation=("time decreases with dmax and stabilises "
                         "(sigma shrinks); TD beats TR"),
        )
        apps = {
            "B&B": bnb_spec(scale, 1),
            "UTS": uts_spec(scale, "main"),
        }
        quanta = {"B&B": scale.bnb_quantum, "UTS": scale.uts_quantum}
        # declare the whole grid, run it in one fan-out
        grid = make_grid(scale)
        for app_name, spec in apps.items():
            for n in scale.table1_n:
                for proto, dmax in OVERLAYS:
                    label = f"TD dmax={dmax}" if proto == "TD" else "TR"
                    grid.add((app_name, n, label), spec,
                             label=f"table1 {app_name} n={n} {label}",
                             protocol=proto, n=n, dmax=max(2, dmax),
                             quantum=quanta[app_name])
        grid.run()
        data = {}
        for app_name in apps:
            rows = []
            for n in scale.table1_n:
                for proto, dmax in OVERLAYS:
                    label = f"TD dmax={dmax}" if proto == "TD" else "TR"
                    ts = grid.stats((app_name, n, label))
                    rows.append([n, label,
                                 ts.t_avg * 1e3, ts.t_std * 1e3,
                                 ts.t_max * 1e3, ts.t_min * 1e3])
                    data[(app_name, n, label)] = ts
            report.sections.append(render_table(
                ["n", "overlay", "t_avg (ms)", "sigma (ms)", "t_max (ms)",
                 "t_min (ms)"],
                rows, title=f"-- {app_name} ({scale.trials} trials) --",
                digits=2))
            report.sections.append("")
        report.data = data
        # shape checks recorded alongside the numbers
        checks = []
        for app_name in apps:
            for n in scale.table1_n:
                t2 = data[(app_name, n, "TD dmax=2")].t_avg
                t10 = data[(app_name, n, "TD dmax=10")].t_avg
                tr = data[(app_name, n, "TR")].t_avg
                checks.append(
                    f"{app_name} n={n}: TD10 faster than TD2: "
                    f"{'YES' if t10 < t2 else 'no'} "
                    f"({t2 / t10:.2f}x); TD10 vs TR: "
                    f"{'YES' if t10 < tr else 'no'} ({tr / t10:.2f}x)")
        report.sections.append("shape checks:\n  " + "\n  ".join(checks))
        return report

    return timed(build)


__all__ = ["run", "OVERLAYS"]
