"""The ``report`` subcommand: one instrumented run -> a full run report.

Usage::

    python -m repro.experiments report --app uts --preset bin_mini \
        --protocol BTD --n 16 --json report.json --trace run.ndjson.gz

Runs one simulation with a tracer and a metrics registry attached and
prints the :class:`repro.obs.report.RunReport` rendering (per-node load
table, steal matrix, utilization/idle breakdown, fault counters, metric
histograms). ``--json`` writes the schema-versioned JSON summary;
``--trace`` exports the structured NDJSON event trace (gzip when the path
ends in ``.gz``).

The run is also content-addressed exactly like a grid cell
(:func:`repro.experiments.cache.cell_key`): when the cell is already in
the on-disk result cache the fresh instrumented result is cross-checked
against the cached one, so a report doubles as a cache-consistency probe.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..obs.export import export_trace
from ..obs.registry import MetricsRegistry
from ..obs.report import build_report
from ..sim.trace import Tracer
from ..uts.params import PRESETS
from .cache import ResultCache, cache_disabled_by_env, cell_key
from .runner import PROTOCOLS, RunConfig, run_instrumented
from .specs import BnBSpec, UTSSpec


def _build_spec(args):
    if args.app == "uts":
        if args.preset not in PRESETS:
            raise SystemExit(f"unknown UTS preset {args.preset!r}; "
                             f"known: {', '.join(sorted(PRESETS))}")
        preset = PRESETS[args.preset]
        if not preset.runnable:
            raise SystemExit(f"preset {args.preset!r} is paper-scale "
                             "(not runnable here)")
        return UTSSpec(preset.params), f"uts/{args.preset}"
    spec = BnBSpec(args.bnb_index, n_jobs=args.bnb_jobs,
                   n_machines=args.bnb_machines, bound=args.bound)
    return spec, (f"bnb/ta{20 + args.bnb_index}"
                  f"@{args.bnb_jobs}x{args.bnb_machines}/{args.bound}")


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", choices=("uts", "bnb"), default="uts")
    parser.add_argument("--preset", default="bin_mini",
                        help="UTS preset (default: bin_mini)")
    parser.add_argument("--bnb-index", type=int, default=1,
                        help="Taillard instance index (Ta(20+i))")
    parser.add_argument("--bnb-jobs", type=int, default=8)
    parser.add_argument("--bnb-machines", type=int, default=8)
    parser.add_argument("--bound", default="lb1")
    parser.add_argument("--protocol", default="BTD", choices=PROTOCOLS)
    parser.add_argument("--n", type=int, default=16)
    parser.add_argument("--quantum", type=int, default=64)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--dmax", type=int, default=10)
    parser.add_argument("--sharing", default="proportional")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the JSON summary here")
    parser.add_argument("--trace", dest="trace_out", default=None,
                        help="export the NDJSON trace here (.gz ok)")
    parser.add_argument("--out", default=None,
                        help="also write the rendered report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout rendering")


def report_main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments report",
        description="Run one instrumented simulation and emit a run report.")
    add_report_arguments(parser)
    args = parser.parse_args(argv)

    spec, app_label = _build_spec(args)
    cfg = RunConfig(protocol=args.protocol, n=args.n, quantum=args.quantum,
                    seed=args.seed, dmax=args.dmax, sharing=args.sharing)

    key = cell_key(cfg, spec)
    cached = None
    if not cache_disabled_by_env():
        cached = ResultCache().get(key)

    tracer = Tracer()
    metrics = MetricsRegistry()
    app = spec.build()
    result, stats = run_instrumented(cfg, app, tracer=tracer,
                                     metrics=metrics)

    extra_meta = {"cell_key": key, "cached_cell": cached is not None}
    if cached is not None and cached != result:
        # the code fingerprint should make this impossible; if it fires,
        # the cache key is missing an input — a bug worth shouting about
        print("WARNING: cached grid cell differs from the fresh run "
              "(cache key under-specified?)", file=sys.stderr)
        extra_meta["cached_cell_mismatch"] = True

    report = build_report(cfg, result, stats, tracer=tracer,
                          metrics=metrics, app=app_label,
                          unit_cost=app.unit_cost, extra_meta=extra_meta)

    text = report.render()
    if not args.quiet:
        print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
            fh.write("\n")
    if args.trace_out:
        export_trace(tracer, args.trace_out,
                     meta={"app": app_label, "protocol": cfg.protocol,
                           "n": cfg.n, "seed": cfg.seed,
                           "cell_key": key})
    return 0


__all__ = ["add_report_arguments", "report_main"]
