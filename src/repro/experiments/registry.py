"""Registry of every reproduced table and figure."""

from __future__ import annotations

from typing import Callable

from ..sim.errors import SimConfigError
from . import (fig1, fig2, fig3, fig4, fig5, faults, granularity, table1,
               table2)
from .base import ExperimentReport
from .config import Scale

EXPERIMENTS: dict[str, Callable[[Scale], ExperimentReport]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "table2": table2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "granularity": granularity.run,
    "faults": faults.run,
}

#: Paper order (plus the reproduction's own regime study), used by --all.
ORDER = ("table1", "fig1", "fig2", "table2", "fig3", "fig4", "fig5",
         "granularity", "faults")


def get_experiment(exp_id: str) -> Callable[[Scale], ExperimentReport]:
    """Resolve an experiment id to its run() function."""
    if exp_id not in EXPERIMENTS:
        raise SimConfigError(
            f"unknown experiment {exp_id!r}; known: {list(ORDER)}")
    return EXPERIMENTS[exp_id]


__all__ = ["EXPERIMENTS", "ORDER", "get_experiment"]
