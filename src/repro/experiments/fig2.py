"""Fig. 2 — subtree-proportional sharing vs steal-half.

Top left: execution time of the ten B&B instances at n = 200, dmax = 10.
Top right: total work requests injected into the network (correlated with
execution time, per the paper). Bottom: UTS execution time as a function
of overlay size for both policies. Paper finding: the overlay-proportional
strategy beats steal-half across the board, on both metrics.
"""

from __future__ import annotations

from .base import ExperimentReport, make_grid, timed
from .config import Scale, bnb_spec, uts_spec
from .report import Series, render_series, render_table

POLICIES = (("proportional", "TD-proportional"), ("half", "TD-steal-half"))


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="fig2",
            title="work-sharing policy: proportional vs steal-half",
            expectation=("proportional beats steal-half on time and on "
                         "total work requests, for B&B and UTS alike; the "
                         "two metrics are correlated"),
        )
        grid = make_grid(scale)
        for idx in range(1, 11):
            for policy, label in POLICIES:
                grid.add(("bnb", idx, policy), bnb_spec(scale, idx),
                         label=f"fig2 Ta{20 + idx} {label}",
                         protocol="TD", n=scale.fig2_n, dmax=10,
                         sharing=policy, quantum=scale.bnb_quantum)
        for policy, label in POLICIES:
            for n in scale.fig2_uts_n:
                grid.add(("uts", policy, n), uts_spec(scale, "fig2"),
                         label=f"fig2-uts {label} n={n}",
                         protocol="TD", n=n, dmax=10,
                         sharing=policy, quantum=scale.uts_quantum)
        grid.run()

        # ---- top: ten B&B instances ----
        rows = []
        wins_t, wins_r = 0, 0
        data = {}
        for idx in range(1, 11):
            name = f"Ta{20 + idx}"
            row = [name]
            per_policy = {}
            for policy, label in POLICIES:
                ts = grid.stats(("bnb", idx, policy))
                steals = sum(r.total_steals
                             for r in ts.results) / len(ts.results)
                per_policy[policy] = (ts.t_avg, steals)
                row.extend([ts.t_avg * 1e3, steals])
            data[name] = per_policy
            wins_t += per_policy["proportional"][0] < per_policy["half"][0]
            wins_r += per_policy["proportional"][1] < per_policy["half"][1]
            rows.append(row)
        report.sections.append(render_table(
            ["instance", "prop t (ms)", "prop reqs", "half t (ms)",
             "half reqs"],
            rows,
            title=f"-- Fig 2 top: B&B at n={scale.fig2_n}, dmax=10 --",
            digits=1))
        report.sections.append(
            f"proportional wins on time {wins_t}/10, on requests {wins_r}/10")
        report.sections.append("")

        # ---- bottom: UTS vs overlay size ----
        series = []
        for policy, label in POLICIES:
            s = Series(name=label)
            for n in scale.fig2_uts_n:
                ts = grid.stats(("uts", policy, n))
                s.add(n, ts.t_avg * 1e3)
            series.append(s)
        report.sections.append(render_series(
            series, "n", "execution time (ms)",
            title="-- Fig 2 bottom: UTS --", digits=2))
        report.data = {"bnb": data, "uts": series}
        return report

    return timed(build)


__all__ = ["run", "POLICIES"]
