"""Reproduction harness: one module per table/figure of the paper.

``python -m repro.experiments --all --scale quick`` regenerates everything;
see :mod:`repro.experiments.registry` for the experiment index and
DESIGN.md §4 for what each one shows.
"""

from .base import ExperimentReport
from .config import SCALES, Scale, get_scale
from .registry import EXPERIMENTS, ORDER, get_experiment
from .runner import (PROTOCOLS, ExperimentResult, RunConfig, TrialStats,
                     build_workers, run_once, run_trials)

__all__ = [
    "ExperimentReport", "Scale", "SCALES", "get_scale", "EXPERIMENTS",
    "ORDER", "get_experiment", "RunConfig", "ExperimentResult", "TrialStats",
    "PROTOCOLS", "build_workers", "run_once", "run_trials",
]
