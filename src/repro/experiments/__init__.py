"""Reproduction harness: one module per table/figure of the paper.

``python -m repro.experiments --all --scale quick`` regenerates everything;
``--jobs N`` fans the grids out over N worker processes and finished cells
are memoised on disk (``--no-cache`` to disable).  See
:mod:`repro.experiments.registry` for the experiment index,
:mod:`repro.experiments.parallel` for the grid runner and DESIGN.md §4 for
what each experiment shows.
"""

from .base import ExperimentReport
from .cache import ResultCache
from .config import SCALES, Scale, get_scale
from .parallel import ExperimentGrid, run_cells
from .registry import EXPERIMENTS, ORDER, get_experiment
from .runner import (PROTOCOLS, ExperimentResult, RunConfig, TrialStats,
                     build_workers, cell_configs, run_once, run_trials)
from .specs import BnBSpec, UTSSpec

__all__ = [
    "ExperimentReport", "Scale", "SCALES", "get_scale", "EXPERIMENTS",
    "ORDER", "get_experiment", "RunConfig", "ExperimentResult", "TrialStats",
    "PROTOCOLS", "build_workers", "cell_configs", "run_once", "run_trials",
    "ExperimentGrid", "ResultCache", "run_cells", "BnBSpec", "UTSSpec",
]
