"""Granularity regime study — the reproduction's own addition.

Not a figure from the paper: this experiment quantifies the *regime
boundary* that determines whether the paper's headline BTD-over-RWS
ordering (Fig. 5) is observable at a given work granularity. The per-worker
work of the paper's runs (minutes to hours per core) cannot be reached by a
Python-scale instance, so we sweep the number of workers over a fixed
instance: small n = paper-like granularity, large n = dust-grain regime.

Expected shape (recorded in EXPERIMENTS.md): at high per-worker work BTD
matches RWS at near-perfect efficiency; as granularity falls below a few
thousand work units per worker, tree-mediated distribution starts paying a
fixed per-family feed rate that random global probing does not, and the
ordering inverts. This is the mechanism behind the Fig. 5 deviation.
"""

from __future__ import annotations

from .base import ExperimentReport, make_grid, timed
from .config import Scale, uts_spec
from .report import render_table
from .seqref import sequential_time

SWEEP_N = (16, 32, 64, 128, 256, 512)


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="granularity",
            title="BTD vs RWS ordering as a function of work granularity",
            expectation=("(reproduction addition) BTD == RWS at paper-like "
                         "granularity; RWS gains as per-worker work shrinks "
                         "below the regime the paper operates in"),
        )
        spec = uts_spec(scale, "main")
        app = spec()
        t_seq = sequential_time(app)
        total_units = round(t_seq / app.unit_cost)
        ns = [n for n in SWEEP_N if n <= max(SWEEP_N)]
        if scale.name == "quick":
            ns = (8, 16, 32, 64)
        grid = make_grid(scale)
        for n in ns:
            for proto in ("BTD", "RWS"):
                grid.add((proto, n), spec, trials=scale.scaling_trials,
                         label=f"granularity {proto} n={n}",
                         protocol=proto, n=n, dmax=10,
                         quantum=scale.uts_quantum)
        grid.run()
        rows = []
        data = {}
        for n in ns:
            times = {}
            for proto in ("BTD", "RWS"):
                ts = grid.stats((proto, n))
                times[proto] = ts.t_avg
                data[(proto, n)] = ts
            rows.append([
                n, total_units // n,
                times["BTD"] * 1e3, 100 * t_seq / (n * times["BTD"]),
                times["RWS"] * 1e3, 100 * t_seq / (n * times["RWS"]),
                times["RWS"] / times["BTD"],
            ])
        report.sections.append(render_table(
            ["n", "units/worker", "BTD (ms)", "BTD PE%", "RWS (ms)",
             "RWS PE%", "RWS/BTD"],
            rows, title=f"-- granularity sweep over {app.name} --",
            digits=2))
        ratios = [r[-1] for r in rows]
        report.sections.append(
            f"RWS/BTD ratio from {ratios[0]:.2f} (coarse) to "
            f"{ratios[-1]:.2f} (fine): the ordering is a function of "
            "granularity, not of the protocols alone")
        report.data = {"rows": rows, "runs": data, "t_seq": t_seq}
        return report

    return timed(build)


__all__ = ["run", "SWEEP_N"]
