"""Table II — TD and BTD vs the Adaptive Hierarchical Master-Worker.

Execution times of the ten instances at n = 200. Paper findings: TD beats
AHMW on 7/10 instances, BTD on 9/10; aggregated over all instances BTD is
~10x (TD ~5x) faster than AHMW; BTD consistently improves on TD (the
bridges do their job).
"""

from __future__ import annotations

from .base import ExperimentReport, make_grid, timed
from .config import Scale, bnb_spec
from .report import render_table

PROTOCOLS = ("TD", "BTD", "AHMW")


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="table2",
            title=f"TD / BTD vs AHMW on ten instances at n={scale.table2_n}",
            expectation=("TD wins most instances, BTD nearly all; "
                         "aggregate: BTD ~10x and TD ~5x faster than AHMW; "
                         "BTD < TD"),
        )
        grid = make_grid(scale)
        for idx in range(1, 11):
            for proto in PROTOCOLS:
                grid.add((idx, proto), bnb_spec(scale, idx),
                         label=f"table2 Ta{20 + idx} {proto}",
                         protocol=proto, n=scale.table2_n, dmax=10,
                         quantum=scale.bnb_quantum)
        grid.run()
        rows = []
        totals = {p: 0.0 for p in PROTOCOLS}
        wins = {p: 0 for p in ("TD", "BTD")}
        data = {}
        for idx in range(1, 11):
            name = f"Ta{20 + idx}"
            times = {p: grid.stats((idx, p)).t_avg for p in PROTOCOLS}
            for proto in PROTOCOLS:
                totals[proto] += times[proto]
            data[name] = times
            for p in ("TD", "BTD"):
                wins[p] += times[p] < times["AHMW"]
            rows.append([name] + [times[p] * 1e3 for p in PROTOCOLS]
                        + [times["AHMW"] / times["BTD"]])
        rows.append(["TOTAL"] + [totals[p] * 1e3 for p in PROTOCOLS]
                    + [totals["AHMW"] / totals["BTD"]])
        report.sections.append(render_table(
            ["instance", "TD (ms)", "BTD (ms)", "AHMW (ms)", "AHMW/BTD"],
            rows, title=f"-- Table II ({scale.trials} trials each) --",
            digits=1))
        report.sections.append(
            f"TD beats AHMW on {wins['TD']}/10 instances, "
            f"BTD on {wins['BTD']}/10; aggregate speedup vs AHMW: "
            f"BTD {totals['AHMW'] / totals['BTD']:.1f}x, "
            f"TD {totals['AHMW'] / totals['TD']:.1f}x; "
            f"BTD vs TD aggregate: {totals['TD'] / totals['BTD']:.2f}x")
        report.data = data
        return report

    return timed(build)


__all__ = ["run", "PROTOCOLS"]
