"""Fig. 3 — BTD vs Master-Worker vs Random Work Stealing (B&B, n = 200).

Paper findings at this *low* scale: BTD wins the majority of the ten
instances; MW is surprisingly competitive (it even beats RWS overall) —
the centralized pool works fine when the master is not yet saturated.
"""

from __future__ import annotations

from .base import ExperimentReport, make_grid, timed
from .config import Scale, bnb_spec
from .report import render_table

PROTOCOLS = ("BTD", "RWS", "MW")


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="fig3",
            title=f"BTD vs RWS vs MW on ten instances at n={scale.fig3_n}",
            expectation=("BTD wins the majority of instances; MW is very "
                         "competitive at this scale (centralisation not yet "
                         "saturated); relative order varies per instance"),
        )
        grid = make_grid(scale)
        for idx in range(1, 11):
            for proto in PROTOCOLS:
                grid.add((idx, proto), bnb_spec(scale, idx),
                         label=f"fig3 Ta{20 + idx} {proto}",
                         protocol=proto, n=scale.fig3_n, dmax=10,
                         quantum=scale.bnb_quantum)
        grid.run()
        rows = []
        totals = {p: 0.0 for p in PROTOCOLS}
        btd_wins = 0
        data = {}
        for idx in range(1, 11):
            name = f"Ta{20 + idx}"
            times = {}
            red = 0
            for proto in PROTOCOLS:
                ts = grid.stats((idx, proto))
                times[proto] = ts.t_avg
                totals[proto] += ts.t_avg
                if proto == "MW":
                    red = sum(r.redundancy for r in ts.results) // len(
                        ts.results)
            data[name] = times
            btd_wins += times["BTD"] <= min(times.values())
            rows.append([name] + [times[p] * 1e3 for p in PROTOCOLS] + [red])
        rows.append(["TOTAL"] + [totals[p] * 1e3 for p in PROTOCOLS] + [None])
        report.sections.append(render_table(
            ["instance", "BTD (ms)", "RWS (ms)", "MW (ms)",
             "MW redundancy (positions)"],
            rows, title="-- Fig 3 --", digits=1))
        report.sections.append(
            f"BTD wins {btd_wins}/10 instances; aggregate improvement of "
            f"BTD: {(1 - totals['BTD'] / totals['MW']) * 100:.0f}% vs MW, "
            f"{(1 - totals['BTD'] / totals['RWS']) * 100:.0f}% vs RWS")
        report.data = data
        return report

    return timed(build)


__all__ = ["run", "PROTOCOLS"]
