"""Content-addressed disk cache for finished experiment cells.

Every grid cell — one ``(RunConfig, trial)`` simulation — is memoised on
disk under a SHA-256 key of everything that determines its outcome:

* the full :class:`~repro.experiments.runner.RunConfig` (including a
  structural description of the network model and the OCLB tunables),
* the application spec's canonical :meth:`cache_key`,
* a **code fingerprint**: a digest of every simulation-relevant source
  file of the ``repro`` package.  Editing the simulator, a protocol, a
  bound or an application invalidates the cache wholesale; editing docs,
  reports or the figure generators does not — re-running a table after an
  unrelated change is then pure cache hits.

The simulator is bit-deterministic per seed, so a hit is exactly the
result a fresh run would produce.  Entries are single pickle files in a
fan-out directory (``<root>/<key[:2]>/<key>.pkl``), written atomically so
concurrent grids can share one cache directory.  Unreadable or stale
entries are treated as misses and rewritten.

The cache root is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro/experiments``; ``$REPRO_NO_CACHE=1`` (or the CLI's
``--no-cache``) disables caching entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from ..sim.network import NetworkModel
from .runner import ExperimentResult, RunConfig

#: Bump to invalidate every existing cache entry (schema change, or a
#: semantic change the code fingerprint cannot see, e.g. a data file).
CACHE_EPOCH = 1

#: Package subtrees whose source participates in the code fingerprint —
#: everything a simulation outcome can depend on.  ``experiments`` is
#: deliberately absent (report/generator edits must not invalidate) except
#: for the files that define the run semantics themselves.
_FINGERPRINT_SUBTREES = ("sim", "core", "overlay", "work", "uts", "bnb",
                        "apps", "baselines")
_FINGERPRINT_FILES = ("experiments/runner.py", "experiments/specs.py")

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the simulation-relevant ``repro`` sources (memoised)."""
    global _code_fingerprint
    if _code_fingerprint is None:
        pkg = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        files: list[Path] = [pkg / rel for rel in _FINGERPRINT_FILES]
        for sub in _FINGERPRINT_SUBTREES:
            files.extend((pkg / sub).rglob("*.py"))
        for f in sorted(files):
            h.update(str(f.relative_to(pkg)).encode())
            h.update(f.read_bytes())
        _code_fingerprint = h.hexdigest()
    return _code_fingerprint


def cache_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "experiments"


def cache_disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "").strip() not in ("", "0")


def _network_desc(cfg: RunConfig) -> tuple:
    net = cfg.network
    if net is None:
        # run_once substitutes grid5000(cfg.handler_cost, cfg.jitter);
        # both knobs are already first-class key fields.
        return ("grid5000-default",)
    if isinstance(net, NetworkModel):
        return ("custom",
                tuple((c.name, c.cores) for c in net.clusters),
                net.lat_intra, net.lat_inter, net.bandwidth,
                net.handler_cost, net.jitter, net.c2_threshold)
    raise TypeError(f"cannot describe network {type(net).__name__}")


def _oclb_desc(cfg: RunConfig) -> tuple:
    if cfg.oclb is None:
        return ("default",)
    return tuple(getattr(cfg.oclb, f.name)
                 for f in dataclasses.fields(cfg.oclb))


def _faults_desc(cfg: RunConfig) -> tuple:
    if cfg.faults is None or cfg.faults.is_null():
        # a null plan runs the exact clean code path; share its entries
        return ("clean",)
    f = cfg.faults
    return (f.crashes, f.loss, f.dup, f.blackouts, f.partitions,
            f.slowdowns, f.gray_links)


def cell_key(cfg: RunConfig, spec) -> str:
    """The content hash addressing one ``(RunConfig, app spec)`` cell."""
    payload = (
        CACHE_EPOCH,
        code_fingerprint(),
        spec.cache_key(),
        cfg.protocol, cfg.n, cfg.dmax, cfg.sharing, cfg.quantum, cfg.seed,
        cfg.handler_cost, cfg.jitter, cfg.mw_update_every, cfg.max_events,
        cfg.speed_spread, cfg.speed_placement, cfg.fuse,
        cfg.ack_timeout, cfg.ack_max_backoff, cfg.breaker_threshold,
        _network_desc(cfg), _oclb_desc(cfg), _faults_desc(cfg),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


class ResultCache:
    """Pickle-per-cell cache with hit/miss counters (see module docstring)."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else cache_root()
        self.hits = 0
        self.misses = 0
        # best-effort: an unwritable cache dir degrades to "no cache",
        # it never fails an experiment run
        self._broken = False

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[ExperimentResult]:
        try:
            with open(self._path(key), "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(result, ExperimentResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: ExperimentResult) -> None:
        if self._broken:
            return
        path = self._path(key)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            self._broken = True
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        except BaseException:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise


__all__ = ["CACHE_EPOCH", "ResultCache", "cache_disabled_by_env",
           "cache_root", "cell_key", "code_fingerprint"]
