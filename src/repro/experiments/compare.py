"""Ad-hoc protocol comparisons: the research tool behind the fixed figures.

``python -m repro.experiments.compare`` runs any set of protocols over any
workload/worker-count grid and prints time, efficiency and traffic side by
side::

    python -m repro.experiments.compare --protocols BTD RWS MW \\
        --app bnb:3 --n 32 128 --trials 2
    python -m repro.experiments.compare --protocols TD BTD LIFELINE \\
        --app uts:bin_small --n 64 --quantum 256 --jobs 4

Workload specs: ``uts:<preset>`` (see ``repro.uts.PRESETS``) or
``bnb:<k>[:jobs[:machines]]`` for the scaled Taillard instance Ta(20+k),
NEH warm-started.  The whole grid fans out over ``--jobs`` worker
processes (default ``$REPRO_JOBS``), with finished cells memoised on disk
unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
from typing import Callable, Optional

from ..apps.base import Application
from ..sim.errors import SimConfigError
from ..uts.params import get_preset
from .parallel import ExperimentGrid
from .report import render_table
from .runner import PROTOCOLS
from .seqref import sequential_time
from .specs import AppSpec, BnBSpec, UTSSpec


def parse_app(spec: str) -> AppSpec:
    """Turn an ``uts:...`` / ``bnb:...`` spec string into an app spec.

    The returned spec is callable (building the application), picklable
    (the grid runner ships it to pool workers) and content-addressable
    (the result cache keys on it).
    """
    kind, _, rest = spec.partition(":")
    if kind == "uts":
        preset = get_preset(rest or "bin_small")
        return UTSSpec(preset.params)
    if kind == "bnb":
        parts = [p for p in rest.split(":") if p]
        if not parts:
            raise SimConfigError("bnb spec needs an instance index, "
                                 "e.g. bnb:1 for Ta21")
        idx = int(parts[0])
        jobs = int(parts[1]) if len(parts) > 1 else 10
        machines = int(parts[2]) if len(parts) > 2 else 10
        return BnBSpec(idx, n_jobs=jobs, n_machines=machines, warm_start=True)
    raise SimConfigError(f"unknown app spec {spec!r} (uts:<preset> | "
                         "bnb:<k>[:jobs[:machines]])")


def compare(protocols: list[str], app_factory: Callable[[], Application],
            ns: list[int], quantum: int, trials: int, seed: int,
            dmax: int = 10, jobs: Optional[int] = None,
            use_cache: Optional[bool] = None,
            app: Optional[Application] = None) -> list[list]:
    """Run the grid; returns table rows (also the CLI's output).

    ``app`` optionally passes an already-built application (reused for the
    sequential reference instead of building a throwaway one).
    """
    if app is None:
        app = app_factory()
    t_seq = sequential_time(app)
    grid = ExperimentGrid(seed=seed, default_trials=trials, jobs=jobs,
                          use_cache=use_cache)
    for n in ns:
        for proto in protocols:
            grid.add((n, proto), app_factory, protocol=proto, n=n, dmax=dmax,
                     quantum=quantum)
    grid.run()
    rows = []
    for n in ns:
        for proto in protocols:
            ts = grid.stats((n, proto))
            r0 = ts.results[0]
            optimum = r0.optimum
            rows.append([
                n, proto, ts.t_avg * 1e3, ts.t_std * 1e3,
                100 * t_seq / (n * ts.t_avg),
                sum(r.total_msgs for r in ts.results) // len(ts.results),
                sum(r.total_steals for r in ts.results) // len(ts.results),
                optimum,
            ])
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.compare",
        description="Head-to-head protocol comparison on one workload.")
    parser.add_argument("--protocols", nargs="+", default=["BTD", "RWS"],
                        choices=list(PROTOCOLS))
    parser.add_argument("--app", default="uts:bin_tiny",
                        help="uts:<preset> or bnb:<k>[:jobs[:machines]]")
    parser.add_argument("--n", nargs="+", type=int, default=[64])
    parser.add_argument("--quantum", type=int, default=64)
    parser.add_argument("--dmax", type=int, default=10)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the grid (default: "
                             "$REPRO_JOBS or 1; 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    args = parser.parse_args(argv)

    spec = parse_app(args.app)
    app = spec()   # built once: names the table AND prices the seq reference
    rows = compare(args.protocols, spec, args.n, args.quantum,
                   args.trials, args.seed, dmax=args.dmax, jobs=args.jobs,
                   use_cache=False if args.no_cache else None, app=app)
    print(render_table(
        ["n", "protocol", "t_avg (ms)", "sigma (ms)", "PE %", "messages",
         "work requests", "optimum"],
        rows, title=f"{app.describe()} — {args.trials} trial(s)",
        digits=2))
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
