"""Ad-hoc protocol comparisons: the research tool behind the fixed figures.

``python -m repro.experiments.compare`` runs any set of protocols over any
workload/worker-count grid and prints time, efficiency and traffic side by
side::

    python -m repro.experiments.compare --protocols BTD RWS MW \\
        --app bnb:3 --n 32 128 --trials 2
    python -m repro.experiments.compare --protocols TD BTD LIFELINE \\
        --app uts:bin_small --n 64 --quantum 256

Workload specs: ``uts:<preset>`` (see ``repro.uts.PRESETS``) or
``bnb:<k>[:jobs[:machines]]`` for the scaled Taillard instance Ta(20+k),
NEH warm-started.
"""

from __future__ import annotations

import argparse
from typing import Callable

from ..apps.base import Application
from ..apps.bnb_app import BnBApplication
from ..apps.uts_app import UTSApplication
from ..bnb.taillard import scaled_instance
from ..sim.errors import SimConfigError
from ..uts.params import get_preset
from .report import render_table
from .runner import PROTOCOLS, RunConfig, run_trials
from .seqref import sequential_time


def parse_app(spec: str) -> Callable[[], Application]:
    """Turn an ``uts:...`` / ``bnb:...`` spec into an application factory."""
    kind, _, rest = spec.partition(":")
    if kind == "uts":
        preset = get_preset(rest or "bin_small")
        return lambda: UTSApplication(preset.params)
    if kind == "bnb":
        parts = [p for p in rest.split(":") if p]
        if not parts:
            raise SimConfigError("bnb spec needs an instance index, "
                                 "e.g. bnb:1 for Ta21")
        idx = int(parts[0])
        jobs = int(parts[1]) if len(parts) > 1 else 10
        machines = int(parts[2]) if len(parts) > 2 else 10
        inst = scaled_instance(idx, n_jobs=jobs, n_machines=machines)
        return lambda: BnBApplication(inst, warm_start=True)
    raise SimConfigError(f"unknown app spec {spec!r} (uts:<preset> | "
                         "bnb:<k>[:jobs[:machines]])")


def compare(protocols: list[str], app_factory: Callable[[], Application],
            ns: list[int], quantum: int, trials: int, seed: int,
            dmax: int = 10) -> list[list]:
    """Run the grid; returns table rows (also the CLI's output)."""
    t_seq = sequential_time(app_factory())
    rows = []
    for n in ns:
        for proto in protocols:
            ts = run_trials(RunConfig(protocol=proto, n=n, dmax=dmax,
                                      quantum=quantum, seed=seed),
                            app_factory, trials)
            r0 = ts.results[0]
            optimum = r0.optimum
            rows.append([
                n, proto, ts.t_avg * 1e3, ts.t_std * 1e3,
                100 * t_seq / (n * ts.t_avg),
                sum(r.total_msgs for r in ts.results) // len(ts.results),
                sum(r.total_steals for r in ts.results) // len(ts.results),
                optimum,
            ])
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.compare",
        description="Head-to-head protocol comparison on one workload.")
    parser.add_argument("--protocols", nargs="+", default=["BTD", "RWS"],
                        choices=list(PROTOCOLS))
    parser.add_argument("--app", default="uts:bin_tiny",
                        help="uts:<preset> or bnb:<k>[:jobs[:machines]]")
    parser.add_argument("--n", nargs="+", type=int, default=[64])
    parser.add_argument("--quantum", type=int, default=64)
    parser.add_argument("--dmax", type=int, default=10)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    factory = parse_app(args.app)
    rows = compare(args.protocols, factory, args.n, args.quantum,
                   args.trials, args.seed, dmax=args.dmax)
    print(render_table(
        ["n", "protocol", "t_avg (ms)", "sigma (ms)", "PE %", "messages",
         "work requests", "optimum"],
        rows, title=f"{factory().describe()} — {args.trials} trial(s)",
        digits=2))
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
