"""Experiment scales: how big a reproduction run should be.

The paper's workloads need hundreds of CPU-days; a scale maps each
experiment onto instances a Python simulation can traverse while keeping
the qualitative regime (DESIGN.md §2). Four scales:

* ``micro``   — a few seconds total; structural tests of the harness.
* ``quick``   — minutes; used by CI and the pytest benchmarks.
* ``default`` — ~1-2 hours; the sizes EXPERIMENTS.md was produced with.
* ``full``    — several hours; default sizes with the paper's 10 trials
  and the paper's full worker counts everywhere.

All B&B experiment runs (and their sequential references) are NEH
warm-started — on the paper's day-long instances the from-scratch bound
converges almost immediately, and warm-starting reproduces that regime on
scaled instances (see :mod:`repro.bnb.neh`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.bnb_app import BnBApplication
from ..apps.uts_app import UTSApplication
from ..bnb.taillard import scaled_instance
from ..sim.errors import SimConfigError
from ..uts.params import PRESETS
from .specs import BnBSpec, UTSSpec


@dataclass(frozen=True)
class Scale:
    """Sizing knobs of one reproduction scale."""

    name: str
    trials: int
    #: trials for the big scaling sweeps (figs 4, 5) — they dominate wall
    #: time, and the simulator is deterministic per seed anyway
    scaling_trials: int = 1
    # B&B instance shapes: (jobs, machines); "big" is for the scaling
    # figures (4, 5) that go to 1000 workers, "std" for everything else
    bnb_std: tuple[int, int] = (10, 10)
    bnb_big: tuple[int, int] = (12, 10)
    uts_main: str = "bin_large"     # Table I / Fig 5 bottom
    uts_fig2: str = "bin_small"     # Fig 2 bottom
    bnb_quantum: int = 8
    uts_quantum: int = 256
    # worker counts per experiment (paper values at default/full)
    table1_n: tuple[int, ...] = (100, 200)
    fig1_n: int = 500
    fig2_n: int = 200
    fig2_uts_n: tuple[int, ...] = (16, 32, 48, 64, 80, 96, 112, 128)
    table2_n: int = 200
    fig3_n: int = 200
    fig45_n: tuple[int, ...] = (200, 600, 1000)
    fig5_uts_n: tuple[int, ...] = (128, 256, 512)
    seed: int = 42


SCALES: dict[str, Scale] = {
    "micro": Scale(
        name="micro", trials=1, scaling_trials=1,
        bnb_std=(7, 5), bnb_big=(8, 5),
        uts_main="bin_mini", uts_fig2="bin_mini",
        bnb_quantum=16, uts_quantum=64,
        table1_n=(6, 12),
        fig1_n=16,
        fig2_n=10, fig2_uts_n=(4, 8),
        table2_n=12, fig3_n=12,
        fig45_n=(8, 16),
        fig5_uts_n=(4, 8),
    ),
    "quick": Scale(
        name="quick", trials=2, scaling_trials=1,
        bnb_std=(9, 8), bnb_big=(10, 8),
        uts_main="bin_tiny", uts_fig2="bin_tiny",
        table1_n=(24, 48),
        fig1_n=60,
        fig2_n=32, fig2_uts_n=(8, 16, 24, 32),
        table2_n=32, fig3_n=32,
        fig45_n=(32, 64, 128),
        fig5_uts_n=(16, 32, 64),
    ),
    "default": Scale(name="default", trials=3, scaling_trials=1),
    "full": Scale(
        name="full", trials=10, scaling_trials=3,
        fig45_n=(200, 400, 600, 800, 1000),
        fig5_uts_n=(128, 192, 256, 320, 384, 448, 512),
    ),
}


def get_scale(name: str) -> Scale:
    """Look a scale up by name (micro / quick / default / full)."""
    if name not in SCALES:
        raise SimConfigError(f"unknown scale {name!r}; known: {sorted(SCALES)}")
    return SCALES[name]


#: The ten Flowshop instances of the paper (Ta21..Ta30), scaled.
def bnb_instances(scale: Scale, big: bool = False):
    jobs, machines = scale.bnb_big if big else scale.bnb_std
    return [scaled_instance(k, n_jobs=jobs, n_machines=machines)
            for k in range(1, 11)]


def bnb_spec(scale: Scale, index: int, big: bool = False) -> BnBSpec:
    """Picklable spec for Ta(20+index) at this scale (NEH warm-started)."""
    jobs, machines = scale.bnb_big if big else scale.bnb_std
    return BnBSpec(index, n_jobs=jobs, n_machines=machines, warm_start=True)


def uts_spec(scale: Scale, which: str = "main") -> UTSSpec:
    """Picklable spec for the scale's UTS instance (main or fig2)."""
    name = scale.uts_main if which == "main" else scale.uts_fig2
    return UTSSpec(PRESETS[name].params)


def bnb_app(scale: Scale, index: int, big: bool = False) -> BnBApplication:
    """Application for Ta(20+index) at this scale (NEH warm-started)."""
    return bnb_spec(scale, index, big=big).build()


def uts_app(scale: Scale, which: str = "main") -> UTSApplication:
    return uts_spec(scale, which).build()


__all__ = ["Scale", "SCALES", "get_scale", "bnb_instances", "bnb_app",
           "bnb_spec", "uts_app", "uts_spec"]
