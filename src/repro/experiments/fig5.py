"""Fig. 5 — scalability of BTD vs RWS: time and parallel efficiency.

Top: B&B on Ta21 and Ta23 for n = 200..1000. Bottom: UTS for n = 128..512.
Paper findings: RWS stays competitive at low scale but its parallel
efficiency collapses as n grows (blind random stealing), while BTD's
efficiency degrades only marginally; at the top scales BTD's advantage is
substantial for both applications.
"""

from __future__ import annotations

from .base import ExperimentReport, make_grid, timed
from .config import Scale, bnb_spec, uts_spec
from .report import Series, ascii_chart, render_series
from .seqref import sequential_time

SWEEPS = (("B&B Ta21", "fig45_n", "bnb_quantum"),
          ("B&B Ta23", "fig45_n", "bnb_quantum"),
          ("UTS", "fig5_uts_n", "uts_quantum"))


def run(scale: Scale) -> ExperimentReport:
    def build() -> ExperimentReport:
        report = ExperimentReport(
            exp_id="fig5",
            title="scalability of BTD vs RWS (time + parallel efficiency)",
            expectation=("RWS efficiency collapses at scale, BTD degrades "
                         "marginally; holds for both B&B and UTS"),
        )
        specs = {"B&B Ta21": bnb_spec(scale, 1, big=True),
                 "B&B Ta23": bnb_spec(scale, 3, big=True),
                 "UTS": uts_spec(scale, "main")}
        sweep_ns = {"B&B Ta21": scale.fig45_n, "B&B Ta23": scale.fig45_n,
                    "UTS": scale.fig5_uts_n}
        quanta = {"B&B Ta21": scale.bnb_quantum,
                  "B&B Ta23": scale.bnb_quantum,
                  "UTS": scale.uts_quantum}
        grid = make_grid(scale)
        for label, spec in specs.items():
            for proto in ("BTD", "RWS"):
                for n in sweep_ns[label]:
                    grid.add((label, proto, n), spec,
                             trials=scale.scaling_trials,
                             label=f"fig5 {label} {proto} n={n}",
                             protocol=proto, n=n, dmax=10,
                             quantum=quanta[label])
        grid.run()
        data = {}
        t_seqs = {}
        for label, spec in specs.items():
            t_seq = sequential_time(spec())
            t_seqs[label] = t_seq
            t_series, pe_series = [], []
            for proto in ("BTD", "RWS"):
                ts_ser = Series(name=f"{proto} time")
                pe_ser = Series(name=f"{proto} PE%")
                for n in sweep_ns[label]:
                    ts = grid.stats((label, proto, n))
                    ts_ser.add(n, ts.t_avg * 1e3)
                    pe_ser.add(n, 100.0 * t_seq / (n * ts.t_avg))
                    data[(label, proto, n)] = ts
                t_series.append(ts_ser)
                pe_series.append(pe_ser)
            report.sections.append(render_series(
                t_series + pe_series, "n", "time (ms) | efficiency (%)",
                title=f"-- Fig 5 {label} (T_seq = {t_seq * 1e3:.0f} ms) --",
                digits=1))
            report.sections.append(ascii_chart(
                pe_series, x_label="n", y_label=f"{label} efficiency (%)"))
            report.sections.append("")
        report.data = {"runs": data,
                       "t_seq": {"Ta21": t_seqs["B&B Ta21"],
                                 "Ta23": t_seqs["B&B Ta23"],
                                 "UTS": t_seqs["UTS"]}}
        # shape checks at the extreme scales
        checks = []
        for label in specs:
            hi = sweep_ns[label][-1]
            btd = data[(label, "BTD", hi)].t_avg
            rws = data[(label, "RWS", hi)].t_avg
            checks.append(f"{label} at n={hi}: BTD faster than RWS: "
                          f"{'YES' if btd < rws else 'no'} "
                          f"(RWS/BTD = {rws / btd:.2f}x)")
        report.sections.append("shape checks:\n  " + "\n  ".join(checks))
        return report

    return timed(build)


__all__ = ["run"]
