"""The ``live`` subcommand: one wall-clock multi-process run.

Usage::

    python -m repro.experiments live --app uts --preset bin_tiny \
        --protocol BTD --n 4
    python -m repro.experiments live --n 4 --fault-tolerance \
        --kill 2@500u --expect-conserved --json report.json

Spawns N OS worker processes under the :mod:`repro.runtime` supervisor —
the same protocol code the simulator executes, over real sockets — and
prints the same :class:`repro.obs.report.RunReport` rendering the
``report`` subcommand produces for simulated runs (``--json`` emits the
identical schema, with ``meta.live: true``).

Fault injection is real: ``--kill PID@0.5s`` SIGKILLs a worker half a
second after start, ``--kill PID@500u`` once its write-ahead spool shows
500 processed units (deterministic enough for CI), and
``--partition 2,3@0.2-1.2s`` cuts workers 2 and 3 off from the rest of
the fleet for a wall-clock window (the supervisor's router drops every
``msg`` frame crossing the cut) before healing.  With
``--expect-conserved`` the exit status asserts the exact work-conservation
identity over survivors + spools; with ``--compare-sim`` the run is
cross-checked against the discrete-event simulator (equal UTS node
counts, equal B&B optima).

``--p2p`` switches the data plane to direct worker<->worker connections
(the supervisor becomes control plane only), which unlocks elastic
membership: ``--join 4@1.5s`` spawns worker 4 a second and a half into
the run (the supervisor assigns its overlay position and announces it),
``--leave 2@1.5s`` orders worker 2 to drain its pool to its parent and
depart gracefully.  Both compose with ``--kill`` and ``--partition``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Optional

from ..obs.report import build_report
from ..uts.params import PRESETS
from .runner import PROTOCOLS

#: Protocols the live backend supports (MW/AHMW/LIFELINE would run, but
#: only these are cross-validated; keep the CLI honest).
LIVE_PROTOCOLS = tuple(p for p in PROTOCOLS
                       if p in ("TD", "BTD", "TR", "BTR", "RWS"))

_KILL_RE = re.compile(r"^(\d+)@(\d+(?:\.\d+)?)(s|u)$")
_PART_RE = re.compile(r"^(\d+(?:,\d+)*)@(\d+(?:\.\d+)?)-(\d+(?:\.\d+)?)s$")
_MEMBER_RE = re.compile(r"^(\d+)@(\d+(?:\.\d+)?)s$")


def parse_kill(text: str) -> dict:
    """``PID@<delay>s`` (wall seconds) or ``PID@<units>u`` (spooled units)."""
    m = _KILL_RE.match(text)
    if not m:
        raise argparse.ArgumentTypeError(
            f"bad --kill spec {text!r} (want e.g. 2@0.5s or 2@500u)")
    pid, value, unit = int(m.group(1)), m.group(2), m.group(3)
    if unit == "s":
        return {"pid": pid, "after_s": float(value)}
    return {"pid": pid, "after_units": int(float(value))}


def parse_partition(text: str) -> dict:
    """``PIDS@<start>-<end>s``: isolate PIDS for that wall-clock window.

    ``2,3@0.2-1.2s`` cuts workers 2 and 3 off from the rest of the fleet
    between 0.2 s and 1.2 s after ``go`` (the supervisor's router drops
    every ``msg`` frame crossing the cut), then heals.
    """
    m = _PART_RE.match(text)
    if not m:
        raise argparse.ArgumentTypeError(
            f"bad --partition spec {text!r} (want e.g. 2,3@0.2-1.2s)")
    side = [int(p) for p in m.group(1).split(",")]
    t0, t1 = float(m.group(2)), float(m.group(3))
    if t0 >= t1:
        raise argparse.ArgumentTypeError(
            f"--partition window must have start < end: {text!r}")
    return {"side": side, "start_s": t0, "end_s": t1}


def parse_member(text: str) -> dict:
    """``PID@<delay>s``: schedule a membership change (join or leave)."""
    m = _MEMBER_RE.match(text)
    if not m:
        raise argparse.ArgumentTypeError(
            f"bad membership spec {text!r} (want e.g. 4@1.5s)")
    return {"pid": int(m.group(1)), "after_s": float(m.group(2))}


def add_live_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", choices=("uts", "bnb"), default="uts")
    parser.add_argument("--preset", default="bin_tiny",
                        help="UTS preset (default: bin_tiny)")
    parser.add_argument("--bnb-index", type=int, default=1,
                        help="Taillard instance index (Ta(20+i))")
    parser.add_argument("--bnb-jobs", type=int, default=8)
    parser.add_argument("--bnb-machines", type=int, default=5)
    parser.add_argument("--bound", default="lb1")
    parser.add_argument("--protocol", default="BTD", choices=LIVE_PROTOCOLS)
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--quantum", type=int, default=64)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--dmax", type=int, default=10)
    parser.add_argument("--sharing", default="proportional")
    parser.add_argument("--transport", choices=("tcp", "unix"),
                        default="tcp")
    parser.add_argument("--port", type=int, default=0,
                        help="preferred TCP port (0 = ephemeral)")
    parser.add_argument("--run-dir", default=None,
                        help="artifact directory (default: a tempdir)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="supervisor watchdog (wall seconds)")
    parser.add_argument("--fault-tolerance", action="store_true",
                        help="reliable channel + write-ahead spools")
    parser.add_argument("--kill", action="append", type=parse_kill,
                        default=[], metavar="PID@SPEC",
                        help="SIGKILL a worker: 2@0.5s (wall delay) or "
                             "2@500u (after spooled units); implies "
                             "--fault-tolerance")
    parser.add_argument("--partition", action="append",
                        type=parse_partition, default=[],
                        metavar="PIDS@T0-T1s",
                        help="cut a set of workers off for a wall-clock "
                             "window, then heal: 2,3@0.2-1.2s; implies "
                             "--fault-tolerance")
    parser.add_argument("--p2p", action="store_true",
                        help="peer-to-peer data plane: protocol frames "
                             "flow worker<->worker; the supervisor is "
                             "control plane only")
    parser.add_argument("--peer-port-base", type=int, default=0,
                        help="p2p tcp: worker PID listens on base+PID "
                             "(0 = ephemeral ports)")
    parser.add_argument("--join", action="append", type=parse_member,
                        default=[], metavar="PID@Ns",
                        help="spawn a new worker mid-run (pids count up "
                             "from n): 4@1.5s; implies --p2p and "
                             "--fault-tolerance")
    parser.add_argument("--leave", action="append", type=parse_member,
                        default=[], metavar="PID@Ns",
                        help="order a worker to drain its pool and depart "
                             "gracefully: 2@1.5s; implies --p2p and "
                             "--fault-tolerance")
    parser.add_argument("--expect-conserved", action="store_true",
                        help="fail unless the work-conservation identity "
                             "holds exactly")
    parser.add_argument("--compare-sim", action="store_true",
                        help="also run the simulator and cross-check "
                             "(UTS node counts / B&B optimum)")
    parser.add_argument("--trace", dest="trace_out", default=None,
                        help="write the merged NDJSON trace here")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the JSON run report here")
    parser.add_argument("--out", default=None,
                        help="also write the rendered report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout rendering")


def _app_spec(args) -> dict:
    if args.app == "uts":
        if args.preset not in PRESETS:
            raise SystemExit(f"unknown UTS preset {args.preset!r}; "
                             f"known: {', '.join(sorted(PRESETS))}")
        if not PRESETS[args.preset].runnable:
            raise SystemExit(f"preset {args.preset!r} is paper-scale "
                             "(not runnable here)")
        return {"kind": "uts", "preset": args.preset}
    return {"kind": "bnb", "index": args.bnb_index, "jobs": args.bnb_jobs,
            "machines": args.bnb_machines, "bound": args.bound}


def _compare_sim(live, cfg, args) -> list[str]:
    """Cross-validate the live run against the simulator; returns errors."""
    from .runner import run_instrumented
    from ..runtime.worker import build_app
    app, _label = build_app(cfg.app)
    sim_result, _sim_stats = run_instrumented(cfg.run_config(), app)
    errors = []
    if args.app == "uts" and not live.killed \
            and live.result.total_units != sim_result.total_units:
        # with kills, part of the tree sits in the victim's spool — the
        # conservation identity (--expect-conserved) is the check there
        errors.append(f"UTS node counts diverge: live "
                      f"{live.result.total_units} != simulated "
                      f"{sim_result.total_units}")
    if args.app == "bnb" and live.result.optimum != sim_result.optimum:
        errors.append(f"B&B optima diverge: live {live.result.optimum} != "
                      f"simulated {sim_result.optimum}")
    return errors


def live_main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments live",
        description="Run one live multi-process execution over sockets.")
    add_live_arguments(parser)
    args = parser.parse_args(argv)

    from ..runtime.supervisor import (LiveAborted, LiveConfig,
                                      LiveRuntimeError, run_live)
    spec = _app_spec(args)
    want_trace = bool(args.trace_out)
    cfg = LiveConfig(
        protocol=args.protocol, n=args.n, app=spec, dmax=args.dmax,
        sharing=args.sharing, quantum=args.quantum, seed=args.seed,
        transport=args.transport, port=args.port, run_dir=args.run_dir,
        trace=want_trace, timeout_s=args.timeout,
        fault_tolerance=(args.fault_tolerance or bool(args.kill)
                         or bool(args.partition) or bool(args.join)
                         or bool(args.leave)),
        p2p=(args.p2p or bool(args.join) or bool(args.leave)),
        peer_port_base=args.peer_port_base,
        joins=tuple(sorted(args.join, key=lambda j: j["pid"])),
        leaves=tuple(args.leave),
        kills=tuple(args.kill), partitions=tuple(args.partition))
    try:
        live = run_live(cfg)
    except LiveAborted as exc:
        print(f"aborted ({exc}); workers drained", file=sys.stderr)
        return 130
    except LiveRuntimeError as exc:
        print(f"live run failed: {exc}", file=sys.stderr)
        return 1

    label = (f"uts/{args.preset}" if args.app == "uts"
             else f"bnb/ta{20 + args.bnb_index}"
                  f"@{args.bnb_jobs}x{args.bnb_machines}/{args.bound}")
    tracer = None
    if live.trace_path is not None:
        from ..obs.export import load_trace
        tracer = load_trace(live.trace_path).tracer
    unit_cost = 0.0   # live busy time is measured, not priced
    report = build_report(cfg.run_config(), live.result, live.stats,
                          tracer=tracer, metrics=live.metrics, app=label,
                          unit_cost=unit_cost,
                          extra_meta={"live": True, "run_dir": live.run_dir,
                                      "killed": list(live.killed),
                                      "joined": list(live.joined),
                                      "left": list(live.left),
                                      "p2p": cfg.p2p,
                                      "conserved_units": live.conserved,
                                      "wall_s": live.wall_s},
                          links=live.links)

    text = report.render()
    if not args.quiet:
        print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
            fh.write("\n")
    if args.trace_out and live.trace_path and args.trace_out != live.trace_path:
        import shutil
        shutil.copyfile(live.trace_path, args.trace_out)

    failures = []
    if args.expect_conserved:
        if live.conserved is None:
            failures.append("--expect-conserved needs --fault-tolerance")
        elif args.app != "uts":
            # B&B explores a bound-dependent node set; only UTS has a
            # fixed sequential total to conserve against
            failures.append("--expect-conserved is defined for UTS runs")
        else:
            from ..runtime.worker import build_app
            from ..runtime.spool import drain
            app, _ = build_app(spec)
            sequential = drain(app.initial_work(), app, app.make_shared())
            if live.conserved != sequential:
                failures.append(f"conservation violated: accounted "
                                f"{live.conserved} != sequential "
                                f"{sequential}")
            elif not args.quiet:
                print(f"conservation exact: {live.conserved} units "
                      f"accounted across survivors, spools and transfers")
    if args.compare_sim:
        errs = _compare_sim(live, cfg, args)
        failures.extend(errs)
        if not errs and not args.quiet:
            print("live run matches the simulator")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


__all__ = ["LIVE_PROTOCOLS", "add_live_arguments", "live_main", "parse_kill",
           "parse_member", "parse_partition"]
