"""Assemble and run complete load-balancing simulations.

This is the single entry point used by the integration tests, the examples
and every table/figure generator: pick a protocol + overlay + application,
run it on the simulated cluster, get an :class:`ExperimentResult` back.

Protocol names (the paper's):

* ``TD`` — overlay-centric on the deterministic dmax-ary tree
* ``TR`` — overlay-centric on the random recursive tree
* ``BTD`` — TD extended with one random bridge per node
* ``BTR`` — TR extended with bridges (not in the paper; matrix completion)
* ``RWS`` — random work stealing (steal-half)
* ``MW`` — master-worker of Mezmaz et al. (B&B only)
* ``AHMW`` — adaptive hierarchical master-worker (B&B only)
* ``LIFELINE`` — hypercube lifeline stealing (Saraswat et al.; the
  related-work overlay design the paper contrasts itself with — extension)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Callable, Optional

from ..apps.base import Application
from ..baselines.ahmw import AHMW_DEGREE, AHMWNode
from ..baselines.master_worker import MWMaster, MWWorker
from ..baselines.rws import RWSWorker
from ..core.config import OCLBConfig
from ..core.oclb import OverlayWorker
from ..core.worker import WorkerConfig, WorkerProcess
from ..overlay.bridges import BridgedTreeOverlay, add_bridges
from ..overlay.tree import deterministic_tree, graft_leaf, random_tree
from ..sim.engine import Simulator
from ..sim.errors import SimConfigError
from ..sim.faults import FaultPlan
from ..sim.network import NetworkModel, grid5000
from ..sim.rng import RngStream
from ..sim.stats import RunStats

PROTOCOLS = ("TD", "TR", "BTD", "BTR", "RWS", "MW", "AHMW", "LIFELINE")


@dataclass(slots=True)
class RunConfig:
    """One simulation run."""

    protocol: str = "BTD"
    n: int = 64
    dmax: int = 10
    sharing: str = "proportional"   # OCLB sharing policy (or RWS's)
    quantum: int = 64
    seed: int = 0
    network: Optional[NetworkModel] = None   # default: grid5000()
    handler_cost: float = 1e-5
    jitter: float = 0.0
    oclb: Optional[OCLBConfig] = None
    mw_update_every: int = 4
    max_events: Optional[int] = None
    #: worker-speed heterogeneity: speeds drawn uniformly from
    #: [1 - spread, 1 + spread] (0 = homogeneous, the paper's setting)
    speed_spread: float = 0.0
    #: "random" scatters the drawn speeds over pids; "fast-interior"
    #: assigns the fastest workers to the lowest pids — the interior of a
    #: TD overlay (heterogeneity-aware placement, the paper's future work)
    speed_placement: str = "random"
    #: fault injection (crashes / loss / duplication); None = clean run
    faults: Optional[FaultPlan] = None
    #: reliable-channel base retransmit delay (virtual seconds in the
    #: simulator, wall seconds in the live runtime, which overrides the
    #: default with socket-scale pacing)
    ack_timeout: float = 2e-3
    #: hard ceiling on the reliable channel's retransmit/probe backoff;
    #: None keeps the legacy ceiling of ack_timeout * 2^retries
    ack_max_backoff: Optional[float] = None
    #: consecutive retransmit timeouts before a peer's circuit breaker
    #: opens (routed around until a probe succeeds); 0 disables breaking
    breaker_threshold: int = 4
    #: quantum fusion (macro events): far fewer engine events at scale,
    #: bit-identical results up to the ordering of exactly-simultaneous
    #: events (docs/simulation.md, "Scaling to 10^4 nodes"); False
    #: forces one event per quantum (debugging / the fused-vs-unfused
    #: comparison itself)
    fuse: bool = True

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise SimConfigError(
                f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}")
        if self.n < 1:
            raise SimConfigError("n must be >= 1")
        if self.protocol in ("MW", "AHMW") and self.n < 2:
            raise SimConfigError(f"{self.protocol} needs at least 2 nodes")
        if self.speed_placement not in ("random", "fast-interior"):
            raise SimConfigError(
                f"unknown speed placement {self.speed_placement!r}")
        if self.breaker_threshold < 0:
            raise SimConfigError("breaker_threshold must be >= 0")
        if self.ack_max_backoff is not None and self.ack_max_backoff <= 0:
            raise SimConfigError("ack_max_backoff must be positive")
        if (self.faults is not None and not self.faults.is_null()
                and self.protocol in ("MW", "AHMW", "LIFELINE")):
            # only the peer protocols carry the self-healing machinery;
            # the single-master baselines have no story for a dead master
            raise SimConfigError(
                f"{self.protocol} does not support fault injection")
        if self.faults is not None:
            for pid, _t in self.faults.crashes:
                if pid >= self.n:
                    raise SimConfigError(
                        f"fault plan crashes pid {pid} but n = {self.n}")


@dataclass(slots=True)
class ExperimentResult:
    """Everything a table/figure needs from one run."""

    protocol: str
    n: int
    makespan: float            # virtual seconds until the last node finished
    work_done_time: float      # virtual time the last work unit completed
    total_units: int           # application work units processed
    total_msgs: int
    total_steals: int          # work requests injected into the network
    msgs_by_pid: list[int]
    optimum: Optional[int] = None      # B&B: best makespan found
    optimum_perm: Optional[tuple] = None
    redundancy: int = 0                # MW: positions explored twice
    events: int = 0
    #: macro-event fusion counters (0 when fusion never engaged)
    macro_events: int = 0
    fused_quanta: int = 0
    events_equivalent: int = 0         # events an unfused engine would fire
    # fault-injection totals (all 0 in clean runs)
    msgs_lost: int = 0
    msgs_duplicated: int = 0
    retransmits: int = 0
    crashes: int = 0
    repairs: int = 0
    breaker_opens: int = 0             # circuit-breaker trips fleet-wide

    def efficiency(self, t_seq: float, workers: Optional[int] = None) -> float:
        """Parallel efficiency vs a sequential reference time."""
        w = workers if workers is not None else self.n
        if self.makespan <= 0 or w <= 0:
            return 0.0
        return t_seq / (w * self.makespan)


def _speeds(cfg: RunConfig) -> list[float]:
    if cfg.speed_spread <= 0:
        return [1.0] * cfg.n
    rng = RngStream(cfg.seed, "speeds")
    lo, hi = 1.0 - cfg.speed_spread, 1.0 + cfg.speed_spread
    speeds = [max(0.05, rng.uniform(lo, hi)) for _ in range(cfg.n)]
    if cfg.speed_placement == "fast-interior":
        speeds.sort(reverse=True)
    return speeds


def worker_factory(cfg: RunConfig, app: Application,
                   grafts: tuple = ()) -> Callable[[int], WorkerProcess]:
    """A ``pid -> WorkerProcess`` builder for one run configuration.

    Shared structures (the overlay, RWS's initial-placement draw, worker
    speeds) are built once when the factory is created, so calling the
    factory for every pid reproduces exactly what :func:`build_workers`
    always did — and the live runtime (:mod:`repro.runtime`), where each
    OS process only ever constructs *its own* pid, builds workers through
    the same code path instead of a diverging copy.

    ``grafts`` is the elastic-membership history a live joiner boots with:
    ``((pid, parent), ...)`` in pid order, extending the base overlay with
    one leaf per past join (including the joiner itself).  Only the tree
    protocols support it — membership changes are an overlay concept.
    """
    speeds = _speeds(cfg)

    def wc_for(p: int) -> WorkerConfig:
        sp = speeds[p] if p < len(speeds) else 1.0   # joiners run at 1.0
        return WorkerConfig(quantum=cfg.quantum, seed=cfg.seed,
                            speed=sp, ack_timeout=cfg.ack_timeout,
                            ack_max_backoff=cfg.ack_max_backoff,
                            breaker_threshold=cfg.breaker_threshold)

    proto, n = cfg.protocol, cfg.n
    if grafts and proto not in ("TD", "BTD", "TR", "BTR"):
        raise SimConfigError(
            f"elastic membership (grafts) needs a tree protocol, not {proto}")
    if proto in ("TD", "BTD", "TR", "BTR"):
        tree = (deterministic_tree(n, cfg.dmax) if proto.endswith("TD")
                else random_tree(n, seed=cfg.seed))
        bridge: tuple = ()
        if proto.startswith("B"):
            bridged = add_bridges(tree, seed=cfg.seed)
            tree, bridge = bridged.tree, bridged.bridge
        for j, jp in grafts:
            if j != tree.n:
                raise SimConfigError(
                    f"grafts must arrive in pid order: got {j}, "
                    f"expected {tree.n}")
            tree = graft_leaf(tree, jp)
            if proto.startswith("B"):
                # a joiner's bridge: deterministic per (seed, pid), drawn
                # over the members that preceded it (never itself)
                bridge += (RngStream(cfg.seed, "bridge-join", j)
                           .randrange(j),)
        overlay = (BridgedTreeOverlay(tree=tree, bridge=bridge)
                   if proto.startswith("B") else tree)
        oclb = cfg.oclb or OCLBConfig(sharing=cfg.sharing)
        return lambda p: OverlayWorker(p, app, wc_for(p), overlay, oclb)
    if proto == "RWS":
        # "the application is pushed into [...] a random node in case of RWS"
        initial = RngStream(cfg.seed, "rws-initial").randrange(n)
        sharing = cfg.sharing if cfg.sharing != "proportional" else "half"
        return lambda p: RWSWorker(p, n, app, wc_for(p),
                                   initial_pid=initial, sharing=sharing)
    if proto == "MW":
        def make_mw(p: int) -> WorkerProcess:
            if p == 0:
                return MWMaster(0, n, app, wc_for(0))
            return MWWorker(p, n, app, wc_for(p),
                            update_every=cfg.mw_update_every)
        return make_mw
    if proto == "AHMW":
        tree = deterministic_tree(n, AHMW_DEGREE)
        return lambda p: AHMWNode(p, app, wc_for(p), tree)
    if proto == "LIFELINE":
        from ..baselines.lifeline import LifelineWorker
        initial = RngStream(cfg.seed, "rws-initial").randrange(n)
        sharing = cfg.sharing if cfg.sharing != "proportional" else "half"
        return lambda p: LifelineWorker(p, n, app, wc_for(p),
                                        initial_pid=initial, sharing=sharing)
    raise SimConfigError(f"unhandled protocol {proto}")


def build_workers(sim: Simulator, cfg: RunConfig,
                  app: Application) -> list[WorkerProcess]:
    """Instantiate the protocol's process population on ``sim``."""
    make = worker_factory(cfg, app)
    return [sim.add_process(make(p)) for p in range(cfg.n)]


def run_once(cfg: RunConfig, app: Application, tracer=None,
             metrics=None) -> ExperimentResult:
    """Run one complete simulation to termination.

    ``tracer``: optional :class:`repro.sim.trace.Tracer` (or streaming
    :class:`repro.obs.export.TraceWriter`) attached to every worker.
    ``metrics``: optional :class:`repro.obs.registry.MetricsRegistry` the
    engine and workers publish into. Both are purely observational: an
    instrumented run is bit-identical to a bare one.
    """
    return run_instrumented(cfg, app, tracer=tracer, metrics=metrics)[0]


def run_instrumented(cfg: RunConfig, app: Application, tracer=None,
                     metrics=None) -> tuple[ExperimentResult, RunStats]:
    """Like :func:`run_once` but also hands back the raw :class:`RunStats`
    (per-process counters — what :mod:`repro.obs.report` builds from)."""
    network = cfg.network if cfg.network is not None else grid5000(
        handler_cost=cfg.handler_cost, jitter=cfg.jitter)
    sim = Simulator(network=network, seed=cfg.seed, faults=cfg.faults,
                    metrics=metrics, fuse=cfg.fuse)
    workers = build_workers(sim, cfg, app)
    if tracer is not None:
        for w in workers:
            w.tracer = tracer
    stats: RunStats = sim.run(max_events=cfg.max_events)
    optimum = None
    optimum_perm = None
    redundancy = 0
    for w in workers:
        if w.shared is not None:
            value = app.shared_value(w.shared)
            if value is not None and (optimum is None or value < optimum):
                optimum = value
        redundancy += getattr(w, "redundancy", 0)
    if optimum is not None:
        # the incumbent comes from a worker that actually *found* the value
        for w in workers:
            if (w.shared is not None
                    and getattr(w.shared, "perm_value", None) == optimum):
                optimum_perm = w.shared.perm
                break
    lost, dup, rexmit, crashes, repairs = stats.fault_totals()
    result = ExperimentResult(
        protocol=cfg.protocol,
        n=cfg.n,
        makespan=stats.makespan,
        work_done_time=stats.work_done_time,
        total_units=stats.total_work_units,
        total_msgs=stats.total_msgs,
        total_steals=stats.total_steals,
        msgs_by_pid=stats.msgs_by_pid(),
        optimum=optimum,
        optimum_perm=optimum_perm,
        redundancy=redundancy,
        events=stats.events_fired,
        macro_events=stats.macro_events,
        fused_quanta=stats.fused_quanta,
        events_equivalent=stats.events_equivalent,
        msgs_lost=lost,
        msgs_duplicated=dup,
        retransmits=rexmit,
        crashes=crashes,
        repairs=repairs,
        breaker_opens=stats.total_breaker_opens(),
    )
    return result, stats


@dataclass(slots=True)
class TrialStats:
    """Aggregate over repeated trials (Table I reports these four)."""

    t_avg: float
    t_std: float
    t_max: float
    t_min: float
    results: list[ExperimentResult] = field(default_factory=list)

    @classmethod
    def of(cls, results: list[ExperimentResult]) -> "TrialStats":
        """Aggregate trial results into t_avg / sigma / t_max / t_min."""
        times = [r.makespan for r in results]
        return cls(t_avg=mean(times),
                   t_std=pstdev(times) if len(times) > 1 else 0.0,
                   t_max=max(times), t_min=min(times), results=results)


def cell_configs(cfg: RunConfig, trials: int) -> list[RunConfig]:
    """The canonical per-trial expansion of one grid configuration.

    Trial ``t`` runs with seed ``cfg.seed + 1000 * t`` (paper: 10 trials).
    Every execution path — the serial loop, the multiprocess grid runner
    and the result cache — derives its cells from this single function, so
    trial seeding can never diverge between them.
    """
    if trials < 1:
        raise SimConfigError("trials must be >= 1")
    import dataclasses
    return [dataclasses.replace(cfg, seed=cfg.seed + 1000 * t)
            for t in range(trials)]


def run_trials(cfg: RunConfig, app_factory: Callable[[], Application],
               trials: int, *, jobs: Optional[int] = None,
               use_cache: Optional[bool] = None,
               progress: Optional[Callable] = None) -> TrialStats:
    """Repeat a run ``trials`` times with derived seeds (paper: 10 trials).

    ``app_factory`` may be a plain zero-argument callable (executed with
    the exact historical serial loop) or an application *spec* from
    :mod:`repro.experiments.specs`, which additionally enables the
    multiprocess pool (``jobs``/``$REPRO_JOBS``) and the on-disk result
    cache.  Results are bit-identical across all paths.
    """
    from .parallel import run_cells  # local import: parallel imports us
    cells = [(c, app_factory) for c in cell_configs(cfg, trials)]
    results = run_cells(cells, jobs=jobs, use_cache=use_cache,
                        progress=progress)
    return TrialStats.of(results)


__all__ = ["RunConfig", "ExperimentResult", "TrialStats", "PROTOCOLS",
           "build_workers", "cell_configs", "run_instrumented", "run_once",
           "run_trials", "worker_factory"]
