"""Live multi-process execution backend (`docs/runtime.md`).

The simulator executes the overlay protocols in virtual time; this package
executes the *same* protocol objects in wall time, over real OS processes
connected by length-prefixed sockets:

* :mod:`~repro.runtime.codec` — pickle-free (JSON-safe) wire encoding of
  protocol messages and work pieces, plus the length-prefix framing;
* :mod:`~repro.runtime.transport` — non-blocking framed connections and
  the listener (EADDRINUSE retry with ephemeral-port fallback);
* :mod:`~repro.runtime.env` — :class:`~repro.runtime.env.LiveEnv`, the
  wall-clock implementation of the execution-environment surface defined
  by :class:`repro.sim.engine.Simulator` (clock, timers, transport, stats,
  faults); protocol code cannot tell the two apart;
* :mod:`~repro.runtime.spool` — the write-ahead state spool a worker keeps
  in fault mode, and the exact work-conservation accounting over it;
* :mod:`~repro.runtime.worker` — the per-process entry point
  (``python -m repro.runtime.worker``);
* :mod:`~repro.runtime.supervisor` — spawns/monitors N workers, routes
  messages, detects deaths (and injects ``SIGKILL`` faults), merges
  traces/metrics and assembles the same
  :class:`~repro.experiments.runner.ExperimentResult`/:class:`~repro.sim.stats.RunStats`
  pair a simulated run yields.

Entry point: ``python -m repro.experiments live`` (see
:mod:`repro.experiments.live`).
"""

from .supervisor import LiveConfig, LiveResult, run_live

__all__ = ["LiveConfig", "LiveResult", "run_live"]
