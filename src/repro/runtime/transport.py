"""Framed socket transport: non-blocking connections, robust listeners.

A :class:`FramedConnection` owns one stream socket plus the two buffers a
non-blocking frame protocol needs: a :class:`~repro.runtime.codec.
FrameDecoder` on the inbound side (partial reads, frames spanning many
``recv`` calls) and an outbound byte queue (short writes, EAGAIN).  Frame
*objects* go in; complete frame objects come out; nobody above this layer
sees bytes.

Listeners prefer the requested port but survive collision:
:func:`open_listener` retries ``EADDRINUSE`` briefly (another run tearing
down), then falls back to an ephemeral port — the supervisor tells its
workers the port it actually got, so nothing above cares.
"""

from __future__ import annotations

import errno
import os
import socket
import time
from typing import Optional

from .codec import FrameDecoder, WireError, pack_frame

_RECV_CHUNK = 1 << 16

#: EADDRINUSE retries on the *requested* port before the ephemeral
#: fallback, and the pause between them.
BIND_RETRIES = 3
BIND_RETRY_DELAY_S = 0.05


class FramedConnection:
    """One frame-oriented stream socket (see module docstring)."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        if sock.family != socket.AF_UNIX:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock
        self.decoder = FrameDecoder()
        self.outbuf = bytearray()
        self.eof = False
        self.closed = False

    # -- outbound ------------------------------------------------------------

    def send_frame(self, obj: dict) -> None:
        """Queue one frame (bytes leave in :meth:`flush`)."""
        if not self.closed:
            self.outbuf += pack_frame(obj)

    def flush(self) -> bool:
        """Push queued bytes; True once the buffer is empty."""
        while self.outbuf and not self.closed:
            try:
                sent = self.sock.send(self.outbuf)
            except (BlockingIOError, InterruptedError):
                return False
            except OSError:
                # receiver gone (EPIPE/ECONNRESET): drop the backlog — the
                # failure detector owns the consequences
                self.outbuf.clear()
                self.eof = True
                return True
            del self.outbuf[:sent]
        return True

    @property
    def wants_write(self) -> bool:
        return bool(self.outbuf) and not self.closed

    # -- inbound -------------------------------------------------------------

    def receive(self) -> list[dict]:
        """Drain the socket; returns complete frames (sets ``eof`` at EOF)."""
        frames: list[dict] = []
        while not self.closed:
            try:
                data = self.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.eof = True
                break
            if not data:
                self.eof = True
                break
            frames.extend(self.decoder.feed(data))
        return frames

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.sock.close()
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else ("eof" if self.eof else "open")
        return f"<FramedConnection {state} out={len(self.outbuf)}B>"


def open_listener(transport: str = "tcp", host: str = "127.0.0.1",
                  port: int = 0, path: Optional[str] = None,
                  backlog: int = 64) -> tuple[socket.socket, dict]:
    """Bind + listen; returns ``(socket, endpoint)``.

    ``endpoint`` is the JSON-able address workers connect to.  TCP binds
    retry ``EADDRINUSE`` (:data:`BIND_RETRIES` times) and then fall back
    to an ephemeral port, so a preferred-port collision degrades into a
    different port instead of a failed run.
    """
    if transport == "unix":
        if path is None:
            raise WireError("unix transport needs a socket path")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(path)
        except OSError:
            sock.close()
            raise
        sock.listen(backlog)
        return sock, {"kind": "unix", "path": path}
    if transport != "tcp":
        raise WireError(f"unknown transport {transport!r}")
    last_error: Optional[OSError] = None
    for attempt, try_port in enumerate([port] * BIND_RETRIES + [0]):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.bind((host, try_port))
        except OSError as exc:
            sock.close()
            if exc.errno != errno.EADDRINUSE or try_port == 0:
                raise
            last_error = exc
            if attempt < BIND_RETRIES:
                time.sleep(BIND_RETRY_DELAY_S)
            continue
        sock.listen(backlog)
        bound = sock.getsockname()[1]
        return sock, {"kind": "tcp", "host": host, "port": bound}
    raise last_error  # pragma: no cover - the port-0 bind cannot collide


def connect_endpoint(endpoint: dict, timeout: float = 30.0) -> socket.socket:
    """Worker side: blocking connect to the supervisor's endpoint."""
    if endpoint["kind"] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(endpoint["path"])
    else:
        sock = socket.create_connection(
            (endpoint["host"], endpoint["port"]), timeout=timeout)
    sock.settimeout(None)
    return sock


def unlink_quietly(path: Optional[str]) -> None:
    """Remove a unix-socket path if it exists (shutdown hygiene)."""
    if path:
        try:
            os.unlink(path)
        except OSError:
            pass


__all__ = ["BIND_RETRIES", "FramedConnection", "connect_endpoint",
           "open_listener", "unlink_quietly"]
