"""Pickle-free wire encoding: tagged JSON payloads + length-prefix framing.

Protocol messages cross the socket as JSON — never pickle: a worker must
not be able to execute code smuggled by a peer, and the format stays
readable in a dump. Plain JSON is lossy for exactly the Python shapes the
protocols rely on, so containers are *tagged*:

* tuples become ``{"__t": [...]}`` — :class:`repro.core.termination.
  TerminationWaves` distinguishes fault-mode wave payloads from clean ones
  with ``isinstance(payload, tuple)``, and every protocol tuple-unpacks
  its payloads, so tuples must survive the round trip as tuples;
* sets/frozensets become ``{"__s"/"__fs": [...]}`` (sorted);
* dicts become ``{"__d": [[k, v], ...]}`` — also covers non-string keys;
* work pieces are encoded structurally: :class:`~repro.uts.work.UTSWork`
  as its generator parameters + (state, depth) stacks,
  :class:`~repro.bnb.work.BnBWork` as its interval set.  NumPy ``uint64``
  states exceed 2^53, so they ride as Python ints (JSON has no float
  coercion on integers — the round trip is exact).

Frames are ``4-byte big-endian length + UTF-8 JSON``.  Zero-length frames
are invalid (every frame carries at least ``{}``), and a peer closing
mid-frame is detectable: :meth:`FrameDecoder.close` raises if buffered
bytes remain.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Iterator

import numpy as np

from ..apps.synthetic import SyntheticWork
from ..bnb.work import BnBWork
from ..sim.errors import SimRuntimeError
from ..sim.messages import Message, sized
from ..uts.tree import UTSParams
from ..uts.work import UTSWork

#: Hard per-frame ceiling — a corrupt length prefix must not trigger a
#: multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(SimRuntimeError):
    """Malformed frame or payload on the live transport."""


# -- payload encoding --------------------------------------------------------

def to_wire(obj: Any) -> Any:
    """JSON-safe form of a protocol payload (see module docstring)."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, float)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, list):
        return [to_wire(x) for x in obj]
    if isinstance(obj, tuple):
        return {"__t": [to_wire(x) for x in obj]}
    if isinstance(obj, frozenset):
        return {"__fs": sorted(to_wire(x) for x in obj)}
    if isinstance(obj, set):
        return {"__s": sorted(to_wire(x) for x in obj)}
    if isinstance(obj, dict):
        return {"__d": [[to_wire(k), to_wire(v)] for k, v in obj.items()]}
    if isinstance(obj, UTSWork):
        states, depths = obj.peek()
        return {"__uts": {"p": list(dataclasses.astuple(obj.params)),
                          "s": [int(x) for x in states],
                          "d": [int(x) for x in depths]}}
    if isinstance(obj, BnBWork):
        return {"__bnb": {"n": obj.n_jobs,
                          "i": [[int(a), int(b)] for a, b in obj.as_tuples()]}}
    if isinstance(obj, SyntheticWork):
        return {"__syn": obj.units}
    raise WireError(f"cannot wire-encode {type(obj).__name__}: {obj!r}")


def from_wire(obj: Any) -> Any:
    """Inverse of :func:`to_wire`."""
    if isinstance(obj, list):
        return [from_wire(x) for x in obj]
    if isinstance(obj, dict):
        if len(obj) == 1:
            ((tag, body),) = obj.items()
            if tag == "__t":
                return tuple(from_wire(x) for x in body)
            if tag == "__fs":
                return frozenset(from_wire(x) for x in body)
            if tag == "__s":
                return {from_wire(x) for x in body}
            if tag == "__d":
                return {from_wire(k): from_wire(v) for k, v in body}
            if tag == "__uts":
                params = UTSParams(*body["p"])
                if not body["s"]:
                    return UTSWork.empty(params)
                return UTSWork(params,
                               states=np.array(body["s"], dtype=np.uint64),
                               depths=np.array(body["d"], dtype=np.int32))
            if tag == "__bnb":
                return BnBWork(body["n"], [(a, b) for a, b in body["i"]])
            if tag == "__syn":
                return SyntheticWork(body)
        raise WireError(f"unknown wire tag in {sorted(obj)!r}")
    return obj


# -- message <-> frame object ------------------------------------------------

def message_to_frame(msg: Message) -> dict:
    """The routable frame object of one protocol message."""
    return {"t": "msg", "src": msg.src, "dst": msg.dst, "kind": msg.kind,
            "p": to_wire(msg.payload), "b": msg.size_bytes}


def message_from_frame(frame: dict) -> Message:
    """Rebuild a :class:`~repro.sim.messages.Message` from its frame.

    ``sized`` adds the header price on top of the body estimate, so the
    accounting matches the simulator's; the *stated* size is carried
    rather than re-derived because the reliable channel prices envelopes
    at the sender.
    """
    msg = sized(frame["kind"], frame["src"], frame["dst"],
                from_wire(frame["p"]), 0)
    msg.size_bytes = frame["b"]
    return msg


# -- per-process stats (DONE reports) ----------------------------------------

def stats_to_wire(ps) -> dict:
    """JSON-safe dump of a :class:`~repro.sim.stats.ProcessStats` row.

    ``crash_time`` is ``+inf`` while alive — JSON has no infinity, so the
    field is simply omitted and restored by :func:`stats_from_wire`.
    """
    import dataclasses
    import math
    out = {}
    for f in dataclasses.fields(ps):
        v = getattr(ps, f.name)
        if isinstance(v, float) and math.isinf(v):
            continue
        out[f.name] = v
    return out


def stats_from_wire(doc: dict, pid: int):
    """Rebuild a ``ProcessStats`` row from :func:`stats_to_wire` output."""
    from ..sim.stats import ProcessStats
    ps = ProcessStats(pid=pid)
    for name, value in doc.items():
        if name != "pid" and hasattr(ps, name):
            setattr(ps, name, value)
    return ps


# -- framing -----------------------------------------------------------------

def pack_frame(obj: dict) -> bytes:
    """One length-prefixed frame holding ``obj`` as UTF-8 JSON."""
    body = json.dumps(obj, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")
    if not body or len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame body of {len(body)} bytes out of range")
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental parser of a length-prefixed frame stream.

    Feed it whatever ``recv`` returned — a byte at a time, half a frame,
    three frames at once — and it yields each complete frame object as
    soon as its last byte arrives.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> Iterator[dict]:
        """Absorb ``data``; yields every frame it completes."""
        self._buf.extend(data)
        while True:
            if len(self._buf) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buf)
            if length == 0:
                raise WireError("zero-length frame on the wire")
            if length > MAX_FRAME_BYTES:
                raise WireError(f"frame length {length} exceeds "
                                f"{MAX_FRAME_BYTES} (corrupt prefix?)")
            end = _LEN.size + length
            if len(self._buf) < end:
                return
            body = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            try:
                obj = json.loads(body)
            except ValueError as exc:
                raise WireError(f"undecodable frame body: {exc}") from exc
            if not isinstance(obj, dict):
                raise WireError(f"frame body must be an object, "
                                f"got {type(obj).__name__}")
            yield obj

    def close(self) -> None:
        """The peer closed the stream; raises if it died mid-frame."""
        if self._buf:
            raise WireError(f"peer closed mid-frame "
                            f"({len(self._buf)} bytes buffered)")


__all__ = ["FrameDecoder", "MAX_FRAME_BYTES", "WireError", "from_wire",
           "message_from_frame", "message_to_frame", "pack_frame", "to_wire"]
