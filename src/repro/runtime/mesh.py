"""Peer-to-peer data plane: direct worker<->worker framed connections.

With ``--p2p`` the supervisor stops relaying protocol traffic and becomes
a pure control plane (spawn, registry, kill plans, collection).  Every
worker opens its own listener before saying ``hello``; the supervisor's
``go`` (and later ``join`` announcements) hand each member its peers'
endpoints, and a :class:`PeerMesh` then owns the data plane:

* **lazy dialing** — the first frame to a peer opens the connection and
  introduces us with a ``ph`` (peer-hello) frame; both sides may dial
  concurrently, in which case each keeps using the connection *it*
  opened, so the per-direction FIFO property the termination argument
  relies on is preserved (each direction's frames ride one TCP stream in
  send order, exactly like the star router's per-connection relay).
* **membership buffering** — a joining worker may reach a peer before the
  supervisor's ``join`` announcement does (two independent streams).
  Frames from a pid we do not yet know are buffered and replayed the
  moment the control plane introduces it, so the grafted overlay exists
  locally before any of the joiner's protocol traffic is delivered.
* **partition emulation** — with no router to drop crossing frames, the
  sender applies the run's partition windows itself: a frame whose
  destination is on the far side of an active cut dies here (counted in
  ``part_drops``), the live analogue of the simulator's partitioned
  network and the star router's cut.
* **link accounting** — per-destination frame/byte counters feed the
  report's per-link traffic table (the star supervisor counts the same
  thing while relaying).

Everything above the frame level — reliable channel, spools, repair,
conservation — is unchanged: a lost dial or a closed peer socket is just
message loss, which the reliable channel already survives.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Callable, Optional

from .transport import FramedConnection, connect_endpoint, open_listener

#: Worker-to-worker dials are loopback to an already-listening socket;
#: anything slower than this means the peer is gone.
DIAL_TIMEOUT_S = 5.0


def open_peer_listener(transport: str, host: str, port: int,
                       run_dir: Optional[str],
                       pid: int) -> tuple[socket.socket, dict]:
    """Bind this worker's data-plane listener; returns ``(sock, endpoint)``.

    Unix runs put one socket per pid in the run directory; TCP runs bind
    the preferred ``port`` (``peer_port_base + pid``, or 0 for ephemeral)
    and inherit :func:`~repro.runtime.transport.open_listener`'s
    EADDRINUSE retry + ephemeral fallback — the supervisor distributes
    whatever endpoint was actually bound, so a collision degrades into a
    different port, never a failed worker.
    """
    if transport == "unix":
        path = os.path.join(run_dir or ".", f"peer_{pid}.sock")
        sock, endpoint = open_listener("unix", path=path)
    else:
        sock, endpoint = open_listener("tcp", host=host, port=port)
    sock.setblocking(False)
    return sock, endpoint


class PeerMesh:
    """One worker's view of the data plane (see module docstring).

    Args:
        pid: our pid.
        listener: our (non-blocking) peer listener socket.
        on_conn: called with each new :class:`FramedConnection` (dialled
            or accepted) so the reactor can register it for readiness.
        on_drop: called with each connection the mesh forgets.
    """

    def __init__(self, pid: int, listener: socket.socket,
                 on_conn: Optional[Callable] = None,
                 on_drop: Optional[Callable] = None) -> None:
        self.pid = pid
        self.listener = listener
        self.on_conn = on_conn
        self.on_drop = on_drop
        self.conns: list[FramedConnection] = []
        self.by_pid: dict[int, FramedConnection] = {}   # outbound routing
        self._pid_of: dict[int, int] = {}               # id(conn) -> pid
        self.endpoints: dict[int, dict] = {}
        self.members: set[int] = set()
        #: frames from pids the control plane has not introduced yet
        self.pending_frames: dict[int, list[dict]] = {}
        # sender-side partition emulation; armed at `go`
        self.partitions: tuple = ()     # ((frozenset(side), t0, t1), ...)
        self._t_go: Optional[float] = None
        self.part_drops = 0
        # per-destination traffic (frames, bytes of stated payload)
        self.link_frames: dict[int, int] = {}
        self.link_bytes: dict[int, int] = {}

    # -- membership ----------------------------------------------------------

    def arm(self) -> None:
        """Start the partition clock (the worker's ``go`` instant)."""
        self._t_go = time.monotonic()

    def add_member(self, pid: int, endpoint: Optional[dict]) -> list[dict]:
        """The control plane introduced ``pid``; returns the frames it sent
        us early, in arrival order, for immediate delivery."""
        self.members.add(pid)
        if endpoint is not None:
            self.endpoints[pid] = endpoint
        return self.pending_frames.pop(pid, [])

    def drop_peer(self, pid: int) -> list[dict]:
        """``pid`` is gone (death or graceful leave): drain its connection
        one last time and forget it.  Returns every frame it managed to
        deliver — hand those to the protocol *before* announcing the
        death, the same order the star router guarantees."""
        self.members.discard(pid)
        self.endpoints.pop(pid, None)
        out = self.pending_frames.pop(pid, [])
        self.by_pid.pop(pid, None)
        for conn in [c for c in self.conns
                     if self._pid_of.get(id(c)) == pid]:
            if not conn.closed:
                out.extend(f for f in conn.receive()
                           if f.get("t") == "msg" and f.get("src") == pid)
            self.forget(conn)
        return out

    # -- outbound ------------------------------------------------------------

    def _cut(self, dst: int) -> bool:
        if self._t_go is None or not self.partitions:
            return False
        t = time.monotonic() - self._t_go
        for side, t0, t1 in self.partitions:
            if t0 <= t < t1 and ((self.pid in side) != (dst in side)):
                return True
        return False

    def send(self, frame: dict) -> None:
        """Queue one ``msg`` frame toward its destination worker.

        Queue only — no bytes leave here.  The worker's reactor flushes
        (:meth:`flush_all`) strictly *after* committing the write-ahead
        spool, and that ordering is the whole conservation argument: a
        frame that escaped before the commit describing it would let a
        SIGKILL strand (or duplicate) the work it carries."""
        dst = frame["dst"]
        if self._cut(dst):
            self.part_drops += 1
            return
        conn = self.by_pid.get(dst)
        if conn is None or conn.closed or conn.eof:
            conn = self._dial(dst)
            if conn is None:
                return   # peer unreachable: the frame is lost, the
                         # reliable channel retransmits or recovers
        self.link_frames[dst] = self.link_frames.get(dst, 0) + 1
        self.link_bytes[dst] = self.link_bytes.get(dst, 0) + frame.get("b", 0)
        conn.send_frame(frame)

    def _dial(self, dst: int) -> Optional[FramedConnection]:
        endpoint = self.endpoints.get(dst)
        if endpoint is None:
            return None
        try:
            sock = connect_endpoint(endpoint, timeout=DIAL_TIMEOUT_S)
        except OSError:
            return None
        conn = FramedConnection(sock)
        conn.send_frame({"t": "ph", "pid": self.pid})
        self.conns.append(conn)
        self.by_pid[dst] = conn
        self._pid_of[id(conn)] = dst
        if self.on_conn is not None:
            self.on_conn(conn)
        return conn

    # -- inbound -------------------------------------------------------------

    def accept(self) -> None:
        """Drain the listener's accept queue (reactor: listener readable)."""
        while True:
            try:
                sock, _addr = self.listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            conn = FramedConnection(sock)
            self.conns.append(conn)
            if self.on_conn is not None:
                self.on_conn(conn)

    def service(self, conn: FramedConnection) -> list[dict]:
        """Drain one connection; returns the frames ready for delivery.

        ``ph`` frames identify the dialler; ``msg`` frames from a pid the
        control plane has not introduced yet are buffered (see module
        docstring) instead of delivered."""
        out: list[dict] = []
        for frame in conn.receive():
            t = frame.get("t")
            if t == "ph":
                self._identify(conn, frame["pid"])
            elif t == "msg":
                src = frame.get("src")
                if src in self.members:
                    out.append(frame)
                else:
                    self.pending_frames.setdefault(src, []).append(frame)
        return out

    def _identify(self, conn: FramedConnection, src: int) -> None:
        self._pid_of[id(conn)] = src
        cur = self.by_pid.get(src)
        if cur is None or cur.closed or cur.eof:
            # no outbound route yet: reuse the inbound connection.  If we
            # dialled them concurrently, ours stays the outbound route and
            # this one is receive-only — each direction keeps one stream.
            self.by_pid[src] = conn

    # -- reactor plumbing ----------------------------------------------------

    def open_conns(self) -> list[FramedConnection]:
        """Live connections (for readiness registration)."""
        return [c for c in self.conns if not c.closed]

    def forget(self, conn: FramedConnection) -> None:
        """Close and drop one connection (EOF or peer death)."""
        if conn in self.conns:
            self.conns.remove(conn)
        pid = self._pid_of.pop(id(conn), None)
        if pid is not None and self.by_pid.get(pid) is conn:
            del self.by_pid[pid]
        if self.on_drop is not None:
            self.on_drop(conn)
        conn.close()

    def flush_all(self) -> bool:
        """Push queued bytes everywhere; True when every buffer drained."""
        done = True
        for conn in self.conns:
            if conn.wants_write:
                done = conn.flush() and done
        return done

    def links_wire(self) -> dict:
        """JSON-able per-destination (frames, bytes) counters."""
        return {str(dst): [self.link_frames[dst],
                           self.link_bytes.get(dst, 0)]
                for dst in sorted(self.link_frames)}

    def close(self) -> None:
        for conn in self.conns:
            conn.close()
        self.conns.clear()
        self.by_pid.clear()
        self._pid_of.clear()
        try:
            self.listener.close()
        except OSError:
            pass


__all__ = ["DIAL_TIMEOUT_S", "PeerMesh", "open_peer_listener"]
