"""Live worker entry point: ``python -m repro.runtime.worker '<json>'``.

One OS process = one protocol worker.  The supervisor passes the full
configuration as a single JSON argument; the worker connects back,
handshakes (``hello`` / ``go``), builds its protocol object through the
same :func:`repro.experiments.runner.worker_factory` the simulator uses,
and then runs a selector reactor until the supervisor says ``shutdown``:

1. wait on the socket until the next timer deadline (or a short idle tick);
2. absorb inbound frames — routed protocol messages into
   ``proc._arrive``, ``dead`` announcements into the failure detector;
3. fire due timers (compute quanta, retransmits, termination waves ride
   here);
4. **fault mode:** commit the write-ahead spool — *before* step 5, so no
   byte ever leaves this process without the state that explains it
   already being on disk (see :mod:`repro.runtime.spool`);
5. flush the outbound buffer;
6. once the protocol reports termination, send the ``done`` report (and
   keep answering late messages until ``shutdown`` arrives).

The worker ignores SIGINT (the supervisor coordinates interactive aborts)
and treats SIGTERM or supervisor EOF as an orderly exit, so no run leaves
orphans behind.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from selectors import EVENT_READ, EVENT_WRITE, DefaultSelector

from ..apps.base import Application
from ..core.config import OCLBConfig
from ..experiments.runner import RunConfig, worker_factory
from ..obs.export import TraceWriter
from ..obs.registry import MetricsRegistry
from .codec import message_from_frame, stats_to_wire
from .env import LiveEnv
from .spool import build_spool_doc, spool_path, write_spool
from .transport import FramedConnection, connect_endpoint

#: Selector timeout when no timer is pending (keeps the watchdog and
#: supervisor-EOF checks responsive).
IDLE_TICK_S = 0.25

#: Live-scale OCLB pacing: wall milliseconds, not the simulator's virtual
#: defaults — loopback RTTs are tens of microseconds, but real scheduling
#: jitter is milliseconds, so retries back off further than in the sim.
LIVE_WAVE_RETRY_S = 0.02
LIVE_PROBE_RETRY_S = 0.005
LIVE_ACK_TIMEOUT_S = 0.02


def build_app(spec: dict) -> tuple[Application, str]:
    """Construct the application from its JSON coordinates."""
    if spec["kind"] == "uts":
        from ..apps.uts_app import UTS_UNIT_COST, UTSApplication
        from ..uts.params import get_preset
        preset = get_preset(spec["preset"])
        app = UTSApplication(preset.params,
                             unit_cost=spec.get("unit_cost", UTS_UNIT_COST))
        return app, f"uts/{spec['preset']}"
    if spec["kind"] == "bnb":
        from ..experiments.specs import BnBSpec
        bs = BnBSpec(spec["index"], n_jobs=spec["jobs"],
                     n_machines=spec["machines"],
                     bound=spec.get("bound", "lb1"),
                     warm_start=spec.get("warm_start", True))
        return bs.build(), (f"bnb/ta{20 + spec['index']}"
                            f"@{spec['jobs']}x{spec['machines']}")
    raise SystemExit(f"unknown app kind {spec.get('kind')!r}")


def build_run_config(cfg: dict) -> RunConfig:
    """The worker-side :class:`RunConfig` (shared with the simulator)."""
    run = cfg["run"]
    oclb = OCLBConfig(
        sharing=run.get("sharing", "proportional"),
        wave_retry=run.get("wave_retry", LIVE_WAVE_RETRY_S),
        probe_retry=run.get("probe_retry", LIVE_PROBE_RETRY_S))
    return RunConfig(protocol=run["protocol"], n=run["n"],
                     dmax=run.get("dmax", 10),
                     sharing=run.get("sharing", "proportional"),
                     quantum=run.get("quantum", 64), seed=run.get("seed", 0),
                     oclb=oclb,
                     ack_timeout=run.get("ack_timeout", LIVE_ACK_TIMEOUT_S),
                     ack_max_backoff=run.get("ack_max_backoff"),
                     breaker_threshold=run.get("breaker_threshold", 4))


class _Exit(Exception):
    """Internal: unwind the reactor (code carried to sys.exit)."""

    def __init__(self, code: int) -> None:
        self.code = code


def _run(cfg: dict) -> int:
    pid = cfg["pid"]
    fault_mode = bool(cfg.get("fault_mode"))
    run_dir = cfg.get("run_dir")
    deadline = time.monotonic() + float(cfg.get("timeout_s", 120.0))

    sock = connect_endpoint(cfg["endpoint"])
    conn = FramedConnection(sock)
    conn.send_frame({"t": "hello", "pid": pid, "ospid": os.getpid()})
    conn.flush()

    # blocking handshake: wait for "go".  A peer that handshook earlier
    # may already be running and sending us protocol frames — they ride
    # in the same stream, so buffer them for delivery after start-up.
    sel = DefaultSelector()
    sel.register(conn.sock, EVENT_READ)
    started = False
    early: list[dict] = []
    while not started:
        if time.monotonic() > deadline:
            return 3
        if sel.select(timeout=0.5):
            for frame in conn.receive():
                if frame.get("t") == "go":
                    started = True
                elif frame.get("t") == "shutdown":
                    return 0
                else:
                    early.append(frame)
        if conn.eof:
            return 1
    t0_epoch = time.time()

    app, app_label = build_app(cfg["app"])
    rcfg = build_run_config(cfg)
    proc = worker_factory(rcfg, app)(pid)
    metrics = MetricsRegistry()
    env = LiveEnv(pid, rcfg.n, conn, seed=rcfg.seed, fault_mode=fault_mode,
                  run_dir=run_dir, metrics=metrics,
                  debug=bool(cfg.get("debug")))
    env.attach(proc)

    tracer = None
    if cfg.get("trace") and run_dir:
        tracer = TraceWriter(os.path.join(run_dir, f"trace_{pid}.ndjson"),
                            meta={"pid": pid, "t0_epoch": t0_epoch,
                                  "protocol": rcfg.protocol, "n": rcfg.n,
                                  "app": app_label, "live": True})
        proc.tracer = tracer

    my_spool = spool_path(run_dir, pid) if (fault_mode and run_dir) else None

    def commit_spool() -> None:
        if my_spool is not None:
            write_spool(my_spool, build_spool_doc(proc))

    def final_report(kind: str) -> dict:
        rep = {"t": kind, "pid": pid}
        if fault_mode:
            ch = proc._reliable
            rep["recv_log"] = ({str(s): sorted(q)
                                for s, q in ch._seen.items()}
                               if ch is not None else {})
            from .codec import to_wire
            rep["crash_dropped"] = [to_wire(p) for p in proc.crash_dropped]
        return rep

    commit_spool()   # a kill before the first quantum must find a spool
    proc.start()
    for frame in early:   # frames that raced our handshake
        if frame.get("t") == "msg":
            env.deliver(message_from_frame(frame))
        elif frame.get("t") == "dead":
            env.mark_dead(frame["pid"])

    done_sent = False
    try:
        while True:
            if time.monotonic() > deadline:
                raise _Exit(3)
            nxt = env.queue.next_deadline()
            timeout = (IDLE_TICK_S if nxt is None
                       else min(IDLE_TICK_S, max(0.0, nxt - env.now)))
            events = EVENT_READ | (EVENT_WRITE if conn.wants_write else 0)
            sel.modify(conn.sock, events)
            sel.select(timeout=timeout)

            for frame in conn.receive():
                t = frame.get("t")
                if t == "msg":
                    env.deliver(message_from_frame(frame))
                elif t == "dead":
                    env.mark_dead(frame["pid"])
                elif t == "shutdown":
                    if fault_mode and not frame.get("abort"):
                        conn.send_frame(final_report("bye"))
                    commit_spool()
                    flush_until = time.monotonic() + 5.0
                    while (not conn.flush()
                           and time.monotonic() < flush_until):
                        time.sleep(0.005)
                    raise _Exit(0)
            if conn.eof:
                raise _Exit(1)   # supervisor vanished: don't linger

            env.queue.fire_due()

            if proc.terminated and not done_sent:
                done_sent = True
                ps = env.stats.per_process[pid]
                rep = final_report("done")
                rep.update({
                    "t0": t0_epoch,
                    "stats": stats_to_wire(ps),
                    "work_done": env.stats.work_done_time,
                    "optimum": (app.shared_value(proc.shared)
                                if proc.shared is not None else None),
                    "metrics": metrics.snapshot(),
                })
                conn.send_frame(rep)

            # write-ahead: state hits the disk before the bytes it
            # explains hit the wire
            commit_spool()
            conn.flush()
    except _Exit as ex:
        return ex.code
    finally:
        if tracer is not None:
            tracer.close()
        conn.close()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.runtime.worker '<json config>'",
              file=sys.stderr)
        return 2
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    return _run(json.loads(argv[0]))


if __name__ == "__main__":
    sys.exit(main())
