"""Live worker entry point: ``python -m repro.runtime.worker '<json>'``.

One OS process = one protocol worker.  The supervisor passes the full
configuration as a single JSON argument; the worker connects back,
handshakes (``hello`` / ``go``), builds its protocol object through the
same :func:`repro.experiments.runner.worker_factory` the simulator uses,
and then runs a selector reactor until the supervisor says ``shutdown``:

1. wait on the sockets until the next timer deadline (or a short idle tick);
2. absorb inbound frames — routed protocol messages into
   ``proc._arrive``, ``dead``/``left`` announcements into the failure
   detector, ``join`` announcements into the overlay graft;
3. fire due timers (compute quanta, retransmits, termination waves ride
   here);
4. **fault mode:** commit the write-ahead spool — *before* step 5, so no
   byte ever leaves this process without the state that explains it
   already being on disk (see :mod:`repro.runtime.spool`);
5. flush the outbound buffers;
6. once the protocol reports termination, send the ``done`` report (and
   keep answering late messages until ``shutdown`` arrives).

Two data-plane modes:

* **star** (default): every protocol frame rides the supervisor
  connection; the supervisor relays by destination pid.
* **p2p** (``"p2p": true``): the worker opens its own listener *before*
  ``hello`` and advertises the endpoint; protocol frames then flow over
  direct worker<->worker connections (:mod:`repro.runtime.mesh`) and the
  supervisor connection carries control only — ``go``, ``dead``,
  ``join``/``left`` membership news, ``leave`` orders, ``shutdown``, and
  the final reports.  A worker spawned mid-run (``"join": {...}``) boots
  with the full graft history, announces itself to its overlay parent
  (ATTACH/ADOPT — the same exchange a post-crash splice uses), and a
  worker ordered to ``leave`` drains its pool to its parent and departs
  once every transfer it initiated is acknowledged.

The worker ignores SIGINT (the supervisor coordinates interactive aborts)
and treats SIGTERM or supervisor EOF as an orderly exit, so no run leaves
orphans behind.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from selectors import EVENT_READ, EVENT_WRITE, DefaultSelector

from ..apps.base import Application
from ..core.config import OCLBConfig
from ..experiments.runner import RunConfig, worker_factory
from ..obs.export import TraceWriter
from ..obs.registry import MetricsRegistry
from .codec import message_from_frame, stats_to_wire
from .env import LiveEnv
from .mesh import PeerMesh, open_peer_listener
from .spool import build_spool_doc, spool_path, write_spool
from .transport import FramedConnection, connect_endpoint

#: Selector timeout when no timer is pending (keeps the watchdog and
#: supervisor-EOF checks responsive).
IDLE_TICK_S = 0.25

#: Live-scale OCLB pacing: wall milliseconds, not the simulator's virtual
#: defaults — loopback RTTs are tens of microseconds, but real scheduling
#: jitter is milliseconds, so retries back off further than in the sim.
LIVE_WAVE_RETRY_S = 0.02
LIVE_PROBE_RETRY_S = 0.005
LIVE_ACK_TIMEOUT_S = 0.02


def build_app(spec: dict) -> tuple[Application, str]:
    """Construct the application from its JSON coordinates."""
    if spec["kind"] == "uts":
        from ..apps.uts_app import UTS_UNIT_COST, UTSApplication
        from ..uts.params import get_preset
        preset = get_preset(spec["preset"])
        app = UTSApplication(preset.params,
                             unit_cost=spec.get("unit_cost", UTS_UNIT_COST))
        return app, f"uts/{spec['preset']}"
    if spec["kind"] == "bnb":
        from ..experiments.specs import BnBSpec
        bs = BnBSpec(spec["index"], n_jobs=spec["jobs"],
                     n_machines=spec["machines"],
                     bound=spec.get("bound", "lb1"),
                     warm_start=spec.get("warm_start", True))
        return bs.build(), (f"bnb/ta{20 + spec['index']}"
                            f"@{spec['jobs']}x{spec['machines']}")
    if spec["kind"] == "synthetic":
        from ..apps.synthetic import SyntheticApplication
        app = SyntheticApplication(int(spec["units"]),
                                   unit_cost=spec.get("unit_cost", 1e-5))
        return app, f"synthetic/{spec['units']}"
    raise SystemExit(f"unknown app kind {spec.get('kind')!r}")


def build_run_config(cfg: dict) -> RunConfig:
    """The worker-side :class:`RunConfig` (shared with the simulator)."""
    run = cfg["run"]
    oclb = OCLBConfig(
        sharing=run.get("sharing", "proportional"),
        wave_retry=run.get("wave_retry", LIVE_WAVE_RETRY_S),
        probe_retry=run.get("probe_retry", LIVE_PROBE_RETRY_S))
    return RunConfig(protocol=run["protocol"], n=run["n"],
                     dmax=run.get("dmax", 10),
                     sharing=run.get("sharing", "proportional"),
                     quantum=run.get("quantum", 64), seed=run.get("seed", 0),
                     oclb=oclb,
                     ack_timeout=run.get("ack_timeout", LIVE_ACK_TIMEOUT_S),
                     ack_max_backoff=run.get("ack_max_backoff"),
                     breaker_threshold=run.get("breaker_threshold", 4))


class _Exit(Exception):
    """Internal: unwind the reactor (code carried to sys.exit)."""

    def __init__(self, code: int) -> None:
        self.code = code


def _run(cfg: dict) -> int:
    pid = cfg["pid"]
    fault_mode = bool(cfg.get("fault_mode"))
    run_dir = cfg.get("run_dir")
    p2p = bool(cfg.get("p2p"))
    slots = int(cfg.get("slots", cfg["run"]["n"]))
    join = cfg.get("join")          # {"parent": p} for a mid-run joiner
    deadline = time.monotonic() + float(cfg.get("timeout_s", 120.0))

    sel = DefaultSelector()
    interest: dict[int, int] = {}   # fd -> registered event mask

    def set_interest(sock, flags, data) -> None:
        fd = sock.fileno()
        if fd < 0:
            return
        if fd not in interest:
            sel.register(sock, flags, data)
            interest[fd] = flags
        elif interest[fd] != flags:
            sel.modify(sock, flags, data)
            interest[fd] = flags

    def forget_sock(sock) -> None:
        fd = sock.fileno()
        if fd in interest:
            sel.unregister(sock)
            del interest[fd]

    mesh = None
    peer_endpoint = None
    if p2p:
        # the listener must accept before anyone can learn our address:
        # open it ahead of the hello that advertises it
        peer_listener, peer_endpoint = open_peer_listener(
            cfg.get("transport", "tcp"), cfg.get("host", "127.0.0.1"),
            int(cfg.get("peer_port", 0)), run_dir, pid)
        mesh = PeerMesh(
            pid, peer_listener,
            on_conn=lambda c: set_interest(c.sock, EVENT_READ, c),
            on_drop=lambda c: forget_sock(c.sock))

    sock = connect_endpoint(cfg["endpoint"])
    conn = FramedConnection(sock)
    hello = {"t": "hello", "pid": pid, "ospid": os.getpid()}
    if peer_endpoint is not None:
        hello["peer"] = peer_endpoint
    conn.send_frame(hello)
    conn.flush()

    # blocking handshake: wait for "go".  A peer that handshook earlier
    # may already be running and sending us protocol frames — on the
    # supervisor stream they ride ahead of "go", so buffer them; on the
    # p2p mesh the membership buffer holds them (no member is known yet).
    set_interest(conn.sock, EVENT_READ, "ctrl")
    if mesh is not None:
        set_interest(mesh.listener, EVENT_READ, "accept")
    started = False
    go: dict = {}
    early: list[dict] = []
    while not started:
        if time.monotonic() > deadline:
            return 3
        for key, _mask in sel.select(timeout=0.5):
            if key.data == "ctrl":
                for frame in conn.receive():
                    t = frame.get("t")
                    if t == "go":
                        started = True
                        go = frame
                    elif t == "shutdown":
                        return 0
                    else:
                        early.append(frame)
            elif key.data == "accept":
                mesh.accept()
            elif isinstance(key.data, FramedConnection):
                mesh.service(key.data)   # pre-go: everything buffers
                if key.data.eof:
                    mesh.forget(key.data)
        if conn.eof:
            return 1
    t0_epoch = time.time()

    app, app_label = build_app(cfg["app"])
    rcfg = build_run_config(cfg)
    grafts = tuple((int(a), int(b)) for a, b in go.get("grafts", ()))
    proc = worker_factory(rcfg, app, grafts=grafts)(pid)
    metrics = MetricsRegistry()
    env = LiveEnv(pid, slots, conn, mesh=mesh, seed=rcfg.seed,
                  fault_mode=fault_mode, run_dir=run_dir, metrics=metrics,
                  debug=bool(cfg.get("debug")))
    env.attach(proc)

    replay: list[dict] = []
    if mesh is not None:
        mesh.partitions = tuple(
            (frozenset(int(q) for q in side), float(t0), float(t1))
            for side, t0, t1 in go.get("partitions", ()))
        for peer, ep in go.get("peers", {}).items():
            if int(peer) != pid:
                replay.extend(mesh.add_member(int(peer), ep))
        mesh.arm()

    tracer = None
    if cfg.get("trace") and run_dir:
        tracer = TraceWriter(os.path.join(run_dir, f"trace_{pid}.ndjson"),
                            meta={"pid": pid, "t0_epoch": t0_epoch,
                                  "protocol": rcfg.protocol, "n": rcfg.n,
                                  "app": app_label, "live": True})
        proc.tracer = tracer

    my_spool = spool_path(run_dir, pid) if (fault_mode and run_dir) else None

    def commit_spool() -> None:
        if my_spool is not None:
            write_spool(my_spool, build_spool_doc(proc))

    def final_report(kind: str) -> dict:
        rep = {"t": kind, "pid": pid}
        if fault_mode:
            ch = proc._reliable
            rep["recv_log"] = ({str(s): sorted(q)
                                for s, q in ch._seen.items()}
                               if ch is not None else {})
            from .codec import to_wire
            rep["crash_dropped"] = [to_wire(p) for p in proc.crash_dropped]
        return rep

    def results_report(kind: str) -> dict:
        ps = env.stats.per_process[pid]
        rep = final_report(kind)
        rep.update({
            "t0": t0_epoch,
            "stats": stats_to_wire(ps),
            "work_done": env.stats.work_done_time,
            "optimum": (app.shared_value(proc.shared)
                        if proc.shared is not None else None),
            "metrics": metrics.snapshot(),
        })
        if mesh is not None:
            rep["links"] = mesh.links_wire()
            rep["part_drops"] = mesh.part_drops
        return rep

    def deliver_peer_frames(frames: list[dict]) -> None:
        for frame in frames:
            env.deliver(message_from_frame(frame))

    def handle_gone(gone: int, left: bool) -> None:
        # drain whatever the departed peer flushed before going: those
        # frames physically arrived, so the protocol sees them first —
        # exactly the order the star router's relay guarantees
        if mesh is not None:
            deliver_peer_frames(mesh.drop_peer(gone))
        if left:
            env.mark_left(gone)
        else:
            env.mark_dead(gone)

    commit_spool()   # a kill before the first quantum must find a spool
    proc.start()
    for d in go.get("dead", ()):
        env.mark_dead(int(d))
    for lv in go.get("left", ()):
        env.mark_left(int(lv))
    for frame in early:   # frames that raced our handshake
        if frame.get("t") == "msg":
            env.deliver(message_from_frame(frame))
        elif frame.get("t") == "dead":
            env.mark_dead(frame["pid"])
        elif frame.get("t") == "left":
            env.mark_left(frame["pid"])
    deliver_peer_frames(replay)
    if join is not None:
        # announce ourselves to the overlay parent the registry assigned
        # (ATTACH -> ADOPT; idempotent if the parent died while we booted)
        proc.join_overlay()

    done_sent = False
    left_sent = False
    try:
        while True:
            if time.monotonic() > deadline:
                raise _Exit(3)
            nxt = env.queue.next_deadline()
            timeout = (IDLE_TICK_S if nxt is None
                       else min(IDLE_TICK_S, max(0.0, nxt - env.now)))
            set_interest(conn.sock, EVENT_READ
                         | (EVENT_WRITE if conn.wants_write else 0), "ctrl")
            if mesh is not None:
                for c in mesh.open_conns():
                    set_interest(c.sock, EVENT_READ
                                 | (EVENT_WRITE if c.wants_write else 0), c)

            for key, mask in sel.select(timeout=timeout):
                if key.data == "accept":
                    mesh.accept()
                    continue
                if isinstance(key.data, FramedConnection):
                    c = key.data
                    # EVENT_WRITE only wakes the loop: the flush itself
                    # waits for the post-commit flush_all below, so no
                    # frame ever leaves ahead of the spool that explains it
                    deliver_peer_frames(mesh.service(c))
                    if c.eof:
                        mesh.forget(c)
                    continue
                # key.data == "ctrl": fall through to the shared drain below
            for frame in conn.receive():
                t = frame.get("t")
                if t == "msg":
                    env.deliver(message_from_frame(frame))
                elif t == "dead":
                    handle_gone(int(frame["pid"]), left=False)
                elif t == "left":
                    handle_gone(int(frame["pid"]), left=True)
                elif t == "join":
                    jp = int(frame["pid"])
                    # graft first, then replay the joiner's early frames:
                    # its ATTACH must find the overlay already extended
                    proc.peer_joined(jp, int(frame["parent"]))
                    if mesh is not None:
                        deliver_peer_frames(
                            mesh.add_member(jp, frame.get("endpoint")))
                elif t == "leave":
                    proc.begin_leave()
                elif t == "shutdown":
                    if fault_mode and not frame.get("abort"):
                        conn.send_frame(final_report("bye"))
                    commit_spool()
                    flush_until = time.monotonic() + 5.0
                    while (not conn.flush()
                           and time.monotonic() < flush_until):
                        time.sleep(0.005)
                    raise _Exit(0)
            if conn.eof:
                raise _Exit(1)   # supervisor vanished: don't linger

            env.queue.fire_due()

            if proc.terminated and not done_sent and not left_sent:
                done_sent = True
                conn.send_frame(results_report("done"))

            if (proc.leaving and not left_sent and not done_sent
                    and proc.leave_tick()):
                # pool drained, every transfer acked: report and depart
                left_sent = True
                env.stats.per_process[pid].finish_time = env.now
                conn.send_frame(results_report("left"))
                commit_spool()
                flush_until = time.monotonic() + 5.0
                while time.monotonic() < flush_until:
                    ok = conn.flush()
                    if mesh is not None:
                        ok = mesh.flush_all() and ok
                    if ok:
                        break
                    time.sleep(0.005)
                raise _Exit(0)

            # write-ahead: state hits the disk before the bytes it
            # explains hit the wire
            commit_spool()
            conn.flush()
            if mesh is not None:
                mesh.flush_all()
    except _Exit as ex:
        return ex.code
    finally:
        if tracer is not None:
            tracer.close()
        conn.close()
        if mesh is not None:
            mesh.close()


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.runtime.worker '<json config>'",
              file=sys.stderr)
        return 2
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    return _run(json.loads(argv[0]))


if __name__ == "__main__":
    sys.exit(main())
