"""`LiveEnv`: the wall-clock execution environment of one live worker.

Protocol code (``core/worker.py``, ``core/oclb.py``, ``core/termination.py``,
``core/reliable.py``, the baselines) never imports the engine — it talks to
``self.sim`` through a narrow surface: ``queue.now`` / ``queue.push``
(clock + timers), ``transmit`` (transport), ``network.handler_cost``,
``stats``, ``metrics``, ``debug``, ``seed``, and the fault trio
(``faults`` / ``is_crashed`` / ``peer_logged``).  This module implements
that exact surface over a monotonic wall clock, a timer heap and one
framed socket to the supervisor, so a :class:`~repro.core.oclb.
OverlayWorker` built by :func:`repro.experiments.runner.worker_factory`
runs on a real process unchanged:

* a simulated send becomes a frame on the supervisor socket (the
  supervisor routes it to the destination worker);
* a simulated timer becomes a heap entry the worker's selector loop fires
  when its wall deadline passes;
* ``handler_cost`` is 0 — handling takes whatever it really takes;
* ``is_crashed`` consults the death announcements the supervisor
  broadcasts (its EOF/SIGCHLD watch is the failure detector), and
  ``peer_logged`` reads the on-disk spool the dead worker left behind —
  the *actual* stable receive log the simulator only models
  (:meth:`repro.sim.engine.Simulator.peer_logged`).

Fidelity caveats vs the simulator are catalogued in ``docs/runtime.md``.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Optional

from ..sim.errors import SimRuntimeError
from ..sim.messages import Message
from ..sim.stats import RunStats
from .codec import message_to_frame
from .spool import read_spool, spool_path
from .transport import FramedConnection

#: Timers fired per reactor iteration before the loop re-checks the
#: socket. Compute chains (quantum -> occupy(0) -> next quantum) are
#: zero-delay timer loops; an uncapped drain would starve inbound steals.
MAX_TIMER_BATCH = 32


class _LiveTimer:
    """Heap entry duck-compatible with :class:`repro.sim.events.Event`."""

    __slots__ = ("time", "action", "arg", "cancelled")

    def __init__(self, time: float, action: Callable, arg: Any) -> None:
        self.time = time
        self.action = action
        self.arg = arg
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class WallTimerQueue:
    """Deadline heap over the monotonic clock; the env's ``queue``."""

    __slots__ = ("_t0", "_heap", "_seq")

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self._heap: list[tuple[float, int, _LiveTimer]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Wall seconds since this environment started."""
        return time.monotonic() - self._t0

    def push(self, time: float, action: Callable, tag: str = "",
             arg: Any = None) -> _LiveTimer:
        """Schedule ``action`` at wall time ``time`` (same shape as the
        simulator's ``queue.push``; ``tag`` is accepted and dropped)."""
        ev = _LiveTimer(time, action, arg)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def next_deadline(self) -> Optional[float]:
        """Earliest pending deadline (skips cancelled heads)."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def fire_due(self, limit: int = MAX_TIMER_BATCH) -> int:
        """Run up to ``limit`` timers whose deadline has passed."""
        fired = 0
        heap = self._heap
        while heap and fired < limit:
            when, _, ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                continue
            if when > self.now:
                break
            heapq.heappop(heap)
            fired += 1
            if ev.arg is not None:
                ev.action(ev.arg)
            else:
                ev.action()
        return fired


class LiveFaults:
    """Death knowledge fed by the supervisor's announcements.

    Duck-types the slice of :class:`repro.sim.faults.FaultController` the
    protocols consult: existence (``sim.faults is not None`` switches the
    fault machinery on) and the ``crashed`` pid set.
    """

    __slots__ = ("crashed",)

    def __init__(self) -> None:
        self.crashed: set[int] = set()


class LiveNetwork:
    """Stand-in for the simulator's network model: the wire is real, so
    nothing is priced here (``handler_cost`` exists because the base
    process consults it when scheduling message absorption)."""

    __slots__ = ()
    handler_cost = 0.0


class LiveEnv:
    """Execution environment of one live worker process."""

    live = True

    def __init__(self, pid: int, n: int, conn: FramedConnection, *,
                 mesh=None, seed: int = 0, fault_mode: bool = False,
                 run_dir: Optional[str] = None, metrics=None,
                 debug: bool = False) -> None:
        self.pid = pid
        self.n = n                      # pid slots (base fleet + max joins)
        self.conn = conn
        #: p2p data plane (repro.runtime.mesh.PeerMesh); None = star mode
        self.mesh = mesh
        self.seed = seed
        self.debug = debug
        self.metrics = metrics
        self.queue = WallTimerQueue()
        self.network = LiveNetwork()
        # full-width stats so per_process indexes like the simulator's;
        # only this pid's row accrues (the supervisor assembles the rest)
        self.stats = RunStats.create(n)
        self.faults: Optional[LiveFaults] = (LiveFaults() if fault_mode
                                             else None)
        self.run_dir = run_dir
        self.proc = None
        self._spool_cache: dict[int, Optional[dict]] = {}
        #: stamped onto every outbound ``msg`` frame as ``"j"`` when set —
        #: the :mod:`repro.serve` job hosts multiplex successive jobs over
        #: one warm fleet and use the tag to drop stragglers from an
        #: earlier job's epoch (None = single-job runs, no tag, no change)
        self.frame_tag: Optional[int] = None

    # -- wiring ----------------------------------------------------------------

    def attach(self, proc) -> None:
        """Adopt ``proc`` as the (single) process this env executes."""
        if proc.pid != self.pid:
            raise SimRuntimeError(
                f"env for pid {self.pid} cannot run pid {proc.pid}")
        proc.sim = self
        self.proc = proc

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.queue.now

    # -- transport -------------------------------------------------------------

    def transmit(self, msg: Message) -> None:
        """A protocol send: frame it toward the supervisor's router."""
        if not (0 <= msg.dst < self.n):
            raise SimRuntimeError(f"message to unknown process {msg.dst}")
        st = self.stats.per_process[self.pid]
        st.msgs_sent += 1
        st.bytes_sent += msg.size_bytes
        msg.send_time = self.now
        if msg.dst == self.pid:
            # self-sends loop locally through the timer queue (the router
            # would only echo the frame back)
            self.queue.push(self.now, self.proc._arrive, arg=msg)
            return
        frame = message_to_frame(msg)
        if self.frame_tag is not None:
            frame["j"] = self.frame_tag
        if self.mesh is not None:
            self.mesh.send(frame)
        else:
            self.conn.send_frame(frame)

    def deliver(self, msg: Message) -> None:
        """A routed frame arrived for our process."""
        self.proc._arrive(msg)

    # -- work accounting -------------------------------------------------------

    def note_work_done(self) -> None:
        if self.now > self.stats.work_done_time:
            self.stats.work_done_time = self.now

    # -- failure detection -----------------------------------------------------

    def is_crashed(self, pid: int) -> bool:
        return self.faults is not None and pid in self.faults.crashed

    def note_reliable_delivery(self, dst_pid: int, src_pid: int,
                               seq: int) -> None:
        """No-op: the live runtime's receive log is the on-disk spool,
        committed by the worker itself before every flush."""

    def mark_dead(self, pid: int) -> None:
        """Supervisor announced a death: absorb it and run the repair
        machinery exactly as the simulator's perfect FD would."""
        if self.faults is None or pid in self.faults.crashed:
            return
        self.faults.crashed.add(pid)
        proc = self.proc
        ch = getattr(proc, "_reliable", None)
        if ch is not None:
            # settles unacked transfers (recovering unlogged WORK via the
            # dead peer's spool) and feeds learn_dead -> splice/adopt
            ch.peer_crashed(pid)
        elif hasattr(proc, "learn_dead"):
            proc.learn_dead(pid)

    def mark_left(self, pid: int) -> None:
        """Supervisor announced a graceful leave.  Protocol-wise identical
        to a death — the peer's spool is final, its receive log complete,
        and the overlay must splice around it — but the supervisor keeps
        the distinction for the result accounting (a leaver is a survivor:
        it reported its stats before departing)."""
        self.mark_dead(pid)

    def peer_logged(self, dead_pid: int, src_pid: int, seq: int) -> bool:
        """Read the dead peer's write-ahead spool (its stable receive log).

        The spool is final by the time a death is announced — the process
        is gone, and its last commit hit the disk atomically — so the
        answer is cached.  A missing spool means the peer died before
        logging anything: recover everything.
        """
        if dead_pid not in self._spool_cache:
            self._spool_cache[dead_pid] = (
                read_spool(spool_path(self.run_dir, dead_pid))
                if self.run_dir else None)
        doc = self._spool_cache[dead_pid]
        if doc is None:
            return False
        return seq in doc.get("recv_log", {}).get(str(src_pid), ())


__all__ = ["LiveEnv", "LiveFaults", "LiveNetwork", "MAX_TIMER_BATCH",
           "WallTimerQueue"]
