"""Write-ahead state spools and exact work conservation for live runs.

The fault-tolerance suite proves an accounting identity on the simulator:
every work unit ends up processed, frozen in a dead worker's pool, stuck
in a dead worker's unacknowledged WORK transfer, or recorded as a
``crash_dropped`` piece — and the four places sum to the sequential node
count *exactly* (``tests/test_fault_tolerance.py``).  The simulator can
simply inspect a crashed process's memory; a SIGKILLed OS process leaves
none, so in fault mode each live worker maintains a **spool**: an
atomically replaced JSON snapshot of exactly the state the oracle needs —

* units processed so far,
* the local work pool,
* every unacknowledged outbound transfer (``dst, seq, kind, payload``),
* the reliable channel's receive log (``src -> delivered seqs``),
* any ``crash_dropped`` pieces.

**Write-ahead ordering** makes the snapshot consistent: the worker's
reactor commits the spool *before* flushing the socket bytes produced in
the same iteration.  A transfer only reaches the wire after it is spooled
as pending; an RACK only reaches the sender after the merged piece is
spooled in the pool.  Whatever instant ``kill -9`` lands, the last spool
on disk plus the receivers' logs partition the work with no gap and no
overlap — :func:`conserved_units_live` just adds the places up, mirroring
``conserved_units`` in the fault-tolerance tests.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..apps.base import Application
from .codec import from_wire, to_wire

#: Inner message kind whose payload carries a work piece.
_WORK = "WORK"


def spool_path(run_dir: str, pid: int) -> str:
    return os.path.join(run_dir, f"spool_{pid}.json")


def write_spool(path: str, doc: dict) -> None:
    """Atomically replace the spool (tmp + rename: a reader — or the
    post-mortem — sees the previous snapshot or this one, never a mix)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    os.replace(tmp, path)


def read_spool(path: str) -> Optional[dict]:
    """Load a spool; None when the worker died before its first commit."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def build_spool_doc(proc) -> dict:
    """Snapshot a worker's conservation-relevant state (see module doc)."""
    ch = proc._reliable
    out_pending = []
    recv_log: dict[str, list[int]] = {}
    if ch is not None:
        out_pending = [[xf.dst, xf.seq, xf.kind, to_wire(xf.payload)]
                       for xf in ch._pending.values()]
        recv_log = {str(src): sorted(seqs)
                    for src, seqs in ch._seen.items()}
    return {
        "pid": proc.pid,
        "processed": proc.stats.work_units,
        "pool": to_wire(proc.work),
        "out_pending": out_pending,
        "recv_log": recv_log,
        "crash_dropped": [to_wire(p) for p in proc.crash_dropped],
    }


def drain(work, app: Application, shared=None) -> int:
    """Sequentially finish a work pool, returning the units it held."""
    total = 0
    while not work.is_empty():
        out = app.process(work, 1 << 20, shared)
        if out.units <= 0:
            break
        total += out.units
    return total


def _logged(dst: int, src: int, seq: int, reports: dict[int, dict],
            spools: dict[int, dict]) -> bool:
    """Did ``dst`` log transfer ``seq`` from ``src``?  Survivors answer
    from their final reports, dead workers from their spools."""
    if dst in spools:
        log = spools[dst].get("recv_log", {})
    elif dst in reports:
        log = reports[dst].get("recv_log", {})
    else:
        return False
    return seq in log.get(str(src), ())


def conserved_units_live(app: Application, reports: dict[int, dict],
                         spools: dict[int, dict]) -> int:
    """Total units per the four-place accounting identity, live edition.

    ``reports``: surviving workers' final reports (``stats`` with
    ``work_units``, plus ``recv_log`` / ``crash_dropped``).  ``spools``:
    the last committed spool of each killed worker.
    """
    shared = app.make_shared()
    total = 0
    for rep in reports.values():                        # 1 — survivors
        total += rep["stats"]["work_units"]
        for piece in rep.get("crash_dropped", ()):      # 4
            total += drain(from_wire(piece), app, shared)
    for pid, doc in spools.items():
        total += doc["processed"]                       # 1 — pre-crash
        total += drain(from_wire(doc["pool"]), app, shared)   # 2
        for dst, seq, kind, payload in doc.get("out_pending", ()):
            if kind != _WORK:
                continue
            if not _logged(dst, pid, seq, reports, spools):   # 3
                total += drain(from_wire(payload)[0], app, shared)
        for piece in doc.get("crash_dropped", ()):      # 4 (died later)
            total += drain(from_wire(piece), app, shared)
    return total


__all__ = ["build_spool_doc", "conserved_units_live", "drain", "read_spool",
           "spool_path", "write_spool"]
