"""Live-run supervisor: spawn N workers, detect deaths, collect results.

One supervisor process per live run.  It owns the listener socket, spawns
``python -m repro.runtime.worker`` once per pid, and then acts as:

* **router** (star mode, the default) — workers hold a single connection
  each; the supervisor relays ``msg`` frames by destination pid.
  Relaying preserves arrival order per connection, so the per-(src, dst)
  FIFO property the tree termination argument relies on holds exactly as
  it does on the simulator (and on the paper's TCP testbed).
* **control plane** (``p2p=True``) — protocol traffic flows over direct
  worker<->worker connections (:mod:`repro.runtime.mesh`); the
  supervisor only spawns, runs the membership :class:`Registry` (each
  ``hello`` registers a worker's own data-plane endpoint, ``go`` hands
  every member its peers' addresses), injects faults, schedules elastic
  membership — mid-run **joins** (spawn a new worker, assign its overlay
  position, announce it) and graceful **leaves** (order a worker out; it
  drains its pool to its parent and reports ``left``) — and collects the
  final reports.
* **failure detector** — a worker EOF (or child exit) before its ``done``
  report is a death; the supervisor broadcasts ``dead`` announcements and
  the workers' repair machinery splices the overlay around the corpse.
  Fault injection is real: a planned kill delivers ``SIGKILL`` to the
  victim's OS process, either after a wall delay or once the victim's
  spool shows it has processed a minimum number of units (deterministic
  enough for CI).
* **collector** — ``done``/``left`` reports carry each worker's
  :class:`~repro.sim.stats.ProcessStats`, metrics snapshot and (fault
  mode) receive log; the supervisor assembles the same
  ``(ExperimentResult, RunStats)`` pair the simulator's
  :func:`~repro.experiments.runner.run_instrumented` returns, merges
  per-worker NDJSON trace shards into one schema-1 trace, and — in fault
  mode — evaluates the exact four-place work-conservation identity over
  the survivors' reports and the dead workers' spools
  (:func:`repro.runtime.spool.conserved_units_live`).

SIGINT/SIGTERM drain the fleet (broadcast abort-shutdown, grace period,
escalate to SIGTERM/SIGKILL) and release every socket; the ``finally``
teardown runs on all exits, so no code path leaks children or FDs.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from selectors import EVENT_READ, EVENT_WRITE, DefaultSelector
from typing import Optional

from ..experiments.runner import ExperimentResult, RunConfig
from ..obs.export import TraceWriter
from ..obs.registry import MetricsRegistry
from ..sim.errors import SimConfigError, SimRuntimeError
from ..sim.rng import RngStream
from ..sim.stats import RunStats
from ..sim.trace import CRASH, PARTITION
from .codec import stats_from_wire
from .spool import conserved_units_live, read_spool, spool_path
from .transport import (FramedConnection, open_listener, unlink_quietly)

#: Supervisor loop tick: bounds kill-trigger and watchdog latency.
_TICK_S = 0.05
#: Wall grace between an abort broadcast and SIGTERM, and between SIGTERM
#: and SIGKILL, during teardown.
_GRACE_S = 2.0

#: Protocols whose overlay supports elastic membership (grafted leaves).
_TREE_PROTOCOLS = ("TD", "TR", "BTD", "BTR")


class LiveRuntimeError(SimRuntimeError):
    """A live run failed (worker error, handshake timeout, ...)."""


class LiveAborted(Exception):
    """The run was interrupted (SIGINT/SIGTERM); workers were drained."""


@dataclass(slots=True)
class LiveConfig:
    """One live run (the wall-clock analogue of :class:`RunConfig`)."""

    protocol: str = "BTD"
    n: int = 4
    app: dict = field(default_factory=lambda: {"kind": "uts",
                                               "preset": "bin_tiny"})
    dmax: int = 10
    sharing: str = "proportional"
    quantum: int = 64
    seed: int = 0
    transport: str = "tcp"          # "tcp" (loopback) or "unix"
    host: str = "127.0.0.1"
    port: int = 0                   # preferred port; 0 = ephemeral
    run_dir: Optional[str] = None   # artifacts dir (default: a tempdir)
    trace: bool = False             # per-worker NDJSON shards + merged trace
    fault_tolerance: bool = False   # reliable channel + spools + repair
    #: peer-to-peer data plane: workers exchange protocol frames over
    #: direct connections; the supervisor is control plane only
    p2p: bool = False
    #: preferred data-plane TCP port for pid p is ``peer_port_base + p``
    #: (0 = every worker binds an ephemeral port)
    peer_port_base: int = 0
    #: planned mid-run joins (p2p only): each ``{"pid": p, "after_s": t}``
    #: with consecutive pids n, n+1, ... — the supervisor spawns the
    #: worker t seconds after ``go``, assigns its overlay position and
    #: announces it to the fleet
    joins: tuple = ()
    #: planned graceful leaves (p2p only): each ``{"pid": p, "after_s": t}``
    #: — the worker drains its pool to its parent and departs
    leaves: tuple = ()
    #: planned SIGKILLs: each ``{"pid": p, "after_s": t}`` or
    #: ``{"pid": p, "after_units": u}`` (kill once p's spool shows >= u
    #: processed units — the deterministic choice for tests/CI)
    kills: tuple = ()
    #: planned network partitions: each ``{"side": [pids], "start_s": t0,
    #: "end_s": t1}`` (wall seconds after ``go``).  While a window is
    #: active every ``msg`` frame crossing the cut is dropped — by the
    #: star router, or sender-side by each worker's mesh — iptables-free
    #: splits at the transport layer.  Control frames (``go``/``dead``/
    #: ``shutdown``/membership news) always flow: the supervisor itself is
    #: never partitioned from its workers, only workers from each other,
    #: so death announcements and spool recovery keep the ``kill -9``
    #: guarantee across splits.
    partitions: tuple = ()
    timeout_s: float = 120.0
    #: live pacing overrides forwarded to the workers (None = the live
    #: defaults in :mod:`repro.runtime.worker`)
    ack_timeout: Optional[float] = None
    wave_retry: Optional[float] = None
    probe_retry: Optional[float] = None
    #: reliable-channel breaker overrides (None = the worker defaults:
    #: legacy backoff ceiling, threshold 4)
    ack_max_backoff: Optional[float] = None
    breaker_threshold: Optional[int] = None

    @property
    def slots(self) -> int:
        """Total pid slots: the base fleet plus every planned join."""
        return self.n + len(self.joins)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise SimConfigError("n must be >= 1")
        if self.transport not in ("tcp", "unix"):
            raise SimConfigError(f"unknown transport {self.transport!r}")
        for k in self.kills:
            pid = k.get("pid")
            if not isinstance(pid, int) or not (0 < pid < self.n):
                raise SimConfigError(
                    f"kill target must be a non-root pid < n, got {k!r}")
            if ("after_s" in k) == ("after_units" in k):
                raise SimConfigError(
                    f"kill needs exactly one of after_s/after_units: {k!r}")
        if self.kills and not self.fault_tolerance:
            raise SimConfigError(
                "planned kills require fault_tolerance=True")
        if self.joins or self.leaves:
            if not self.p2p:
                raise SimConfigError(
                    "elastic membership (joins/leaves) requires p2p=True")
            if not self.fault_tolerance:
                raise SimConfigError(
                    "elastic membership requires fault_tolerance=True "
                    "(joins/leaves ride the splice/adopt machinery)")
            if self.protocol not in _TREE_PROTOCOLS:
                raise SimConfigError(
                    f"elastic membership needs a tree protocol "
                    f"({'/'.join(_TREE_PROTOCOLS)}), not {self.protocol}")
        join_pids = sorted(j.get("pid") for j in self.joins)
        if join_pids != list(range(self.n, self.n + len(self.joins))):
            raise SimConfigError(
                f"join pids must be consecutive from n={self.n}, "
                f"got {join_pids}")
        for j in self.joins:
            t = j.get("after_s")
            if not isinstance(t, (int, float)) or t < 0:
                raise SimConfigError(f"join needs after_s >= 0: {j!r}")
        kill_pids = {k["pid"] for k in self.kills}
        seen_leave: set[int] = set()
        for lv in self.leaves:
            pid, t = lv.get("pid"), lv.get("after_s")
            if not isinstance(pid, int) or not (0 < pid < self.slots):
                raise SimConfigError(
                    f"leave target must be a non-root pid < n + joins, "
                    f"got {lv!r}")
            if pid in seen_leave:
                raise SimConfigError(f"duplicate leave for pid {pid}")
            if pid in kill_pids:
                raise SimConfigError(
                    f"pid {pid} cannot both leave and be killed")
            if not isinstance(t, (int, float)) or t < 0:
                raise SimConfigError(f"leave needs after_s >= 0: {lv!r}")
            seen_leave.add(pid)
        for p in self.partitions:
            side = p.get("side")
            if (not isinstance(side, (list, tuple)) or not side
                    or any(not isinstance(q, int)
                           or not (0 <= q < self.slots) for q in side)):
                raise SimConfigError(
                    f"partition side must be a nonempty list of pids < "
                    f"n + joins, got {p!r}")
            uniq = set(side)
            if len(uniq) != len(side):
                raise SimConfigError(f"partition side has duplicates: {p!r}")
            if len(uniq) >= self.slots:
                raise SimConfigError(
                    f"partition side must leave the other island nonempty "
                    f"(n={self.n}): {p!r}")
            t0, t1 = p.get("start_s"), p.get("end_s")
            if (not isinstance(t0, (int, float))
                    or not isinstance(t1, (int, float))
                    or not 0 <= t0 < t1):
                raise SimConfigError(
                    f"partition needs 0 <= start_s < end_s: {p!r}")
        if self.partitions and not self.fault_tolerance:
            raise SimConfigError(
                "planned partitions require fault_tolerance=True")

    def run_config(self) -> RunConfig:
        """The equivalent simulator configuration (cross-validation)."""
        return RunConfig(protocol=self.protocol, n=self.n, dmax=self.dmax,
                         sharing=self.sharing, quantum=self.quantum,
                         seed=self.seed)


class Registry:
    """P2p membership ledger: who exists, where, and under whom.

    The supervisor is the single writer; workers only ever see snapshots
    (the ``go`` frame) and incremental announcements (``join``/``dead``/
    ``left``), which is what makes the grafted overlay consistent
    fleet-wide: every member applies the same ordered join sequence.
    """

    def __init__(self, cfg: LiveConfig) -> None:
        self.cfg = cfg
        self.endpoints: dict[int, dict] = {}   # pid -> data-plane endpoint
        self.graft_parent: dict[int, int] = {}
        self.grafts: list[tuple[int, int]] = []   # ordered join history
        self.dead: set[int] = set()
        self.left: set[int] = set()

    def registered(self, pid: int) -> bool:
        return pid in self.endpoints

    def register(self, pid: int, endpoint: Optional[dict]) -> None:
        """Record one worker's hello; duplicate registrations are refused
        (the runtime drops the impostor connection instead of raising)."""
        if pid in self.endpoints:
            raise LiveRuntimeError(f"duplicate hello from pid {pid}")
        if endpoint is None:
            raise LiveRuntimeError(
                f"p2p worker {pid} sent no data-plane endpoint")
        self.endpoints[pid] = endpoint

    def assign_parent(self, pid: int) -> int:
        """The static overlay position of joiner ``pid``.

        Deterministic per (protocol, seed, pid) and always ``< pid``, so
        the extended parent vector stays a valid parent-before-child
        encoding on every member: TD trees keep packing by the degree
        bound, random trees keep drawing uniform earlier nodes — the same
        rule that built the base overlay.  Liveness is irrelevant: a
        joiner whose static parent died ATTACHes to the nearest live
        ancestor, exactly like a post-crash splice.
        """
        if self.cfg.protocol.endswith("TD"):
            return (pid - 1) // max(1, self.cfg.dmax)
        return RngStream(self.cfg.seed, "join-parent", pid).randrange(pid)

    def add_join(self, pid: int, parent: int) -> None:
        self.graft_parent[pid] = parent
        self.grafts.append((pid, parent))

    def mark_dead(self, pid: int) -> None:
        self.dead.add(pid)

    def mark_left(self, pid: int) -> None:
        self.left.add(pid)

    def peers(self) -> dict[int, dict]:
        """Current members' data-plane endpoints (the ``go`` peers map)."""
        return {pid: ep for pid, ep in self.endpoints.items()
                if pid not in self.dead and pid not in self.left}


@dataclass(slots=True)
class LiveResult:
    """Everything a live run produced."""

    result: ExperimentResult        # same shape the simulator returns
    stats: RunStats                 # per-process counters (wall seconds)
    metrics: MetricsRegistry        # merged across workers
    conserved: Optional[int]        # fault mode: the four-place identity
    killed: tuple[int, ...]         # pids actually SIGKILLed
    #: artefacts dir.  When it was a default tempdir and the run completed
    #: cleanly without tracing, the dir is removed before return (nothing
    #: in the result points into it); the path is kept for reference.
    run_dir: str
    trace_path: Optional[str]
    reports: dict                   # pid -> final worker report
    spools: dict                    # pid -> last spool of each dead worker
    wall_s: float                   # supervisor wall time, spawn to reap
    joined: tuple[int, ...] = ()    # pids that joined mid-run
    left: tuple[int, ...] = ()      # pids that left gracefully
    #: per-link traffic: (src, dst) -> (frames, stated payload bytes) —
    #: relay counts in star mode, worker-reported mesh counts in p2p
    links: dict = field(default_factory=dict)


class _Worker:
    __slots__ = ("pid", "popen", "conn", "done", "bye", "dead", "closed",
                 "kill_at", "kill_units", "killed_at", "joiner",
                 "announced", "left", "leave_at", "leave_sent")

    def __init__(self, pid: int, popen: subprocess.Popen) -> None:
        self.pid = pid
        self.popen = popen
        self.conn: Optional[FramedConnection] = None
        self.done = False
        self.bye = False
        self.dead = False          # died mid-run (crash semantics)
        self.closed = False        # orderly post-shutdown close
        self.kill_at: Optional[float] = None
        self.kill_units: Optional[int] = None
        self.killed_at: Optional[float] = None
        self.joiner = False        # spawned mid-run (elastic membership)
        self.announced = False     # fleet has heard of this joiner
        self.left = False          # departed gracefully (still a survivor)
        self.leave_at: Optional[float] = None
        self.leave_sent = False


def _worker_json(cfg: LiveConfig, pid: int, endpoint: dict, run_dir: str,
                 join_parent: Optional[int] = None) -> str:
    run: dict = {"protocol": cfg.protocol, "n": cfg.n, "dmax": cfg.dmax,
                 "sharing": cfg.sharing, "quantum": cfg.quantum,
                 "seed": cfg.seed}
    for name in ("ack_timeout", "wave_retry", "probe_retry",
                 "ack_max_backoff", "breaker_threshold"):
        v = getattr(cfg, name)
        if v is not None:
            run[name] = v
    doc = {
        "pid": pid, "endpoint": endpoint, "run": run, "app": cfg.app,
        "fault_mode": cfg.fault_tolerance, "run_dir": run_dir,
        "trace": cfg.trace, "timeout_s": cfg.timeout_s,
    }
    if cfg.p2p:
        doc["p2p"] = True
        doc["slots"] = cfg.slots
        doc["transport"] = cfg.transport
        doc["host"] = cfg.host
        doc["peer_port"] = (cfg.peer_port_base + pid
                            if cfg.peer_port_base else 0)
        if join_parent is not None:
            doc["join"] = {"parent": join_parent}
    return json.dumps(doc)


def _spawn_one(cfg: LiveConfig, pid: int, endpoint: dict, run_dir: str,
               join_parent: Optional[int] = None) -> _Worker:
    import repro
    env = os.environ.copy()
    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    log = open(os.path.join(run_dir, f"worker_{pid}.log"), "wb")
    try:
        popen = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.worker",
             _worker_json(cfg, pid, endpoint, run_dir, join_parent)],
            stdout=log, stderr=subprocess.STDOUT, env=env)
    finally:
        log.close()   # the child holds its own descriptor now
    w = _Worker(pid, popen)
    w.joiner = join_parent is not None
    for k in cfg.kills:
        if k["pid"] == pid:
            w.kill_at = k.get("after_s")
            w.kill_units = k.get("after_units")
    for lv in cfg.leaves:
        if lv["pid"] == pid:
            w.leave_at = lv["after_s"]
    return w


def _spawn(cfg: LiveConfig, endpoint: dict, run_dir: str) -> list[_Worker]:
    return [_spawn_one(cfg, pid, endpoint, run_dir)
            for pid in range(cfg.n)]


def run_live(cfg: LiveConfig) -> LiveResult:
    """Execute one live run to completion (see module docstring)."""
    t_start = time.monotonic()
    run_dir = cfg.run_dir or tempfile.mkdtemp(prefix="repro-live-")
    os.makedirs(run_dir, exist_ok=True)
    unix_path = (os.path.join(run_dir, "supervisor.sock")
                 if cfg.transport == "unix" else None)
    listener, endpoint = open_listener(cfg.transport, host=cfg.host,
                                       port=cfg.port, path=unix_path)
    listener.setblocking(False)

    interrupted: list[int] = []
    restore: list[tuple] = []
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, _frame):
            interrupted.append(signum)
        for signum in (signal.SIGINT, signal.SIGTERM):
            restore.append((signum, signal.signal(signum, _on_signal)))

    workers = _spawn(cfg, endpoint, run_dir)
    registry = Registry(cfg)
    by_conn: dict = {}
    sel = DefaultSelector()
    sel.register(listener, EVENT_READ, "listener")
    deadline = time.monotonic() + cfg.timeout_s
    t_go: Optional[float] = None
    t_go_epoch: Optional[float] = None
    reports: dict[int, dict] = {}
    hellos = 0
    shutdown_sent = False
    # elastic membership schedule: one join in flight at a time so the
    # announced graft sequence is totally ordered
    join_queue = sorted(cfg.joins, key=lambda j: j["after_s"])
    join_pending: Optional[int] = None   # pid spawned, hello not yet seen
    # per-link relay accounting (star mode; p2p sums worker reports)
    star_links: dict[tuple[int, int], list] = {}
    # precomputed partition windows; dropped[i] counts frames rule i ate
    part_windows = tuple((frozenset(p["side"]), p["start_s"], p["end_s"])
                         for p in cfg.partitions)
    part_dropped = [0] * len(part_windows)

    def partition_cut(src: int, dst: int) -> bool:
        """Does an active partition window sever the (src, dst) link?"""
        if t_go is None or not part_windows:
            return False
        t = time.monotonic() - t_go
        for i, (side, t0, t1) in enumerate(part_windows):
            if t0 <= t < t1 and (src in side) != (dst in side):
                part_dropped[i] += 1
                return True
        return False

    def broadcast(frame: dict, skip: int = -1) -> None:
        for w in workers:
            if (w.conn is not None and not w.dead and not w.closed
                    and not w.left and w.pid != skip):
                w.conn.send_frame(frame)

    def go_frame(elapsed: float = 0.0) -> dict:
        """The start frame: membership snapshot + shifted fault schedule.

        A mid-run joiner's partition windows are expressed relative to
        *its* go instant, so the fleet-wide wall windows line up."""
        if not cfg.p2p:
            return {"t": "go"}
        return {
            "t": "go",
            "peers": {str(p): ep for p, ep in registry.peers().items()},
            "grafts": [[a, b] for a, b in registry.grafts],
            "dead": sorted(registry.dead),
            "left": sorted(registry.left),
            "partitions": [[sorted(p["side"]), p["start_s"] - elapsed,
                            p["end_s"] - elapsed]
                           for p in cfg.partitions],
        }

    def drop_conn(w: _Worker) -> None:
        if w.conn is not None:
            try:
                sel.unregister(w.conn.sock)
            except KeyError:
                pass
            w.conn.close()

    def handle_frames(w: _Worker) -> None:
        for frame in w.conn.receive():
            t = frame.get("t")
            if t == "msg":
                if partition_cut(frame["src"], frame["dst"]):
                    continue   # severed link: the frame dies at the router
                link = star_links.setdefault((frame["src"], frame["dst"]),
                                             [0, 0])
                link[0] += 1
                link[1] += frame.get("b", 0)
                dst = workers[frame["dst"]]
                if (dst.conn is not None and not dst.dead
                        and not dst.closed):
                    dst.conn.send_frame(frame)
            elif t == "done":
                w.done = True
                reports[w.pid] = frame
            elif t == "left":
                w.left = True
                w.done = True   # a leaver is finished for shutdown purposes
                reports[w.pid] = frame
                registry.mark_left(w.pid)
                broadcast({"t": "left", "pid": w.pid}, skip=w.pid)
            elif t == "bye":
                w.bye = True
                rep = reports.setdefault(w.pid, {})
                for fld in ("recv_log", "crash_dropped"):
                    if fld in frame:
                        rep[fld] = frame[fld]

    def on_death(w: _Worker) -> None:
        nonlocal join_pending
        if w.dead:
            return
        w.dead = True
        if join_pending == w.pid:
            join_pending = None   # joiner died pre-hello: unblock the queue
        drop_conn(w)
        registry.mark_dead(w.pid)
        if w.killed_at is None and not cfg.fault_tolerance:
            raise LiveRuntimeError(
                f"worker {w.pid} died unexpectedly "
                f"(exit {w.popen.poll()}); see {run_dir}/worker_{w.pid}.log")
        if not w.joiner or w.announced:
            broadcast({"t": "dead", "pid": w.pid})
        # a joiner that died before its hello was never announced:
        # nobody grafted it, so nobody needs the news

    def absorb_hello(conn: FramedConnection, frame: dict) -> None:
        nonlocal hellos, join_pending
        hp = frame["pid"]
        w = workers[hp]
        if w.conn is not None or (cfg.p2p and registry.registered(hp)):
            # duplicate hello: keep the first registration, drop this one
            try:
                sel.unregister(conn.sock)
            except KeyError:
                pass
            conn.close()
            return
        if cfg.p2p:
            registry.register(hp, frame.get("peer"))
        w.conn = conn
        sel.modify(conn.sock, EVENT_READ, w)
        if not w.joiner:
            hellos += 1
            return
        # a joiner checked in: announce it to the fleet *before* its own
        # go — members buffer any data-plane frames from a pid they have
        # not been introduced to, so either order is safe, but this one
        # minimises buffering
        parent = registry.graft_parent[hp]
        w.announced = True
        broadcast({"t": "join", "pid": hp, "parent": parent,
                   "endpoint": registry.endpoints.get(hp)}, skip=hp)
        elapsed = time.monotonic() - t_go if t_go is not None else 0.0
        w.conn.send_frame(go_frame(elapsed))
        join_pending = None

    try:
        while True:
            if interrupted:
                raise LiveAborted(signal.Signals(interrupted[0]).name)
            if time.monotonic() > deadline:
                raise LiveRuntimeError(
                    f"live run exceeded timeout_s={cfg.timeout_s}; "
                    f"worker logs in {run_dir}")

            for w in workers:
                if w.conn is not None and not w.dead and not w.closed:
                    flags = EVENT_READ | (EVENT_WRITE if w.conn.wants_write
                                          else 0)
                    sel.modify(w.conn.sock, flags, w)
            for key, mask in sel.select(timeout=_TICK_S):
                if key.data == "listener":
                    try:
                        sock, _addr = listener.accept()
                    except OSError:
                        continue
                    conn = FramedConnection(sock)
                    by_conn[sock] = conn
                    sel.register(sock, EVENT_READ, conn)
                    continue
                if isinstance(key.data, FramedConnection):
                    # pre-hello connection: wait for its pid
                    conn = key.data
                    for frame in conn.receive():
                        if frame.get("t") == "hello":
                            absorb_hello(conn, frame)
                            if conn.closed:
                                break
                    if not conn.closed and conn.eof:
                        sel.unregister(conn.sock)
                        conn.close()
                    continue
                w = key.data
                if w.dead or w.closed:
                    continue   # stale event from earlier in this batch
                if mask & EVENT_WRITE:
                    w.conn.flush()
                handle_frames(w)
                if w.conn.eof:
                    if w.left or (shutdown_sent and w.done):
                        w.closed = True   # orderly exit, not a death
                        drop_conn(w)
                    else:
                        on_death(w)

            if t_go is None and hellos == cfg.n:
                t_go = time.monotonic()
                t_go_epoch = time.time()
                deadline = t_go + cfg.timeout_s
                broadcast(go_frame())

            # planned fault injection (only before the victim reports done)
            if t_go is not None:
                for w in workers:
                    if (w.killed_at is not None or w.dead or w.done
                            or (w.kill_at is None and w.kill_units is None)):
                        continue
                    due = (w.kill_at is not None
                           and time.monotonic() - t_go >= w.kill_at)
                    if not due and w.kill_units is not None:
                        doc = read_spool(spool_path(run_dir, w.pid))
                        due = (doc is not None
                               and doc["processed"] >= w.kill_units)
                    if due:
                        w.killed_at = time.monotonic() - t_go
                        try:
                            os.kill(w.popen.pid, signal.SIGKILL)
                        except OSError:
                            pass

                # elastic membership: spawn the next due join (one at a
                # time: the graft sequence must be totally ordered), order
                # due leaves out
                if (join_queue and join_pending is None
                        and not shutdown_sent
                        and time.monotonic() - t_go
                        >= join_queue[0]["after_s"]):
                    spec = join_queue.pop(0)
                    jpid = spec["pid"]
                    parent = registry.assign_parent(jpid)
                    registry.add_join(jpid, parent)
                    w = _spawn_one(cfg, jpid, endpoint, run_dir,
                                   join_parent=parent)
                    workers.append(w)
                    join_pending = jpid
                for w in workers:
                    if (w.leave_at is None or w.leave_sent or w.dead
                            or w.done or w.conn is None):
                        continue
                    if time.monotonic() - t_go >= w.leave_at:
                        w.leave_sent = True
                        w.conn.send_frame({"t": "leave"})

            for w in workers:
                if (not w.dead and not w.closed
                        and w.popen.poll() is not None):
                    # child exited; drain whatever it flushed before dying
                    if w.conn is not None:
                        handle_frames(w)
                    if w.left or (shutdown_sent and w.done):
                        w.closed = True
                        drop_conn(w)
                    else:
                        on_death(w)

            alive = [w for w in workers if not w.dead]
            if not alive:
                raise LiveRuntimeError(
                    f"all {cfg.n} workers died; logs in {run_dir}")
            if (not shutdown_sent and t_go is not None
                    and join_pending is None
                    and all(w.done for w in alive)):
                shutdown_sent = True
                broadcast({"t": "shutdown"})
            if shutdown_sent and all(w.popen.poll() is not None
                                     for w in alive):
                for w in alive:   # catch final frames still buffered
                    if not w.closed and w.conn is not None:
                        handle_frames(w)
                        drop_conn(w)
                break
    except LiveAborted:
        broadcast({"t": "shutdown", "abort": True})
        for w in workers:
            if w.conn is not None:
                w.conn.flush()
        _reap(workers)
        raise
    finally:
        _reap(workers)
        for w in workers:
            if w.conn is not None:
                w.conn.close()
        for sock, conn in by_conn.items():
            conn.close()
        sel.close()
        listener.close()
        unlink_quietly(unix_path)
        if cfg.p2p and cfg.transport == "unix":
            for w in workers:
                unlink_quietly(os.path.join(run_dir, f"peer_{w.pid}.sock"))
        for signum, handler in restore:
            signal.signal(signum, handler)

    killed = tuple(sorted(w.pid for w in workers if w.killed_at is not None))
    for w in workers:
        code = w.popen.returncode
        if w.killed_at is None and code != 0:
            raise LiveRuntimeError(
                f"worker {w.pid} exited with {code}; "
                f"see {run_dir}/worker_{w.pid}.log")
        if not w.dead and w.pid not in reports:
            raise LiveRuntimeError(f"worker {w.pid} never reported done")

    out = _assemble(cfg, run_dir, workers, reports, killed,
                    t_go_epoch if t_go_epoch is not None else time.time(),
                    time.monotonic() - t_start, sum(part_dropped),
                    star_links)
    if cfg.run_dir is None and not cfg.trace:
        # the default tempdir's artefacts (logs, spools) are all absorbed
        # into the result by now; on a clean run nothing points back into
        # it, so it is removed instead of leaking one dir per run.  Any
        # failure raises before this line — the logs survive for
        # debugging — and an explicit cfg.run_dir is the user's to keep.
        # Traced runs keep theirs too: result.trace_path lives inside.
        shutil.rmtree(run_dir, ignore_errors=True)
    return out


def _reap(workers: list[_Worker]) -> None:
    """Terminate-then-kill every still-running child; always reap."""
    for sig, grace in ((signal.SIGTERM, _GRACE_S), (signal.SIGKILL, None)):
        alive = [w for w in workers if w.popen.poll() is None]
        if not alive:
            return
        for w in alive:
            try:
                w.popen.send_signal(sig)
            except OSError:
                pass
        end = time.monotonic() + (grace or _GRACE_S)
        for w in alive:
            try:
                w.popen.wait(timeout=max(0.0, end - time.monotonic()))
            except subprocess.TimeoutExpired:
                pass
    for w in workers:   # pragma: no cover - SIGKILL cannot be survived
        if w.popen.poll() is None:
            w.popen.wait()


# -- result assembly ---------------------------------------------------------

def _absorb_snapshot(reg: MetricsRegistry, snap: dict) -> None:
    """Merge one worker's metrics snapshot into the run registry."""
    for name, s in snap.items():
        kind = s.get("type")
        if kind == "counter":
            reg.counter(name).inc(s["value"])
        elif kind == "gauge":
            g = reg.gauge(name)
            g.set(max(g.value, s["value"]))
        elif kind == "histogram":
            edges = [b["le"] for b in s["buckets"]]
            h = reg.histogram(name, edges=edges)
            for i, b in enumerate(s["buckets"]):
                h.counts[i] += b["count"]
            h.counts[-1] += s["overflow"]
            h.count += s["count"]
            h.total += s["total"]
            for attr, pick in (("min", min), ("max", max)):
                v = s[attr]
                if v is not None:
                    cur = getattr(h, attr)
                    setattr(h, attr, v if cur is None else pick(cur, v))


def _read_shard_samples(path: str) -> tuple[dict, list]:
    """Leniently read one worker's trace shard.

    A killed worker's shard has no footer (the writer died mid-run);
    that is expected, so this reader takes every well-formed sample line
    and ignores a torn tail instead of refusing the file.
    """
    meta: dict = {}
    samples: list = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                try:
                    rec = json.loads(line)
                except ValueError:
                    break   # torn tail of a SIGKILLed writer
                if rec.get("record") == "header":
                    meta = rec.get("meta", {})
                elif rec.get("record") == "sample":
                    samples.append((rec["t"], rec["pid"], rec["kind"],
                                    rec["v"]))
    except OSError:
        pass
    return meta, samples


def _merge_traces(cfg: LiveConfig, run_dir: str, workers: list[_Worker],
                  reports: dict, t_go_epoch: float) -> Optional[str]:
    if not cfg.trace:
        return None
    t0s: dict[int, float] = {}
    shards: dict[int, list] = {}
    for w in workers:
        meta, samples = _read_shard_samples(
            os.path.join(run_dir, f"trace_{w.pid}.ndjson"))
        shards[w.pid] = samples
        t0s[w.pid] = float(meta.get("t0_epoch", t_go_epoch))
    base = min(t0s.values(), default=t_go_epoch)
    merged = []
    for pid, samples in shards.items():
        off = t0s[pid] - base
        merged.extend((t + off, pid, kind, v) for t, _p, kind, v in samples)
    for w in workers:
        if w.killed_at is not None:
            merged.append((w.killed_at + (t_go_epoch - base), w.pid,
                           CRASH, 0.0))
    for i, p in enumerate(cfg.partitions):
        # same encoding as the simulator: +(i+1) at the cut, -(i+1) at
        # the heal, stamped on pid 0's timeline
        off = t_go_epoch - base
        merged.append((p["start_s"] + off, 0, PARTITION, float(i + 1)))
        merged.append((p["end_s"] + off, 0, PARTITION, float(-(i + 1))))
    merged.sort(key=lambda s: (s[0], s[1]))
    out = os.path.join(run_dir, "trace.ndjson")
    with TraceWriter(out, meta={"live": True, "protocol": cfg.protocol,
                                "n": cfg.n, "seed": cfg.seed,
                                "app": cfg.app,
                                "merged_shards": len(workers),
                                "killed": sorted(
                                    w.pid for w in workers
                                    if w.killed_at is not None)}) as tw:
        for t, pid, kind, v in merged:
            tw.record(t, pid, kind, v)
    return out


def _assemble(cfg: LiveConfig, run_dir: str, workers: list[_Worker],
              reports: dict, killed: tuple[int, ...], t_go_epoch: float,
              wall_s: float, part_dropped: int = 0,
              star_links: Optional[dict] = None) -> LiveResult:
    spools = {}
    for w in workers:
        if w.dead:
            doc = read_spool(spool_path(run_dir, w.pid))
            if doc is not None:
                spools[w.pid] = doc

    stats = RunStats.create(cfg.slots)
    t0s = {pid: float(rep.get("t0", t_go_epoch))
           for pid, rep in reports.items() if "t0" in rep}
    base = min(t0s.values(), default=t_go_epoch)
    makespan = 0.0
    work_done = 0.0
    optimum = None
    for pid, rep in reports.items():
        if "stats" not in rep:
            continue
        ps = stats_from_wire(rep["stats"], pid)
        off = t0s.get(pid, t_go_epoch) - base
        if ps.finish_time > 0.0:
            ps.finish_time += off
        makespan = max(makespan, ps.finish_time)
        work_done = max(work_done, rep.get("work_done", 0.0) + off)
        stats.per_process[pid] = ps
        opt = rep.get("optimum")
        if opt is not None and (optimum is None or opt < optimum):
            optimum = opt
    for w in workers:
        if not w.dead:
            continue
        ps = stats.per_process[w.pid]
        ps.crashes = 1
        if w.killed_at is not None:
            ps.crash_time = w.killed_at + (t_go_epoch - base)
        doc = spools.get(w.pid)
        if doc is not None:
            # the dead worker's processed units count, exactly as the
            # simulator's stats keep counting up to the crash instant
            ps.work_units = doc["processed"]
    stats.makespan = makespan if makespan > 0.0 else wall_s
    stats.work_done_time = work_done
    stats.seal()

    # per-link traffic: the star supervisor counted while relaying; p2p
    # workers counted at their own mesh and reported
    links: dict[tuple[int, int], tuple[int, int]] = {}
    if cfg.p2p:
        for pid, rep in reports.items():
            for dst, counts in rep.get("links", {}).items():
                links[(pid, int(dst))] = (int(counts[0]), int(counts[1]))
        part_dropped = sum(rep.get("part_drops", 0)
                           for rep in reports.values())
    elif star_links:
        links = {k: tuple(v) for k, v in star_links.items()}

    metrics = MetricsRegistry()
    for rep in reports.values():
        if "metrics" in rep:
            _absorb_snapshot(metrics, rep["metrics"])
    metrics.gauge("engine.makespan_s").set(stats.makespan)
    if killed:
        metrics.counter("engine.crashes").inc(len(killed))
    if part_dropped:
        metrics.counter("live.partition_drops").inc(part_dropped)

    conserved = None
    if cfg.fault_tolerance:
        from .worker import build_app
        app, _label = build_app(cfg.app)
        conserved = conserved_units_live(app, reports, spools)

    lost, dup, rexmit, crashes, repairs = stats.fault_totals()
    result = ExperimentResult(
        protocol=cfg.protocol, n=cfg.n, makespan=stats.makespan,
        work_done_time=stats.work_done_time,
        total_units=stats.total_work_units, total_msgs=stats.total_msgs,
        total_steals=stats.total_steals, msgs_by_pid=stats.msgs_by_pid(),
        optimum=optimum, events=0, msgs_lost=lost + part_dropped,
        msgs_duplicated=dup, retransmits=rexmit, crashes=crashes,
        repairs=repairs, breaker_opens=stats.total_breaker_opens())

    trace_path = _merge_traces(cfg, run_dir, workers, reports, t_go_epoch)
    return LiveResult(result=result, stats=stats, metrics=metrics,
                      conserved=conserved, killed=killed, run_dir=run_dir,
                      trace_path=trace_path, reports=reports, spools=spools,
                      wall_s=wall_s,
                      joined=tuple(sorted(w.pid for w in workers
                                          if w.joiner)),
                      left=tuple(sorted(w.pid for w in workers if w.left)),
                      links=links)


__all__ = ["LiveAborted", "LiveConfig", "LiveResult", "LiveRuntimeError",
           "Registry", "run_live"]
