"""Network cost model: clusters, latency, bandwidth, handler occupancy.

The model reproduces the *relative* cost structure of the paper's testbed
(two Grid'5000 clusters over InfiniBand-20G):

* intra-cluster latency  ``lat_intra``  (a few tens of microseconds),
* inter-cluster latency  ``lat_inter``  (an order of magnitude higher),
* serialisation time     ``size / bandwidth``,
* a per-message CPU *handler cost* charged to the receiving process
  (:class:`repro.core.worker.Worker` uses it). Handler occupancy is what
  saturates a master that 1000 workers hammer with fine-grain requests —
  the effect behind the paper's Fig. 4.

Process placement mirrors the paper's setup: peers are thrown at random on
reserved cores; runs with fewer than ``c2_threshold`` peers use cluster C1
only, larger runs spill onto C2 (paper §IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .errors import SimConfigError
from .rng import RngStream, derive_seed

#: Maps a 63-bit ``derive_seed`` value onto [0, 1).
_INV_2_63 = 2.0 ** -63


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """A named homogeneous cluster with a core budget."""

    name: str
    cores: int

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise SimConfigError(f"cluster {self.name!r} must have cores > 0")


@dataclass(slots=True)
class NetworkModel:
    """Pairwise message cost model over a set of clusters.

    Args:
        clusters: ordered cluster list; placement fills them in order.
        lat_intra: one-way latency between two processes of one cluster (s).
        lat_inter: one-way latency across clusters (s).
        bandwidth: link bandwidth in bytes/second.
        handler_cost: CPU time the receiver spends absorbing one message (s).
        jitter: if > 0, each delivery adds Exp(1/ (jitter*latency)) noise —
            used by the failure-injection tests to reorder messages. Draws
            are keyed on (src, per-source send index) rather than taken
            from one sequential stream, so a delivery's noise is a pure
            function of who sent it and how many jittered sends that
            source made before — independent of the global interleaving
            of *other* senders. Sharded runs rely on this: each shard
            reproduces exactly the draws of its own sources.
        c2_threshold: runs needing at least this many processes also use the
            second cluster (paper: 800).
    """

    clusters: tuple[ClusterSpec, ...]
    lat_intra: float = 5.0e-5
    lat_inter: float = 5.0e-4
    bandwidth: float = 2.0e9
    handler_cost: float = 1.0e-5
    jitter: float = 0.0
    c2_threshold: int = 800
    _placement: dict[int, int] = field(default_factory=dict, repr=False)
    _jitter_base: int | None = field(default=None, repr=False)
    _jitter_counts: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.clusters:
            raise SimConfigError("need at least one cluster")
        if self.lat_intra < 0 or self.lat_inter < 0:
            raise SimConfigError("latencies must be >= 0")
        if self.bandwidth <= 0:
            raise SimConfigError("bandwidth must be > 0")
        if self.handler_cost < 0:
            raise SimConfigError("handler_cost must be >= 0")

    # -- placement ---------------------------------------------------------

    def place(self, n_processes: int, seed: int = 0) -> None:
        """Assign ``n_processes`` to clusters with seeded random placement.

        Small runs (< ``c2_threshold``) stay on the first cluster when it has
        capacity, mirroring the paper's reservation policy; larger runs
        scatter over all clusters proportionally to their core counts.
        """
        if n_processes <= 0:
            raise SimConfigError("n_processes must be > 0")
        total = sum(c.cores for c in self.clusters)
        if n_processes > total:
            raise SimConfigError(
                f"{n_processes} processes exceed the {total} cores available")
        rng = RngStream(seed, "placement")
        self._placement = {}
        first = self.clusters[0]
        if n_processes < self.c2_threshold and n_processes <= first.cores:
            slots = [0] * n_processes
        else:
            slots = []
            for ci, c in enumerate(self.clusters):
                slots.extend([ci] * c.cores)
            rng.shuffle(slots)
            slots = slots[:n_processes]
        for pid, ci in enumerate(slots):
            self._placement[pid] = ci
        # reset (not merely re-key) the jitter state so re-placing the
        # same model — e.g. one NetworkModel reused across grid cells —
        # reproduces the exact delay sequence of a fresh model
        self._jitter_base = (derive_seed(seed, "net-jitter")
                             if self.jitter > 0 else None)
        self._jitter_counts = {}

    def cluster_of(self, pid: int) -> int:
        """Cluster index a process was placed on (:func:`place` first)."""
        try:
            return self._placement[pid]
        except KeyError:
            raise SimConfigError(f"process {pid} has no placement; call place()")

    # -- pricing -----------------------------------------------------------

    def min_delay(self) -> float:
        """Lower bound on :meth:`delivery_delay` between two *distinct*
        processes.

        Jitter and serialisation only ever add to the base latency, so the
        smaller of the two latency classes bounds every cross-process
        delivery from below. The macro-event fast path
        (:mod:`repro.core.worker`) uses this as a network lookahead: an
        event firing at time T cannot make a message *arrive* at another
        process before ``T + min_delay()``. Self-sends (src == dst) have
        zero latency and are excluded — they can only target the sender,
        whose own pending events are tracked separately.
        """
        return min(self.lat_intra, self.lat_inter)

    def latency(self, src: int, dst: int) -> float:
        """One-way latency between two placed processes."""
        if src == dst:
            return 0.0
        same = self.cluster_of(src) == self.cluster_of(dst)
        return self.lat_intra if same else self.lat_inter

    def delivery_delay(self, src: int, dst: int, size_bytes: int) -> float:
        """Total network delay for one message (latency + serialisation)."""
        delay = self.latency(src, dst) + size_bytes / self.bandwidth
        if self._jitter_base is not None and src != dst:
            k = self._jitter_counts.get(src, 0)
            self._jitter_counts[src] = k + 1
            u = derive_seed(self._jitter_base, src, k) * _INV_2_63
            delay += -math.log(1.0 - u) * (self.jitter * self.lat_intra)
        return delay


def grid5000(handler_cost: float = 1.0e-5, jitter: float = 0.0) -> NetworkModel:
    """The paper's testbed: C1 (92 nodes x 8 cores), C2 (144 nodes x 4 cores).

    736 + 576 = 1312 cores, enough for the 1000-core experiments; runs below
    800 processes stay on C1 as in the paper.
    """
    return NetworkModel(
        clusters=(ClusterSpec("C1", 92 * 8), ClusterSpec("C2", 144 * 4)),
        lat_intra=5.0e-5,
        lat_inter=5.0e-4,
        bandwidth=2.0e9,
        handler_cost=handler_cost,
        jitter=jitter,
        c2_threshold=800,
    )


def uniform_network(cores: int = 4096, latency: float = 5.0e-5,
                    handler_cost: float = 1.0e-5,
                    jitter: float = 0.0) -> NetworkModel:
    """A single flat cluster; convenient for unit tests."""
    return NetworkModel(
        clusters=(ClusterSpec("flat", cores),),
        lat_intra=latency,
        lat_inter=latency,
        handler_cost=handler_cost,
        jitter=jitter,
    )


__all__ = ["ClusterSpec", "NetworkModel", "grid5000", "uniform_network"]
