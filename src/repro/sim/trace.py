"""Activity tracing: per-process timelines and utilization profiles.

A :class:`Tracer` records (time, pid, kind, value) samples; attach one to a
run with :func:`attach` (or pass ``tracer=`` to
:func:`repro.experiments.runner.run_once`) and get:

* per-process busy/idle interval timelines,
* a bucketed system-utilization profile (the "how busy was the fleet over
  the run" curve used throughout the paper's §IV discussion),
* per-phase message rates.

Tracing is off by default — the hooks cost nothing unless a tracer is
attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import SimConfigError

#: Sample kinds recorded by the worker framework.
QUANTUM = "quantum"      # value = work units completed at that time
MESSAGE = "message"      # value = 1 (a message was handled)
IDLE = "idle"            # value = idle-episode start marker
FINISH = "finish"        # value = 0 (local termination)
CRASH = "crash"          # value = 0 (this process crash-stopped)
REPAIR = "repair"        # value = the spliced/adopted peer's pid
TRANSFER = "transfer"    # value = src pid of a merged WORK transfer
                         # (pid = the receiver); feeds the steal matrix
CIRCUIT = "circuit"      # value = peer*4 + state (0 closed / 1 open /
                         # 2 half-open); pid = the breaker's owner
PARTITION = "partition"  # value = +(idx+1) at a cut, -(idx+1) at its heal
                         # (idx = the plan's partition window index);
                         # recorded on pid 0's tracer at finalize


@dataclass(slots=True)
class Sample:
    time: float
    pid: int
    kind: str
    value: float


class Tracer:
    """Collects samples; analysis helpers below."""

    def __init__(self) -> None:
        self.samples: list[Sample] = []
        self.enabled = True

    def record(self, time: float, pid: int, kind: str,
               value: float = 0.0) -> None:
        """Append one sample (no-op while disabled)."""
        if self.enabled:
            self.samples.append(Sample(time, pid, kind, value))

    # -- analysis ------------------------------------------------------------

    def of_kind(self, kind: str) -> list[Sample]:
        """All samples of one kind, in time order."""
        return [s for s in self.samples if s.kind == kind]

    def utilization_profile(self, makespan: float, unit_cost: float,
                            n_workers: int,
                            buckets: int = 10) -> list[tuple[float, float]]:
        """(bucket end time, busy fraction) over the run.

        Busy fraction of a bucket = work units completed in it x unit_cost
        / (n_workers x bucket width). Quantum completions are attributed to
        their completion bucket, which smears one quantum width — fine for
        the profile shapes this is used for.
        """
        if makespan <= 0 or buckets < 1 or n_workers < 1:
            raise SimConfigError("need positive makespan/buckets/workers")
        width = makespan / buckets
        acc = [0.0] * buckets
        for s in self.samples:
            if s.kind == QUANTUM:
                b = min(buckets - 1, int(s.time / width))
                acc[b] += s.value * unit_cost
        return [((b + 1) * width, acc[b] / (n_workers * width))
                for b in range(buckets)]

    def work_completed_by(self, fraction_of_units: float,
                          total_units: int) -> Optional[float]:
        """Time by which the given fraction of all work units was done.

        Scans QUANTUM samples in *time* order, not append order: under
        quantum fusion a worker appends the interior samples of a fused
        block eagerly, so another worker's samples at earlier virtual
        times may follow them in the list. (For unfused runs append order
        is already time order and the stable sort is a no-op.)
        """
        if not (0 < fraction_of_units <= 1):
            raise SimConfigError("fraction must be in (0, 1]")
        target = fraction_of_units * total_units
        done = 0.0
        quanta = sorted((s for s in self.samples if s.kind == QUANTUM),
                        key=lambda s: s.time)
        for s in quanta:
            done += s.value
            if done >= target:
                return s.time
        return None

    def idle_episodes(self, pid: int) -> int:
        """Number of idle-search episodes a worker went through."""
        return sum(1 for s in self.samples
                   if s.kind == IDLE and s.pid == pid)

    def per_worker_units(self, n_workers: int) -> list[int]:
        """Work units completed per worker (pid-indexed)."""
        out = [0] * n_workers
        for s in self.samples:
            if s.kind == QUANTUM:
                out[s.pid] += int(s.value)
        return out

    def message_rate(self, makespan: float,
                     buckets: int = 10) -> list[tuple[float, float]]:
        """(bucket end time, handled messages / second) over the run."""
        if makespan <= 0 or buckets < 1:
            raise SimConfigError("need positive makespan/buckets")
        width = makespan / buckets
        acc = [0] * buckets
        for s in self.samples:
            if s.kind == MESSAGE:
                b = min(buckets - 1, int(s.time / width))
                acc[b] += 1
        return [((b + 1) * width, acc[b] / width) for b in range(buckets)]


def render_profile(profile: list[tuple[float, float]],
                   label: str = "busy", width: int = 40) -> str:
    """ASCII bar rendering of a utilization profile."""
    lines = [f"{'t (ms)':>10} | {label}"]
    for t, frac in profile:
        bar = "#" * max(0, min(width, round(frac * width)))
        lines.append(f"{t * 1e3:10.2f} | {bar} {frac * 100:.0f}%")
    return "\n".join(lines)


__all__ = ["Tracer", "Sample", "render_profile", "QUANTUM", "MESSAGE",
           "IDLE", "FINISH", "CRASH", "REPAIR", "TRANSFER", "CIRCUIT",
           "PARTITION"]
