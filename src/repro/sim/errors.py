"""Exception hierarchy for the simulation substrate."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulator errors."""


class SimConfigError(SimError):
    """A simulation was configured inconsistently (bad ids, sizes, rates)."""


class SimRuntimeError(SimError):
    """The event loop reached an impossible state (scheduling into the past,
    delivery to an unknown process, ...)."""


class SimDeadlockError(SimError):
    """The event queue drained while processes still expected progress.

    Raised by :meth:`repro.sim.engine.Simulator.run` when ``on_quiescence``
    callbacks decline to inject new events but at least one process reports
    that it has not finished. This is the simulator-level analogue of a
    distributed deadlock and almost always indicates a protocol bug.
    """
