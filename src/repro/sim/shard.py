"""Sharded parallel simulation: conservative-lookahead multi-core DES.

PR 6's quantum fusion removed the per-quantum event class; what remains at
fleet scale is *messages* — millions of steal/transfer events that one
Python event loop grinds through serially. This module splits the fleet
across K OS processes ("shards"), each running its own
:class:`~repro.sim.engine.Simulator` over its share of the pids, and
advances them in lock-step **windows** of the network's minimum latency:

* All shards sit at a barrier. The parent computes the next window start
  ``W`` — the global minimum over every shard's next pending event time
  and every routed-but-unfired cross-shard arrival — and the horizon
  ``H = W + min_delay()``.
* Each shard fires every local event with ``t < H``. Any message it sends
  to a foreign pid is priced source-side exactly as in a serial run
  (stats, FIFO clock, loss/duplication draws) and *exported*: its arrival
  time is at least ``t + min_delay() >= H``, so delivering it at the next
  barrier can never rewind the destination shard. That inequality — the
  paper's own locality economics, where every cross-peer message costs at
  least one network latency — is the classic conservative-lookahead
  condition (Chandy-Misra-Bryant), and the window barrier is its
  null-message protocol collapsed to one synchronisation per window.
* At the barrier the parent sorts the round's exports by
  ``(send_time, src pid, send order)`` — reproducing the serial engine's
  transmit order — routes each to the shard owning its destination, and
  opens the next window. Windows with no events anywhere are skipped
  (``W`` jumps straight to the next pending time).

**Partitioning** follows the overlay: for tree protocols the fleet is cut
into whole subtrees (greedy decomposition into chunks of about ``n/K``
pids), so the steal traffic the paper localises *inside* subtrees stays
intra-shard and only the rare cross-subtree traffic pays a barrier hop.
When the network placed processes on multiple clusters
(:class:`~repro.sim.network.ClusterSpec`), units are refined so no unit
straddles clusters. Non-tree protocols (RWS, MW, LIFELINE) fall back to
contiguous pid blocks.

**Determinism.** A sharded run is bit-identical to the serial fused run —
same makespan, node counts, steal counts, RNG draws — whenever no
cross-shard arrival ties, at the identical float time, with an unrelated
event of the destination shard (the same simultaneity caveat already
scoped for quantum fusion; see docs/simulation.md). Everything else is
exact by construction: every per-process RNG stream is derived from
``(seed, purpose, pid)`` and runs entirely inside the owner shard;
loss/duplication draws are keyed per ``(sender, send index)``
(:mod:`repro.sim.faults`); per-pid stats are written only by the owner
and merged by copy.

The per-shard Simulator hosts *ghost* placeholders for foreign pids, so
pids stay dense and every pricing decision (placement, cluster lookup,
latency) is computed from the same global tables as a serial run.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import TYPE_CHECKING, Callable, Optional

from .errors import SimConfigError, SimRuntimeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.runner import RunConfig
    from .messages import Message
    from .stats import RunStats


# -- partitioning ------------------------------------------------------------

def _subtree_units(tree, target: int) -> list[list[int]]:
    """Decompose a tree overlay into units of at most ``target`` pids.

    A subtree that fits becomes one unit; an oversized subtree contributes
    its root as a singleton and recurses into the children. Iterative
    (explicit stack) so 10^5-node chains don't hit the recursion limit.
    """
    units: list[list[int]] = []
    stack = [0]
    while stack:
        v = stack.pop()
        if tree.subtree_size[v] <= target:
            unit = []
            sub = [v]
            while sub:
                u = sub.pop()
                unit.append(u)
                sub.extend(tree.children[u])
            unit.sort()
            units.append(unit)
        else:
            units.append([v])
            # reversed: the explicit stack pops in child id order
            stack.extend(reversed(tree.children[v]))
    return units


def _block_units(n: int, shards: int) -> list[list[int]]:
    """Contiguous pid blocks (protocols without a tree overlay)."""
    target = -(-n // shards)
    return [list(range(lo, min(lo + target, n)))
            for lo in range(0, n, target)]


def partition_fleet(cfg: "RunConfig", shards: int,
                    network=None) -> list[int]:
    """Map every pid to a shard: ``owner[pid] in range(shards)``.

    Tree protocols partition by overlay subtree — the locality thesis
    says steals stay inside subtrees, so cutting on subtree boundaries
    minimises cross-shard traffic. If ``network`` is given and placed the
    fleet over several clusters, units are refined so none straddles a
    cluster boundary ("partition by ClusterSpec"). Units are then packed
    greedily, largest first, onto the least-loaded shard; the unit
    holding pid 0 (root, initial work, termination anchor) is pinned to
    shard 0. Fully deterministic in ``cfg``.
    """
    from ..baselines.ahmw import AHMW_DEGREE
    from ..overlay.tree import deterministic_tree, random_tree

    n = cfg.n
    target = -(-n // shards)
    proto = cfg.protocol
    if proto in ("TD", "BTD"):
        units = _subtree_units(deterministic_tree(n, cfg.dmax), target)
    elif proto in ("TR", "BTR"):
        units = _subtree_units(random_tree(n, seed=cfg.seed), target)
    elif proto == "AHMW":
        units = _subtree_units(deterministic_tree(n, AHMW_DEGREE), target)
    else:  # RWS, MW, LIFELINE: no tree to respect
        units = _block_units(n, shards)
    if network is not None and len(network.clusters) > 1:
        try:
            refined = []
            for unit in units:
                by_cluster: dict[int, list[int]] = {}
                for p in unit:
                    by_cluster.setdefault(network.cluster_of(p), []).append(p)
                # cluster index order keeps the refinement deterministic
                refined.extend(by_cluster[ci] for ci in sorted(by_cluster))
            units = refined
        except SimConfigError:
            pass  # not placed yet: subtree units stand
    owner = [0] * n
    load = [0] * shards
    root_unit = next(u for u in units if u[0] == 0)
    load[0] = len(root_unit)
    rest = [u for u in units if u is not root_unit]
    rest.sort(key=lambda u: (-len(u), u[0]))
    for unit in rest:
        k = min(range(shards), key=lambda i: (load[i], i))
        load[k] += len(unit)
        for p in unit:
            owner[p] = k
    return owner


# -- the per-shard side ------------------------------------------------------

class _GhostProcess:
    """Placeholder for a pid owned by another shard.

    Keeps pids dense so placement, cluster lookups and per-pid stats rows
    line up with the serial run. It never executes: transmit() intercepts
    messages *to* it before delivery, and its crash events stay in the
    owner shard. A delivery reaching one is a partitioning bug and fails
    loudly.
    """

    __slots__ = ("pid", "sim", "_crashed")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.sim = None
        self._crashed = False

    def start(self) -> None:
        pass

    def finished(self) -> bool:
        return True

    def _arrive(self, msg) -> None:
        raise SimRuntimeError(
            f"shard delivered a message locally to foreign pid {self.pid}")


class ShardContext:
    """One shard's view of the partition, wired into its Simulator.

    The engine consults :attr:`owner` on every transmit, appends foreign
    deliveries through :meth:`export`, mirrors doomed pids' receive-log
    entries through :meth:`note_delivery`, and resolves post-mortem log
    lookups for foreign pids through :meth:`query_peer_log` (a blocking
    round trip to the parent, which arbitrates using every shard's
    flushed clock — see ``run_sharded``).
    """

    __slots__ = ("shard_id", "owner", "outbox", "local_pending", "delta",
                 "_doomed", "_conn", "_seq", "sim")

    def __init__(self, shard_id: int, owner: list[int], doomed: set[int],
                 conn) -> None:
        self.shard_id = shard_id
        self.owner = owner
        #: cross-shard deliveries: (send_time, cause key, src, send order,
        #: message, arrive_at) — flushed to the parent and cleared at every
        #: barrier. The cause key is the push key of the event that was
        #: firing when the send happened (``EventQueue.current_push_key``):
        #: it orders same-instant sends from different processes the way
        #: the serial engine did.
        self.outbox: list[tuple] = []
        #: intra-shard deliveries, same entry shape — held back until the
        #: barrier so they merge-order with the cross-shard inbound (the
        #: serial engine inserts both in transmit order; injecting local
        #: ones eagerly would put them ahead of earlier-sent foreign ones
        #: at equal arrival times)
        self.local_pending: list[tuple] = []
        #: receive-log entries of local doomed pids since the last flush
        self.delta: list[tuple[int, int, int]] = []
        self._doomed = doomed
        self._conn = conn
        self._seq = 0
        self.sim = None

    def export(self, msg: "Message", arrive_at: float) -> None:
        seq = self._seq
        self._seq = seq + 1
        entry = (msg.send_time, self.sim.queue.current_push_key,
                 msg.src, seq, msg, arrive_at)
        if self.owner[msg.dst] == self.shard_id:
            self.local_pending.append(entry)
        else:
            self.outbox.append(entry)

    def note_delivery(self, dst_pid: int, src_pid: int, seq: int) -> None:
        if dst_pid in self._doomed:
            self.delta.append((dst_pid, src_pid, seq))

    def query_peer_log(self, dead_pid: int, src_pid: int, seq: int) -> bool:
        """Ask the parent whether ``dead_pid`` logged ``(src, seq)``.

        Flushes this shard's clock and pending log delta with the query so
        the parent can both answer queries *about* our doomed pids and
        prove deadlock-freedom (at any blocked moment, the blocked shard
        with the highest flushed clock is answerable).
        """
        delta, self.delta = self.delta, []
        self._conn.send(("query", self.sim.queue.now, delta,
                         dead_pid, src_pid, seq))
        kind, answer = self._conn.recv()
        if kind != "answer":  # pragma: no cover - protocol bug guard
            raise SimRuntimeError(f"expected answer, got {kind!r}")
        return answer


def _resolve_app(app):
    """Accept an Application or a zero-argument builder/spec for one."""
    from ..apps.base import Application
    if isinstance(app, Application):
        return app
    if callable(app):
        return app()
    raise SimConfigError(f"not an application or builder: {app!r}")


def _shard_main(conn, shard_id: int, owner: list[int], cfg: "RunConfig",
                app, collect_trace: bool) -> None:
    """Child process: build the shard's Simulator, run the window loop."""
    try:
        from ..experiments.runner import worker_factory
        from ..sim.engine import Simulator
        from ..sim.network import grid5000

        application = _resolve_app(app)
        doomed = set()
        if cfg.faults is not None:
            doomed = {pid for pid, _t in cfg.faults.crashes
                      if owner[pid] == shard_id}
        ctx = ShardContext(shard_id, owner, doomed, conn)
        network = cfg.network if cfg.network is not None else grid5000(
            handler_cost=cfg.handler_cost, jitter=cfg.jitter)
        sim = Simulator(network=network, seed=cfg.seed, faults=cfg.faults,
                        fuse=cfg.fuse, shard=ctx)
        ctx.sim = sim
        make = worker_factory(cfg, application)
        local: list = []
        for p in range(cfg.n):
            if owner[p] == shard_id:
                local.append(sim.add_process(make(p)))
            else:
                sim.add_process(_GhostProcess(p))
        tracer = None
        if collect_trace:
            from .trace import Tracer
            tracer = Tracer()
            for w in local:
                w.tracer = tracer

        import time as _time
        compute_s = 0.0
        sim.begin_windows()
        conn.send(("ready", sim.queue.peek_time()))
        while True:
            cmd = conn.recv()
            if cmd[0] == "finish":
                break
            _, horizon, inbound = cmd
            t0 = _time.perf_counter()
            if inbound or ctx.local_pending:
                # merge held-back local deliveries with the cross-shard
                # batch: (send_time, cause key, src, send order) is a
                # total order (a sender lives in exactly one shard), and
                # injecting in it reproduces the serial engine's
                # insertion order at equal arrival times — same-instant
                # sends from different senders fire in serial in cause-key
                # order, because causing events with distinct push times
                # fire in push-time order
                batch = ctx.local_pending + inbound
                ctx.local_pending = []
                batch.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
                inject = sim.inject
                for entry in batch:
                    inject(entry[-2], entry[-1])
            next_t = sim.run_window(horizon)
            # buffered local deliveries are invisible to the queue until
            # the next merge — bid them into the window computation
            for entry in ctx.local_pending:
                at = entry[-1]
                if next_t is None or at < next_t:
                    next_t = at
            compute_s += _time.perf_counter() - t0
            outbox, ctx.outbox = ctx.outbox, []
            delta, ctx.delta = ctx.delta, []
            conn.send(("barrier", horizon, next_t, outbox, delta))
        stats = sim.finish_windows()

        shared_min = None
        perm_matches: dict = {}
        redundancy = 0
        for w in local:
            shared = getattr(w, "shared", None)
            if shared is not None:
                value = application.shared_value(shared)
                if value is not None and (shared_min is None
                                          or value < shared_min):
                    shared_min = value
                pv = getattr(shared, "perm_value", None)
                if pv is not None and pv not in perm_matches:
                    perm_matches[pv] = (w.pid, shared.perm)
            redundancy += getattr(w, "redundancy", 0)
        payload = {
            "stats": stats,
            "end_time": sim.now,
            "compute_s": compute_s,
            "local_pids": len(local),
            "shared_min": shared_min,
            "perm_matches": perm_matches,
            "redundancy": redundancy,
            "samples": tracer.samples if tracer is not None else None,
        }
        conn.send(("done", payload))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


# -- merging -----------------------------------------------------------------

def merge_shard_stats(parts: list["RunStats"], owner: list[int],
                      end_time: float) -> "RunStats":
    """Combine per-shard RunStats into one fleet-wide RunStats.

    Every per-pid counter is written only by the pid's owner shard (the
    ghost rows stay zero), so the merge copies each row from its owner.
    Scalar counters sum (each event fires in exactly one shard); the
    makespan is recomputed from the merged finish times exactly as the
    engine's finalizer would.
    """
    from .stats import _FLOAT_FIELDS, _INT_FIELDS, RunStats

    n = len(owner)
    merged = RunStats.create(n)
    cols = merged._columns
    if cols is not None:
        import numpy as np
        owner_arr = np.asarray(owner)
        for k, part in enumerate(parts):
            mask = owner_arr == k
            pc = part._columns
            for name, a in cols.i.items():
                a[mask] = pc.i[name][mask]
            for name, a in cols.f.items():
                a[mask] = pc.f[name][mask]
    else:
        for pid, k in enumerate(owner):
            src = parts[k].per_process[pid]
            dst = merged.per_process[pid]
            for name in _INT_FIELDS + _FLOAT_FIELDS:
                setattr(dst, name, getattr(src, name))
    merged.events_fired = sum(p.events_fired for p in parts)
    merged.macro_events = sum(p.macro_events for p in parts)
    merged.fused_quanta = sum(p.fused_quanta for p in parts)
    merged.work_done_time = max(p.work_done_time for p in parts)
    merged.makespan = merged.max_finish_time(default=end_time)
    if merged.makespan == 0.0:
        merged.makespan = end_time
    merged.seal()
    return merged


def _merge_samples(parts: list) -> list:
    """Concatenate per-shard trace samples into one global timeline.

    Each shard records only its own pids, on the same virtual clock, so
    the merge is a stable sort by (time, pid) — per-pid sample order is
    preserved, matching the serial tracer up to same-time cross-pid
    interleaving (the documented simultaneity scope).
    """
    out = []
    for samples in parts:
        if samples:
            out.extend(samples)
    out.sort(key=lambda s: (s.time, s.pid))
    return out


# -- the parent driver -------------------------------------------------------

def _mp_context():
    """Fork when the platform has it (cheap, no pickling of the app);
    spawn otherwise — everything shipped to children is picklable."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


def run_sharded(cfg: "RunConfig", app, shards: int, *,
                tracer=None, progress: Optional[Callable] = None):
    """Run ``cfg`` split over ``shards`` OS processes; returns
    ``(ExperimentResult, RunStats, per_shard_wall)``.

    Bit-compatible with :func:`repro.experiments.runner.run_instrumented`
    up to the documented simultaneous-event scope; with ``shards <= 1``
    it *is* that function (plus a zero wall list). ``app`` may be an
    Application or a zero-argument builder (needed under the spawn
    fallback, where children re-create it). ``tracer``, if given,
    receives the merged per-shard samples.

    Raises :class:`SimConfigError` for configurations sharding cannot
    reproduce exactly: ``max_events`` truncation (the cut point depends
    on the global event interleaving). Network jitter is fine — draws
    are keyed per (src, send index), so each shard reproduces its own
    sources' noise exactly; jitter only *adds* delay, so the
    ``min_delay()`` lookahead stays conservative.
    """
    import time as _time

    from ..experiments.runner import ExperimentResult, run_instrumented
    from ..sim.network import grid5000

    if shards <= 1 or cfg.n == 1:
        application = _resolve_app(app)
        result, stats = run_instrumented(cfg, application, tracer=tracer)
        return result, stats, [0.0]
    if cfg.max_events is not None:
        raise SimConfigError(
            "sharded runs do not support max_events truncation; "
            "run serially (shards=1) for truncated runs")
    network = cfg.network if cfg.network is not None else grid5000(
        handler_cost=cfg.handler_cost, jitter=cfg.jitter)
    min_delay = network.min_delay()
    if min_delay <= 0:
        raise SimConfigError(
            "sharded runs need min_delay() > 0 for conservative lookahead")
    shards = min(shards, cfg.n)
    say = progress or (lambda msg: None)

    # Partition against the run's placement (deterministic in cfg): place
    # a throwaway copy so cluster refinement sees the same layout every
    # shard will compute for itself.
    import copy
    placed = copy.deepcopy(network)
    placed.place(cfg.n, seed=cfg.seed)
    owner = partition_fleet(cfg, shards, network=placed)
    crash_times = dict(cfg.faults.crashes) if cfg.faults is not None else {}
    crash_owner = {pid: owner[pid] for pid in crash_times}

    ctx = _mp_context()
    conns, procs = [], []
    for k in range(shards):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_shard_main,
            args=(child_conn, k, owner, cfg, app, tracer is not None),
            daemon=True)
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)

    t0 = _time.perf_counter()
    payloads: list = [None] * shards
    try:
        # doomed pids' receive logs, mirrored from owner shards; clocks[k]
        # is a lower bound on shard k's progress, advanced by barriers and
        # query flushes — the arbitration state for peer-log queries
        doomed_log: set[tuple[int, int, int]] = set()
        clocks = [0.0] * shards
        pending_queries: list[tuple[int, int, int, int]] = []

        shard_of_conn = {id(c): k for k, c in enumerate(conns)}

        def try_answer() -> None:
            still = []
            for (k, dead, src, seq) in pending_queries:
                if clocks[crash_owner[dead]] >= crash_times[dead]:
                    conns[k].send(
                        ("answer", (dead, src, seq) in doomed_log))
                else:
                    still.append((k, dead, src, seq))
            pending_queries[:] = still

        def collect_all(expect: str) -> list:
            """One ``expect`` message from every shard, in any arrival
            order, servicing peer-log queries along the way (a shard
            blocked on a query cannot reach its barrier until another
            shard's flush makes the answer available — recv'ing shard by
            shard would deadlock the parent itself)."""
            out: list = [None] * shards
            waiting = set(range(shards))
            while waiting:
                for c in _conn_wait([conns[k] for k in waiting]):
                    k = shard_of_conn[id(c)]
                    msg = c.recv()
                    kind = msg[0]
                    if kind == "error":
                        raise SimRuntimeError(f"shard {k} failed:\n{msg[1]}")
                    if kind == "query":
                        _, clock, delta, dead, src, seq = msg
                        clocks[k] = max(clocks[k], clock)
                        doomed_log.update(delta)
                        pending_queries.append((k, dead, src, seq))
                        try_answer()
                        continue
                    if kind != expect:  # pragma: no cover - protocol guard
                        raise SimRuntimeError(
                            f"shard {k}: expected {expect!r}, got {kind!r}")
                    out[k] = msg
                    waiting.discard(k)
            return out

        next_ts: list[Optional[float]] = [
            msg[1] for msg in collect_all("ready")]

        # entry: (send_time, cause key, src, order, msg, arrive_at)
        pending_msgs: list[tuple] = []
        windows = 0
        while True:
            candidates = [t for t in next_ts if t is not None]
            candidates.extend(e[-1] for e in pending_msgs)
            if not candidates:
                break
            start = min(candidates)
            horizon = start + min_delay
            # route whole entries: the receiving shard merge-sorts them
            # with its own held-back local deliveries by
            # (send_time, cause key, src, send order) before injecting
            inbound: list[list] = [[] for _ in range(shards)]
            for entry in pending_msgs:
                inbound[owner[entry[-2].dst]].append(entry)
            pending_msgs = []
            for k in range(shards):
                conns[k].send(("window", horizon, inbound[k]))
            for k, msg in enumerate(collect_all("barrier")):
                _, _h, next_t, outbox, delta = msg
                next_ts[k] = next_t
                clocks[k] = max(clocks[k], horizon)
                doomed_log.update(delta)
                pending_msgs.extend(outbox)
            try_answer()
            windows += 1
        if pending_queries:  # pragma: no cover - protocol bug guard
            raise SimRuntimeError(
                f"{len(pending_queries)} peer-log queries left unanswered "
                "at termination")
        for k in range(shards):
            conns[k].send(("finish",))
        for k, msg in enumerate(collect_all("done")):
            payloads[k] = msg[1]
        shard_walls = [pl["compute_s"] for pl in payloads]
        say(f"sharded run: {shards} shards, {windows} windows, "
            f"wall {_time.perf_counter() - t0:.1f}s")
    finally:
        for c in conns:
            c.close()
        for p in procs:
            p.join(timeout=30)
            if p.is_alive():  # pragma: no cover - hang guard
                p.terminate()
                p.join()

    end_time = max(pl["end_time"] for pl in payloads)
    stats = merge_shard_stats([pl["stats"] for pl in payloads], owner,
                              end_time)
    if tracer is not None:
        tracer.samples.extend(
            _merge_samples([pl["samples"] for pl in payloads]))

    optimum = None
    for pl in payloads:
        v = pl["shared_min"]
        if v is not None and (optimum is None or v < optimum):
            optimum = v
    optimum_perm = None
    if optimum is not None:
        best_pid = None
        for pl in payloads:
            match = pl["perm_matches"].get(optimum)
            if match is not None and (best_pid is None
                                      or match[0] < best_pid):
                best_pid, optimum_perm = match
    lost, dup, rexmit, crashes, repairs = stats.fault_totals()
    result = ExperimentResult(
        protocol=cfg.protocol,
        n=cfg.n,
        makespan=stats.makespan,
        work_done_time=stats.work_done_time,
        total_units=stats.total_work_units,
        total_msgs=stats.total_msgs,
        total_steals=stats.total_steals,
        msgs_by_pid=stats.msgs_by_pid(),
        optimum=optimum,
        optimum_perm=optimum_perm,
        redundancy=sum(pl["redundancy"] for pl in payloads),
        events=stats.events_fired,
        macro_events=stats.macro_events,
        fused_quanta=stats.fused_quanta,
        events_equivalent=stats.events_equivalent,
        msgs_lost=lost,
        msgs_duplicated=dup,
        retransmits=rexmit,
        crashes=crashes,
        repairs=repairs,
    )
    return result, stats, shard_walls


__all__ = ["ShardContext", "merge_shard_stats", "partition_fleet",
           "run_sharded"]
