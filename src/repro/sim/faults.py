"""Deterministic fault injection: crashes, lossy links, partitions, gray failures.

A :class:`FaultPlan` declares *what goes wrong* in a run — crash-stop
process failures at given virtual times, i.i.d. per-message loss and
duplication probabilities, transient link blackouts, network partitions
(windows that sever every cross-cut link, then heal), and gray failures
(slow-but-alive nodes and degraded links) — and the
:class:`FaultController` executes it inside the engine. Two properties the
rest of the repository depends on:

* **Determinism.** Every probabilistic decision is a pure function of the
  run seed and the message's identity: loss and duplication draws are
  keyed on ``(sender, per-sender send index)`` via
  :func:`~repro.sim.rng.derive_seed`, and crash times are explicit plan
  data, so a faulted run is exactly as bit-reproducible as a clean one.
  Keyed (rather than sequential) draws also make the decisions
  independent of the *global* transmit interleaving — each sender's
  message stream sees the same fate whether the fleet runs in one event
  loop or sharded across several (repro.sim.shard).
* **Zero overhead when unused.** A null plan (``FaultPlan()`` — no
  crashes, ``loss == dup == 0``, no blackouts) normalises to *no
  controller at all*: the engine keeps its exact pre-fault code paths, so
  golden bit-identity tests and hot-path throughput are untouched.

The failure model is crash-stop: a crashed process stops executing —
inbox dropped, running quantum aborted, pending timers inert — and never
recovers. Process 0 (the overlay/detection-tree root and initial work
holder) is immortal by construction; the plan validator rejects root
crashes, mirroring the classic resilient work-stealing setting where the
coordinator persists.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SimConfigError
from .messages import Message
from .rng import RngStream, derive_seed

#: Keyed draws map a 63-bit derived seed to a uniform in [0, 1).
_INV_2_63 = 2.0 ** -63


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults injected into one run.

    Attributes:
        crashes: ``(pid, time)`` pairs — process ``pid`` crash-stops at
            virtual ``time``. Pid 0 never crashes (validated).
        loss: probability that any transmitted message is silently dropped.
        dup: probability that a delivered message is delivered twice (the
            duplicate takes an independently priced delay).
        blackouts: ``(src, dst, start, end)`` windows during which every
            message on the matching link is dropped; ``None`` for ``src``
            or ``dst`` is a wildcard ("any process"). Windows on the same
            (src, dst) link key must not overlap (validated).
        partitions: ``(side_a, start, end)`` windows — ``side_a`` is a
            tuple of pids forming one island; during the window every
            message whose endpoints straddle the cut (exactly one endpoint
            in ``side_a``) is dropped, in both directions. At ``end`` the
            cut heals and traffic flows again. The complement side is
            implicit: every pid not in ``side_a``. The engine validates at
            run start that both sides are nonempty for the actual fleet
            size (a proper split), since ``n`` is unknown here.
        slowdowns: ``(pid, start, end, factor)`` gray-failure windows —
            while active, ``pid``'s compute runs ``factor``x slower
            (factor >= 1). The node stays alive and keeps answering;
            only its quantum durations stretch.
        gray_links: ``(src, dst, start, end, delay_factor, loss)``
            degraded-link windows — matching deliveries take
            ``delay_factor``x the modelled delay (>= 1, asymmetric:
            (a, b) does not imply (b, a)) and are additionally dropped
            with probability ``loss`` (keyed-RNG, deterministic).
            ``None`` endpoints are wildcards, as for blackouts.
    """

    crashes: tuple[tuple[int, float], ...] = ()
    loss: float = 0.0
    dup: float = 0.0
    blackouts: tuple[tuple[int | None, int | None, float, float], ...] = ()
    partitions: tuple[tuple[tuple[int, ...], float, float], ...] = ()
    slowdowns: tuple[tuple[int, float, float, float], ...] = ()
    gray_links: tuple[
        tuple[int | None, int | None, float, float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise SimConfigError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.dup < 1.0:
            raise SimConfigError(f"dup must be in [0, 1), got {self.dup}")
        seen = set()
        for pid, t in self.crashes:
            if pid == 0:
                raise SimConfigError(
                    "process 0 (the root) cannot crash: it anchors the "
                    "overlay, the termination waves and the initial work")
            if pid < 0:
                raise SimConfigError(f"crash pid must be >= 0, got {pid}")
            if t <= 0:
                raise SimConfigError(
                    f"crash time must be > 0, got {t} for pid {pid}")
            if pid in seen:
                raise SimConfigError(f"pid {pid} crashes more than once")
            seen.add(pid)
        by_link: dict[tuple[int | None, int | None],
                      list[tuple[float, float]]] = {}
        for src, dst, start, end in self.blackouts:
            if start < 0 or end <= start:
                raise SimConfigError(
                    f"blackout window must satisfy 0 <= start < end, "
                    f"got [{start}, {end}]")
            for p in (src, dst):
                if p is not None and p < 0:
                    raise SimConfigError(f"blackout pid must be >= 0, got {p}")
            for lo, hi in by_link.get((src, dst), ()):
                if start < hi and lo < end:
                    raise SimConfigError(
                        f"blackout windows on link ({src}, {dst}) overlap: "
                        f"[{lo}, {hi}] and [{start}, {end}] — merge them "
                        "into one window")
            by_link.setdefault((src, dst), []).append((start, end))
        for side, start, end in self.partitions:
            if start < 0 or end <= start:
                raise SimConfigError(
                    f"partition window must satisfy 0 <= start < end, "
                    f"got [{start}, {end}]")
            if not side:
                raise SimConfigError(
                    "partition side must be a nonempty pid set: an empty "
                    "side means no cut at all")
            if len(set(side)) != len(side):
                raise SimConfigError(
                    f"partition side {side} lists a pid more than once")
            for p in side:
                if p < 0:
                    raise SimConfigError(
                        f"partition pid must be >= 0, got {p}")
        for pid, start, end, factor in self.slowdowns:
            if pid < 0:
                raise SimConfigError(f"slowdown pid must be >= 0, got {pid}")
            if start < 0 or end <= start:
                raise SimConfigError(
                    f"slowdown window must satisfy 0 <= start < end, "
                    f"got [{start}, {end}] for pid {pid}")
            if factor < 1.0:
                raise SimConfigError(
                    f"slowdown factor must be >= 1 (a gray node is slower, "
                    f"never faster), got {factor} for pid {pid}")
        for src, dst, start, end, dfac, gloss in self.gray_links:
            if start < 0 or end <= start:
                raise SimConfigError(
                    f"gray-link window must satisfy 0 <= start < end, "
                    f"got [{start}, {end}]")
            for p in (src, dst):
                if p is not None and p < 0:
                    raise SimConfigError(
                        f"gray-link pid must be >= 0, got {p}")
            if dfac < 1.0:
                raise SimConfigError(
                    f"gray-link delay_factor must be >= 1 (delay inflation "
                    "below 1 would break the engine's min-delay lookahead), "
                    f"got {dfac}")
            if not 0.0 <= gloss < 1.0:
                raise SimConfigError(
                    f"gray-link loss must be in [0, 1), got {gloss}")

    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (not self.crashes and self.loss == 0.0 and self.dup == 0.0
                and not self.blackouts and not self.partitions
                and not self.slowdowns and not self.gray_links)

    @classmethod
    def sample(cls, n: int, crashes: int, seed: int,
               window: tuple[float, float] = (1e-3, 50e-3),
               loss: float = 0.0, dup: float = 0.0) -> "FaultPlan":
        """Draw a deterministic random crash schedule for an n-process run.

        ``crashes`` distinct non-root pids crash at times uniform in
        ``window``; the draw is a pure function of ``seed``.
        """
        if crashes < 0:
            raise SimConfigError("crashes must be >= 0")
        if crashes > n - 1:
            raise SimConfigError(
                f"cannot crash {crashes} of {n} processes (pid 0 is immortal)")
        rng = RngStream(seed, "fault-plan")
        pids = rng.sample(range(1, n), crashes) if crashes else []
        lo, hi = window
        sched = tuple(sorted((pid, rng.uniform(lo, hi)) for pid in pids))
        return cls(crashes=sched, loss=loss, dup=dup)


class FaultController:
    """Runtime side of a :class:`FaultPlan`; owned by the engine.

    The engine only constructs one for non-null plans, so every hook below
    sits behind a single ``is None`` check on the hot path.
    """

    __slots__ = ("plan", "crashed", "crash_times",
                 "_loss_base", "_dup_base", "_loss_count", "_dup_count",
                 "_partitions", "_slow_pids", "_gray_bases", "_gray_counts")

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        # Loss/dup draws are keyed, not sequential: message k from sender
        # src hashes (base, src, k) to a uniform. The per-sender counter
        # advances in that sender's own transmit order — a *local* order
        # every shard of a partitioned fleet reproduces exactly — so the
        # same messages are lost/duplicated regardless of how concurrent
        # senders interleave in the global event schedule.
        self._loss_base = derive_seed(seed, "fault-loss") \
            if plan.loss > 0 else None
        self._dup_base = derive_seed(seed, "fault-dup") if plan.dup > 0 \
            else None
        self._loss_count: dict[int, int] = {}
        self._dup_count: dict[int, int] = {}
        self.crashed: set[int] = set()
        self.crash_times: dict[int, float] = dict(plan.crashes)
        # Partition sides as frozensets for O(1) cut tests.
        self._partitions: tuple[tuple[frozenset[int], float, float], ...] = \
            tuple((frozenset(side), start, end)
                  for side, start, end in plan.partitions)
        self._slow_pids: frozenset[int] = frozenset(
            pid for pid, _, _, _ in plan.slowdowns)
        # Gray-link flaky loss: one keyed base per rule, one per-(rule,
        # sender) counter advancing only on sends the rule fully matches —
        # still a pure function of the sender's local stream, so sharded
        # runs reproduce the same drops.
        self._gray_bases: tuple[int, ...] = tuple(
            derive_seed(seed, "fault-gray", i)
            for i in range(len(plan.gray_links)))
        self._gray_counts: dict[tuple[int, int], int] = {}

    def cut(self, src: int, dst: int, now: float) -> bool:
        """Whether a partition window currently severs the (src, dst) link
        (exactly one endpoint inside the partitioned side)."""
        for side, start, end in self._partitions:
            if start <= now < end and ((src in side) != (dst in side)):
                return True
        return False

    def drops(self, msg: Message, now: float) -> bool:
        """Decide whether this transmission is lost (partition cut,
        blackout, gray-link flaky loss, or i.i.d. loss)."""
        if self._partitions and self.cut(msg.src, msg.dst, now):
            return True
        for src, dst, start, end in self.plan.blackouts:
            if ((src is None or src == msg.src)
                    and (dst is None or dst == msg.dst)
                    and start <= now < end):
                return True
        for i, (src, dst, start, end, _, gloss) in \
                enumerate(self.plan.gray_links):
            if (gloss > 0.0 and (src is None or src == msg.src)
                    and (dst is None or dst == msg.dst)
                    and start <= now < end):
                key = (i, msg.src)
                k = self._gray_counts.get(key, 0)
                self._gray_counts[key] = k + 1
                if derive_seed(self._gray_bases[i], msg.src, k) \
                        * _INV_2_63 < gloss:
                    return True
        base = self._loss_base
        if base is None:
            return False
        src = msg.src
        k = self._loss_count.get(src, 0)
        self._loss_count[src] = k + 1
        return derive_seed(base, src, k) * _INV_2_63 < self.plan.loss

    def delay_factor(self, src: int, dst: int, now: float) -> float:
        """Multiplicative delay inflation from gray links active on
        (src, dst) at ``now`` (1.0 when none match). Always >= 1, so the
        engine's min-delay network lookahead stays a valid lower bound."""
        f = 1.0
        for gsrc, gdst, start, end, dfac, _ in self.plan.gray_links:
            if ((gsrc is None or gsrc == src)
                    and (gdst is None or gdst == dst)
                    and start <= now < end):
                f *= dfac
        return f

    def slow_factor(self, pid: int, now: float) -> float:
        """Compute-slowdown multiplier for ``pid`` at ``now`` (>= 1)."""
        f = 1.0
        if pid in self._slow_pids:
            for spid, start, end, factor in self.plan.slowdowns:
                if spid == pid and start <= now < end:
                    f *= factor
        return f

    def has_slowdown(self, pid: int) -> bool:
        """Whether any gray slowdown window targets ``pid`` (used to opt
        the pid out of macro-event fusion: a fused block cannot see a
        window boundary crossing mid-block)."""
        return pid in self._slow_pids

    def validate_fleet(self, n: int) -> None:
        """Run-start validation against the actual fleet size: every
        partition must split ``range(n)`` into two nonempty sides."""
        for side, _start, _end in self.plan.partitions:
            bad = [p for p in side if p >= n]
            if bad:
                raise SimConfigError(
                    f"partition side references unknown process(es) {bad} "
                    f"(fleet has {n} processes)")
            if len(side) >= n:
                raise SimConfigError(
                    f"partition side {tuple(sorted(side))} covers the whole "
                    f"{n}-process fleet: the complement side is empty, so "
                    "there is no cut — use a proper subset")
        for pid, _, _, _ in self.plan.slowdowns:
            if pid >= n:
                raise SimConfigError(
                    f"slowdown targets unknown process {pid} "
                    f"(fleet has {n} processes)")

    def duplicates(self, msg: Message) -> bool:
        """Decide whether this delivery is duplicated."""
        base = self._dup_base
        if base is None:
            return False
        src = msg.src
        k = self._dup_count.get(src, 0)
        self._dup_count[src] = k + 1
        return derive_seed(base, src, k) * _INV_2_63 < self.plan.dup


__all__ = ["FaultPlan", "FaultController"]
