"""Deterministic fault injection: crash-stop processes, lossy links.

A :class:`FaultPlan` declares *what goes wrong* in a run — crash-stop
process failures at given virtual times, i.i.d. per-message loss and
duplication probabilities, and transient link blackouts — and the
:class:`FaultController` executes it inside the engine. Two properties the
rest of the repository depends on:

* **Determinism.** Every probabilistic decision is a pure function of the
  run seed and the message's identity: loss and duplication draws are
  keyed on ``(sender, per-sender send index)`` via
  :func:`~repro.sim.rng.derive_seed`, and crash times are explicit plan
  data, so a faulted run is exactly as bit-reproducible as a clean one.
  Keyed (rather than sequential) draws also make the decisions
  independent of the *global* transmit interleaving — each sender's
  message stream sees the same fate whether the fleet runs in one event
  loop or sharded across several (repro.sim.shard).
* **Zero overhead when unused.** A null plan (``FaultPlan()`` — no
  crashes, ``loss == dup == 0``, no blackouts) normalises to *no
  controller at all*: the engine keeps its exact pre-fault code paths, so
  golden bit-identity tests and hot-path throughput are untouched.

The failure model is crash-stop: a crashed process stops executing —
inbox dropped, running quantum aborted, pending timers inert — and never
recovers. Process 0 (the overlay/detection-tree root and initial work
holder) is immortal by construction; the plan validator rejects root
crashes, mirroring the classic resilient work-stealing setting where the
coordinator persists.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SimConfigError
from .messages import Message
from .rng import RngStream, derive_seed

#: Keyed draws map a 63-bit derived seed to a uniform in [0, 1).
_INV_2_63 = 2.0 ** -63


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults injected into one run.

    Attributes:
        crashes: ``(pid, time)`` pairs — process ``pid`` crash-stops at
            virtual ``time``. Pid 0 never crashes (validated).
        loss: probability that any transmitted message is silently dropped.
        dup: probability that a delivered message is delivered twice (the
            duplicate takes an independently priced delay).
        blackouts: ``(src, dst, start, end)`` windows during which every
            message on the matching link is dropped; ``None`` for ``src``
            or ``dst`` is a wildcard ("any process").
    """

    crashes: tuple[tuple[int, float], ...] = ()
    loss: float = 0.0
    dup: float = 0.0
    blackouts: tuple[tuple[int | None, int | None, float, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise SimConfigError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.dup < 1.0:
            raise SimConfigError(f"dup must be in [0, 1), got {self.dup}")
        seen = set()
        for pid, t in self.crashes:
            if pid == 0:
                raise SimConfigError(
                    "process 0 (the root) cannot crash: it anchors the "
                    "overlay, the termination waves and the initial work")
            if pid < 0:
                raise SimConfigError(f"crash pid must be >= 0, got {pid}")
            if t <= 0:
                raise SimConfigError(
                    f"crash time must be > 0, got {t} for pid {pid}")
            if pid in seen:
                raise SimConfigError(f"pid {pid} crashes more than once")
            seen.add(pid)
        for src, dst, start, end in self.blackouts:
            if start < 0 or end <= start:
                raise SimConfigError(
                    f"blackout window must satisfy 0 <= start < end, "
                    f"got [{start}, {end}]")
            for p in (src, dst):
                if p is not None and p < 0:
                    raise SimConfigError(f"blackout pid must be >= 0, got {p}")

    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (not self.crashes and self.loss == 0.0 and self.dup == 0.0
                and not self.blackouts)

    @classmethod
    def sample(cls, n: int, crashes: int, seed: int,
               window: tuple[float, float] = (1e-3, 50e-3),
               loss: float = 0.0, dup: float = 0.0) -> "FaultPlan":
        """Draw a deterministic random crash schedule for an n-process run.

        ``crashes`` distinct non-root pids crash at times uniform in
        ``window``; the draw is a pure function of ``seed``.
        """
        if crashes < 0:
            raise SimConfigError("crashes must be >= 0")
        if crashes > n - 1:
            raise SimConfigError(
                f"cannot crash {crashes} of {n} processes (pid 0 is immortal)")
        rng = RngStream(seed, "fault-plan")
        pids = rng.sample(range(1, n), crashes) if crashes else []
        lo, hi = window
        sched = tuple(sorted((pid, rng.uniform(lo, hi)) for pid in pids))
        return cls(crashes=sched, loss=loss, dup=dup)


class FaultController:
    """Runtime side of a :class:`FaultPlan`; owned by the engine.

    The engine only constructs one for non-null plans, so every hook below
    sits behind a single ``is None`` check on the hot path.
    """

    __slots__ = ("plan", "crashed", "crash_times",
                 "_loss_base", "_dup_base", "_loss_count", "_dup_count")

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        # Loss/dup draws are keyed, not sequential: message k from sender
        # src hashes (base, src, k) to a uniform. The per-sender counter
        # advances in that sender's own transmit order — a *local* order
        # every shard of a partitioned fleet reproduces exactly — so the
        # same messages are lost/duplicated regardless of how concurrent
        # senders interleave in the global event schedule.
        self._loss_base = derive_seed(seed, "fault-loss") \
            if plan.loss > 0 else None
        self._dup_base = derive_seed(seed, "fault-dup") if plan.dup > 0 \
            else None
        self._loss_count: dict[int, int] = {}
        self._dup_count: dict[int, int] = {}
        self.crashed: set[int] = set()
        self.crash_times: dict[int, float] = dict(plan.crashes)

    def drops(self, msg: Message, now: float) -> bool:
        """Decide whether this transmission is lost (loss or blackout)."""
        for src, dst, start, end in self.plan.blackouts:
            if ((src is None or src == msg.src)
                    and (dst is None or dst == msg.dst)
                    and start <= now < end):
                return True
        base = self._loss_base
        if base is None:
            return False
        src = msg.src
        k = self._loss_count.get(src, 0)
        self._loss_count[src] = k + 1
        return derive_seed(base, src, k) * _INV_2_63 < self.plan.loss

    def duplicates(self, msg: Message) -> bool:
        """Decide whether this delivery is duplicated."""
        base = self._dup_base
        if base is None:
            return False
        src = msg.src
        k = self._dup_count.get(src, 0)
        self._dup_count[src] = k + 1
        return derive_seed(base, src, k) * _INV_2_63 < self.plan.dup


__all__ = ["FaultPlan", "FaultController"]
