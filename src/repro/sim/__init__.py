"""Deterministic discrete-event simulator of message-passing processes.

This package is the hardware substitute for the paper's Grid'5000 testbed:
virtual CPUs with non-preemptive occupancy, a priced network (latency,
bandwidth, per-message handler cost, optional jitter) and exact, reproducible
virtual time. See DESIGN.md §2 and §6 for the model and its justification.
"""

from .engine import Simulator
from .errors import SimConfigError, SimDeadlockError, SimError, SimRuntimeError
from .events import Event, EventQueue
from .faults import FaultController, FaultPlan
from .messages import HEADER_BYTES, Message, sized
from .network import ClusterSpec, NetworkModel, grid5000, uniform_network
from .process import SimProcess
from .rng import RngStream, derive_seed, mix64, spawn_numpy, splitmix64
from .stats import ProcessStats, RunStats

__all__ = [
    "Simulator", "SimProcess", "Event", "EventQueue", "Message", "sized",
    "HEADER_BYTES", "ClusterSpec", "NetworkModel", "grid5000",
    "uniform_network", "RngStream", "derive_seed", "mix64", "splitmix64",
    "spawn_numpy", "ProcessStats", "RunStats", "SimError", "SimConfigError",
    "SimRuntimeError", "SimDeadlockError", "FaultPlan", "FaultController",
]
