"""The simulation engine: event loop, message transport, run statistics."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .errors import SimConfigError, SimDeadlockError, SimRuntimeError
from .events import EventQueue
from .faults import FaultController, FaultPlan
from .messages import Message
from .network import NetworkModel, uniform_network
from .process import SimProcess
from .stats import RunStats

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..obs.registry import MetricsRegistry


class Simulator:
    """Deterministic discrete-event simulator of message-passing processes.

    Typical usage::

        sim = Simulator(network=grid5000(), seed=42)
        for pid in range(n):
            sim.add_process(MyProcess(pid))
        sim.run()
        print(sim.stats.makespan)

    The run ends when the event queue drains. If at that point some process
    reports ``finished() == False``, :class:`SimDeadlockError` is raised with
    a snapshot of the stuck processes — the simulator-level equivalent of a
    distributed deadlock, which in this repository always means a protocol
    bug (and is exactly what the termination-detection tests hunt for).

    ``debug=True`` turns on event tagging: deliveries, handler slots,
    timers and quanta get human-readable tags, so ``queue.snapshot_tags()``
    (and the deadlock report built from it) names what is pending. Off by
    default — tag strings are pure allocation overhead on the per-message
    hot path, so none are built unless the flag is set.

    The class doubles as the reference *execution environment*: protocol
    code only ever touches ``queue.now``/``queue.push`` (clock + timers),
    ``transmit`` (transport), ``network.handler_cost``, ``stats``,
    ``metrics``, ``debug``, ``seed`` and the fault surface (``faults``,
    ``is_crashed``, ``peer_logged``).  ``repro.runtime.env.LiveEnv``
    implements the same surface over wall clocks and sockets, which is how
    the protocols run unmodified on real processes (docs/runtime.md).
    """

    #: False: virtual time, priced occupancy. The live runtime's
    #: environment sets True, switching the worker's quantum accounting to
    #: measured wall time (the only protocol-visible difference).
    live = False

    def __init__(self, network: Optional[NetworkModel] = None, seed: int = 0,
                 auto_place: bool = True, debug: bool = False,
                 faults: Optional[FaultPlan] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 fuse: bool = True) -> None:
        self.network = network if network is not None else uniform_network()
        self.seed = seed
        self.debug = debug
        # Observability registry (repro.obs). None by default: every
        # publishing site in the framework is gated on an ``is not None``
        # check, so detached runs pay nothing and instrumented runs are
        # bit-identical (the registry never touches simulation state).
        self.metrics = metrics
        # A null plan normalises to no controller at all: with
        # ``self.faults is None`` every fault hook below is one dead branch
        # and the engine behaves bit-identically to the pre-fault code.
        self.faults: Optional[FaultController] = (
            FaultController(faults, seed)
            if faults is not None and not faults.is_null() else None)
        self.queue = EventQueue()
        self.processes: list[SimProcess] = []
        self._arrive_fns: list = []
        self.stats = RunStats.create(0)
        self._auto_place = auto_place
        self._running = False
        self._stopped = False
        self._started = False
        # FIFO per channel: like the TCP streams of the paper's testbed,
        # messages between one (src, dst) pair never overtake each other —
        # a property the pure-tree termination argument relies on.
        # An entry whose horizon has passed (arrive_at <= now) is inert —
        # max(now + delay, arrive_at) then equals now + delay — so transmit
        # sweeps stale entries amortized-O(1) (doubling threshold) to keep
        # the dict proportional to *in-flight* channels, not the O(n^2)
        # channels ever used.
        self._fifo: dict[tuple[int, int], float] = {}
        self._fifo_sweep = 256
        # Macro-event fusion (see docs/simulation.md and core/worker.py):
        # the ``fuse`` flag opts in; ``_fuse_active`` is resolved in run()
        # — fusion stays off under max_time/max_events truncation, where
        # the cut point depends on the per-event schedule.
        self._fuse = fuse
        self._fuse_active = False
        self._min_net_delay = self.network.min_delay()

    # -- construction --------------------------------------------------------

    def add_process(self, proc: SimProcess) -> SimProcess:
        """Register a process; pids must be dense, in order: 0, 1, 2, ..."""
        if self._started:
            raise SimConfigError("cannot add processes after run() started")
        if proc.pid != len(self.processes):
            raise SimConfigError(
                f"expected pid {len(self.processes)}, got {proc.pid}; "
                "add processes in pid order")
        proc.sim = self
        self.processes.append(proc)
        self._arrive_fns.append(proc._arrive)
        return proc

    @property
    def n(self) -> int:
        """Number of registered processes."""
        return len(self.processes)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.queue.now

    # -- transport -------------------------------------------------------------

    def transmit(self, msg: Message) -> None:
        """Price and enqueue a message delivery.

        Deliveries are pushed as (bound arrival method, message) pairs —
        no closure per message — and carry a tag only when :attr:`debug`
        is set.
        """
        dst = msg.dst
        if not (0 <= dst < len(self.processes)):
            raise SimRuntimeError(f"message to unknown process {dst}")
        src_stats = self.stats.per_process[msg.src]
        src_stats.msgs_sent += 1
        src_stats.bytes_sent += msg.size_bytes
        now = self.queue.now
        msg.send_time = now
        if len(self._fifo) >= self._fifo_sweep:
            # drop channels whose FIFO horizon already passed (inert; see
            # the field comment) and re-arm the threshold at 2x the live
            # size so the sweep stays amortized-O(1) per transmit
            self._fifo = {c: t for c, t in self._fifo.items() if t > now}
            self._fifo_sweep = max(256, 2 * len(self._fifo))
        fc = self.faults
        if fc is not None and fc.drops(msg, now):
            src_stats.msgs_lost += 1
            return
        delay = self.network.delivery_delay(msg.src, dst, msg.size_bytes)
        chan = (msg.src, dst)
        arrive_at = max(now + delay, self._fifo.get(chan, 0.0))
        self._fifo[chan] = arrive_at
        if self._fuse_active:
            self.processes[dst]._note_inbound(arrive_at)
        self.queue.push(
            arrive_at, self._arrive_fns[dst],
            tag=f"deliver:{msg.kind}->{dst}" if self.debug else "",
            arg=msg)
        if fc is not None and fc.duplicates(msg):
            src_stats.msgs_duplicated += 1
            dup_delay = self.network.delivery_delay(msg.src, dst,
                                                    msg.size_bytes)
            dup_at = max(now + dup_delay, self._fifo[chan])
            self._fifo[chan] = dup_at
            if self._fuse_active:
                self.processes[dst]._note_inbound(dup_at)
            self.queue.push(
                dup_at, self._arrive_fns[dst],
                tag=f"dup:{msg.kind}->{dst}" if self.debug else "",
                arg=msg)

    # -- run --------------------------------------------------------------------

    def stop(self) -> None:
        """Abort the run after the current event (used by tests/limits)."""
        self._stopped = True

    def note_work_done(self) -> None:
        """Record that application work completed at the current time."""
        if self.now > self.stats.work_done_time:
            self.stats.work_done_time = self.now

    def run(self, max_time: Optional[float] = None,
            max_events: Optional[int] = None) -> RunStats:
        """Execute until the queue drains (or a limit trips); returns stats."""
        if self._started:
            raise SimConfigError("a Simulator instance runs only once")
        self._started = True
        if not self.processes:
            raise SimConfigError("no processes registered")
        self.stats = RunStats.create(len(self.processes))
        if self._auto_place:
            self.network.place(len(self.processes), seed=self.seed)
        self._running = True
        # Fusion needs the full event schedule ahead of time to be the
        # run's own; truncation limits cut at per-event granularity, so a
        # limited run falls back to the one-event-per-quantum engine.
        self._fuse_active = (self._fuse and max_time is None
                             and max_events is None)
        if self.faults is not None:
            for pid, t in self.faults.plan.crashes:
                if pid >= len(self.processes):
                    raise SimConfigError(
                        f"fault plan crashes unknown process {pid}")
                if self._fuse_active:
                    self.processes[pid]._note_inbound(t)
                self.queue.push(t, self._crash_process,
                                tag=f"crash:{pid}" if self.debug else "",
                                arg=pid)
        for proc in self.processes:
            proc.start()
        fired = 0
        # A run is *truncated* only when a limit actually cut it short —
        # stop() was called, or an event beyond the limit was left pending.
        # Merely passing max_time/max_events must not suppress the deadlock
        # check when the queue drained naturally before the limit.
        truncated = False
        while True:
            if self._stopped:
                truncated = True
                break
            if max_events is not None and fired >= max_events:
                truncated = self.queue.peek_time() is not None
                break
            if max_time is not None:
                nxt = self.queue.peek_time()
                if nxt is not None and nxt > max_time:
                    truncated = True
                    break
            ev = self.queue.pop()
            if ev is None:
                break
            fired += 1
            arg = ev.arg
            if arg is not None:
                ev.action(arg)
            else:
                ev.action()
        self._running = False
        self.stats.events_fired = fired
        self._finalize(truncated=truncated)
        return self.stats

    # -- faults -----------------------------------------------------------------

    def is_crashed(self, pid: int) -> bool:
        """Ground truth used by the (perfect) failure detector model."""
        return self.faults is not None and pid in self.faults.crashed

    def peer_logged(self, dead_pid: int, src_pid: int, seq: int) -> bool:
        """Whether crashed ``dead_pid`` logged transfer ``seq`` from
        ``src_pid`` before dying.

        The dead peer's reliable-channel dedup set stands in for the
        write-ahead receive log a fault-tolerant runtime keeps on stable
        storage; reading it post-mortem is the modelled "recovery from the
        log" (the live runtime reads an actual on-disk spool here).
        """
        ch = getattr(self.processes[dead_pid], "_reliable", None)
        return ch is not None and ch.was_delivered(src_pid, seq)

    def _crash_process(self, pid: int) -> None:
        """Crash-stop ``pid``: halt execution, drop state, never recover."""
        proc = self.processes[pid]
        proc._crashed = True
        proc._inbox.clear()
        if proc._occupy_event is not None:
            proc._occupy_event.cancel()
            proc._occupy_event = None
        proc._cpu_busy = False
        self.faults.crashed.add(pid)
        ps = self.stats.per_process[pid]
        ps.crashes += 1
        ps.crash_time = self.now
        if self.metrics is not None:
            self.metrics.counter("engine.crashes").inc()
        tracer = getattr(proc, "tracer", None)
        if tracer is not None:
            from .trace import CRASH
            tracer.record(self.now, pid, CRASH)

    def _finalize(self, truncated: bool) -> None:
        unfinished = [p.pid for p in self.processes
                      if not p.finished() and not p._crashed]
        if unfinished and not truncated:
            pending = self.queue.snapshot_tags()[:10]
            hint = "" if self.debug else \
                " (run with debug=True for event tags)"
            raise SimDeadlockError(
                f"event queue drained at t={self.now:.6f} with "
                f"{len(unfinished)} unfinished processes "
                f"(first: {unfinished[:10]}); pending events: {pending}"
                + hint)
        self.stats.makespan = self.stats.max_finish_time(default=self.now)
        if self.stats.makespan == 0.0:
            self.stats.makespan = self.now
        self.stats.seal()
        if self.metrics is not None:
            self.metrics.gauge("engine.events").set(self.stats.events_fired)
            self.metrics.gauge("engine.makespan_s").set(self.stats.makespan)


__all__ = ["Simulator"]
