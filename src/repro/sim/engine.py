"""The simulation engine: event loop, message transport, run statistics."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .errors import SimConfigError, SimDeadlockError, SimRuntimeError
from .events import EventQueue
from .faults import FaultController, FaultPlan
from .messages import Message
from .network import NetworkModel, uniform_network
from .process import SimProcess
from .stats import RunStats

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..obs.registry import MetricsRegistry


class Simulator:
    """Deterministic discrete-event simulator of message-passing processes.

    Typical usage::

        sim = Simulator(network=grid5000(), seed=42)
        for pid in range(n):
            sim.add_process(MyProcess(pid))
        sim.run()
        print(sim.stats.makespan)

    The run ends when the event queue drains. If at that point some process
    reports ``finished() == False``, :class:`SimDeadlockError` is raised with
    a snapshot of the stuck processes — the simulator-level equivalent of a
    distributed deadlock, which in this repository always means a protocol
    bug (and is exactly what the termination-detection tests hunt for).

    ``debug=True`` turns on event tagging: deliveries, handler slots,
    timers and quanta get human-readable tags, so ``queue.snapshot_tags()``
    (and the deadlock report built from it) names what is pending. Off by
    default — tag strings are pure allocation overhead on the per-message
    hot path, so none are built unless the flag is set.

    The class doubles as the reference *execution environment*: protocol
    code only ever touches ``queue.now``/``queue.push`` (clock + timers),
    ``transmit`` (transport), ``network.handler_cost``, ``stats``,
    ``metrics``, ``debug``, ``seed`` and the fault surface (``faults``,
    ``is_crashed``, ``peer_logged``).  ``repro.runtime.env.LiveEnv``
    implements the same surface over wall clocks and sockets, which is how
    the protocols run unmodified on real processes (docs/runtime.md).
    """

    #: False: virtual time, priced occupancy. The live runtime's
    #: environment sets True, switching the worker's quantum accounting to
    #: measured wall time (the only protocol-visible difference).
    live = False

    def __init__(self, network: Optional[NetworkModel] = None, seed: int = 0,
                 auto_place: bool = True, debug: bool = False,
                 faults: Optional[FaultPlan] = None,
                 metrics: Optional["MetricsRegistry"] = None,
                 fuse: bool = True, shard=None) -> None:
        self.network = network if network is not None else uniform_network()
        self.seed = seed
        self.debug = debug
        # Observability registry (repro.obs). None by default: every
        # publishing site in the framework is gated on an ``is not None``
        # check, so detached runs pay nothing and instrumented runs are
        # bit-identical (the registry never touches simulation state).
        self.metrics = metrics
        # A null plan normalises to no controller at all: with
        # ``self.faults is None`` every fault hook below is one dead branch
        # and the engine behaves bit-identically to the pre-fault code.
        self.faults: Optional[FaultController] = (
            FaultController(faults, seed)
            if faults is not None and not faults.is_null() else None)
        # Shard mode keys ties by push time so barrier-injected deliveries
        # reproduce the serial insertion order (see EventQueue docstring).
        self.queue = EventQueue(tie_by_push_time=shard is not None)
        self.processes: list[SimProcess] = []
        self._arrive_fns: list = []
        self.stats = RunStats.create(0)
        self._auto_place = auto_place
        self._running = False
        self._stopped = False
        self._started = False
        # FIFO per channel: like the TCP streams of the paper's testbed,
        # messages between one (src, dst) pair never overtake each other —
        # a property the pure-tree termination argument relies on.
        # An entry whose horizon has passed (arrive_at <= now) is inert —
        # max(now + delay, arrive_at) then equals now + delay — so transmit
        # sweeps stale entries amortized-O(1) (doubling threshold) to keep
        # the dict proportional to *in-flight* channels, not the O(n^2)
        # channels ever used.
        self._fifo: dict[tuple[int, int], float] = {}
        self._fifo_sweep = 256
        # Macro-event fusion (see docs/simulation.md and core/worker.py):
        # the ``fuse`` flag opts in; ``_fuse_active`` is resolved in run()
        # — fusion stays off under max_time/max_events truncation, where
        # the cut point depends on the per-event schedule.
        self._fuse = fuse
        self._fuse_active = False
        self._min_net_delay = self.network.min_delay()
        # Sharded parallel runs (repro.sim.shard): ``shard`` is the shard
        # context of the owning shard process — it maps every pid to its
        # shard, collects cross-shard exports from transmit(), and brokers
        # post-mortem receive-log queries. None (the default) keeps every
        # hook below a single dead branch: a serial run is bit-identical
        # to the pre-shard engine.
        self._shard = shard
        # Current window horizon while running under repro.sim.shard
        # (run_window); the fusion fast path treats it as an additional
        # lookahead bound — a foreign shard's events cannot land an
        # arrival before the window end.
        self._window_end: Optional[float] = None
        self._fired = 0

    # -- construction --------------------------------------------------------

    def add_process(self, proc: SimProcess) -> SimProcess:
        """Register a process; pids must be dense, in order: 0, 1, 2, ..."""
        if self._started:
            raise SimConfigError("cannot add processes after run() started")
        if proc.pid != len(self.processes):
            raise SimConfigError(
                f"expected pid {len(self.processes)}, got {proc.pid}; "
                "add processes in pid order")
        proc.sim = self
        self.processes.append(proc)
        self._arrive_fns.append(proc._arrive)
        return proc

    @property
    def n(self) -> int:
        """Number of registered processes."""
        return len(self.processes)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.queue.now

    # -- transport -------------------------------------------------------------

    def transmit(self, msg: Message) -> None:
        """Price and enqueue a message delivery.

        Deliveries are pushed as (bound arrival method, message) pairs —
        no closure per message — and carry a tag only when :attr:`debug`
        is set.
        """
        dst = msg.dst
        if not (0 <= dst < len(self.processes)):
            raise SimRuntimeError(f"message to unknown process {dst}")
        src_stats = self.stats.per_process[msg.src]
        src_stats.msgs_sent += 1
        src_stats.bytes_sent += msg.size_bytes
        now = self.queue.now
        msg.send_time = now
        if len(self._fifo) >= self._fifo_sweep:
            # drop channels whose FIFO horizon already passed (inert; see
            # the field comment) and re-arm the threshold at 2x the live
            # size so the sweep stays amortized-O(1) per transmit
            self._fifo = {c: t for c, t in self._fifo.items() if t > now}
            self._fifo_sweep = max(256, 2 * len(self._fifo))
        fc = self.faults
        if fc is not None and fc.drops(msg, now):
            src_stats.msgs_lost += 1
            return
        delay = self.network.delivery_delay(msg.src, dst, msg.size_bytes)
        if fc is not None and fc.plan.gray_links:
            # Gray-link inflation multiplies (factor >= 1, validated), so
            # network.min_delay() remains a sound fusion/shard lookahead.
            delay *= fc.delay_factor(msg.src, dst, now)
        chan = (msg.src, dst)
        arrive_at = max(now + delay, self._fifo.get(chan, 0.0))
        self._fifo[chan] = arrive_at
        sh = self._shard
        if sh is not None and dst != msg.src:
            # Sharded run: every delivery to another pid arrives at least
            # min_delay() away — at or past the window end — so none can
            # fire inside the current window. Both local and cross-shard
            # deliveries therefore detour through the barrier, where they
            # are merge-ordered by (send time, sender, sender's send
            # sequence) before injection: at equal arrival times the
            # destination queue sees them in serial transmit order, which
            # is what the serial engine's insertion-order tie-break fires.
            # Everything source-side — send stats, loss/dup draws,
            # pricing, the (src, dst) FIFO clock — already happened above,
            # identically to a serial run. (Self-sends can arrive within
            # the window; they fall through to the direct push below.)
            sh.export(msg, arrive_at)
            if fc is not None and fc.duplicates(msg):
                src_stats.msgs_duplicated += 1
                dup_delay = self.network.delivery_delay(msg.src, dst,
                                                        msg.size_bytes)
                if fc.plan.gray_links:
                    dup_delay *= fc.delay_factor(msg.src, dst, now)
                dup_at = max(now + dup_delay, self._fifo[chan])
                self._fifo[chan] = dup_at
                sh.export(msg, dup_at)
            return
        if self._fuse_active:
            self.processes[dst]._note_inbound(arrive_at)
        self.queue.push(
            arrive_at, self._arrive_fns[dst],
            tag=f"deliver:{msg.kind}->{dst}" if self.debug else "",
            arg=msg)
        if fc is not None and fc.duplicates(msg):
            src_stats.msgs_duplicated += 1
            dup_delay = self.network.delivery_delay(msg.src, dst,
                                                    msg.size_bytes)
            if fc.plan.gray_links:
                dup_delay *= fc.delay_factor(msg.src, dst, now)
            dup_at = max(now + dup_delay, self._fifo[chan])
            self._fifo[chan] = dup_at
            if self._fuse_active:
                self.processes[dst]._note_inbound(dup_at)
            self.queue.push(
                dup_at, self._arrive_fns[dst],
                tag=f"dup:{msg.kind}->{dst}" if self.debug else "",
                arg=msg)

    # -- run --------------------------------------------------------------------

    def stop(self) -> None:
        """Abort the run after the current event (used by tests/limits)."""
        self._stopped = True

    def note_work_done(self) -> None:
        """Record that application work completed at the current time."""
        if self.now > self.stats.work_done_time:
            self.stats.work_done_time = self.now

    def _begin(self, limited: bool) -> None:
        """Shared setup for run() and begin_windows(): stats, placement,
        crash schedule, process start."""
        if self._started:
            raise SimConfigError("a Simulator instance runs only once")
        self._started = True
        if not self.processes:
            raise SimConfigError("no processes registered")
        self.stats = RunStats.create(len(self.processes))
        if self._auto_place:
            self.network.place(len(self.processes), seed=self.seed)
        self._running = True
        # Fusion needs the full event schedule ahead of time to be the
        # run's own; truncation limits cut at per-event granularity, so a
        # limited run falls back to the one-event-per-quantum engine.
        self._fuse_active = self._fuse and not limited
        sh = self._shard
        if self.faults is not None:
            self.faults.validate_fleet(len(self.processes))
            for pid, t in self.faults.plan.crashes:
                if pid >= len(self.processes):
                    raise SimConfigError(
                        f"fault plan crashes unknown process {pid}")
                if sh is not None and sh.owner[pid] != sh.shard_id:
                    # Remote pids crash in their own shard; is_crashed
                    # answers for them from the plan (see below).
                    continue
                if self._fuse_active:
                    self.processes[pid]._note_inbound(t)
                self.queue.push(t, self._crash_process,
                                tag=f"crash:{pid}" if self.debug else "",
                                arg=pid)
        for proc in self.processes:
            proc.start()

    def _finish(self, truncated: bool) -> RunStats:
        self._running = False
        self.stats.events_fired = self._fired
        self._finalize(truncated=truncated)
        return self.stats

    def run(self, max_time: Optional[float] = None,
            max_events: Optional[int] = None) -> RunStats:
        """Execute until the queue drains (or a limit trips); returns stats."""
        limited = max_time is not None or max_events is not None
        self._begin(limited)
        queue = self.queue
        fired = 0
        # A run is *truncated* only when a limit actually cut it short —
        # stop() was called, or an event beyond the limit was left pending.
        # Merely passing max_time/max_events must not suppress the deadlock
        # check when the queue drained naturally before the limit.
        truncated = False
        while True:
            if self._stopped:
                truncated = True
                break
            if limited:
                # One peek serves both limit checks (the pop below re-walks
                # at most the cancelled heads peek already pruned).
                nxt = queue.peek_time()
                if max_events is not None and fired >= max_events:
                    truncated = nxt is not None
                    break
                if max_time is not None and nxt is not None and nxt > max_time:
                    truncated = True
                    break
            ev = queue.pop()
            if ev is None:
                break
            fired += 1
            arg = ev.arg
            if arg is not None:
                ev.action(arg)
            else:
                ev.action()
        self._fired = fired
        return self._finish(truncated)

    # -- windowed execution (repro.sim.shard) -----------------------------------
    #
    # The sharded parallel driver replaces the single run() call with:
    #
    #     sim.begin_windows()
    #     while not done:
    #         next_t = sim.run_window(horizon)   # fire events with t < horizon
    #         ... barrier: exchange cross-shard messages ...
    #         for msg, at in inbound: sim.inject(msg, at)
    #     stats = sim.finish_windows()
    #
    # run_window never fires an event at or past the horizon, and inject
    # only ever lands arrivals at or past it (conservative lookahead), so
    # the queue's no-rewind invariant holds by construction.

    def begin_windows(self) -> None:
        """Start a windowed run (sharded driver); pair with finish_windows."""
        self._begin(limited=False)

    def run_window(self, horizon: float) -> Optional[float]:
        """Fire every pending event with time strictly below ``horizon``.

        Returns the next pending event time (>= horizon) or None if the
        local queue is empty — the shard's bid for the next window start.
        """
        self._window_end = horizon
        queue = self.queue
        fired = self._fired
        while True:
            nxt = queue.peek_time()
            if nxt is None or nxt >= horizon:
                break
            ev = queue.pop()
            fired += 1
            arg = ev.arg
            if arg is not None:
                ev.action(arg)
            else:
                ev.action()
        self._fired = fired
        self._window_end = None
        return nxt

    def inject(self, msg: Message, arrive_at: float) -> None:
        """Deliver a foreign shard's message locally at ``arrive_at``.

        The sender's shard already priced the delivery (delay, FIFO clock,
        loss/dup draws) and counted the source-side stats; this side only
        schedules the arrival, exactly as transmit() would have.
        """
        dst = msg.dst
        if self._fuse_active:
            self.processes[dst]._note_inbound(arrive_at)
        self.queue.push(
            arrive_at, self._arrive_fns[dst],
            tag=f"deliver:{msg.kind}->{dst}" if self.debug else "",
            arg=msg, sent_at=msg.send_time)

    def finish_windows(self) -> RunStats:
        """End a windowed run: deadlock check, seal, return stats."""
        return self._finish(truncated=False)

    # -- faults -----------------------------------------------------------------

    def is_crashed(self, pid: int) -> bool:
        """Ground truth used by the (perfect) failure detector model."""
        fc = self.faults
        if fc is None:
            return False
        if pid in fc.crashed:
            return True
        if self._shard is not None:
            # Remote pids crash in their owner's shard; answer from the
            # plan instead. Exactly equivalent to the event-based answer:
            # crash events are pushed in _begin(), before any start() can
            # schedule anything, so at their timestamp they hold the
            # smallest sequence number and fire before any same-time
            # query — plan time <= now iff the event already fired.
            t = fc.crash_times.get(pid)
            return t is not None and t <= self.queue.now
        return False

    def peer_logged(self, dead_pid: int, src_pid: int, seq: int) -> bool:
        """Whether crashed ``dead_pid`` logged transfer ``seq`` from
        ``src_pid`` before dying.

        The dead peer's reliable-channel dedup set stands in for the
        write-ahead receive log a fault-tolerant runtime keeps on stable
        storage; reading it post-mortem is the modelled "recovery from the
        log" (the live runtime reads an actual on-disk spool here).
        """
        sh = self._shard
        if sh is not None and sh.owner[dead_pid] != sh.shard_id:
            # The dead peer's log lives in its owner's shard; the shard
            # context brokers the lookup through the parent (which blocks
            # until the owner's clock has passed the crash, so the log is
            # frozen and the answer exact).
            return sh.query_peer_log(dead_pid, src_pid, seq)
        ch = getattr(self.processes[dead_pid], "_reliable", None)
        return ch is not None and ch.was_delivered(src_pid, seq)

    def note_reliable_delivery(self, dst_pid: int, src_pid: int,
                               seq: int) -> None:
        """Hook: ``dst_pid``'s reliable channel logged transfer ``seq``
        from ``src_pid``.

        Serial runs ignore it (peer_logged reads the channel directly);
        under sharding the context mirrors entries for planned-crash pids
        to the parent so foreign shards can query them post-mortem.
        """
        sh = self._shard
        if sh is not None:
            sh.note_delivery(dst_pid, src_pid, seq)

    def _crash_process(self, pid: int) -> None:
        """Crash-stop ``pid``: halt execution, drop state, never recover."""
        proc = self.processes[pid]
        proc._crashed = True
        proc._inbox.clear()
        if proc._occupy_event is not None:
            proc._occupy_event.cancel()
            proc._occupy_event = None
        proc._cpu_busy = False
        self.faults.crashed.add(pid)
        ps = self.stats.per_process[pid]
        ps.crashes += 1
        ps.crash_time = self.now
        if self.metrics is not None:
            self.metrics.counter("engine.crashes").inc()
        tracer = getattr(proc, "tracer", None)
        if tracer is not None:
            from .trace import CRASH
            tracer.record(self.now, pid, CRASH)

    def _finalize(self, truncated: bool) -> None:
        unfinished = [p.pid for p in self.processes
                      if not p.finished() and not p._crashed]
        if unfinished and not truncated:
            pending = self.queue.snapshot_tags()[:10]
            hint = "" if self.debug else \
                " (run with debug=True for event tags)"
            raise SimDeadlockError(
                f"event queue drained at t={self.now:.6f} with "
                f"{len(unfinished)} unfinished processes "
                f"(first: {unfinished[:10]}); pending events: {pending}"
                + hint)
        fc = self.faults
        if fc is not None and fc.plan.partitions:
            # Partition cut/heal markers are pure plan data — recording
            # them here (instead of as engine events) keeps the event
            # schedule, and thus shard/fusion bit-identity, untouched.
            # Consumers sort by time; value encodes window identity
            # (+idx+1 at the cut, -(idx+1) at the heal).
            tracer = getattr(self.processes[0], "tracer", None)
            if tracer is not None:
                from .trace import PARTITION
                for i, (_side, start, end) in enumerate(fc.plan.partitions):
                    tracer.record(start, 0, PARTITION, float(i + 1))
                    tracer.record(end, 0, PARTITION, float(-(i + 1)))
        self.stats.makespan = self.stats.max_finish_time(default=self.now)
        if self.stats.makespan == 0.0:
            self.stats.makespan = self.now
        self.stats.seal()
        if self.metrics is not None:
            self.metrics.gauge("engine.events").set(self.stats.events_fired)
            self.metrics.gauge("engine.makespan_s").set(self.stats.makespan)


__all__ = ["Simulator"]
