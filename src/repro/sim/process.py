"""Simulated process base class.

A :class:`SimProcess` owns one virtual CPU. The CPU is either *free* or
*busy* (computing a quantum or absorbing a message); incoming messages queue
in the inbox while it is busy and are absorbed FIFO, each occupying the CPU
for the network model's ``handler_cost``. This non-preemptive occupancy
model is what lets the simulator reproduce saturation effects (a
master–worker coordinator melting under 1000 fine-grain requesters) without
modelling real threads.

Subclass contract:

* override :meth:`start` to bootstrap (schedule work, send first messages);
* override :meth:`on_message` for protocol logic (called when the CPU has
  *finished* absorbing the message);
* override :meth:`on_cpu_free` to resume background activity (the worker
  framework starts its next compute quantum here);
* override :meth:`finished` so the engine can distinguish quiescence
  (everyone done) from distributed deadlock.

Use :meth:`occupy` to model computation, :meth:`send` to transmit, and
:meth:`call_at` / :meth:`call_after` for zero-cost timers.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from .errors import SimRuntimeError
from .events import Event
from .messages import Message, sized

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator


class SimProcess:
    """One simulated node; see module docstring for the execution model."""

    def __init__(self, pid: int) -> None:
        if pid < 0:
            raise SimRuntimeError(f"pid must be >= 0, got {pid}")
        self.pid = pid
        self.sim: "Simulator" = None  # type: ignore[assignment]  # set on add
        self._inbox: deque[Message] = deque()
        self._cpu_busy = False
        self._crashed = False   # set by the engine's fault layer, only
        self._occupy_event: Optional[Event] = None
        # Lazy min-heap of fire times of pending events *targeting* this
        # process (deliveries, timers, crashes). Maintained only while the
        # engine runs with quantum fusion active; the macro-event fast path
        # reads it through :meth:`_inbound_horizon`. Entries are never
        # removed on cancellation — a stale entry can only make the horizon
        # conservative (less fusion), never unsound.
        self._inbound: list[float] = []

    # -- lifecycle hooks -----------------------------------------------------

    def start(self) -> None:
        """Called once at t=0 after every process is registered."""

    def on_message(self, msg: Message) -> None:
        """Protocol logic; runs when the CPU finished absorbing ``msg``."""

    def on_cpu_free(self) -> None:
        """Called whenever the CPU goes idle with an empty inbox."""

    def finished(self) -> bool:
        """True when this process considers the computation terminated."""
        return True

    # -- conveniences ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    @property
    def stats(self):
        """This process's counters in the run statistics."""
        return self.sim.stats.per_process[self.pid]

    @property
    def cpu_busy(self) -> bool:
        """True while computing or absorbing a message."""
        return self._cpu_busy

    @property
    def inbox_size(self) -> int:
        """Messages waiting for the CPU."""
        return len(self._inbox)

    def send(self, dst: int, kind: str, payload: Any = None,
             body_bytes: int = 0) -> None:
        """Transmit a message; delivery time priced by the network model."""
        self.sim.transmit(sized(kind, self.pid, dst, payload, body_bytes))

    def call_at(self, time: float, fn: Callable[[], None], tag: str = "") -> Event:
        """Schedule a zero-cost callback at absolute virtual ``time``."""
        if not tag and self.sim.debug:
            tag = f"timer@{self.pid}"
        if getattr(self.sim, "_fuse_active", False):
            self._note_inbound(time)
        if self.sim.faults is not None:
            # route through a guard so timers of a crashed process are inert
            return self.sim.queue.push(time, self._fire_timer, tag=tag,
                                       arg=fn)
        return self.sim.queue.push(time, fn, tag=tag)

    def _fire_timer(self, fn: Callable[[], None]) -> None:
        if not self._crashed:
            fn()

    def call_after(self, delay: float, fn: Callable[[], None], tag: str = "") -> Event:
        """Schedule a zero-cost callback ``delay`` seconds from now."""
        return self.call_at(self.now + delay, fn, tag=tag)

    def occupy(self, duration: float, done: Callable[[], None],
               tag: str = "") -> None:
        """Occupy the CPU for ``duration`` then run ``done``.

        ``done`` executes with the CPU still marked busy so it can chain
        another :meth:`occupy`; if it does not, queued messages are absorbed
        and finally :meth:`on_cpu_free` fires.
        """
        if self._cpu_busy:
            raise SimRuntimeError(f"process {self.pid}: CPU already busy")
        if duration < 0:
            raise SimRuntimeError(f"process {self.pid}: negative occupy {duration}")
        self._cpu_busy = True
        sim = self.sim
        if not tag and sim.debug:
            tag = f"occupy@{self.pid}"
        self._occupy_event = sim.queue.push(sim.queue.now + duration,
                                            self._occupy_done, tag=tag,
                                            arg=done)

    def _occupy_done(self, done: Callable[[], None]) -> None:
        self._occupy_event = None
        self._cpu_busy = False
        done()
        self._drain()

    # -- engine-facing internals ----------------------------------------------

    def _note_inbound(self, time: float) -> None:
        """Record that some event targeting this process fires at ``time``.

        Called by the engine (deliveries, crash injections) and by
        :meth:`call_at` while quantum fusion is active. Kept O(log k) via a
        plain heap; the fast path only ever needs the minimum.
        """
        heapq.heappush(self._inbound, time)

    def _inbound_horizon(self) -> Optional[float]:
        """Earliest *possibly pending* event targeting this process.

        Prunes entries strictly before ``now`` (those events fired or were
        skipped already); an entry at exactly ``now`` stays, because an
        equal-time event may still be pending behind the current one — the
        conservative answer. Returns None when nothing is pending.
        """
        h = self._inbound
        now = self.sim.queue.now
        while h and h[0] < now:
            heapq.heappop(h)
        return h[0] if h else None

    def _arrive(self, msg: Message) -> None:
        """Engine hook: a message reached this node's NIC."""
        if self._crashed:
            return
        st = self.stats
        st.msgs_received += 1
        st.bytes_received += msg.size_bytes
        self._inbox.append(msg)
        if not self._cpu_busy:
            self._drain()

    def _drain(self) -> None:
        """Absorb the next queued message, if any, else report CPU free."""
        if self._cpu_busy:
            return
        if not self._inbox:
            self.on_cpu_free()
            return
        msg = self._inbox.popleft()
        sim = self.sim
        self._cpu_busy = True
        sim.queue.push(
            sim.queue.now + sim.network.handler_cost, self._handled,
            tag=f"handle:{msg.kind}@{self.pid}" if sim.debug else "",
            arg=msg)

    def _handled(self, msg: Message) -> None:
        self._cpu_busy = False
        self.stats.handler_time += self.sim.network.handler_cost
        self.on_message(msg)
        self._drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} pid={self.pid}>"


__all__ = ["SimProcess"]
