"""Deterministic random-number streams for simulated processes.

Every stochastic decision in a run draws from a stream derived from
``(global_seed, *path)`` through SplitMix64 mixing, so

* two runs with the same seed are bit-identical regardless of the order in
  which processes are created or scheduled, and
* streams for different processes / purposes are statistically independent
  (SplitMix64 is the standard seeding mixer of the JDK and of NumPy's
  ``SeedSequence``-era literature).

The module also exposes the raw :func:`splitmix64` / :func:`mix64` helpers
that the UTS splittable RNG builds on (vectorised over NumPy ``uint64``).
"""

from __future__ import annotations

import random
from typing import Iterable

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def mix64(x: np.ndarray | np.uint64) -> np.ndarray | np.uint64:
    """SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.

    Accepts a scalar ``uint64`` or any ``uint64`` array; fully vectorised.
    """
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN) & _MASK
        z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _MASK
        z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _MASK
        return z ^ (z >> np.uint64(31))


def splitmix64(seed: int, n: int) -> np.ndarray:
    """Return ``n`` successive SplitMix64 outputs for an integer ``seed``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    base = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        idx = base + (np.arange(1, n + 1, dtype=np.uint64) * _GOLDEN)
    # mix64 already adds _GOLDEN once more; that constant offset is harmless.
    return mix64(idx & _MASK)


def derive_seed(global_seed: int, *path: int | str) -> int:
    """Derive a 63-bit child seed from a global seed and a label path.

    String labels are folded with a stable (non-salted) FNV-1a so that seeds
    do not depend on ``PYTHONHASHSEED``.
    """
    acc = np.uint64(global_seed & 0xFFFFFFFFFFFFFFFF)
    for part in path:
        if isinstance(part, str):
            h = np.uint64(0xCBF29CE484222325)
            with np.errstate(over="ignore"):
                for ch in part.encode("utf-8"):
                    h = ((h ^ np.uint64(ch)) * np.uint64(0x100000001B3)) & _MASK
            word = h
        else:
            word = np.uint64(int(part) & 0xFFFFFFFFFFFFFFFF)
        with np.errstate(over="ignore"):
            acc = mix64((acc ^ word) & _MASK)
    return int(acc) & 0x7FFFFFFFFFFFFFFF


class RngStream:
    """A named deterministic stream backed by :class:`random.Random`.

    ``random.Random`` (Mersenne Twister) is plenty for protocol decisions
    (victim choice, tie-breaking); the heavy-duty vectorised randomness in
    UTS uses :func:`mix64` directly.
    """

    __slots__ = ("seed", "_rng")

    def __init__(self, global_seed: int, *path: int | str) -> None:
        self.seed = derive_seed(global_seed, *path)
        self._rng = random.Random(self.seed)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in the inclusive range [a, b]."""
        return self._rng.randint(a, b)

    def randrange(self, n: int) -> int:
        return self._rng.randrange(n)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq, k: int):
        return self._rng.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)


def stream_family(global_seed: int, label: str, count: int) -> list[RngStream]:
    """Create ``count`` independent streams ``label/0 .. label/count-1``."""
    return [RngStream(global_seed, label, i) for i in range(count)]


def spawn_numpy(global_seed: int, *path: int | str) -> np.random.Generator:
    """A NumPy generator on the same deterministic derivation scheme."""
    return np.random.default_rng(derive_seed(global_seed, *path))


def fold_words(words: Iterable[int]) -> int:
    """Fold an iterable of ints into one 63-bit value (order-sensitive)."""
    acc = np.uint64(0x9AFB0C5D1E2F3A47)
    with np.errstate(over="ignore"):
        for w in words:
            acc = mix64((acc ^ np.uint64(int(w) & 0xFFFFFFFFFFFFFFFF)) & _MASK)
    return int(acc) & 0x7FFFFFFFFFFFFFFF
