"""Event core of the discrete-event simulator.

An :class:`Event` is an opaque callback bound to a virtual time; the
:class:`EventQueue` is a binary heap ordered by ``(time, seq)`` where ``seq``
is a global insertion counter. The counter makes simultaneous events fire in
insertion order, which is what makes whole-protocol runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from .errors import SimRuntimeError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: virtual time (seconds) at which the event fires.
        seq: insertion sequence number; total order tie-break.
        action: zero-argument callable executed when the event fires.
        cancelled: cooperative-cancellation flag; cancelled events are
            skipped by the queue (lazy deletion).
        tag: free-form debugging label.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` with lazy cancellation.

    The queue never rewinds: pushing an event earlier than the last popped
    time raises :class:`SimRuntimeError` (a protocol scheduling bug).
    """

    __slots__ = ("_heap", "_seq", "_now", "pushed", "fired", "skipped")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self.pushed = 0
        self.fired = 0
        self.skipped = 0

    @property
    def now(self) -> float:
        """Virtual time of the last popped event (0.0 initially)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``action`` at virtual ``time``; returns a cancellable handle."""
        if time < self._now:
            raise SimRuntimeError(
                f"cannot schedule event at t={time:.9f} before current t={self._now:.9f}"
                + (f" (tag={tag!r})" if tag else "")
            )
        ev = Event(time, self._seq, action, tag=tag)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self.pushed += 1
        return ev

    def pop(self) -> Optional[Event]:
        """Pop the next live event, advancing ``now``; None when drained."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                self.skipped += 1
                continue
            self._now = ev.time
            self.fired += 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self.skipped += 1
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def snapshot_tags(self) -> list[tuple[float, str]]:
        """Sorted (time, tag) of live events; debugging aid for deadlocks."""
        return sorted((e.time, e.tag) for e in self._heap if not e.cancelled)


__all__ = ["Event", "EventQueue"]
