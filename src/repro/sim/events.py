"""Event core of the discrete-event simulator.

An :class:`Event` is an opaque callback bound to a virtual time; the
:class:`EventQueue` is a binary heap ordered by ``(time, seq)`` where ``seq``
is a global insertion counter. The counter makes simultaneous events fire in
insertion order, which is what makes whole-protocol runs bit-reproducible.

Hot-path layout: the heap holds ``(time, seq, event)`` tuples so sift
comparisons stay inside the C tuple comparator (``seq`` is unique, so two
events are never compared), and :class:`Event` is a plain ``__slots__``
class — pushing allocates one tuple and one small object, nothing else.
An event may carry a single ``arg`` for its callback; schedulers use it to
push a shared bound method plus per-event argument (e.g. ``(proc._arrive,
msg)``) instead of allocating a closure per delivery.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .errors import SimRuntimeError


class Event:
    """A scheduled callback.

    Attributes:
        time: virtual time (seconds) at which the event fires.
        seq: insertion sequence number; total order tie-break.
        action: callable executed when the event fires — with ``arg`` when
            ``arg`` is not None, else with no arguments.
        arg: optional single argument for ``action``.
        cancelled: cooperative-cancellation flag; cancelled events are
            skipped by the queue (lazy deletion).
        tag: free-form debugging label (empty unless the scheduler runs
            with tracing on).
    """

    __slots__ = ("time", "seq", "action", "arg", "cancelled", "tag")

    def __init__(self, time: float, seq: int,
                 action: Callable[..., None],
                 arg: Any = None, tag: str = "") -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.arg = arg
        self.cancelled = False
        self.tag = tag

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Run the callback (with ``arg`` when present)."""
        if self.arg is not None:
            self.action(self.arg)
        else:
            self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = " cancelled" if self.cancelled else ""
        label = f" tag={self.tag!r}" if self.tag else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{label}{flags}>"


class EventQueue:
    """Min-heap of :class:`Event` with lazy cancellation.

    The queue never rewinds: pushing an event earlier than the last popped
    time raises :class:`SimRuntimeError` (a protocol scheduling bug).

    Tie-breaking has two modes. The default heap key is ``(time, seq)``:
    simultaneous events fire in insertion order, which makes serial runs
    bit-reproducible. Sharded runs (``tie_by_push_time=True``) key by
    ``(time, push_key, seq)`` where ``push_key`` is the virtual time at
    which the event was *pushed* — or, for deliveries injected at a window
    barrier, the original send time passed via ``sent_at``. Because the
    serial clock is monotone, serial insertion order *is* push-time order,
    so the three-part key reproduces the serial tie-break even though a
    barrier-injected arrival enters the heap long after the local events
    it must beat (its ``push_key`` is the instant serial would have pushed
    it). Ties are only unresolvable when two competing events were pushed
    at the exact same virtual instant from different shards.
    """

    __slots__ = ("_heap", "_seq", "_now", "_tie_by_push", "_pop_key",
                 "pushed", "fired", "skipped")

    def __init__(self, tie_by_push_time: bool = False) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._tie_by_push = tie_by_push_time
        self._pop_key = 0.0
        self.pushed = 0
        self.fired = 0
        self.skipped = 0

    @property
    def now(self) -> float:
        """Virtual time of the last popped event (0.0 initially)."""
        return self._now

    @property
    def current_push_key(self) -> float:
        """Push key of the event currently firing (``tie_by_push_time``
        mode only; 0.0 before the first pop). The shard engine stamps it
        onto exported deliveries as their *cause key*: two deliveries sent
        at the same virtual instant from different processes are ordered
        in serial by which causing event fired first, and the causing
        events themselves are ordered by push key — so carrying the key
        lets the receiving shard reproduce that order."""
        return self._pop_key

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Callable[..., None], tag: str = "",
             arg: Any = None, sent_at: Optional[float] = None) -> Event:
        """Schedule ``action`` at virtual ``time``; returns a cancellable handle.

        ``arg``, when given, is passed to ``action`` at fire time — the
        zero-allocation alternative to binding it in a lambda. ``sent_at``
        overrides the tie-break push key in ``tie_by_push_time`` mode (the
        shard engine passes the original send time of barrier-injected
        deliveries); it is ignored in the default mode.
        """
        if time < self._now:
            raise SimRuntimeError(
                f"cannot schedule event at t={time:.9f} before current t={self._now:.9f}"
                + (f" (tag={tag!r})" if tag else "")
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, action, arg, tag)
        if self._tie_by_push:
            heapq.heappush(self._heap, (
                time, self._now if sent_at is None else sent_at, seq, ev))
        else:
            heapq.heappush(self._heap, (time, seq, ev))
        self.pushed += 1
        return ev

    def pop(self) -> Optional[Event]:
        """Pop the next live event, advancing ``now``; None when drained."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            ev = entry[-1]
            if ev.cancelled:
                self.skipped += 1
                continue
            self._now = entry[0]
            if self._tie_by_push:
                self._pop_key = entry[1]
            self.fired += 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it.

        Cancelled events at the head of the heap are dropped eagerly so the
        answer is exact — a guarantee the macro-event fast path relies on:
        no live event exists anywhere in the queue before the returned
        time. Ties at the returned time may still be pending; callers that
        fuse ahead must treat the peeked time itself as unsafe.
        """
        heap = self._heap
        while heap and heap[0][-1].cancelled:
            heapq.heappop(heap)
            self.skipped += 1
        return heap[0][0] if heap else None

    def peek(self) -> Optional[Event]:
        """The next live event itself, without popping (None when drained).

        Like :meth:`peek_time` this prunes cancelled heads, so the returned
        event is guaranteed live *at call time*; it may of course be
        cancelled afterwards through the handle.
        """
        heap = self._heap
        while heap and heap[0][-1].cancelled:
            heapq.heappop(heap)
            self.skipped += 1
        return heap[0][-1] if heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def snapshot_tags(self) -> list[tuple[float, str]]:
        """Sorted (time, tag) of live events; debugging aid for deadlocks."""
        return sorted((entry[0], entry[-1].tag) for entry in self._heap
                      if not entry[-1].cancelled)


__all__ = ["Event", "EventQueue"]
