"""Per-process and run-level statistics.

Counters are cheap plain attributes updated inline by the engine and the
worker framework; aggregation helpers turn them into the quantities the
paper plots (per-node message counts, busy/idle ratios, work units, ...).

Two storage layouts back the same counter protocol:

* small runs (below :attr:`RunStats.COLUMNAR_THRESHOLD` processes) keep a
  plain list of :class:`ProcessStats` dataclasses — fastest for the
  per-event hot path and what the live runtime's codec round-trips;
* fleet-scale runs switch to *columnar* numpy arrays (one int64/float64
  array per counter) wrapped in lightweight per-pid views, cutting the
  per-process memory from ~0.5 KiB of boxed attributes to 8 bytes per
  counter and making the run-level aggregates vectorised sums.

Both layouts are observationally identical: every field, ``idle_time`` and
every aggregate produce bit-equal values (float sums are computed with the
same sequential left-to-right order in both paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar


@dataclass(slots=True)
class ProcessStats:
    """Counters for one simulated process."""

    pid: int
    msgs_sent: int = 0
    msgs_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    work_units: int = 0           # application work units processed
    busy_time: float = 0.0        # time spent computing work units
    handler_time: float = 0.0     # time spent absorbing messages
    steals_attempted: int = 0     # work requests issued
    steals_successful: int = 0    # requests answered with work
    work_msgs_sent: int = 0       # messages that carried work
    work_msgs_received: int = 0
    finish_time: float = 0.0      # when this process learnt termination
    # fault-injection counters (all stay 0 in clean runs)
    msgs_lost: int = 0            # transmissions dropped by the fault layer
    msgs_duplicated: int = 0      # deliveries duplicated by the fault layer
    retransmits: int = 0          # reliable-channel retransmissions sent
    crashes: int = 0              # 1 when this process crash-stopped
    repairs: int = 0              # overlay splices this node performed
    breaker_opens: int = 0        # circuit breakers this node tripped open
    #: virtual time this process crash-stopped (+inf while alive): its
    #: accountable lifetime ends here, not at the run horizon
    crash_time: float = float("inf")

    def idle_time(self, horizon: float) -> float:
        """Time neither computing nor handling messages, within ``horizon``.

        A crashed process stops accruing idle time at its crash: its
        accountable window is ``min(horizon, crash_time)``, so fault-run
        utilization reports are not skewed by dead nodes "idling" until
        the makespan.
        """
        horizon = min(horizon, self.crash_time)
        return max(0.0, horizon - self.busy_time - self.handler_time)


#: Integer counters of :class:`ProcessStats`, in declaration order.
_INT_FIELDS = ("msgs_sent", "msgs_received", "bytes_sent", "bytes_received",
               "work_units", "steals_attempted", "steals_successful",
               "work_msgs_sent", "work_msgs_received", "msgs_lost",
               "msgs_duplicated", "retransmits", "crashes", "repairs",
               "breaker_opens")
#: Float counters (``crash_time`` initialises to +inf, the rest to 0).
_FLOAT_FIELDS = ("busy_time", "handler_time", "finish_time", "crash_time")


class _Columns:
    """The array backing store of a columnar run (numpy required)."""

    __slots__ = ("n", "i", "f")

    def __init__(self, n: int) -> None:
        import numpy as np
        self.n = n
        self.i = {name: np.zeros(n, dtype=np.int64) for name in _INT_FIELDS}
        self.f = {name: np.zeros(n, dtype=np.float64)
                  for name in _FLOAT_FIELDS}
        self.f["crash_time"].fill(np.inf)


class ColumnarProcessStats:
    """A per-pid view over :class:`_Columns` with the full
    :class:`ProcessStats` attribute protocol (reads return plain Python
    ints/floats, writes land in the arrays)."""

    __slots__ = ("_c", "pid")

    def __init__(self, cols: _Columns, pid: int) -> None:
        object.__setattr__(self, "_c", cols)
        object.__setattr__(self, "pid", pid)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            # no counter is private; bailing here keeps lookups of the
            # _c slot itself (and pickle's __setstate__ probe, which
            # runs before slots are restored) from recursing
            raise AttributeError(name)
        c = self._c
        a = c.i.get(name)
        if a is not None:
            return int(a[self.pid])
        a = c.f.get(name)
        if a is not None:
            return float(a[self.pid])
        raise AttributeError(
            f"ColumnarProcessStats has no counter {name!r}")

    def __setattr__(self, name: str, value) -> None:
        if name.startswith("_") or name == "pid":
            # the two real slots — written by __init__ and by pickle's
            # slot-state restore, neither of which may touch the arrays
            object.__setattr__(self, name, value)
            return
        c = self._c
        a = c.i.get(name)
        if a is None:
            a = c.f.get(name)
            if a is None:
                raise AttributeError(
                    f"ColumnarProcessStats has no counter {name!r}")
        a[self.pid] = value

    def idle_time(self, horizon: float) -> float:
        """Same contract as :meth:`ProcessStats.idle_time`."""
        c = self._c
        p = self.pid
        horizon = min(horizon, float(c.f["crash_time"][p]))
        return max(0.0, horizon - float(c.f["busy_time"][p])
                   - float(c.f["handler_time"][p]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ColumnarProcessStats(pid={self.pid}, "
                f"work_units={self.work_units})")


class _ColumnarSeq:
    """Read-only pid-indexed sequence of cached per-pid views."""

    __slots__ = ("_c", "_views")

    def __init__(self, cols: _Columns) -> None:
        self._c = cols
        self._views: list = [None] * cols.n

    def __len__(self) -> int:
        return self._c.n

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [self[i] for i in range(*idx.indices(self._c.n))]
        if idx < 0:
            idx += self._c.n
        v = self._views[idx]
        if v is None:
            v = ColumnarProcessStats(self._c, idx)
            self._views[idx] = v
        return v

    def __iter__(self):
        for i in range(self._c.n):
            yield self[i]


@dataclass(slots=True)
class RunStats:
    """Aggregated statistics of a complete simulation run.

    The ``total_*`` aggregates are O(n) sums over the per-process counters.
    During a run they are computed live; once the engine finalises the run
    it calls :meth:`seal`, which freezes them into one cached tuple — the
    experiment tables read each aggregate several times per row, and n
    reaches 10000 in the scale sweeps.
    """

    #: above this process count :meth:`create` switches to columnar
    #: (array-backed) per-process storage; tests lower it to force the
    #: columnar path on small runs
    COLUMNAR_THRESHOLD: ClassVar[int] = 4096

    n: int
    per_process: list[ProcessStats] = field(default_factory=list)
    makespan: float = 0.0          # time the last process learnt termination
    work_done_time: float = 0.0    # time the last work unit finished
    events_fired: int = 0
    #: macro (fused) engine events the workers executed; 0 when quantum
    #: fusion never engaged (see docs/simulation.md "Scaling")
    macro_events: int = 0
    #: compute quanta covered by those macro events (each macro event fuses
    #: >= 2 quanta, so ``fused_quanta >= 2 * macro_events`` when non-zero)
    fused_quanta: int = 0
    #: (units, msgs, steals, steals_ok, busy) — set by :meth:`seal`
    _aggregates: tuple | None = field(default=None, repr=False, compare=False)
    _columns: _Columns | None = field(default=None, repr=False, compare=False)

    @classmethod
    def create(cls, n: int) -> "RunStats":
        """Fresh statistics for an n-process run.

        Fleet-scale runs (n >= :attr:`COLUMNAR_THRESHOLD`) get columnar
        array storage; everything else keeps the plain dataclass list.
        """
        if n >= cls.COLUMNAR_THRESHOLD:
            try:
                cols = _Columns(n)
            except ImportError:  # pragma: no cover - numpy is a hard dep
                cols = None
            if cols is not None:
                return cls(n=n, per_process=_ColumnarSeq(cols),
                           _columns=cols)
        return cls(n=n, per_process=[ProcessStats(pid=i) for i in range(n)])

    # -- aggregates used by the experiment harness --------------------------

    def seal(self) -> None:
        """Cache the aggregate sums (call once the counters are final)."""
        c = self._columns
        if c is not None:
            # the float sum goes through tolist() so it is the same
            # sequential left-to-right addition as the list path (numpy's
            # pairwise summation would round differently)
            self._aggregates = (
                int(c.i["work_units"].sum()),
                int(c.i["msgs_sent"].sum()),
                int(c.i["steals_attempted"].sum()),
                int(c.i["steals_successful"].sum()),
                sum(c.f["busy_time"].tolist()),
            )
            return
        self._aggregates = (
            sum(p.work_units for p in self.per_process),
            sum(p.msgs_sent for p in self.per_process),
            sum(p.steals_attempted for p in self.per_process),
            sum(p.steals_successful for p in self.per_process),
            sum(p.busy_time for p in self.per_process),
        )

    def fault_totals(self) -> tuple[int, int, int, int, int]:
        """(losses, duplicates, retransmits, crashes, repairs) summed."""
        c = self._columns
        if c is not None:
            i = c.i
            return (int(i["msgs_lost"].sum()),
                    int(i["msgs_duplicated"].sum()),
                    int(i["retransmits"].sum()),
                    int(i["crashes"].sum()),
                    int(i["repairs"].sum()))
        return (sum(p.msgs_lost for p in self.per_process),
                sum(p.msgs_duplicated for p in self.per_process),
                sum(p.retransmits for p in self.per_process),
                sum(p.crashes for p in self.per_process),
                sum(p.repairs for p in self.per_process))

    def total_breaker_opens(self) -> int:
        """Circuit-breaker trips summed over the fleet (0 in clean runs)."""
        c = self._columns
        if c is not None:
            return int(c.i["breaker_opens"].sum())
        return sum(p.breaker_opens for p in self.per_process)

    def max_finish_time(self, default: float = 0.0) -> float:
        """Latest per-process ``finish_time`` (``default`` when n == 0)."""
        c = self._columns
        if c is not None:
            if c.n == 0:
                return default
            return float(c.f["finish_time"].max())
        return max((p.finish_time for p in self.per_process),
                   default=default)

    @property
    def events_equivalent(self) -> int:
        """Events the unfused engine would have fired for the same run.

        Each macro event stands in for the quanta it fused, so the
        one-event-per-quantum engine would have fired one event per fused
        quantum where this run fired one per macro event. The scale
        benchmarks report throughput in events-equivalent per second to
        keep fused and unfused runs comparable.
        """
        return self.events_fired + max(0, self.fused_quanta
                                       - self.macro_events)

    @property
    def fused_ratio(self) -> float:
        """Fraction of events-equivalent the fast path absorbed (0..1)."""
        eq = self.events_equivalent
        if eq <= 0:
            return 0.0
        return (self.fused_quanta - self.macro_events) / eq

    @property
    def total_work_units(self) -> int:
        """Application work units processed across all processes."""
        if self._aggregates is not None:
            return self._aggregates[0]
        return sum(p.work_units for p in self.per_process)

    @property
    def total_msgs(self) -> int:
        """Messages sent across all processes."""
        if self._aggregates is not None:
            return self._aggregates[1]
        return sum(p.msgs_sent for p in self.per_process)

    @property
    def total_steals(self) -> int:
        """Work requests issued across all processes."""
        if self._aggregates is not None:
            return self._aggregates[2]
        return sum(p.steals_attempted for p in self.per_process)

    @property
    def total_steals_ok(self) -> int:
        """Work requests that were answered with work."""
        if self._aggregates is not None:
            return self._aggregates[3]
        return sum(p.steals_successful for p in self.per_process)

    @property
    def total_busy(self) -> float:
        """Total compute time across all processes (virtual seconds)."""
        if self._aggregates is not None:
            return self._aggregates[4]
        return sum(p.busy_time for p in self.per_process)

    def msgs_by_pid(self) -> list[int]:
        """Messages sent per process, ordered by pid (Fig 1 bottom)."""
        c = self._columns
        if c is not None:
            return c.i["msgs_sent"].tolist()
        return [p.msgs_sent for p in self.per_process]

    def efficiency_vs(self, t_seq: float) -> float:
        """Parallel efficiency against a sequential reference time."""
        if self.makespan <= 0 or self.n <= 0:
            return 0.0
        return t_seq / (self.n * self.makespan)

    def busy_fraction(self) -> float:
        """Mean fraction of the makespan each process spent computing."""
        if self.makespan <= 0 or self.n <= 0:
            return 0.0
        return self.total_busy / (self.n * self.makespan)


__all__ = ["ProcessStats", "ColumnarProcessStats", "RunStats"]
