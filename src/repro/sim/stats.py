"""Per-process and run-level statistics.

Counters are cheap plain attributes updated inline by the engine and the
worker framework; aggregation helpers turn them into the quantities the
paper plots (per-node message counts, busy/idle ratios, work units, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class ProcessStats:
    """Counters for one simulated process."""

    pid: int
    msgs_sent: int = 0
    msgs_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    work_units: int = 0           # application work units processed
    busy_time: float = 0.0        # time spent computing work units
    handler_time: float = 0.0     # time spent absorbing messages
    steals_attempted: int = 0     # work requests issued
    steals_successful: int = 0    # requests answered with work
    work_msgs_sent: int = 0       # messages that carried work
    work_msgs_received: int = 0
    finish_time: float = 0.0      # when this process learnt termination
    # fault-injection counters (all stay 0 in clean runs)
    msgs_lost: int = 0            # transmissions dropped by the fault layer
    msgs_duplicated: int = 0      # deliveries duplicated by the fault layer
    retransmits: int = 0          # reliable-channel retransmissions sent
    crashes: int = 0              # 1 when this process crash-stopped
    repairs: int = 0              # overlay splices this node performed
    #: virtual time this process crash-stopped (+inf while alive): its
    #: accountable lifetime ends here, not at the run horizon
    crash_time: float = float("inf")

    def idle_time(self, horizon: float) -> float:
        """Time neither computing nor handling messages, within ``horizon``.

        A crashed process stops accruing idle time at its crash: its
        accountable window is ``min(horizon, crash_time)``, so fault-run
        utilization reports are not skewed by dead nodes "idling" until
        the makespan.
        """
        horizon = min(horizon, self.crash_time)
        return max(0.0, horizon - self.busy_time - self.handler_time)


@dataclass(slots=True)
class RunStats:
    """Aggregated statistics of a complete simulation run.

    The ``total_*`` aggregates are O(n) sums over the per-process counters.
    During a run they are computed live; once the engine finalises the run
    it calls :meth:`seal`, which freezes them into one cached tuple — the
    experiment tables read each aggregate several times per row, and n
    reaches 1000 in the scaling figures.
    """

    n: int
    per_process: list[ProcessStats] = field(default_factory=list)
    makespan: float = 0.0          # time the last process learnt termination
    work_done_time: float = 0.0    # time the last work unit finished
    events_fired: int = 0
    #: (units, msgs, steals, steals_ok, busy) — set by :meth:`seal`
    _aggregates: tuple | None = field(default=None, repr=False, compare=False)

    @classmethod
    def create(cls, n: int) -> "RunStats":
        """Fresh statistics for an n-process run."""
        return cls(n=n, per_process=[ProcessStats(pid=i) for i in range(n)])

    # -- aggregates used by the experiment harness --------------------------

    def seal(self) -> None:
        """Cache the aggregate sums (call once the counters are final)."""
        self._aggregates = (
            sum(p.work_units for p in self.per_process),
            sum(p.msgs_sent for p in self.per_process),
            sum(p.steals_attempted for p in self.per_process),
            sum(p.steals_successful for p in self.per_process),
            sum(p.busy_time for p in self.per_process),
        )

    def fault_totals(self) -> tuple[int, int, int, int, int]:
        """(losses, duplicates, retransmits, crashes, repairs) summed."""
        return (sum(p.msgs_lost for p in self.per_process),
                sum(p.msgs_duplicated for p in self.per_process),
                sum(p.retransmits for p in self.per_process),
                sum(p.crashes for p in self.per_process),
                sum(p.repairs for p in self.per_process))

    @property
    def total_work_units(self) -> int:
        """Application work units processed across all processes."""
        if self._aggregates is not None:
            return self._aggregates[0]
        return sum(p.work_units for p in self.per_process)

    @property
    def total_msgs(self) -> int:
        """Messages sent across all processes."""
        if self._aggregates is not None:
            return self._aggregates[1]
        return sum(p.msgs_sent for p in self.per_process)

    @property
    def total_steals(self) -> int:
        """Work requests issued across all processes."""
        if self._aggregates is not None:
            return self._aggregates[2]
        return sum(p.steals_attempted for p in self.per_process)

    @property
    def total_steals_ok(self) -> int:
        """Work requests that were answered with work."""
        if self._aggregates is not None:
            return self._aggregates[3]
        return sum(p.steals_successful for p in self.per_process)

    @property
    def total_busy(self) -> float:
        """Total compute time across all processes (virtual seconds)."""
        if self._aggregates is not None:
            return self._aggregates[4]
        return sum(p.busy_time for p in self.per_process)

    def msgs_by_pid(self) -> list[int]:
        """Messages sent per process, ordered by pid (Fig 1 bottom)."""
        return [p.msgs_sent for p in self.per_process]

    def efficiency_vs(self, t_seq: float) -> float:
        """Parallel efficiency against a sequential reference time."""
        if self.makespan <= 0 or self.n <= 0:
            return 0.0
        return t_seq / (self.n * self.makespan)

    def busy_fraction(self) -> float:
        """Mean fraction of the makespan each process spent computing."""
        if self.makespan <= 0 or self.n <= 0:
            return 0.0
        return self.total_busy / (self.n * self.makespan)


__all__ = ["ProcessStats", "RunStats"]
