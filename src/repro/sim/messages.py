"""Message envelope shared by every protocol in the repository.

Protocols define their own payload types; the simulator only needs the
``(src, dst, kind, size_bytes)`` envelope to route and price a message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed protocol-header size charged to every message (bytes).
HEADER_BYTES = 64


@dataclass(slots=True)
class Message:
    """A point-to-point message.

    Attributes:
        src: sender process id.
        dst: destination process id.
        kind: protocol-defined string discriminator (e.g. ``"REQUEST"``).
        payload: protocol-defined content; must be treated as immutable by
            the receiver (the simulator passes references, it does not copy).
        size_bytes: wire size used by the network model (header included).
        send_time: virtual time the message was handed to the network.
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    size_bytes: int = HEADER_BYTES
    send_time: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < HEADER_BYTES:
            self.size_bytes = HEADER_BYTES


def sized(kind: str, src: int, dst: int, payload: Any, body_bytes: int) -> Message:
    """Build a message whose wire size is ``HEADER_BYTES + body_bytes``."""
    return Message(src=src, dst=dst, kind=kind, payload=payload,
                   size_bytes=HEADER_BYTES + max(0, int(body_bytes)))


__all__ = ["Message", "sized", "HEADER_BYTES"]
