"""Message envelope shared by every protocol in the repository.

Protocols define their own payload types; the simulator only needs the
``(src, dst, kind, size_bytes)`` envelope to route and price a message.

``Message`` is a hand-written ``__slots__`` class rather than a dataclass:
a message is allocated for every simulated send, so the constructor sits on
the simulator hot path and is kept to plain attribute stores plus the
header-size clamp (no ``__post_init__`` indirection, no ``__dict__``).
"""

from __future__ import annotations

from typing import Any

#: Fixed protocol-header size charged to every message (bytes).
HEADER_BYTES = 64


class Message:
    """A point-to-point message.

    Attributes:
        src: sender process id.
        dst: destination process id.
        kind: protocol-defined string discriminator (e.g. ``"REQUEST"``).
        payload: protocol-defined content; must be treated as immutable by
            the receiver (the simulator passes references, it does not copy).
        size_bytes: wire size used by the network model (header included).
        send_time: virtual time the message was handed to the network
            (stamped by the simulator; excluded from equality).
    """

    __slots__ = ("src", "dst", "kind", "payload", "size_bytes", "send_time")

    def __init__(self, src: int, dst: int, kind: str, payload: Any = None,
                 size_bytes: int = HEADER_BYTES,
                 send_time: float = 0.0) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes if size_bytes >= HEADER_BYTES \
            else HEADER_BYTES
        self.send_time = send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(src={self.src!r}, dst={self.dst!r}, "
                f"kind={self.kind!r}, payload={self.payload!r}, "
                f"size_bytes={self.size_bytes!r}, "
                f"send_time={self.send_time!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.kind == other.kind and self.payload == other.payload
                and self.size_bytes == other.size_bytes)

    __hash__ = None  # type: ignore[assignment]  # mutable envelope


def sized(kind: str, src: int, dst: int, payload: Any, body_bytes: int) -> Message:
    """Build a message whose wire size is ``HEADER_BYTES + body_bytes``."""
    return Message(src=src, dst=dst, kind=kind, payload=payload,
                   size_bytes=HEADER_BYTES + max(0, int(body_bytes)))


__all__ = ["Message", "sized", "HEADER_BYTES"]
