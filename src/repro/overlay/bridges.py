"""Bridge edges: the B in BTD (paper §II-B3).

Each node picks one outgoing bridge ``b_{v→u}`` at random; bridges are
logical shortcuts over which an idle node asks for work *in parallel* with
its tree search, letting work jump between distant subtrees.

The paper says bridges "connect nodes being far away each other in the
tree"; the selection policies here range from plain uniform choice to a
minimum-tree-distance filter, with ``"far"`` (distance above half the tree
height) as the default used by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.errors import SimConfigError
from ..sim.rng import RngStream
from .tree import TreeOverlay

#: Selection policy name -> predicate factory. A predicate decides whether
#: node ``u`` is an acceptable bridge target for node ``v``.
_POLICIES = {}


def _policy(name: str):
    def deco(fn):
        _POLICIES[name] = fn
        return fn
    return deco


@_policy("uniform")
def _uniform(tree: TreeOverlay) -> Callable[[int, int], bool]:
    """Any node other than v itself and its tree neighbours."""
    def ok(v: int, u: int) -> bool:
        return u != v and u != tree.parent[v] and tree.parent[u] != v
    return ok


@_policy("far")
def _far(tree: TreeOverlay) -> Callable[[int, int], bool]:
    """Tree distance strictly greater than half the tree height."""
    threshold = max(2, tree.height // 2 + 1)

    def ok(v: int, u: int) -> bool:
        return u != v and tree.distance(v, u) > threshold
    return ok


@dataclass(frozen=True)
class BridgedTreeOverlay:
    """A :class:`TreeOverlay` plus one outgoing bridge per node.

    ``bridge[v]`` is the target of v's bridge, or ``-1`` when no acceptable
    target exists (degenerate overlays: n <= 2).
    """

    tree: TreeOverlay
    bridge: tuple[int, ...]
    policy: str = "far"

    def __post_init__(self) -> None:
        if len(self.bridge) != self.tree.n:
            raise SimConfigError("bridge vector length must equal tree size")
        for v, u in enumerate(self.bridge):
            if u == v or not (-1 <= u < self.tree.n):
                raise SimConfigError(f"invalid bridge {v} -> {u}")

    @property
    def n(self) -> int:
        """Number of peers."""
        return self.tree.n

    @property
    def kind(self) -> str:
        """Overlay label, e.g. "BTD"."""
        return f"B{self.tree.kind}"

    def bridge_of(self, v: int) -> Optional[int]:
        """Target of v's bridge, or None when it has none."""
        u = self.bridge[v]
        return None if u < 0 else u


def add_bridges(tree: TreeOverlay, seed: int = 0,
                policy: str = "far",
                max_tries: int = 64) -> BridgedTreeOverlay:
    """Pick one random bridge per node under the given policy.

    Falls back from ``far`` to ``uniform`` to "anything but me" per node if
    the policy admits no target (tiny or star-shaped overlays), so every node
    of a non-trivial overlay always has a bridge.
    """
    if policy not in _POLICIES:
        raise SimConfigError(
            f"unknown bridge policy {policy!r}; have {sorted(_POLICIES)}")
    rng = RngStream(seed, "bridges", policy)
    n = tree.n
    chain = [policy] + [p for p in ("uniform",) if p != policy]
    preds = {name: _POLICIES[name](tree) for name in chain}
    bridges: list[int] = []
    for v in range(n):
        choice = -1
        for name in chain:
            ok = preds[name]
            for _ in range(max_tries):
                u = rng.randrange(n)
                if ok(v, u):
                    choice = u
                    break
            if choice >= 0:
                break
        if choice < 0 and n > 1:
            # Last resort: any other node (still a valid shortcut).
            u = rng.randrange(n - 1)
            choice = u if u < v else u + 1
        bridges.append(choice)
    return BridgedTreeOverlay(tree=tree, bridge=tuple(bridges), policy=policy)


__all__ = ["BridgedTreeOverlay", "add_bridges"]
