"""Structural metrics of overlays: diameter, degrees, balance.

Used by the experiments to report overlay shape next to performance (the
paper's §IV-A discussion relates execution time to degree and diameter), and
by the property tests as independent oracles for the tree code.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from .tree import TreeOverlay


def eccentricity_from(tree: TreeOverlay, start: int) -> tuple[int, int]:
    """BFS over the overlay graph; returns (farthest node, its distance)."""
    dist = {start: 0}
    q = deque([start])
    far, fd = start, 0
    while q:
        v = q.popleft()
        for u in tree.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                if dist[u] > fd:
                    far, fd = u, dist[u]
                q.append(u)
    return far, fd


def diameter(tree: TreeOverlay) -> int:
    """Exact tree diameter via the classic double-BFS."""
    a, _ = eccentricity_from(tree, 0)
    _, d = eccentricity_from(tree, a)
    return d


def degree_histogram(tree: TreeOverlay) -> dict[int, int]:
    """Map overlay degree -> number of nodes with that degree."""
    return dict(Counter(tree.degree(v) for v in range(tree.n)))


@dataclass(frozen=True)
class OverlaySummary:
    """One-line description of an overlay's shape."""

    kind: str
    n: int
    height: int
    diameter: int
    max_degree: int
    mean_depth: float
    leaves: int

    def __str__(self) -> str:
        return (f"{self.kind}(n={self.n}) height={self.height} "
                f"diam={self.diameter} maxdeg={self.max_degree} "
                f"leaves={self.leaves} mean_depth={self.mean_depth:.2f}")


def summarize(tree: TreeOverlay) -> OverlaySummary:
    """Compute the one-line structural summary of an overlay."""
    return OverlaySummary(
        kind=tree.kind,
        n=tree.n,
        height=tree.height,
        diameter=diameter(tree),
        max_degree=max(tree.degree(v) for v in range(tree.n)),
        mean_depth=sum(tree.depth) / tree.n,
        leaves=len(tree.leaves()),
    )


__all__ = ["diameter", "degree_histogram", "eccentricity_from",
           "OverlaySummary", "summarize"]
