"""Peer-to-peer overlay structures (paper §II).

TD (deterministic dmax-ary), TR (random recursive) and BTD (TD + one random
bridge per node), plus the distributed converge-cast that computes subtree
sizes and structural metrics used by the experiment reports.
"""

from .bridges import BridgedTreeOverlay, add_bridges
from .convergecast import ConvergecastProcess, SizeService
from .metrics import OverlaySummary, degree_histogram, diameter, summarize
from .tree import (TreeOverlay, chain_tree, deterministic_tree, from_parents,
                   random_tree, star_tree)

__all__ = [
    "TreeOverlay", "deterministic_tree", "random_tree", "star_tree",
    "chain_tree", "from_parents", "BridgedTreeOverlay", "add_bridges",
    "SizeService", "ConvergecastProcess", "diameter", "degree_histogram",
    "summarize", "OverlaySummary",
]
