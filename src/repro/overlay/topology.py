"""Extra (non-tree) overlay shapes for ablations and related-work contrasts.

The paper's related work discusses the hypercube *lifeline graph* of
Saraswat et al. (PPoPP'11); :func:`hypercube_edges` provides that structure
so the ablation benches can contrast a tree overlay with a lifeline-style
one. :func:`overlay_edges` gives a protocol-agnostic edge view of any of the
overlay types in this package.
"""

from __future__ import annotations

from ..sim.errors import SimConfigError
from .bridges import BridgedTreeOverlay
from .tree import TreeOverlay


def tree_edges(tree: TreeOverlay) -> list[tuple[int, int]]:
    """All parent-child edges as (parent, child)."""
    return [(tree.parent[v], v) for v in range(1, tree.n)]


def bridge_edges(overlay: BridgedTreeOverlay) -> list[tuple[int, int]]:
    """All directed bridges as (owner, target)."""
    return [(v, u) for v, u in enumerate(overlay.bridge) if u >= 0]


def overlay_edges(overlay: TreeOverlay | BridgedTreeOverlay) -> list[tuple[int, int]]:
    """Undirected-ish edge list of any overlay object in this package."""
    if isinstance(overlay, BridgedTreeOverlay):
        return tree_edges(overlay.tree) + bridge_edges(overlay)
    return tree_edges(overlay)


def hypercube_edges(n: int) -> list[tuple[int, int]]:
    """Edges of the largest hypercube on <= n nodes, plus a chained remainder.

    Nodes beyond the largest power of two attach to their ``v - 2**k``
    counterpart, mimicking how lifeline implementations handle non-power-of-
    two world sizes.
    """
    if n <= 0:
        raise SimConfigError("n must be >= 1")
    k = 0
    while (1 << (k + 1)) <= n:
        k += 1
    size = 1 << k
    edges = [(v, v ^ (1 << b)) for v in range(size) for b in range(k)
             if v < (v ^ (1 << b))]
    edges += [(v - size, v) for v in range(size, n)]
    return edges


def neighbors_from_edges(n: int, edges: list[tuple[int, int]]) -> list[list[int]]:
    """Adjacency lists from an undirected edge list."""
    adj: list[list[int]] = [[] for _ in range(n)]
    for a, b in edges:
        if not (0 <= a < n and 0 <= b < n):
            raise SimConfigError(f"edge ({a},{b}) out of range for n={n}")
        adj[a].append(b)
        adj[b].append(a)
    return adj


__all__ = ["tree_edges", "bridge_edges", "overlay_edges", "hypercube_edges",
           "neighbors_from_edges"]
