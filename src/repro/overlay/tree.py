"""Tree overlays connecting the computing peers (paper §II, §IV).

Two constructions from the paper:

* **TD(dmax)** — *deterministic tree*: starting from the root, pack at most
  ``dmax`` children per node level by level. Node ids are BFS ids by
  construction (the root is 0, the first level is 1..dmax, ...), which is
  precisely the labelling used by Fig. 1 (bottom).
* **TR** — *randomized tree*: node i (in id order) picks its parent uniformly
  at random among nodes 0..i-1 (a random recursive tree).

The overlay is a static structure; protocols only read it. Subtree sizes are
available both analytically (:attr:`TreeOverlay.subtree_size`) and through
the distributed converge-cast of :mod:`repro.overlay.convergecast`, which the
tests check against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..sim.errors import SimConfigError
from ..sim.rng import RngStream


@dataclass(frozen=True)
class TreeOverlay:
    """An immutable rooted tree over peers ``0..n-1`` (root = 0).

    Attributes:
        parent: ``parent[v]`` for every node; ``-1`` for the root.
        children: adjacency from parent to children, in id order.
        kind: construction label (``"TD"``, ``"TR"``, or custom).
        dmax: the degree bound used for TD trees (0 when not applicable).
    """

    parent: tuple[int, ...]
    kind: str = "custom"
    dmax: int = 0
    children: tuple[tuple[int, ...], ...] = field(init=False)
    subtree_size: tuple[int, ...] = field(init=False)
    depth: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        n = len(self.parent)
        if n == 0:
            raise SimConfigError("overlay needs at least one node")
        if self.parent[0] != -1:
            raise SimConfigError("node 0 must be the root (parent == -1)")
        kids: list[list[int]] = [[] for _ in range(n)]
        depth = [0] * n
        for v in range(1, n):
            p = self.parent[v]
            if not (0 <= p < v):
                raise SimConfigError(
                    f"node {v} has parent {p}; parents must satisfy 0 <= p < v")
            kids[p].append(v)
            depth[v] = depth[p] + 1
        sizes = [1] * n
        for v in range(n - 1, 0, -1):
            sizes[self.parent[v]] += sizes[v]
        object.__setattr__(self, "children", tuple(tuple(k) for k in kids))
        object.__setattr__(self, "subtree_size", tuple(sizes))
        object.__setattr__(self, "depth", tuple(depth))

    # -- basic shape ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of peers."""
        return len(self.parent)

    @property
    def root(self) -> int:
        """The root's pid (always 0)."""
        return 0

    @property
    def height(self) -> int:
        """Maximum depth of any node."""
        return max(self.depth)

    def is_leaf(self, v: int) -> bool:
        """True when v has no children."""
        return not self.children[v]

    def leaves(self) -> list[int]:
        """All leaf pids, ascending."""
        return [v for v in range(self.n) if not self.children[v]]

    def degree(self, v: int) -> int:
        """Overlay degree (children + parent link)."""
        return len(self.children[v]) + (0 if v == 0 else 1)

    def neighbors(self, v: int) -> list[int]:
        """v's overlay neighbours: children plus parent."""
        out = list(self.children[v])
        if v != 0:
            out.append(self.parent[v])
        return out

    def bfs_order(self) -> Iterator[int]:
        """Nodes in BFS order (for TD this is simply 0..n-1)."""
        from collections import deque
        q: deque[int] = deque([0])
        while q:
            v = q.popleft()
            yield v
            q.extend(self.children[v])

    def path_to_root(self, v: int) -> list[int]:
        """Pids from v up to (and including) the root."""
        out = [v]
        while out[-1] != 0:
            out.append(self.parent[out[-1]])
        return out

    def distance(self, u: int, v: int) -> int:
        """Tree distance (hops) between two nodes."""
        pu, pv = u, v
        du, dv = self.depth[u], self.depth[v]
        while du > dv:
            pu = self.parent[pu]
            du -= 1
        while dv > du:
            pv = self.parent[pv]
            dv -= 1
        d = 0
        while pu != pv:
            pu = self.parent[pu]
            pv = self.parent[pv]
            d += 1
        return (self.depth[u] - du) + (self.depth[v] - dv) + 2 * d

    def validate(self) -> None:
        """Cross-check internal invariants (used by property tests)."""
        assert self.subtree_size[0] == self.n
        assert sum(1 for v in range(self.n) if self.parent[v] == -1) == 1
        for v in range(1, self.n):
            assert v in self.children[self.parent[v]]
        total = sum(len(c) for c in self.children)
        assert total == self.n - 1


def deterministic_tree(n: int, dmax: int) -> TreeOverlay:
    """TD(dmax): the complete dmax-ary tree filled in BFS order.

    Node ``v``'s parent is ``(v - 1) // dmax``: level 0 holds the root,
    level 1 holds at most dmax nodes, and so on (paper §IV: "packing at most
    dmax nodes in the first level, then loop over the nodes of the new level
    packing again at most dmax children per node").
    """
    if n <= 0:
        raise SimConfigError("n must be >= 1")
    if dmax < 1:
        raise SimConfigError("dmax must be >= 1")
    parent = [-1] + [(v - 1) // dmax for v in range(1, n)]
    return TreeOverlay(parent=tuple(parent), kind="TD", dmax=dmax)


def random_tree(n: int, seed: int = 0) -> TreeOverlay:
    """TR: node i attaches to a uniform random node among 0..i-1 (paper §IV)."""
    if n <= 0:
        raise SimConfigError("n must be >= 1")
    rng = RngStream(seed, "random-tree")
    parent = [-1] + [rng.randint(0, v - 1) for v in range(1, n)]
    return TreeOverlay(parent=tuple(parent), kind="TR")


def star_tree(n: int) -> TreeOverlay:
    """A star (master-worker shape): everyone hangs off the root."""
    return TreeOverlay(parent=tuple([-1] + [0] * (n - 1)), kind="star",
                       dmax=max(0, n - 1))


def chain_tree(n: int) -> TreeOverlay:
    """A path: worst-case diameter; useful in tests and ablations."""
    return TreeOverlay(parent=tuple([-1] + list(range(n - 1))), kind="chain",
                       dmax=1)


def from_parents(parents: Sequence[int], kind: str = "custom") -> TreeOverlay:
    """Wrap an explicit parent vector (root first, parents[0] == -1)."""
    return TreeOverlay(parent=tuple(parents), kind=kind)


def graft_leaf(tree: TreeOverlay, parent: int) -> TreeOverlay:
    """``tree`` plus one new leaf (pid = old n) attached under ``parent``.

    Elastic membership: the live runtime always assigns a joining worker
    the next pid, so the extended parent vector stays a valid
    parent-before-child encoding and every member that applies the same
    graft sequence rebuilds the identical overlay.
    """
    if not (0 <= parent < tree.n):
        raise SimConfigError(
            f"graft parent {parent} outside the overlay (n={tree.n})")
    return TreeOverlay(parent=tree.parent + (parent,), kind=tree.kind,
                       dmax=tree.dmax)


__all__ = [
    "TreeOverlay", "deterministic_tree", "random_tree", "star_tree",
    "chain_tree", "from_parents", "graft_leaf",
]
