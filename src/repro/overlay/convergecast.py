"""Distributed subtree-size computation (paper §II-B2).

"each node must know the size of its own subtree and also the size of its
parent subtree. This is computed in a fully distributed manner using a
classical converge-cast process starting from leaf nodes until reaching the
root."

:class:`SizeService` is a protocol component embedded in a host
:class:`~repro.sim.process.SimProcess` (the overlay-centric worker uses it as
its bootstrap phase): leaves send ``SIZE_UP 1``; inner nodes aggregate their
children and forward; once the root has aggregated everything it cascades
``SIZE_DOWN`` carrying each receiver's parent-subtree size. A node is
*ready* when it knows both sizes.

:class:`ConvergecastProcess` wraps the service in a bare process so the
protocol can be simulated and unit-tested on its own.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.messages import Message
from ..sim.process import SimProcess
from .tree import TreeOverlay

SIZE_UP = "SIZE_UP"
SIZE_DOWN = "SIZE_DOWN"
_INT_BYTES = 8


class SizeService:
    """Converge-cast component; see module docstring.

    Args:
        host: the process this service sends/receives through.
        tree: the overlay (only the host's own links are read).
        on_ready: callback fired exactly once, when both sizes are known.
    """

    def __init__(self, host: SimProcess, tree: TreeOverlay,
                 on_ready: Optional[Callable[[], None]] = None,
                 weight: float = 1.0) -> None:
        self.host = host
        self.tree = tree
        self.on_ready = on_ready
        v = host.pid
        self._waiting = set(tree.children[v])
        # own contribution: 1 for plain subtree sizes; the node's relative
        # compute capacity for capacity-aware sharing (heterogeneous mode)
        self._acc: float = weight
        self.my_size: Optional[float] = None
        self.parent_size: Optional[float] = None  # None for the root, ever
        self.ready = False

    def start(self) -> None:
        """Kick off the wave; call from the host's ``start``."""
        if not self._waiting:
            self._complete_up()

    def handles(self, kind: str) -> bool:
        return kind in (SIZE_UP, SIZE_DOWN)

    def handle(self, msg: Message) -> bool:
        """Consume a converge-cast message; True when it was one."""
        if msg.kind == SIZE_UP:
            self._waiting.discard(msg.src)
            self._acc += msg.payload
            if not self._waiting and self.my_size is None:
                self._complete_up()
            return True
        if msg.kind == SIZE_DOWN:
            self.parent_size = msg.payload
            self._maybe_ready()
            return True
        return False

    # -- fault hooks (only called when fault injection is active) -------------

    def child_dead(self, pid: int) -> None:
        """Stop waiting for a crashed child's SIZE_UP.

        Its subtree's contribution is simply missing — post-crash sizes are
        approximate, which is fine: they only modulate sharing fractions.
        """
        self._waiting.discard(pid)
        if not self._waiting and self.my_size is None:
            self._complete_up()

    def waiting_children(self) -> tuple:
        """Children whose SIZE_UP is still outstanding (liveness probing)."""
        return tuple(self._waiting)

    def note_parent_size(self, size: float) -> None:
        """Learn the parent-subtree size out of band (from an ADOPT)."""
        self.parent_size = size
        self._maybe_ready()

    # -- internals -----------------------------------------------------------

    def _complete_up(self) -> None:
        v = self.host.pid
        self.my_size = self._acc
        if v != self.tree.root:
            self.host.send(self.tree.parent[v], SIZE_UP, self.my_size,
                           body_bytes=_INT_BYTES)
        # A node's size is its children's parent-subtree size: tell them now.
        for c in self.tree.children[v]:
            self.host.send(c, SIZE_DOWN, self.my_size, body_bytes=_INT_BYTES)
        self._maybe_ready()

    def _maybe_ready(self) -> None:
        if self.ready or self.my_size is None:
            return
        if self.host.pid != self.tree.root and self.parent_size is None:
            return
        self.ready = True
        if self.on_ready is not None:
            self.on_ready()


class ConvergecastProcess(SimProcess):
    """Standalone host: runs one converge-cast and stops."""

    def __init__(self, pid: int, tree: TreeOverlay) -> None:
        super().__init__(pid)
        self.service = SizeService(self, tree, on_ready=self._done)
        self._finished = False

    def start(self) -> None:
        self.service.start()

    def on_message(self, msg: Message) -> None:
        self.service.handle(msg)

    def _done(self) -> None:
        self._finished = True
        self.stats.finish_time = self.now

    def finished(self) -> bool:
        return self._finished


__all__ = ["SizeService", "ConvergecastProcess", "SIZE_UP", "SIZE_DOWN"]
