"""repro — Overlay-Centric Load Balancing (CLUSTER 2012), full reproduction.

Public API tour:

* ``repro.sim`` — deterministic message-passing simulator (the testbed).
* ``repro.overlay`` — TD/TR/BTD overlays, converge-cast, metrics.
* ``repro.work`` — splittable work + sharing policies (the paper's
  subtree-proportional rule and the steal-half/steal-k baselines).
* ``repro.uts`` — Unbalanced Tree Search (binomial/geometric).
* ``repro.bnb`` — interval-encoded Flowshop Branch-and-Bound.
* ``repro.apps`` — application adapters for the worker framework.
* ``repro.core`` — the overlay-centric load-balancing protocol.
* ``repro.baselines`` — RWS, Master-Worker, AHMW.
* ``repro.experiments`` — every table and figure of the paper.

Quickstart::

    from repro import RunConfig, run_once, UTSApplication, get_uts_preset
    result = run_once(RunConfig(protocol="BTD", n=64, dmax=10),
                      UTSApplication(get_uts_preset("bin_tiny").params))
    print(result.makespan, result.total_units)
"""

from .apps import BnBApplication, SyntheticApplication, UTSApplication
from .bnb import (BnBEngine, FlowshopInstance, scaled_instance,
                  taillard_instance)
from .core import OCLBConfig, OverlayWorker, WorkerConfig
from .experiments.runner import (ExperimentResult, RunConfig, TrialStats,
                                 run_once, run_trials)
from .overlay import (BridgedTreeOverlay, TreeOverlay, add_bridges,
                      deterministic_tree, random_tree)
from .sim import Simulator, grid5000, uniform_network
from .uts import UTSParams
from .uts import get_preset as get_uts_preset

__version__ = "1.0.0"

__all__ = [
    "RunConfig", "run_once", "run_trials", "ExperimentResult", "TrialStats",
    "UTSApplication", "BnBApplication", "SyntheticApplication",
    "UTSParams", "get_uts_preset", "FlowshopInstance", "BnBEngine",
    "taillard_instance", "scaled_instance", "TreeOverlay",
    "BridgedTreeOverlay", "deterministic_tree", "random_tree", "add_bridges",
    "OverlayWorker", "OCLBConfig", "WorkerConfig", "Simulator", "grid5000",
    "uniform_network", "__version__",
]
