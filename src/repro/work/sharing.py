"""Work-sharing policies: how much to give a requester (paper §II-B2).

The paper's contribution is the *overlay-proportional* policy:

* parent v serves child u:      fraction = T_u / T_v
* child v serves its parent u:  fraction = (T_u - T_v) / T_u
* bridge owner u serves v:      fraction = T_v / (T_u + T_v)

with T_x the overlay-subtree size of x. Baseline policies from the
literature (steal-half, steal-1, steal-2, fixed fraction) are provided for
the Fig. 2 comparison and the ablation benches.

A :class:`SharingPolicy` maps a :class:`ShareContext` (who asks whom over
which kind of link) to a fraction of the victim's current work amount.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from ..sim.errors import SimConfigError
from .base import clamp_fraction


class LinkKind(Enum):
    """Which overlay relation the request travelled over."""

    TO_CHILD = "to_child"      # victim is the parent, requester its child
    TO_PARENT = "to_parent"    # victim is the child, requester its parent
    BRIDGE = "bridge"          # victim is a bridge target
    PEER = "peer"              # structureless (RWS victim)


@dataclass(frozen=True, slots=True)
class ShareContext:
    """Everything a policy may look at when computing a share.

    Subtree "sizes" are node counts in the paper's homogeneous setting and
    aggregate compute capacities in the heterogeneous extension
    (``OCLBConfig.capacity_aware``) — the fraction formulas are identical.
    """

    link: LinkKind
    victim_subtree: float = 1     # T of the node that owns the work
    requester_subtree: float = 1  # T of the node asking for work
    work_amount: int = 0          # victim's current work amount


class SharingPolicy:
    """A named fraction rule; instances are stateless and reusable."""

    def __init__(self, name: str, fn: Callable[[ShareContext], float]) -> None:
        self.name = name
        self._fn = fn

    def fraction(self, ctx: ShareContext) -> float:
        return clamp_fraction(self._fn(ctx))

    def give_units(self, ctx: ShareContext) -> int:
        """Integral work units to hand over (floor of fraction x amount)."""
        return int(self.fraction(ctx) * ctx.work_amount)

    def __repr__(self) -> str:
        return f"SharingPolicy({self.name!r})"


def _proportional(ctx: ShareContext) -> float:
    tu, tv = ctx.requester_subtree, ctx.victim_subtree
    if ctx.link is LinkKind.TO_CHILD:
        # child u steals from parent v: T_u / T_v
        return tu / max(1e-9, tv)
    if ctx.link is LinkKind.TO_PARENT:
        # parent u steals from child v: (T_u - T_v) / T_u
        return (tu - tv) / max(1e-9, tu)
    if ctx.link is LinkKind.BRIDGE:
        # bridge requester u steals from owner v: T_u / (T_u + T_v)
        return tu / max(1e-9, tu + tv)
    return 0.5  # structureless fallback


PROPORTIONAL = SharingPolicy("proportional", _proportional)
STEAL_HALF = SharingPolicy("steal-half", lambda ctx: 0.5)


def steal_k(k: int) -> SharingPolicy:
    """Give exactly k work units (steal-1 / steal-2 of Dinan et al.)."""
    if k < 1:
        raise SimConfigError("steal-k requires k >= 1")
    return SharingPolicy(
        f"steal-{k}",
        lambda ctx: k / ctx.work_amount if ctx.work_amount > 0 else 0.0)


def fixed_fraction(f: float) -> SharingPolicy:
    """Always give the same fraction of the victim's work."""
    if not (0.0 < f < 1.0):
        raise SimConfigError("fixed fraction must lie strictly in (0, 1)")
    return SharingPolicy(f"fixed-{f:g}", lambda ctx: f)


_REGISTRY: dict[str, Callable[[], SharingPolicy]] = {
    "proportional": lambda: PROPORTIONAL,
    "half": lambda: STEAL_HALF,
    "steal-half": lambda: STEAL_HALF,
    "steal-1": lambda: steal_k(1),
    "steal-2": lambda: steal_k(2),
}


def get_policy(name: str) -> SharingPolicy:
    """Look a policy up by name (``fixed:0.25`` for fixed fractions)."""
    if name in _REGISTRY:
        return _REGISTRY[name]()
    if name.startswith("fixed:"):
        return fixed_fraction(float(name.split(":", 1)[1]))
    if name.startswith("steal-"):
        return steal_k(int(name.split("-", 1)[1]))
    raise SimConfigError(f"unknown sharing policy {name!r}; "
                         f"known: {sorted(_REGISTRY)} | fixed:<f>")


__all__ = ["LinkKind", "ShareContext", "SharingPolicy", "PROPORTIONAL",
           "STEAL_HALF", "steal_k", "fixed_fraction", "get_policy"]
