"""The splittable-work abstraction every application implements.

"a work unit (or a task) in our terminology may (or may not) generate an
unpredictable number of tasks at runtime" (paper §II). Load-balancing
protocols never look inside work: they only measure it (:meth:`WorkItem.
amount`), cut off a share (:meth:`WorkItem.split`), merge received pieces
(:meth:`WorkItem.merge`), and price their transfer
(:meth:`WorkItem.encoded_bytes`).

Concrete implementations: :class:`repro.uts.work.UTSWork` (a stack of
pending tree nodes), :class:`repro.bnb.work.BnBWork` (a list of disjoint
B&B intervals) and :class:`repro.apps.synthetic.SyntheticWork`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional


class WorkItem(ABC):
    """Abstract splittable work; see the module docstring."""

    @abstractmethod
    def amount(self) -> int:
        """Current work amount in application units (stack entries,
        interval positions, ...). Zero iff :meth:`is_empty`."""

    def is_empty(self) -> bool:
        """True when no work remains."""
        return self.amount() <= 0

    @abstractmethod
    def split(self, fraction: float) -> Optional["WorkItem"]:
        """Extract and return roughly ``fraction`` of this work.

        Mutates self (the kept part). Returns ``None`` when nothing can be
        given away (empty, or indivisible remainder). Implementations must
        guarantee conservation: amount(given) + amount(kept) equals the
        amount before the call.
        """

    @abstractmethod
    def merge(self, other: "WorkItem") -> None:
        """Absorb work received from another node (mutates self)."""

    @abstractmethod
    def encoded_bytes(self) -> int:
        """Wire size of this work if sent in a message (network pricing)."""


def clamp_fraction(fraction: float) -> float:
    """Clip a sharing fraction into [0, 1]; protocols use it defensively."""
    if fraction < 0.0:
        return 0.0
    if fraction > 1.0:
        return 1.0
    return fraction


__all__ = ["WorkItem", "clamp_fraction"]
