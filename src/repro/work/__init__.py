"""Splittable-work abstraction and work-sharing policies."""

from .base import WorkItem, clamp_fraction
from .sharing import (PROPORTIONAL, STEAL_HALF, LinkKind, ShareContext,
                      SharingPolicy, fixed_fraction, get_policy, steal_k)

__all__ = [
    "WorkItem", "clamp_fraction", "LinkKind", "ShareContext",
    "SharingPolicy", "PROPORTIONAL", "STEAL_HALF", "steal_k",
    "fixed_fraction", "get_policy",
]
