"""Unbalanced Tree Search (Olivier et al.) — the paper's pure LB adversary."""

from .params import PAPER_INSTANCES, PRESETS, UTSPreset, get_preset
from .rng import child_states, decide_unit, nth_child, root_state
from .sequential import TreeStats, count_tree
from .tree import UTSParams, child_counts, expand, root_frontier
from .work import UTSWork

__all__ = [
    "UTSParams", "UTSWork", "UTSPreset", "PRESETS", "PAPER_INSTANCES",
    "get_preset", "TreeStats", "count_tree", "expand", "child_counts",
    "root_frontier", "root_state", "child_states", "decide_unit", "nth_child",
]
