"""UTS as splittable work: a stack of pending tree nodes.

A :class:`UTSWork` holds the node descriptors (state word + depth) of tree
nodes whose subtrees still have to be explored. Processing pops from the
top (depth-first) and pushes children; stealing takes entries from the
*bottom* of the stack — the oldest, statistically largest subtrees — the
standard work-stealing granularity argument (Blumofe & Leiserson).

Conservation invariant (property-tested): split/merge never create or lose
stack entries, and the total number of nodes popped across any set of
workers equals the sequential tree size.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.errors import SimConfigError
from ..work.base import WorkItem
from . import rng as uts_rng
from .tree import UTSParams, expand

#: Wire bytes per stack entry: 8 (state) + 4 (depth).
ENTRY_BYTES = 12
_MIN_CAP = 64


class UTSWork(WorkItem):
    """Splittable stack of pending UTS nodes (see module docstring)."""

    __slots__ = ("params", "_states", "_depths", "_size")

    def __init__(self, params: UTSParams,
                 states: Optional[np.ndarray] = None,
                 depths: Optional[np.ndarray] = None) -> None:
        self.params = params
        n = 0 if states is None else len(states)
        cap = max(_MIN_CAP, n)
        self._states = np.empty(cap, dtype=np.uint64)
        self._depths = np.empty(cap, dtype=np.int32)
        if n:
            self._states[:n] = states
            self._depths[:n] = depths
        self._size = n

    # -- construction ---------------------------------------------------------

    @classmethod
    def root(cls, params: UTSParams) -> "UTSWork":
        """The whole tree: a stack holding only the root descriptor."""
        return cls(params,
                   states=np.array([uts_rng.root_state(params.root_seed)],
                                   dtype=np.uint64),
                   depths=np.zeros(1, dtype=np.int32))

    @classmethod
    def empty(cls, params: UTSParams) -> "UTSWork":
        """An empty stack for the same instance."""
        return cls(params)

    # -- WorkItem interface -----------------------------------------------------

    def amount(self) -> int:
        return self._size

    def split(self, fraction: float) -> Optional["UTSWork"]:
        give = int(fraction * self._size)
        give = min(give, self._size - 1)  # the victim keeps at least one node
        if give <= 0:
            return None
        piece = UTSWork(self.params,
                        states=self._states[:give].copy(),
                        depths=self._depths[:give].copy())
        keep = self._size - give
        self._states[:keep] = self._states[give:self._size]
        self._depths[:keep] = self._depths[give:self._size]
        self._size = keep
        return piece

    def merge(self, other: WorkItem) -> None:
        if not isinstance(other, UTSWork):
            raise SimConfigError("cannot merge non-UTS work into UTSWork")
        k = other._size
        if k == 0:
            return
        self._reserve(self._size + k)
        # Incoming (old, large) subtrees slide under the current stack.
        self._states[k:k + self._size] = self._states[:self._size]
        self._depths[k:k + self._size] = self._depths[:self._size]
        self._states[:k] = other._states[:k]
        self._depths[:k] = other._depths[:k]
        self._size += k
        other._size = 0

    def encoded_bytes(self) -> int:
        return ENTRY_BYTES * self._size

    # -- processing ---------------------------------------------------------------

    def process(self, max_units: int) -> int:
        """Expand up to ``max_units`` nodes depth-first; returns nodes done."""
        if max_units <= 0 or self._size == 0:
            return 0
        take = min(max_units, self._size)
        lo = self._size - take
        s = self._states[lo:self._size].copy()
        d = self._depths[lo:self._size].copy()
        self._size = lo
        done = take
        root_mask = d == 0
        if root_mask.any():
            # the pseudo-root entry expands to exactly b0 children
            from .tree import root_frontier
            cs, cd = root_frontier(self.params)
            self._push(cs, cd)
            s, d = s[~root_mask], d[~root_mask]
        cs, cd = expand(s, d, self.params)
        if len(cs):
            self._push(cs, cd)
        return done

    # -- internals -------------------------------------------------------------------

    def _reserve(self, need: int) -> None:
        cap = len(self._states)
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        ns = np.empty(cap, dtype=np.uint64)
        nd = np.empty(cap, dtype=np.int32)
        ns[:self._size] = self._states[:self._size]
        nd[:self._size] = self._depths[:self._size]
        self._states, self._depths = ns, nd

    def _push(self, states: np.ndarray, depths: np.ndarray) -> None:
        k = len(states)
        self._reserve(self._size + k)
        self._states[self._size:self._size + k] = states
        self._depths[self._size:self._size + k] = depths
        self._size += k

    def peek(self) -> tuple[np.ndarray, np.ndarray]:
        """(states, depths) view of the live stack — tests only."""
        return (self._states[:self._size].copy(),
                self._depths[:self._size].copy())

    def __repr__(self) -> str:  # pragma: no cover
        return f"UTSWork(size={self._size}, {self.params.describe()})"


__all__ = ["UTSWork", "ENTRY_BYTES"]
