"""Named UTS instances: the paper's and their scaled stand-ins.

The paper evaluates two binomial instances:

* Table I / Fig 5 bottom: ``b=2000 q=0.4999995 m=2 r=599`` — 157·10⁹ nodes;
* Fig 2 bottom:          ``b=2000 q=0.499995  m=2 r=316`` — 2.8·10⁹ nodes.

Both are constructible here (see :data:`PAPER_INSTANCES`) but are far beyond
what a pure-Python reproduction can traverse, so the experiment harness uses
scaled instances with the same structure (same b0 and m, q backed off from
the critical point just enough to shrink the tree; DESIGN.md §2). Measured
sizes below were obtained with :func:`repro.uts.sequential.count_tree` and
are asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.errors import SimConfigError
from .tree import UTSParams


@dataclass(frozen=True, slots=True)
class UTSPreset:
    """A named instance with its exact (measured) size."""

    name: str
    params: UTSParams
    nodes: int            # exact tree size (0 = unknown / not measurable here)
    runnable: bool = True  # False for the paper-scale originals

    def describe(self) -> str:
        size = f"{self.nodes:,} nodes" if self.nodes else "size unknown"
        return f"{self.name}: {self.params.describe()} [{size}]"


#: Instances used by the experiment harness (sizes verified by tests).
PRESETS: dict[str, UTSPreset] = {
    "bin_mini": UTSPreset(
        name="bin_mini",
        params=UTSParams(variant="bin", b0=20, q=0.45, m=2, root_seed=3),
        nodes=0,  # a few hundred; tests compute it exactly
    ),
    "bin_tiny": UTSPreset(
        name="bin_tiny",
        params=UTSParams(variant="bin", b0=4000, q=0.40, m=2, root_seed=1),
        nodes=21_483,
    ),
    "bin_small": UTSPreset(
        name="bin_small",
        params=UTSParams(variant="bin", b0=15000, q=0.45, m=2, root_seed=2),
        nodes=150_969,
    ),
    "bin_large": UTSPreset(
        name="bin_large",
        params=UTSParams(variant="bin", b0=50000, q=0.495, m=2, root_seed=1),
        nodes=5_052_819,
    ),
    "bin_deep": UTSPreset(
        name="bin_deep",
        params=UTSParams(variant="bin", b0=2000, q=0.4995, m=2, root_seed=1),
        nodes=5_154_273,
    ),
    "geo_small": UTSPreset(
        name="geo_small",
        params=UTSParams(variant="geo", b0=4, alpha=0.95, depth_max=14,
                         root_seed=7),
        nodes=0,  # geo extension; measured by tests
    ),
}

#: The paper's original instances — constructible, not traversable here.
PAPER_INSTANCES: dict[str, UTSPreset] = {
    "bin157B": UTSPreset(
        name="bin157B",
        params=UTSParams(variant="bin", b0=2000, q=0.4999995, m=2,
                         root_seed=599),
        nodes=157_000_000_000, runnable=False,
    ),
    "bin2.8B": UTSPreset(
        name="bin2.8B",
        params=UTSParams(variant="bin", b0=2000, q=0.499995, m=2,
                         root_seed=316),
        nodes=2_800_000_000, runnable=False,
    ),
}


def get_preset(name: str) -> UTSPreset:
    """Resolve a preset by name; paper-scale names raise with guidance."""
    if name in PRESETS:
        return PRESETS[name]
    if name in PAPER_INSTANCES:
        raise SimConfigError(
            f"{name} is a paper-scale instance "
            f"({PAPER_INSTANCES[name].nodes:,} nodes) and cannot be "
            "traversed here; use one of the scaled presets "
            f"{sorted(PRESETS)} (DESIGN.md §2)")
    raise SimConfigError(
        f"unknown UTS preset {name!r}; known: {sorted(PRESETS)}")


__all__ = ["UTSPreset", "PRESETS", "PAPER_INSTANCES", "get_preset"]
