"""Splittable per-node randomness for UTS.

The original UTS benchmark derives each tree node's state by hashing its
parent's state with its child index through SHA-1 (the "BRG" generator).
What the benchmark actually requires of the generator is:

* determinism — the tree is a pure function of the root seed,
* splittability — any node's subtree can be regenerated from its state
  alone, wherever it was shipped,
* independence — child-count decisions look i.i.d. uniform.

We substitute SplitMix64 mixing (DESIGN.md §2): it satisfies all three and
vectorises over NumPy ``uint64`` arrays, which makes million-node trees
tractable from Python (hashlib SHA-1 costs ~1 microsecond per node; this
costs nanoseconds).
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import mix64

#: Salt separating "how many children do I have" draws from state chains.
DECIDE_SALT = np.uint64(0xD6E8FEB86659FD93)
#: Salt folded with the child index when deriving child states.
CHILD_SALT = np.uint64(0xA24BAED4963EE407)

_U53 = float(1 << 53)
_M64 = 0xFFFFFFFFFFFFFFFF
_DECIDE_INT = int(DECIDE_SALT)
_CHILD_INT = int(CHILD_SALT)

#: Batches at or below this size take the pure-Python path: for the tiny
#: stacks of the drain phase, NumPy's per-call overhead dwarfs the work.
SMALL_BATCH = 24


def _mix64_int(z: int) -> int:
    """SplitMix64 finalizer on plain Python ints (scalar fast path)."""
    z = (z + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


def root_state(seed: int) -> np.uint64:
    """State of the tree root for an integer instance seed ``r``."""
    return mix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF))


def decide_unit(states: np.ndarray) -> np.ndarray:
    """Uniform(0,1) draw per node, from its state (vectorised)."""
    if len(states) <= SMALL_BATCH:
        return np.array([(_mix64_int(int(s) ^ _DECIDE_INT) >> 11) / _U53
                         for s in states], dtype=np.float64)
    z = mix64(states ^ DECIDE_SALT)
    return (z >> np.uint64(11)).astype(np.float64) / _U53


def child_states(states: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """States of all children, concatenated in parent-then-index order.

    ``counts[i]`` children are derived for ``states[i]``; child ``j`` of a
    parent with state ``s`` is ``mix64(s XOR (j+1)*CHILD_SALT)``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.uint64)
    if total <= SMALL_BATCH:
        out = []
        for s, c in zip(states, counts):
            s = int(s)
            for j in range(int(c)):
                out.append(_mix64_int(s ^ (((j + 1) * _CHILD_INT) & _M64)))
        return np.array(out, dtype=np.uint64)
    parents = np.repeat(states, counts)
    ends = np.cumsum(counts)
    # index of each child within its own family: 0..counts[i]-1
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    with np.errstate(over="ignore"):
        salt = (within.astype(np.uint64) + np.uint64(1)) * CHILD_SALT
        return mix64(parents ^ salt)


def nth_child(state: np.uint64, index: int) -> np.uint64:
    """Scalar convenience: state of one child (tests / tiny trees)."""
    with np.errstate(over="ignore"):
        return mix64(state ^ (np.uint64(index + 1) * CHILD_SALT))


# -- SHA-1 mixing mode --------------------------------------------------------
#
# The original UTS derives child states with SHA-1 (the BRG generator).
# This mode mixes the same 64-bit node words through SHA-1 instead of
# SplitMix64: child j of state s is the first 8 bytes of
# SHA1(s || j), and the branching draw comes from SHA1(s || "d").
# It exists to demonstrate that the benchmark's statistics (and every
# result in this repository) do not depend on the mixer — see the
# equivalence tests — at ~20x the cost of the vectorised default.

def sha1_root_state(seed: int) -> np.uint64:
    import hashlib
    digest = hashlib.sha1(int(seed).to_bytes(8, "big")).digest()
    return np.uint64(int.from_bytes(digest[:8], "big"))


def sha1_decide_unit(states: np.ndarray) -> np.ndarray:
    import hashlib
    out = np.empty(len(states), dtype=np.float64)
    for i, s in enumerate(states):
        digest = hashlib.sha1(int(s).to_bytes(8, "big") + b"d").digest()
        out[i] = (int.from_bytes(digest[:8], "big") >> 11) / _U53
    return out


def sha1_child_states(states: np.ndarray, counts: np.ndarray) -> np.ndarray:
    import hashlib
    out = []
    for s, c in zip(states, counts):
        base = int(s).to_bytes(8, "big")
        for j in range(int(c)):
            digest = hashlib.sha1(base + int(j).to_bytes(4, "big")).digest()
            out.append(int.from_bytes(digest[:8], "big"))
    return np.array(out, dtype=np.uint64)


__all__ = ["root_state", "decide_unit", "child_states", "nth_child",
           "DECIDE_SALT", "CHILD_SALT", "sha1_root_state",
           "sha1_decide_unit", "sha1_child_states"]
