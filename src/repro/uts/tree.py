"""UTS tree shapes: the child-count rules (Olivier et al., LCPC'06).

The paper's experiments use **binomial** trees: the root has exactly ``b0``
children; every other node has ``m`` children with probability ``q`` and
none otherwise. With ``m*q`` close to (but below) 1 the tree is a critical
Galton–Watson process: finite, but with unbounded variance in subtree sizes
— the designed worst case for dynamic load balancing.

A **geometric** variant is provided as well (branching factor decaying with
depth, depth-bounded), so the suite covers both canonical UTS families; the
paper's tables only exercise BIN.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.errors import SimConfigError
from . import rng as uts_rng


@dataclass(frozen=True, slots=True)
class UTSParams:
    """Parameters of one UTS instance.

    Binomial (``variant="bin"``): root has ``b0`` children; non-root nodes
    have ``m`` children with probability ``q``. The paper writes these as
    generator parameters ``(b, q, m, r)``.

    Geometric (``variant="geo"``): expected branching at depth d is
    ``b0 * alpha**d`` (stochastic rounding), truncated at ``depth_max``.
    """

    variant: str = "bin"
    b0: int = 2000
    q: float = 0.4999995
    m: int = 2
    root_seed: int = 599
    alpha: float = 0.85
    depth_max: int = 30
    #: state-mixing function: "splitmix" (vectorised default) or "sha1"
    #: (the original benchmark's mixer family; ~20x slower, for fidelity
    #: demonstrations — see repro.uts.rng)
    rng: str = "splitmix"

    def __post_init__(self) -> None:
        if self.variant not in ("bin", "geo"):
            raise SimConfigError(f"unknown UTS variant {self.variant!r}")
        if self.rng not in ("splitmix", "sha1"):
            raise SimConfigError(f"unknown UTS rng {self.rng!r}")
        if self.b0 < 1:
            raise SimConfigError("b0 must be >= 1")
        if self.variant == "bin":
            if not (0.0 <= self.q <= 1.0):
                raise SimConfigError("q must be in [0, 1]")
            if self.m < 1:
                raise SimConfigError("m must be >= 1")
            if self.m * self.q >= 1.0:
                raise SimConfigError(
                    f"m*q = {self.m * self.q} >= 1: the binomial tree would "
                    "be infinite with positive probability")
        else:
            if not (0.0 < self.alpha < 1.0):
                raise SimConfigError("alpha must be in (0, 1)")
            if self.depth_max < 1:
                raise SimConfigError("depth_max must be >= 1")

    @property
    def expected_size(self) -> float:
        """Expected number of tree nodes (exact for bin; rough for geo)."""
        if self.variant == "bin":
            mean_subtree = 1.0 / (1.0 - self.m * self.q)
            return 1.0 + self.b0 * mean_subtree
        total, width = 1.0, float(self.b0)
        for d in range(1, self.depth_max + 1):
            total += width
            width *= self.b0 * self.alpha ** d
            if width < 1e-9:
                break
        return total

    def describe(self) -> str:
        if self.variant == "bin":
            return (f"BIN(b={self.b0} q={self.q:g} m={self.m} "
                    f"r={self.root_seed})")
        return (f"GEO(b={self.b0} alpha={self.alpha:g} "
                f"dmax={self.depth_max} r={self.root_seed})")


def _rng_fns(params: UTSParams):
    if params.rng == "sha1":
        return (uts_rng.sha1_root_state, uts_rng.sha1_decide_unit,
                uts_rng.sha1_child_states)
    return uts_rng.root_state, uts_rng.decide_unit, uts_rng.child_states


def root_frontier(params: UTSParams) -> tuple[np.ndarray, np.ndarray]:
    """(states, depths) of the root's children — the tree minus its root."""
    root_fn, _, children_fn = _rng_fns(params)
    root = root_fn(params.root_seed)
    counts = np.array([params.b0], dtype=np.int64)
    states = children_fn(np.array([root], dtype=np.uint64), counts)
    return states, np.ones(params.b0, dtype=np.int32)


def child_counts(states: np.ndarray, depths: np.ndarray,
                 params: UTSParams) -> np.ndarray:
    """Number of children of each non-root node in the batch (vectorised)."""
    _, decide_fn, _ = _rng_fns(params)
    u = decide_fn(states)
    if params.variant == "bin":
        return np.where(u < params.q, params.m, 0).astype(np.int64)
    expected = params.b0 * np.power(params.alpha, depths.astype(np.float64))
    base = np.floor(expected).astype(np.int64)
    counts = base + (u < (expected - base)).astype(np.int64)
    counts[depths >= params.depth_max] = 0
    return counts


def expand(states: np.ndarray, depths: np.ndarray,
           params: UTSParams) -> tuple[np.ndarray, np.ndarray]:
    """Children of a batch of non-root nodes (vectorised).

    Returns (child_states, child_depths); empty arrays when all given nodes
    are leaves. Deterministic: depends only on node states (+ depth for geo).
    """
    if len(states) == 0:
        return (np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int32))
    counts = child_counts(states, depths, params)
    _, _, children_fn = _rng_fns(params)
    children = children_fn(states, counts)
    child_depths = np.repeat(depths, counts) + np.int32(1)
    return children, child_depths.astype(np.int32, copy=False)


__all__ = ["UTSParams", "root_frontier", "child_counts", "expand"]
