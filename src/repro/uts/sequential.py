"""Sequential UTS: exact tree counting, the correctness oracle.

Every parallel run's node count must equal :func:`count_tree`'s result for
the same parameters — this is the end-to-end invariant the integration
tests assert for every protocol/overlay combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.errors import SimConfigError
from .tree import UTSParams, _rng_fns, child_counts, root_frontier

#: Expansion batch bound: caps peak memory on very wide frontiers.
BATCH = 1 << 15


@dataclass(frozen=True, slots=True)
class TreeStats:
    """Result of a full sequential traversal (root included in ``nodes``)."""

    nodes: int
    leaves: int
    max_depth: int

    def __str__(self) -> str:
        return (f"nodes={self.nodes:,} leaves={self.leaves:,} "
                f"max_depth={self.max_depth}")


def count_tree(params: UTSParams, max_nodes: int | None = None) -> TreeStats:
    """Traverse the whole tree, counting nodes, leaves and max depth.

    Args:
        params: the instance.
        max_nodes: safety valve — raise if the traversal exceeds this many
            nodes (protects against accidentally running a paper-scale
            instance interactively).
    """
    states, depths = root_frontier(params)
    nodes = 1  # the root
    leaves = 1 if params.b0 == 0 else 0
    max_depth = 0 if params.b0 == 0 else 1
    stack: list[tuple[np.ndarray, np.ndarray]] = [(states, depths)]
    while stack:
        s, d = stack.pop()
        if len(s) == 0:
            continue
        if len(s) > BATCH:
            stack.append((s[BATCH:], d[BATCH:]))
            s, d = s[:BATCH], d[:BATCH]
        nodes += len(s)
        if max_nodes is not None and nodes > max_nodes:
            raise SimConfigError(
                f"tree exceeded max_nodes={max_nodes:,}; instance "
                f"{params.describe()} is larger than expected")
        counts = child_counts(s, d, params)
        leaves += int((counts == 0).sum())
        if counts.any():
            cs = _rng_fns(params)[2](s, counts)
            cd = (np.repeat(d, counts) + np.int32(1)).astype(np.int32)
            max_depth = max(max_depth, int(cd.max()))
            stack.append((cs, cd))
    return TreeStats(nodes=nodes, leaves=leaves, max_depth=max_depth)


__all__ = ["TreeStats", "count_tree", "BATCH"]
