"""UTS as a worker-framework application."""

from __future__ import annotations

from typing import Any

from ..uts.tree import UTSParams
from ..uts.work import UTSWork
from .base import Application, ProcessOutcome

#: Default virtual cost of one UTS node expansion (seconds). Comparable to
#: the original benchmark's per-node cost on the paper's Xeons.
UTS_UNIT_COST = 5e-6


class UTSApplication(Application):
    """Count an unbalanced tree; work = stacks of pending node descriptors."""

    def __init__(self, params: UTSParams,
                 unit_cost: float = UTS_UNIT_COST) -> None:
        self.params = params
        self.unit_cost = unit_cost
        self.name = f"UTS[{params.describe()}]"

    def initial_work(self) -> UTSWork:
        return UTSWork.root(self.params)

    def empty_work(self) -> UTSWork:
        return UTSWork.empty(self.params)

    def process(self, work: UTSWork, max_units: int,
                shared: Any) -> ProcessOutcome:
        return ProcessOutcome(units=work.process(max_units))


__all__ = ["UTSApplication", "UTS_UNIT_COST"]
