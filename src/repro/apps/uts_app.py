"""UTS as a worker-framework application."""

from __future__ import annotations

from typing import Any

from ..uts.tree import UTSParams
from ..uts.work import UTSWork
from .base import Application, ProcessOutcome

#: Default virtual cost of one UTS node expansion (seconds). Comparable to
#: the original benchmark's per-node cost on the paper's Xeons.
UTS_UNIT_COST = 5e-6


class UTSApplication(Application):
    """Count an unbalanced tree; work = stacks of pending node descriptors."""

    def __init__(self, params: UTSParams,
                 unit_cost: float = UTS_UNIT_COST) -> None:
        self.params = params
        self.unit_cost = unit_cost
        self.name = f"UTS[{params.describe()}]"

    def initial_work(self) -> UTSWork:
        return UTSWork.root(self.params)

    def empty_work(self) -> UTSWork:
        return UTSWork.empty(self.params)

    def process(self, work: UTSWork, max_units: int,
                shared: Any) -> ProcessOutcome:
        return ProcessOutcome(units=work.process(max_units))

    def process_quanta(self, work: UTSWork, max_units: int, shared: Any,
                       limit: int) -> list[int]:
        # Chunked exactly like `limit` separate process() calls — UTS
        # expansion pops off the top and pushes children mid-sequence, so
        # one big batch would visit different nodes than k quanta; the
        # per-quantum loop is the bit-identical (and still vectorised
        # inside work.process) form. Skips the ProcessOutcome boxing of
        # the default implementation.
        out: list[int] = []
        while len(out) < limit:
            u = work.process(max_units)
            if u <= 0:
                break
            out.append(u)
        return out


__all__ = ["UTSApplication", "UTS_UNIT_COST"]
