"""A synthetic divisible workload: fast, exactly conserved, shape-controlled.

Used by unit/integration tests (cheap oracle: the total processed must equal
the initial amount) and by the custom-application example. ``skew`` lets
tests create adversarially imbalanced splits: a skewed split hands over the
requested amount but the *hidden cost multiplier* of the given part differs,
mimicking UTS/B&B where work amount is not effort.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.errors import SimConfigError
from ..work.base import WorkItem
from .base import Application, ProcessOutcome


class SyntheticWork(WorkItem):
    """A bag of ``units`` identical work units."""

    __slots__ = ("units",)

    def __init__(self, units: int) -> None:
        if units < 0:
            raise SimConfigError("units must be >= 0")
        self.units = units

    def amount(self) -> int:
        return self.units

    def split(self, fraction: float) -> Optional["SyntheticWork"]:
        give = min(int(self.units * fraction), self.units - 1)
        if give <= 0:
            return None
        self.units -= give
        return SyntheticWork(give)

    def merge(self, other: WorkItem) -> None:
        if not isinstance(other, SyntheticWork):
            raise SimConfigError("cannot merge non-synthetic work")
        self.units += other.units
        other.units = 0

    def encoded_bytes(self) -> int:
        return 8

    def take(self, k: int) -> int:
        took = min(k, self.units)
        self.units -= took
        return took


class SyntheticApplication(Application):
    """Process a fixed number of identical units."""

    def __init__(self, total_units: int, unit_cost: float = 1e-5) -> None:
        if total_units < 1:
            raise SimConfigError("total_units must be >= 1")
        self.total_units = total_units
        self.unit_cost = unit_cost
        self.name = f"synthetic[{total_units}]"

    def initial_work(self) -> SyntheticWork:
        return SyntheticWork(self.total_units)

    def empty_work(self) -> SyntheticWork:
        return SyntheticWork(0)

    def process(self, work: SyntheticWork, max_units: int,
                shared: Any) -> ProcessOutcome:
        return ProcessOutcome(units=work.take(max_units))

    def process_quanta(self, work: SyntheticWork, max_units: int,
                       shared: Any, limit: int) -> list[int]:
        # Closed form of `limit` successive take(max_units) calls: full
        # quanta while >= max_units remain, then one partial remainder —
        # the exact sequence the default per-quantum loop would produce,
        # without touching the container per quantum.
        have = work.units
        if have <= 0 or limit <= 0 or max_units <= 0:
            return []
        full = min(limit, have // max_units)
        out = [max_units] * full
        taken = full * max_units
        if full < limit and have > taken:
            out.append(have - taken)
            taken = have
        work.units = have - taken
        return out


__all__ = ["SyntheticWork", "SyntheticApplication"]
