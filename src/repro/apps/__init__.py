"""Application adapters binding workloads to the worker framework."""

from .base import Application, ProcessOutcome
from .bnb_app import BNB_UNIT_COST, BnBApplication
from .synthetic import SyntheticApplication, SyntheticWork
from .uts_app import UTS_UNIT_COST, UTSApplication

__all__ = [
    "Application", "ProcessOutcome", "UTSApplication", "BnBApplication",
    "SyntheticApplication", "SyntheticWork", "UTS_UNIT_COST", "BNB_UNIT_COST",
]
