"""Flowshop B&B as a worker-framework application.

All simulated workers of a run share one (stateless) :class:`BnBEngine`;
each holds its own :class:`BoundState`, kept loosely consistent by the
protocol's diffusion of improved upper bounds.
"""

from __future__ import annotations

from typing import Optional

from ..bnb.bounds import LowerBound
from ..bnb.engine import BnBEngine
from ..bnb.flowshop import FlowshopInstance
from ..bnb.state import BoundState
from ..bnb.work import BnBWork
from .base import Application, ProcessOutcome

#: Default virtual cost of one bound evaluation (seconds). The real LLRK
#: bound on a 20x20 instance costs ~100-300 microseconds on the paper's
#: hardware; we price our scaled instances at the same order so the
#: compute/communication ratio matches (DESIGN.md §6).
BNB_UNIT_COST = 2e-4


class BnBApplication(Application):
    """Solve a flow-shop instance exactly; work = interval sets.

    ``warm_start=True`` seeds every worker's bound state with the NEH
    heuristic solution — the regime-preserving default of the experiment
    harness (see :mod:`repro.bnb.neh`); cold (from-scratch, as the paper
    words it) is the constructor default.  ``neh`` optionally supplies a
    precomputed ``(makespan, permutation)`` NEH solution — the parallel
    grid runner ships it to pool workers so they do not redo the
    heuristic per cell.
    """

    def __init__(self, instance: FlowshopInstance,
                 bound: LowerBound | str = "lb1",
                 unit_cost: float = BNB_UNIT_COST,
                 warm_start: bool = False,
                 neh: tuple[int, list[int]] | None = None) -> None:
        self.instance = instance
        self.engine = BnBEngine(instance, bound=bound)
        self.unit_cost = unit_cost
        self.warm_start = warm_start
        self._neh: tuple[int, list[int]] | None = None
        if warm_start:
            if neh is None:
                from ..bnb.neh import neh as neh_heuristic
                neh = neh_heuristic(instance)
            self._neh = neh
        self.name = f"B&B[{instance.name}]"

    def initial_work(self) -> BnBWork:
        return BnBWork.full_tree(self.instance.n_jobs)

    def empty_work(self) -> BnBWork:
        return BnBWork.empty(self.instance.n_jobs)

    def process(self, work: BnBWork, max_units: int,
                shared: BoundState) -> ProcessOutcome:
        res = self.engine.explore(work, shared, max_units)
        return ProcessOutcome(units=res.nodes, improved=res.improved)

    def make_shared(self) -> BoundState:
        if self._neh is not None:
            value, perm = self._neh
            return BoundState(value=value + 1)  # prune lb >= NEH+1 keeps NEH
        return BoundState()

    def shared_value(self, shared: BoundState) -> Optional[int]:
        from ..bnb.state import INF
        return shared.value if shared.value < INF else None

    def absorb_value(self, shared: BoundState, value: int) -> bool:
        return shared.update(value)


__all__ = ["BnBApplication", "BNB_UNIT_COST"]
