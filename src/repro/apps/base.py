"""Application adapter: how a protocol-agnostic worker runs an application.

An :class:`Application` packages everything the worker framework needs to
run one workload: how to create the initial/empty work, how to process a
quantum of it, how long a work unit takes on the simulated hardware, and
(optionally) a shared-knowledge object diffused between workers (the B&B
upper bound).

The simulated durations are *virtual*: `unit_cost` prices one application
work unit (a UTS node expansion, a B&B bound evaluation) in virtual seconds.
DESIGN.md §6 explains how these prices were chosen to preserve the paper's
compute/communication cost ratios.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional

from ..work.base import WorkItem


@dataclass(slots=True)
class ProcessOutcome:
    """Result of one compute quantum."""

    units: int               # work units actually processed
    improved: bool = False   # shared knowledge improved (diffuse it)


class Application(ABC):
    """A workload runnable by the worker framework (see module docstring)."""

    #: human-readable workload name (experiment reports)
    name: str = "app"
    #: virtual seconds per work unit
    unit_cost: float = 5e-5

    @abstractmethod
    def initial_work(self) -> WorkItem:
        """The entire job, placed on the initial node (root / master)."""

    @abstractmethod
    def empty_work(self) -> WorkItem:
        """An empty container every other worker starts with."""

    @abstractmethod
    def process(self, work: WorkItem, max_units: int,
                shared: Any) -> ProcessOutcome:
        """Process up to ``max_units`` of ``work`` (mutating it)."""

    def process_quanta(self, work: WorkItem, max_units: int, shared: Any,
                       limit: int) -> list[int]:
        """Process up to ``limit`` consecutive quanta; the macro-event path.

        Returns the per-quantum unit counts, stopping early when the work
        drains (or a quantum yields nothing). The default runs
        :meth:`process` in a loop, so the work container sees *exactly* the
        same call sequence as ``limit`` separate quanta — the
        bit-reproducibility contract of quantum fusion. Applications with
        closed-form batch processing (the synthetic workload) override it;
        overrides must preserve that per-quantum equivalence.

        Only called with ``shared is None`` (no shared knowledge can
        improve mid-batch), and only for applications whose
        :meth:`process` returns ``units > 0`` whenever the work is
        non-empty.
        """
        out: list[int] = []
        while len(out) < limit and not work.is_empty():
            o = self.process(work, max_units, shared)
            if o.units <= 0:
                break
            out.append(o.units)
        return out

    def make_shared(self) -> Optional[Any]:
        """Fresh per-worker shared-knowledge state (None: nothing to share)."""
        return None

    def shared_value(self, shared: Any) -> Optional[int]:
        """The diffusible scalar of ``shared`` (e.g. the B&B upper bound)."""
        return None

    def absorb_value(self, shared: Any, value: int) -> bool:
        """Fold a diffused scalar into ``shared``; True iff it improved."""
        return False

    def describe(self) -> str:
        return self.name


__all__ = ["Application", "ProcessOutcome"]
