"""Interval (factoradic) encoding of the permutation B&B tree.

The work encoding of Mezmaz, Melab & Talbi (IPDPS 2007), used verbatim by
the paper: label the leaves of the permutation tree 0 .. n!-1 in DFS order.
A node at depth d (d jobs fixed) covers a contiguous block of (n-d)!
leaves, so *any* sub-tree is an interval of [0, n!), and an arbitrary union
of pending sub-trees is a set of disjoint intervals — a work descriptor of a
few integers, however much search it represents.

The bijection: the leaf index of a permutation is the mixed-radix
(factoradic) number whose digit at depth d is the *rank* of the chosen job
within the not-yet-scheduled jobs sorted by job id.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ..sim.errors import SimConfigError


@lru_cache(maxsize=None)
def factorials(n: int) -> tuple[int, ...]:
    """(0!, 1!, ..., n!) as exact Python ints."""
    if n < 0:
        raise SimConfigError("n must be >= 0")
    out = [1]
    for k in range(1, n + 1):
        out.append(out[-1] * k)
    return tuple(out)


def tree_leaves(n: int) -> int:
    """Total leaves of the permutation tree: n!."""
    return factorials(n)[n]


def position_to_digits(pos: int, n: int) -> list[int]:
    """Factoradic digits of a leaf position; digit d is in [0, n-d)."""
    if not (0 <= pos < tree_leaves(n)):
        raise SimConfigError(f"position {pos} outside [0, {n}!)")
    fact = factorials(n)
    digits = []
    for d in range(n):
        block = fact[n - d - 1]
        digits.append(pos // block)
        pos %= block
    return digits


def digits_to_position(digits: Sequence[int], n: int) -> int:
    """Inverse of :func:`position_to_digits`."""
    if len(digits) != n:
        raise SimConfigError("digit count must equal n")
    fact = factorials(n)
    pos = 0
    for d, digit in enumerate(digits):
        if not (0 <= digit < n - d):
            raise SimConfigError(f"digit {digit} at depth {d} outside "
                                 f"[0, {n - d})")
        pos += digit * fact[n - d - 1]
    return pos


def position_to_permutation(pos: int, n: int) -> list[int]:
    """The complete permutation at leaf ``pos`` (jobs 0..n-1)."""
    digits = position_to_digits(pos, n)
    remaining = list(range(n))
    return [remaining.pop(d) for d in digits]


def permutation_to_position(perm: Sequence[int]) -> int:
    """Leaf index of a complete permutation."""
    n = len(perm)
    if sorted(perm) != list(range(n)):
        raise SimConfigError(f"{list(perm)} is not a permutation of 0..{n - 1}")
    remaining = list(range(n))
    digits = []
    for job in perm:
        d = remaining.index(job)
        digits.append(d)
        remaining.pop(d)
    return digits_to_position(digits, n)


def prefix_block(prefix_digits: Sequence[int], n: int) -> tuple[int, int]:
    """[start, end) of leaves under the node reached by ``prefix_digits``."""
    fact = factorials(n)
    start = 0
    for d, digit in enumerate(prefix_digits):
        if not (0 <= digit < n - d):
            raise SimConfigError(f"digit {digit} at depth {d} outside "
                                 f"[0, {n - d})")
        start += digit * fact[n - d - 1]
    width = fact[n - len(prefix_digits)]
    return start, start + width


__all__ = ["factorials", "tree_leaves", "position_to_digits",
           "digits_to_position", "position_to_permutation",
           "permutation_to_position", "prefix_block"]
