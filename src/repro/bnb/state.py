"""Shared best-bound state of one B&B participant."""

from __future__ import annotations

from typing import Optional, Sequence

#: "No solution known yet": the paper runs B&B from scratch with no initial
#: upper bound.
INF = 2**62


class BoundState:
    """Best-known upper bound (and incumbent) of one node.

    In the real system every process holds its own copy, kept loosely
    synchronised by the protocol's diffusion messages; ``version`` counts
    local improvements so diffusion layers can detect novelty cheaply.
    """

    __slots__ = ("value", "perm", "perm_value", "version")

    def __init__(self, value: int = INF,
                 perm: Optional[Sequence[int]] = None) -> None:
        self.value = value
        self.perm = tuple(perm) if perm is not None else None
        self.perm_value = value if perm is not None else INF
        self.version = 0

    def update(self, value: int,
               perm: Optional[Sequence[int]] = None) -> bool:
        """Adopt a better bound; True iff it improved the current one.

        ``perm`` is the incumbent achieving ``value`` when locally found;
        diffused values arrive without one (``perm_value`` remembers which
        value the stored incumbent actually achieves).
        """
        if value >= self.value:
            return False
        self.value = value
        if perm is not None:
            self.perm = tuple(perm)
            self.perm_value = value
        self.version += 1
        return True

    def snapshot(self) -> tuple[int, Optional[tuple[int, ...]]]:
        """(value, incumbent) pair, for reporting."""
        return self.value, self.perm

    def __repr__(self) -> str:  # pragma: no cover
        v = "inf" if self.value >= INF else str(self.value)
        return f"BoundState(value={v})"


__all__ = ["BoundState", "INF"]
