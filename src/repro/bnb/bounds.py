"""Lower bounds for partial flow-shop schedules.

The paper prunes with "the well-known algorithm proposed in [16]" — the
Lenstra/Lageweg/Rinnooy Kan (LLRK) bounding scheme, which combines
one-machine and two-machine (Johnson) relaxations. We implement:

* :class:`OneMachineBound` — for each machine i: completion of the prefix on
  i, plus all unscheduled work on i, plus the smallest unscheduled tail
  after i. O(m) per child with O(m·|remaining|) per-frame precomputation.
* :class:`JohnsonPairBound` — for machine pairs (u, v): the optimal
  two-machine makespan of the unscheduled jobs (Johnson's rule, order
  precomputed per pair at attach time) seeded with the prefix's machine
  ready times, plus the smallest tail after v. Stronger, ~|pairs|·|remaining|
  per child.
* :class:`MaxBound` — pointwise maximum of component bounds (LLRK style).
* :class:`TrivialBound` — last-machine-only; the weak oracle used in tests.

All bounds are *admissible*: they never exceed the best makespan reachable
below the node (property-tested against exhaustive enumeration).

Engine contract: ``attach`` once per instance; ``frame(remaining,
unscheduled)`` once per expanded node; ``child(front_child, job, frame_data,
rem_sum_child)`` once per child. To keep the per-child cost O(m), frame-level
minima are taken over the *parent's* remaining set (they include the child's
own job — a relaxation that only lowers the bound, hence stays admissible).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from ..sim.errors import SimConfigError
from .flowshop import FlowshopInstance
from .johnson import johnson_order


class LowerBound(ABC):
    """A pluggable admissible lower bound; see module docstring."""

    name = "abstract"

    def __init__(self) -> None:
        self.instance: FlowshopInstance | None = None

    def attach(self, instance: FlowshopInstance) -> "LowerBound":
        """Bind to an instance and precompute; returns self for chaining."""
        self.instance = instance
        self._precompute()
        return self

    def _precompute(self) -> None:
        """Optional instance-level precomputation hook."""

    @abstractmethod
    def frame(self, remaining: Sequence[int]) -> Any:
        """Per-expanded-node precomputation over its unscheduled set."""

    @abstractmethod
    def child(self, front: Sequence[int], job: int, frame_data: Any,
              rem_sum: Sequence[int]) -> int:
        """Bound for the child obtained by scheduling ``job``.

        Args:
            front: machine completion times *after* scheduling ``job``.
            job: the job just appended.
            frame_data: whatever :meth:`frame` returned for the parent.
            rem_sum: per-machine unscheduled work, ``job`` already excluded.
        """


class TrivialBound(LowerBound):
    """Last machine only: front[m-1] + remaining work on it. Weak; tests."""

    name = "trivial"

    def frame(self, remaining: Sequence[int]) -> None:
        return None

    def child(self, front, job, frame_data, rem_sum) -> int:
        return front[-1] + rem_sum[-1]


class OneMachineBound(LowerBound):
    """The classical machine-based bound (LB1).

    The per-frame "smallest unscheduled tail after machine i" is found by
    walking a tail-sorted job order (precomputed at attach) until the first
    unscheduled job — O(#scheduled) amortised instead of O(#remaining),
    which matters because ``frame`` runs once per expanded node. The engine
    publishes its unscheduled mask through :meth:`set_mask`; when no mask
    is available (stand-alone use) the plain scan is used.
    """

    name = "one-machine"

    def __init__(self) -> None:
        super().__init__()
        self._tail_order: list[list[int]] = []
        self._mask: list[bool] | None = None

    def _precompute(self) -> None:
        tails = self.instance.tails
        n = self.instance.n_jobs
        self._tail_order = [sorted(range(n), key=lambda j: tails[i][j])
                            for i in range(self.instance.n_machines)]

    def set_mask(self, unscheduled: list[bool]) -> None:
        self._mask = unscheduled

    def frame(self, remaining: Sequence[int]) -> list[int]:
        # smallest tail after machine i over the unscheduled set (parent's)
        tails = self.instance.tails
        mask = self._mask
        if mask is None:
            return [min(tails[i][j] for j in remaining)
                    for i in range(self.instance.n_machines)]
        out = []
        for i in range(self.instance.n_machines):
            row = tails[i]
            for j in self._tail_order[i]:
                if mask[j]:
                    out.append(row[j])
                    break
        return out

    def child(self, front, job, frame_data, rem_sum) -> int:
        best = 0
        min_tails = frame_data
        for i in range(len(front)):
            v = front[i] + rem_sum[i] + min_tails[i]
            if v > best:
                best = v
        return best


class JohnsonPairBound(LowerBound):
    """Two-machine (Johnson) relaxations over a set of machine pairs.

    ``pairs``: ``"adjacent"`` (u, u+1), ``"last"`` (u, m-1), ``"all"``
    (every u < v), or an explicit list. Each pair's Johnson order over all
    jobs is precomputed at attach; at bound time the order is walked skipping
    scheduled jobs.
    """

    name = "johnson"

    def __init__(self, pairs: str | list[tuple[int, int]] = "adjacent") -> None:
        super().__init__()
        self.pairs_spec = pairs
        self.pairs: list[tuple[int, int]] = []
        self._orders: list[list[int]] = []

    def _precompute(self) -> None:
        m = self.instance.n_machines
        spec = self.pairs_spec
        if spec == "adjacent":
            self.pairs = [(u, u + 1) for u in range(m - 1)]
        elif spec == "last":
            self.pairs = [(u, m - 1) for u in range(m - 1)]
        elif spec == "all":
            self.pairs = [(u, v) for u in range(m) for v in range(u + 1, m)]
        elif isinstance(spec, list):
            for u, v in spec:
                if not (0 <= u < v < m):
                    raise SimConfigError(f"bad machine pair ({u}, {v})")
            self.pairs = list(spec)
        else:
            raise SimConfigError(f"bad pairs spec {spec!r}")
        if not self.pairs:
            raise SimConfigError("JohnsonPairBound needs >= 1 machine pair "
                                 "(single-machine instance?)")
        p = self.instance.p
        self._orders = [johnson_order(p[u], p[v]) for u, v in self.pairs]

    def frame(self, remaining: Sequence[int]) -> list[int]:
        tails = self.instance.tails
        return [min(tails[v][j] for j in remaining)
                for _, v in self.pairs]

    def child(self, front, job, frame_data, rem_sum) -> int:
        p = self.instance.p
        best = front[-1] + rem_sum[-1]  # never worse than the trivial bound
        for k, (u, v) in enumerate(self.pairs):
            if rem_sum[u] == 0:
                continue
            pu, pv = p[u], p[v]
            ta, tb = front[u], front[v]
            for j in self._orders[k]:
                # walk Johnson order, keeping only unscheduled jobs; the
                # scheduled ones have rem contribution 0 on every machine
                if self._unscheduled[j]:
                    ta += pu[j]
                    if ta > tb:
                        tb = ta
                    tb += pv[j]
            val = tb + frame_data[k]
            if val > best:
                best = val
        return best

    # The engine publishes its unscheduled mask here before child() calls;
    # a shared list avoids building per-child job sets in the hot loop.
    _unscheduled: list[bool] = []

    def set_mask(self, unscheduled: list[bool]) -> None:
        self._unscheduled = unscheduled


class JohnsonLagBound(LowerBound):
    """Two-machine relaxations *with time lags* — the full LLRK bound.

    For a machine pair (u, v), the machines strictly between them are
    relaxed to pure delays: job j needs lag_j = sum of its processing on
    the in-between machines before it can enter v. Mitten's theorem makes
    Johnson's rule on the transformed times (a+lag, lag+b) exactly optimal
    for the relaxation, so walking the precomputed transformed order over
    the unscheduled jobs yields an admissible bound that dominates the
    zero-lag :class:`JohnsonPairBound` on the same pairs.
    """

    name = "johnson-lag"

    def __init__(self, pairs: str | list[tuple[int, int]] = "adjacent") -> None:
        super().__init__()
        self.pairs_spec = pairs
        self.pairs: list[tuple[int, int]] = []
        self._orders: list[list[int]] = []
        self._lags: list[list[int]] = []
        self._unscheduled: list[bool] = []

    def _precompute(self) -> None:
        from .johnson import lag_order
        m = self.instance.n_machines
        n = self.instance.n_jobs
        spec = self.pairs_spec
        if spec == "adjacent":
            self.pairs = [(u, u + 1) for u in range(m - 1)]
        elif spec == "last":
            self.pairs = [(u, m - 1) for u in range(m - 1)]
        elif spec == "all":
            self.pairs = [(u, v) for u in range(m) for v in range(u + 1, m)]
        elif isinstance(spec, list):
            for u, v in spec:
                if not (0 <= u < v < m):
                    raise SimConfigError(f"bad machine pair ({u}, {v})")
            self.pairs = list(spec)
        else:
            raise SimConfigError(f"bad pairs spec {spec!r}")
        if not self.pairs:
            raise SimConfigError("JohnsonLagBound needs >= 1 machine pair")
        p = self.instance.p
        self._lags = []
        self._orders = []
        for u, v in self.pairs:
            lag = [sum(p[k][j] for k in range(u + 1, v)) for j in range(n)]
            self._lags.append(lag)
            self._orders.append(lag_order(p[u], p[v], lag))

    def set_mask(self, unscheduled: list[bool]) -> None:
        self._unscheduled = unscheduled

    def frame(self, remaining: Sequence[int]) -> list[int]:
        tails = self.instance.tails
        return [min(tails[v][j] for j in remaining)
                for _, v in self.pairs]

    def child(self, front, job, frame_data, rem_sum) -> int:
        p = self.instance.p
        mask = self._unscheduled
        best = front[-1] + rem_sum[-1]
        for k, (u, v) in enumerate(self.pairs):
            if rem_sum[u] == 0:
                continue
            pu, pv = p[u], p[v]
            lag = self._lags[k]
            ta, tb = front[u], front[v]
            for j in self._orders[k]:
                if mask[j]:
                    ta += pu[j]
                    ready = ta + lag[j]
                    if ready > tb:
                        tb = ready
                    tb += pv[j]
            val = tb + frame_data[k]
            if val > best:
                best = val
        return best


class MaxBound(LowerBound):
    """Pointwise maximum of several bounds (the full LLRK combination)."""

    name = "max"

    def __init__(self, components: list[LowerBound]) -> None:
        super().__init__()
        if not components:
            raise SimConfigError("MaxBound needs components")
        self.components = components
        self.name = "max(" + ",".join(c.name for c in components) + ")"

    def attach(self, instance: FlowshopInstance) -> "MaxBound":
        self.instance = instance
        for c in self.components:
            c.attach(instance)
        return self

    def frame(self, remaining: Sequence[int]) -> list[Any]:
        return [c.frame(remaining) for c in self.components]

    def child(self, front, job, frame_data, rem_sum) -> int:
        return max(c.child(front, job, fd, rem_sum)
                   for c, fd in zip(self.components, frame_data))

    def set_mask(self, unscheduled: list[bool]) -> None:
        for c in self.components:
            if hasattr(c, "set_mask"):
                c.set_mask(unscheduled)


def get_bound(name: str) -> LowerBound:
    """Bound factory.

    Names: ``trivial``, ``lb1``, ``johnson[:pairs]``,
    ``johnson-lag[:pairs]``, ``llrk`` (lb1 + zero-lag adjacent pairs),
    ``llrk-full`` (lb1 + lag-aware pairs). ``pairs`` is
    ``adjacent | last | all``.
    """
    if name == "trivial":
        return TrivialBound()
    if name in ("lb1", "one-machine"):
        return OneMachineBound()
    if name.startswith("johnson-lag"):
        pairs = name.split(":", 1)[1] if ":" in name else "adjacent"
        return JohnsonLagBound(pairs=pairs)
    if name.startswith("johnson"):
        pairs = name.split(":", 1)[1] if ":" in name else "adjacent"
        return JohnsonPairBound(pairs=pairs)
    if name == "llrk":
        return MaxBound([OneMachineBound(), JohnsonPairBound("adjacent")])
    if name == "llrk-full":
        return MaxBound([OneMachineBound(), JohnsonLagBound("adjacent")])
    raise SimConfigError(f"unknown bound {name!r}; known: trivial, lb1, "
                         "johnson[:pairs], johnson-lag[:pairs], llrk, "
                         "llrk-full (pairs: adjacent|last|all)")


__all__ = ["LowerBound", "TrivialBound", "OneMachineBound",
           "JohnsonPairBound", "JohnsonLagBound", "MaxBound", "get_bound"]
