"""Lower bounds for partial flow-shop schedules.

The paper prunes with "the well-known algorithm proposed in [16]" — the
Lenstra/Lageweg/Rinnooy Kan (LLRK) bounding scheme, which combines
one-machine and two-machine (Johnson) relaxations. We implement:

* :class:`OneMachineBound` — for each machine i: completion of the prefix on
  i, plus all unscheduled work on i, plus the smallest unscheduled tail
  after i. O(m) per child with O(m·|remaining|) per-frame precomputation.
* :class:`JohnsonPairBound` — for machine pairs (u, v): the optimal
  two-machine makespan of the unscheduled jobs (Johnson's rule, order
  precomputed per pair at attach time) seeded with the prefix's machine
  ready times, plus the smallest tail after v. Stronger, ~|pairs|·|remaining|
  per child.
* :class:`JohnsonLagBound` — the same relaxation with the in-between
  machines folded into job lags: the full LLRK two-machine bound.
* :class:`MaxBound` — pointwise maximum of component bounds (LLRK style).
* :class:`TrivialBound` — last-machine-only; the weak oracle used in tests.

All bounds are *admissible*: they never exceed the best makespan reachable
below the node (property-tested against exhaustive enumeration).

Engine contract: ``attach`` once per instance; then one of three paths,
all bit-identical (golden-tested in ``tests/test_bnb_kernels.py``):

* the scalar reference path — ``frame(remaining)`` once per expanded node,
  then ``child(front_child, job, frame_data, rem_sum_child)`` once per
  child, with the engine's unscheduled mask (published through
  :meth:`LowerBound.set_mask`) reflecting the *child's* unscheduled set;
* the batched kernel path — ``children(front_parent, remaining,
  frame_data, rem_sum_parent)`` once per expanded node, returning the
  bounds of *all* children as an int64 ndarray (order of ``remaining``);
  pass ``frame_data=None`` to let the bound derive its frame minima
  internally (same integer math);
* the subset-cached path — ``children_cached(key, front_parent,
  remaining)`` with ``key`` the bitmask of ``remaining``: like
  ``children`` but with every front-independent quantity (child geometry,
  Johnson skip-one tables, frame minima) cached per subset, which a DFS
  revisits constantly. This is the engine's hot path.

To keep the per-child cost O(m), frame-level minima are taken over the
*parent's* remaining set (they include the child's own job — a relaxation
that only lowers the bound, hence stays admissible).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from ..sim.errors import SimConfigError
from .flowshop import FlowshopInstance
from .johnson import johnson_order, lag_order
from . import kernels


def _parse_pairs(spec: str | list[tuple[int, int]], m: int,
                 who: str) -> list[tuple[int, int]]:
    """Resolve a machine-pair spec: ``adjacent | last | all`` or explicit."""
    if spec == "adjacent":
        pairs = [(u, u + 1) for u in range(m - 1)]
    elif spec == "last":
        pairs = [(u, m - 1) for u in range(m - 1)]
    elif spec == "all":
        pairs = [(u, v) for u in range(m) for v in range(u + 1, m)]
    elif isinstance(spec, list):
        for u, v in spec:
            if not (0 <= u < v < m):
                raise SimConfigError(f"bad machine pair ({u}, {v})")
        pairs = list(spec)
    else:
        raise SimConfigError(f"bad pairs spec {spec!r}")
    if not pairs:
        raise SimConfigError(f"{who} needs >= 1 machine pair "
                             "(single-machine instance?)")
    return pairs


class LowerBound(ABC):
    """A pluggable admissible lower bound; see module docstring."""

    name = "abstract"

    def __init__(self) -> None:
        self.instance: FlowshopInstance | None = None
        # The engine publishes its unscheduled mask here before child()
        # calls; a shared list avoids building per-child job sets in the
        # hot loop. Instance-level: two engines (hence two bound instances)
        # must never see each other's masks.
        self._mask: list[bool] | None = None
        # subset bitmask -> (cc0, cc1, rsT, frame tables); see children_cached
        self._cache: dict[int, tuple] = {}

    def attach(self, instance: FlowshopInstance) -> "LowerBound":
        """Bind to an instance and precompute; returns self for chaining."""
        self.instance = instance
        self._cache = {}
        self._precompute()
        return self

    def _precompute(self) -> None:
        """Optional instance-level precomputation hook."""

    def set_mask(self, unscheduled: list[bool]) -> None:
        """Adopt the engine's (live, shared) unscheduled mask."""
        self._mask = unscheduled

    @abstractmethod
    def frame(self, remaining: Sequence[int]) -> Any:
        """Per-expanded-node precomputation over its unscheduled set."""

    @abstractmethod
    def child(self, front: Sequence[int], job: int, frame_data: Any,
              rem_sum: Sequence[int]) -> int:
        """Bound for the child obtained by scheduling ``job``.

        Args:
            front: machine completion times *after* scheduling ``job``.
            job: the job just appended.
            frame_data: whatever :meth:`frame` returned for the parent.
            rem_sum: per-machine unscheduled work, ``job`` already excluded.
        """

    # -- batched kernel layer --------------------------------------------------

    def children(self, front: Sequence[int], remaining: Sequence[int],
                 frame_data: Any, rem_sum: Sequence[int],
                 fronts: np.ndarray | None = None,
                 rem_sums: np.ndarray | None = None) -> np.ndarray:
        """Bounds of *all* children of an expanded node, one vector call.

        Args:
            front: the parent's machine completion times.
            remaining: the parent's unscheduled jobs (child order).
            frame_data: :meth:`frame` result for ``remaining``, or None to
                let the bound derive its frame minima internally (batched
                callers skip the scalar ``frame`` entirely).
            rem_sum: the parent's per-machine unscheduled work (children's
                jobs still included).
            fronts / rem_sums: optional precomputed child fronts and child
                rem-sums (callers may share them across bounds); computed
                here when absent.

        Returns an int64 array, entry ``c`` bit-identical to the scalar
        ``child`` call for ``remaining[c]``.
        """
        jobs = np.asarray(remaining, dtype=np.intp)
        if fronts is None or rem_sums is None:
            p, cp, cpp, _ = kernels.instance_arrays(self.instance)
            if fronts is None:
                fronts = kernels.child_fronts(front, jobs, cp, cpp)
            if rem_sums is None:
                rem_sums = kernels.child_rem_sums(rem_sum, jobs, p)
        g = np.ascontiguousarray(fronts.T)
        rsT = np.ascontiguousarray(rem_sums.T)
        return self._frame_eval(self._frame_tables(jobs, rsT), g, rsT)

    def children_cached(self, key: int, front: Sequence[int],
                        remaining: Sequence[int]) -> tuple[np.ndarray,
                                                           np.ndarray]:
        """Bounds *and* fronts of all children of one frame, subset-cached.

        ``key`` is the bitmask of ``remaining``. Returns ``(lbs, fronts)``
        with ``lbs`` bit-identical to :meth:`children` and ``fronts`` the
        (k, m) child completion fronts (the engine reuses row ``c`` as the
        front of the child it enters). Front-independent per-subset data —
        child geometry and :meth:`_frame_tables` output — is cached keyed
        by ``key``; only the front-dependent :meth:`_frame_eval` runs per
        call. Caches self-clear at ``kernels.CACHE_CAP`` entries.
        """
        cache = self._cache
        entry = cache.get(key)
        if entry is None:
            if len(cache) >= kernels.CACHE_CAP:
                cache.clear()
            jobs, cc0, cc1, rsT, _ = kernels.subset_geometry(
                self.instance, key, remaining)
            entry = (cc0, cc1, rsT, self._frame_tables(jobs, rsT))
            cache[key] = entry
        cc0, cc1, rsT, tables = entry
        g = kernels.fronts_matrix(front, cc0, cc1)
        return self._frame_eval(tables, g, rsT), g.T

    def _frame_tables(self, jobs: np.ndarray, rsT: np.ndarray) -> Any:
        """Front-independent tables of one subset (cacheable).

        ``rsT[i, c]`` is machine ``i``'s unscheduled work for child ``c``.
        The fallback keeps the scalar :meth:`frame` result (a function of
        the subset only) plus the subset itself for the scalar loop.
        """
        return jobs, self.frame(jobs.tolist())

    def _frame_eval(self, tables: Any, g: np.ndarray,
                    rsT: np.ndarray) -> np.ndarray:
        """Per-child bounds from :meth:`_frame_tables` output and child
        fronts ``g`` (m, k, one column per child).

        Reference fallback: one scalar :meth:`child` call per job, with the
        engine's mask discipline (the child's own job flipped out around
        the call) so mask-walking bounds see the child's set.
        """
        jobs, frame_data = tables
        fronts = g.T
        rem_sums = rsT.T
        mask = self._mask
        out = np.empty(jobs.shape[0], dtype=np.int64)
        for c, j in enumerate(jobs):
            if mask is not None:
                mask[j] = False
            out[c] = self.child(fronts[c], j, frame_data, rem_sums[c])
            if mask is not None:
                mask[j] = True
        return out


class TrivialBound(LowerBound):
    """Last machine only: front[m-1] + remaining work on it. Weak; tests."""

    name = "trivial"

    def frame(self, remaining: Sequence[int]) -> None:
        return None

    def child(self, front, job, frame_data, rem_sum) -> int:
        return front[-1] + rem_sum[-1]

    def _frame_tables(self, jobs, rsT):
        return None

    def _frame_eval(self, tables, g, rsT):
        return g[-1] + rsT[-1]


class OneMachineBound(LowerBound):
    """The classical machine-based bound (LB1).

    The per-frame "smallest unscheduled tail after machine i" is found by
    walking a tail-sorted job order (precomputed at attach) until the first
    unscheduled job — O(#scheduled) amortised instead of O(#remaining),
    which matters because ``frame`` runs once per expanded node. The engine
    publishes its unscheduled mask through :meth:`set_mask`; when no mask
    is available (stand-alone use) the plain scan is used.
    """

    name = "one-machine"

    def __init__(self) -> None:
        super().__init__()
        self._tail_order: list[list[int]] = []

    def _precompute(self) -> None:
        tails = self.instance.tails
        n = self.instance.n_jobs
        self._tail_order = [sorted(range(n), key=lambda j: tails[i][j])
                            for i in range(self.instance.n_machines)]

    def frame(self, remaining: Sequence[int]) -> list[int]:
        # smallest tail after machine i over the unscheduled set (parent's)
        tails = self.instance.tails
        mask = self._mask
        if mask is None:
            return [min(tails[i][j] for j in remaining)
                    for i in range(self.instance.n_machines)]
        out = []
        for i in range(self.instance.n_machines):
            row = tails[i]
            for j in self._tail_order[i]:
                if mask[j]:
                    out.append(row[j])
                    break
        return out

    def child(self, front, job, frame_data, rem_sum) -> int:
        best = 0
        min_tails = frame_data
        for i in range(len(front)):
            v = front[i] + rem_sum[i] + min_tails[i]
            if v > best:
                best = v
        return best

    def _frame_tables(self, jobs, rsT):
        # min tails folded into the per-child work column: the eval is then
        # a single add + column-max
        _, _, _, tails = kernels.instance_arrays(self.instance)
        return rsT + tails[:, jobs].min(axis=1)[:, None]

    def _frame_eval(self, tables, g, rsT):
        t = g + tables
        return t.max(axis=0)


class _PairRelaxationBound(LowerBound):
    """Common machinery of the two-machine relaxation bounds.

    Subclasses provide the per-pair job order (plain Johnson or
    lag-transformed) and the scalar walk; the batched path is shared —
    a :class:`repro.bnb.kernels.PairKernel` holding the closed-form
    skip-one tables (``lags=None`` for the zero-lag variant).

    ``pairs``: ``"adjacent"`` (u, u+1), ``"last"`` (u, m-1), ``"all"``
    (every u < v), or an explicit list.

    The scalar reference skips a pair when the child has no unscheduled
    work on its first machine; with strictly positive processing times
    that only happens for an empty unscheduled set, where the pair value
    never exceeds the trivial floor — so the batched path needs no such
    mask to stay bit-identical.
    """

    def __init__(self, pairs: str | list[tuple[int, int]] = "adjacent") -> None:
        super().__init__()
        self.pairs_spec = pairs
        self.pairs: list[tuple[int, int]] = []
        self._orders: list[list[int]] = []
        self._kernel: kernels.PairKernel | None = None

    def _make_order(self, u: int, v: int) -> list[int]:
        raise NotImplementedError

    def _kernel_lags(self):
        """(npairs, n) lag matrix for the kernel, or None for zero lags."""
        return None

    def _precompute(self) -> None:
        m = self.instance.n_machines
        self.pairs = _parse_pairs(self.pairs_spec, m, type(self).__name__)
        self._orders = [self._make_order(u, v) for u, v in self.pairs]
        p, _, _, tails = kernels.instance_arrays(self.instance)
        self._kernel = kernels.PairKernel(
            p, tails, self.pairs, np.asarray(self._orders, dtype=np.intp),
            lags=self._kernel_lags())

    def frame(self, remaining: Sequence[int]) -> list[int]:
        tails = self.instance.tails
        return [min(tails[v][j] for j in remaining)
                for _, v in self.pairs]

    def _frame_tables(self, jobs, rsT):
        return self._kernel.tables(jobs)

    def _frame_eval(self, tables, g, rsT):
        out = self._kernel.eval(tables, g)
        floor = g[-1] + rsT[-1]              # never below the trivial bound
        np.maximum(out, floor, out=out)
        return out


class JohnsonPairBound(_PairRelaxationBound):
    """Two-machine (Johnson) relaxations over a set of machine pairs.

    Each pair's Johnson order over all jobs is precomputed at attach; at
    bound time the order is walked skipping scheduled jobs.
    """

    name = "johnson"

    def _make_order(self, u: int, v: int) -> list[int]:
        p = self.instance.p
        return johnson_order(p[u], p[v])

    def child(self, front, job, frame_data, rem_sum) -> int:
        p = self.instance.p
        mask = self._mask
        best = front[-1] + rem_sum[-1]  # never worse than the trivial bound
        for k, (u, v) in enumerate(self.pairs):
            if rem_sum[u] == 0:
                continue
            pu, pv = p[u], p[v]
            ta, tb = front[u], front[v]
            for j in self._orders[k]:
                # walk Johnson order, keeping only unscheduled jobs; the
                # scheduled ones have rem contribution 0 on every machine
                if mask[j]:
                    ta += pu[j]
                    if ta > tb:
                        tb = ta
                    tb += pv[j]
            val = tb + frame_data[k]
            if val > best:
                best = val
        return best


class JohnsonLagBound(_PairRelaxationBound):
    """Two-machine relaxations *with time lags* — the full LLRK bound.

    For a machine pair (u, v), the machines strictly between them are
    relaxed to pure delays: job j needs lag_j = sum of its processing on
    the in-between machines before it can enter v. Mitten's theorem makes
    Johnson's rule on the transformed times (a+lag, lag+b) exactly optimal
    for the relaxation, so walking the precomputed transformed order over
    the unscheduled jobs yields an admissible bound that dominates the
    zero-lag :class:`JohnsonPairBound` on the same pairs.
    """

    name = "johnson-lag"

    def __init__(self, pairs: str | list[tuple[int, int]] = "adjacent") -> None:
        super().__init__(pairs)
        self._lags: list[list[int]] = []

    def _make_order(self, u: int, v: int) -> list[int]:
        p = self.instance.p
        n = self.instance.n_jobs
        lag = [sum(p[k][j] for k in range(u + 1, v)) for j in range(n)]
        self._lags.append(lag)
        return lag_order(p[u], p[v], lag)

    def _kernel_lags(self):
        return np.asarray(self._lags, dtype=np.int64)

    def _precompute(self) -> None:
        self._lags = []
        super()._precompute()

    def child(self, front, job, frame_data, rem_sum) -> int:
        p = self.instance.p
        mask = self._mask
        best = front[-1] + rem_sum[-1]
        for k, (u, v) in enumerate(self.pairs):
            if rem_sum[u] == 0:
                continue
            pu, pv = p[u], p[v]
            lag = self._lags[k]
            ta, tb = front[u], front[v]
            for j in self._orders[k]:
                if mask[j]:
                    ta += pu[j]
                    ready = ta + lag[j]
                    if ready > tb:
                        tb = ready
                    tb += pv[j]
            val = tb + frame_data[k]
            if val > best:
                best = val
        return best


class MaxBound(LowerBound):
    """Pointwise maximum of several bounds (the full LLRK combination)."""

    name = "max"

    def __init__(self, components: list[LowerBound]) -> None:
        super().__init__()
        if not components:
            raise SimConfigError("MaxBound needs components")
        self.components = components
        self.name = "max(" + ",".join(c.name for c in components) + ")"

    def attach(self, instance: FlowshopInstance) -> "MaxBound":
        self.instance = instance
        self._cache = {}
        for c in self.components:
            c.attach(instance)
        return self

    def frame(self, remaining: Sequence[int]) -> list[Any]:
        return [c.frame(remaining) for c in self.components]

    def child(self, front, job, frame_data, rem_sum) -> int:
        return max(c.child(front, job, fd, rem_sum)
                   for c, fd in zip(self.components, frame_data))

    def _frame_tables(self, jobs, rsT):
        return [c._frame_tables(jobs, rsT) for c in self.components]

    def _frame_eval(self, tables, g, rsT):
        comps = self.components
        out = comps[0]._frame_eval(tables[0], g, rsT)
        for c, t in zip(comps[1:], tables[1:]):
            np.maximum(out, c._frame_eval(t, g, rsT), out=out)
        return out

    def set_mask(self, unscheduled: list[bool]) -> None:
        self._mask = unscheduled
        for c in self.components:
            c.set_mask(unscheduled)


def get_bound(name: str) -> LowerBound:
    """Bound factory.

    Names: ``trivial``, ``lb1``, ``johnson[:pairs]``,
    ``johnson-lag[:pairs]``, ``llrk`` (lb1 + zero-lag adjacent pairs),
    ``llrk-full`` (lb1 + lag-aware pairs). ``pairs`` is
    ``adjacent | last | all``.
    """
    if name == "trivial":
        return TrivialBound()
    if name in ("lb1", "one-machine"):
        return OneMachineBound()
    if name.startswith("johnson-lag"):
        pairs = name.split(":", 1)[1] if ":" in name else "adjacent"
        return JohnsonLagBound(pairs=pairs)
    if name.startswith("johnson"):
        pairs = name.split(":", 1)[1] if ":" in name else "adjacent"
        return JohnsonPairBound(pairs=pairs)
    if name == "llrk":
        return MaxBound([OneMachineBound(), JohnsonPairBound("adjacent")])
    if name == "llrk-full":
        return MaxBound([OneMachineBound(), JohnsonLagBound("adjacent")])
    raise SimConfigError(f"unknown bound {name!r}; known: trivial, lb1, "
                         "johnson[:pairs], johnson-lag[:pairs], llrk, "
                         "llrk-full (pairs: adjacent|last|all)")


__all__ = ["LowerBound", "TrivialBound", "OneMachineBound",
           "JohnsonPairBound", "JohnsonLagBound", "MaxBound", "get_bound"]
