"""Parallel Branch-and-Bound substrate for the permutation flow shop.

Interval-encoded B&B (Mezmaz et al., IPDPS 2007) with LLRK-style lower
bounds, Taillard instances, and splittable interval work descriptors.
"""

from .bounds import (JohnsonPairBound, LowerBound, MaxBound, OneMachineBound,
                     TrivialBound, get_bound)
from .engine import BnBEngine, ExploreResult, solve_bruteforce
from .flowshop import FlowshopInstance, make_instance
from .interval import (digits_to_position, factorials,
                       permutation_to_position, position_to_digits,
                       position_to_permutation, prefix_block, tree_leaves)
from .johnson import johnson_order, two_machine_makespan, two_machine_optimal
from .state import INF, BoundState
from .taillard import (TA_20x20_SEEDS, processing_times, scaled_instance,
                       taillard_instance, unif)
from .work import BnBWork

__all__ = [
    "FlowshopInstance", "make_instance", "BnBEngine", "ExploreResult",
    "solve_bruteforce", "BnBWork", "BoundState", "INF", "LowerBound",
    "TrivialBound", "OneMachineBound", "JohnsonPairBound", "MaxBound",
    "get_bound", "johnson_order", "two_machine_makespan",
    "two_machine_optimal", "factorials", "tree_leaves", "position_to_digits",
    "digits_to_position", "position_to_permutation",
    "permutation_to_position", "prefix_block", "unif", "processing_times",
    "taillard_instance", "scaled_instance", "TA_20x20_SEEDS",
]
