"""The NEH constructive heuristic (Nawaz, Enscore & Ham, 1983).

The standard way to obtain a strong initial upper bound for flow-shop B&B:
order jobs by decreasing total processing time, then insert each job at the
makespan-minimising position of the growing partial sequence. O(n³·m) here
(n <= 20 for every instance in this repository, so no acceleration needed).

The experiment harness warm-starts every worker — and the sequential
reference — with the NEH bound: on the paper's day-long instances the
from-scratch bound converges within the first fraction of a percent of the
run, so warm-starting reproduces that regime on scaled instances instead of
letting bound-ramp-up noise drown the load-balancing signal the paper
measures (see DESIGN.md §2 and EXPERIMENTS.md). Cold runs remain available
everywhere (``warm_start=False``).
"""

from __future__ import annotations

from .flowshop import FlowshopInstance


def neh_order(instance: FlowshopInstance) -> list[int]:
    """Jobs by decreasing total processing time (NEH's priority rule)."""
    totals = [sum(instance.p[i][j] for i in range(instance.n_machines))
              for j in range(instance.n_jobs)]
    return sorted(range(instance.n_jobs), key=lambda j: (-totals[j], j))


def neh(instance: FlowshopInstance) -> tuple[int, list[int]]:
    """Run NEH; returns (makespan, permutation)."""
    order = neh_order(instance)
    seq: list[int] = [order[0]]
    for job in order[1:]:
        best_c, best_seq = None, None
        for pos in range(len(seq) + 1):
            cand = seq[:pos] + [job] + seq[pos:]
            c = _partial_makespan(instance, cand)
            if best_c is None or c < best_c:
                best_c, best_seq = c, cand
        seq = best_seq
    return instance.makespan(seq) if len(seq) == instance.n_jobs else best_c, seq


def _partial_makespan(instance: FlowshopInstance, seq: list[int]) -> int:
    front = [0] * instance.n_machines
    for j in seq:
        front = instance.advance(front, j)
    return front[-1]


__all__ = ["neh", "neh_order"]
