"""Johnson's rule: exact two-machine flow-shop sequencing (Johnson 1954).

Used by the LLRK lower bound (:mod:`repro.bnb.bounds`): each pair of
machines, with the machines in between folded into job lags, is relaxed to a
two-machine flow shop whose optimal makespan Johnson's rule gives exactly.
"""

from __future__ import annotations

from typing import Sequence


def johnson_order(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Optimal job order for a 2-machine flow shop with times (a_j, b_j).

    Johnson's rule: jobs with a_j <= b_j first, by increasing a_j; then the
    rest by decreasing b_j. Ties broken by job index (deterministic).
    """
    if len(a) != len(b):
        raise ValueError("a and b must have equal length")
    first = sorted((j for j in range(len(a)) if a[j] <= b[j]),
                   key=lambda j: (a[j], j))
    last = sorted((j for j in range(len(a)) if a[j] > b[j]),
                  key=lambda j: (-b[j], j))
    return first + last


def two_machine_makespan(a: Sequence[int], b: Sequence[int],
                         order: Sequence[int],
                         start_a: int = 0, start_b: int = 0) -> int:
    """Makespan of the given order on two machines, with machine-ready times.

    ``start_a``/``start_b`` let the caller seed the machines with the
    completion times of an already-fixed prefix (how the B&B bound uses it).
    """
    ta, tb = start_a, start_b
    for j in order:
        ta += a[j]
        tb = max(tb, ta) + b[j]
    return tb


def two_machine_optimal(a: Sequence[int], b: Sequence[int],
                        start_a: int = 0, start_b: int = 0) -> int:
    """Optimal 2-machine makespan (Johnson order + evaluation)."""
    return two_machine_makespan(a, b, johnson_order(a, b), start_a, start_b)


def lag_order(a: Sequence[int], b: Sequence[int],
              lag: Sequence[int]) -> list[int]:
    """Optimal order for 2 machines with job time lags.

    Job j occupies machine 1 for a_j, must then wait at least lag_j, and
    occupies machine 2 for b_j. With the in-between capacity relaxed (the
    LLRK machine-pair relaxation), Johnson's rule on the transformed times
    (a_j + lag_j, lag_j + b_j) is exactly optimal (Lageweg, Lenstra &
    Rinnooy Kan 1978).
    """
    if not (len(a) == len(b) == len(lag)):
        raise ValueError("a, b and lag must have equal length")
    ta = [a[j] + lag[j] for j in range(len(a))]
    tb = [lag[j] + b[j] for j in range(len(b))]
    return johnson_order(ta, tb)


def lag_makespan(a: Sequence[int], b: Sequence[int], lag: Sequence[int],
                 order: Sequence[int],
                 start_a: int = 0, start_b: int = 0) -> int:
    """Makespan of a given order on 2 lagged machines (machines FIFO).

    Machine-2 start of job j >= its machine-1 completion + lag_j, and
    machine 2 processes jobs in the given order.
    """
    ta, tb = start_a, start_b
    for j in order:
        ta += a[j]
        ready = ta + lag[j]
        if ready > tb:
            tb = ready
        tb += b[j]
    return tb


def lag_optimal(a: Sequence[int], b: Sequence[int], lag: Sequence[int],
                start_a: int = 0, start_b: int = 0) -> int:
    """Optimal lagged 2-machine makespan (permutation schedules)."""
    return lag_makespan(a, b, lag, lag_order(a, b, lag), start_a, start_b)


__all__ = ["johnson_order", "two_machine_makespan", "two_machine_optimal",
           "lag_order", "lag_makespan", "lag_optimal"]
