"""The interval-based depth-first B&B explorer.

One engine instance is shared by all simulated workers of a run (it is
stateless between calls apart from the immutable instance/bound): a worker
hands it its :class:`~repro.bnb.work.BnBWork` and its
:class:`~repro.bnb.state.BoundState` and a node budget; the engine explores
depth-first from the head interval's left edge, advancing the interval's
``a`` as it goes.

Because a position fully encodes the DFS state (everything left of ``a`` is
done, everything right is pending), pausing, splitting and resuming work
costs one O(n²) path rebuild per resume — the property that makes the
Mezmaz-style encoding so cheap to balance.

Child enumeration runs in one of two modes:

* ``batch=True`` (default) — when a frame's first child is enumerated, the
  bounds of *all* its children are computed in one vectorised
  ``LowerBound.children_cached`` call (:mod:`repro.bnb.kernels`): child
  fronts come back as a matrix whose rows seed the children that are
  entered, and every front-independent quantity is cached per unscheduled
  subset (tracked as a bitmask), which the DFS revisits constantly;
* ``batch=False`` — the scalar reference path: one ``LowerBound.child``
  call per enumerated child, exactly the pre-kernel implementation.

Both modes visit the same nodes, count the same nodes and find the same
optima — the kernels are integer-exact (golden-tested in
``tests/test_bnb_kernels.py``).

Node accounting: one unit per lower-bound evaluation or complete
permutation evaluated. This is the quantity the simulation prices with
``unit_cost`` and the quantity reported as "explored nodes". A batched
frame may *compute* bounds for children the budget never reaches; only
enumerated children are counted, keeping counts independent of batching
and of the quantum size.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..sim.errors import SimConfigError
from .bounds import LowerBound, get_bound
from .flowshop import FlowshopInstance
from .interval import factorials, position_to_digits
from .state import INF, BoundState
from .work import BnBWork


@dataclass(slots=True)
class ExploreResult:
    """Outcome of one engine call."""

    nodes: int          # bound evaluations + leaves visited
    improved: bool      # whether shared.value improved during the call
    exhausted: bool     # True when the given work is now empty


class _Frame:
    """One DFS stack level: the node whose children are being enumerated."""

    __slots__ = ("entry_job", "front", "remaining", "rank", "frame_data",
                 "key", "lbs", "fronts")

    def __init__(self, entry_job, front, remaining, rank, frame_data, key=0):
        self.entry_job = entry_job    # job scheduled to create this node
        self.front = front            # machine completion times of the prefix
        self.remaining = remaining    # unscheduled jobs, ascending
        self.rank = rank              # next child index to enumerate
        self.frame_data = frame_data  # bound's per-frame data (scalar mode)
        self.key = key                # bitmask of remaining (batch mode)
        self.lbs = None               # batched child bounds (lazy, batch mode)
        self.fronts = None            # batched child fronts (lazy, batch mode)


class BnBEngine:
    """Explorer bound to one instance + lower bound (see module docstring)."""

    def __init__(self, instance: FlowshopInstance,
                 bound: LowerBound | str = "lb1",
                 batch: bool = True) -> None:
        self.instance = instance
        self.bound = get_bound(bound) if isinstance(bound, str) else bound
        self.bound.attach(instance)
        self.batch = batch
        self.n = instance.n_jobs
        self.m = instance.n_machines
        self.fact = factorials(self.n)
        self._p = [list(row) for row in instance.p]

    # -- public API ----------------------------------------------------------

    def explore(self, work: BnBWork, shared: BoundState,
                max_nodes: int) -> ExploreResult:
        """Explore up to ``max_nodes`` nodes of ``work``; mutates both."""
        if work.n_jobs != self.n:
            raise SimConfigError("work does not match this engine's instance")
        total = 0
        improved = False
        while total < max_nodes:
            head = work.head()
            if head is None:
                break
            nodes, pos, imp = self._explore_interval(
                head[0], head[1], shared, max_nodes - total)
            total += nodes
            improved = improved or imp
            if pos >= head[1]:
                work.pop_head()
            else:
                head[0] = pos
            if nodes == 0 and pos < head[1]:  # budget exhausted mid-rebuild
                break
        return ExploreResult(nodes=total, improved=improved,
                             exhausted=work.head() is None)

    def solve(self, shared: BoundState | None = None,
              quantum: int = 100_000,
              max_nodes: int | None = None) -> tuple[int, tuple[int, ...], int]:
        """Sequential B&B over the whole tree.

        Returns (optimal makespan, an optimal permutation, explored nodes).
        ``max_nodes`` guards against accidentally running an instance far
        larger than intended.
        """
        shared = shared if shared is not None else BoundState()
        work = BnBWork.full_tree(self.n)
        nodes = 0
        while not work.is_empty():
            res = self.explore(work, shared, quantum)
            nodes += res.nodes
            if max_nodes is not None and nodes > max_nodes:
                raise SimConfigError(
                    f"B&B exceeded max_nodes={max_nodes:,} on "
                    f"{self.instance.name}")
        if shared.perm is None:
            raise SimConfigError("search ended with no incumbent (bug)")
        return shared.value, shared.perm, nodes

    def decompose_block(self, a: int, shared: BoundState,
                        width: int) -> tuple[list[tuple[int, int]], int, bool]:
        """Expand the block [a, a+width) one level: bound each child.

        Used by hierarchical master schemes (AHMW): the children of the
        block's prefix node are bounded; surviving children come back as
        their own (width/(n-d)) blocks, pruned ones are dropped, and leaf
        children are evaluated on the spot. Returns (surviving child
        blocks, bound/leaf evaluations performed, ub improved).

        ``a`` must be aligned: width == (n-d)! for the prefix depth d and
        ``a % width == 0`` within its parent block.
        """
        n, m = self.n, self.m
        d = None
        for k in range(n + 1):
            if self.fact[k] == width:
                d = n - k
                break
        if d is None or not (0 <= d < n):
            raise SimConfigError(f"width {width} is not a valid block size")
        digits = position_to_digits(a, n)
        if any(digits[q] for q in range(d, n)):
            raise SimConfigError(f"block start {a} is not aligned to {width}")
        remaining = list(range(n))
        front = [0] * m
        prefix: list[int] = []
        for q in range(d):
            job = remaining.pop(digits[q])
            prefix.append(job)
            front = self.instance.advance(front, job)
        ub = shared.value
        improved = False
        nodes = 0
        out: list[tuple[int, int]] = []
        child_width = self.fact[n - d - 1]
        bound = self.bound
        mask = [j in remaining for j in range(n)]
        bound.set_mask(mask)
        if self.batch and len(remaining) > 1:
            # one vectorised call bounds every child; no leaves at this depth
            key = 0
            for j in remaining:
                key |= 1 << j
            lbs, _ = bound.children_cached(key, front, remaining)
            lbs = lbs.tolist()
            for rank in range(len(remaining)):
                nodes += 1
                if lbs[rank] < ub:
                    start = a + rank * child_width
                    out.append((start, start + child_width))
            return out, nodes, improved
        fd = bound.frame(remaining)
        rem_sum = [sum(self._p[i][j] for j in remaining) for i in range(m)]
        for rank, j in enumerate(remaining):
            nf = self.instance.advance(front, j)
            nodes += 1
            start = a + rank * child_width
            if len(remaining) == 1:
                if nf[-1] < ub:
                    ub = nf[-1]
                    shared.update(ub, tuple(prefix) + (j,))
                    improved = True
                continue
            mask[j] = False
            rs = [rem_sum[i] - self._p[i][j] for i in range(m)]
            lb = bound.child(nf, j, fd, rs)
            mask[j] = True
            if lb < ub:
                out.append((start, start + child_width))
        return out, nodes, improved

    # -- the DFS ------------------------------------------------------------------

    def _explore_interval(self, a: int, b: int, shared: BoundState,
                          budget: int) -> tuple[int, int, bool]:
        """DFS over leaves [a, b); returns (nodes, new position, improved)."""
        n, m = self.n, self.m
        p = self._p
        fact = self.fact
        bound = self.bound
        batch = self.batch
        unscheduled = [True] * n
        rem_sum = [sum(row) for row in p]
        bound.set_mask(unscheduled)

        # -- rebuild the DFS stack from the factoradic digits of `a` --
        #
        # Let D be the deepest level whose digit is non-zero. For every level
        # d < D the digit-child is *partially explored* (the leaf `a` lies
        # strictly inside its block): push its frame with rank digit+1 — the
        # deeper frames embody the in-progress child. At level D itself (and
        # below) `a` coincides with block starts: those children are entirely
        # fresh and must be enumerated (and bounded!) by the normal DFS, so
        # the rebuild stops there with rank = digit. Path nodes are rebuilt
        # without bound evaluations and without counting: they were counted
        # when first entered, wherever that happened. (In batch mode even
        # the frame() precomputation is deferred to first enumeration.)
        digits = position_to_digits(a, n)
        deepest = -1
        for d in range(n):
            if digits[d]:
                deepest = d
        remaining = list(range(n))
        front = [0] * m
        key = (1 << n) - 1
        frames: list[_Frame] = []
        path_jobs: list[int] = []
        for d in range(max(0, deepest) + 1):
            fresh = d == deepest or deepest < 0
            fr = _Frame(
                entry_job=path_jobs[-1] if path_jobs else -1,
                front=front,
                remaining=remaining,
                rank=digits[d] if fresh else digits[d] + 1,
                frame_data=None if batch else bound.frame(remaining),
                key=key,
            )
            frames.append(fr)
            if fresh:
                break
            job = remaining[digits[d]]
            path_jobs.append(job)
            unscheduled[job] = False
            key &= ~(1 << job)
            if not batch:
                for i in range(m):
                    rem_sum[i] -= p[i][job]
            front = self.instance.advance(front, job)
            remaining = remaining[:digits[d]] + remaining[digits[d] + 1:]

        pos = a
        nodes = 0
        improved = False
        ub = shared.value
        # Pause only right after the position advanced (leaf or prune): at
        # such moments every live frame has enumerated at least one child, so
        # a later rebuild never re-bounds an already-counted node and the
        # explored-node count is independent of the quantum size.
        pause_ok = True

        while frames and pos < b:
            if pause_ok and nodes >= budget:
                break
            fr = frames[-1]
            rem = fr.remaining
            k = len(rem)
            if fr.rank >= k:
                # node exhausted: restore the job that created it
                frames.pop()
                if path_jobs:
                    j = path_jobs.pop()
                    unscheduled[j] = True
                    if not batch:
                        for i in range(m):
                            rem_sum[i] += p[i][j]
                continue
            j = rem[fr.rank]
            fr.rank += 1
            nodes += 1
            if k == 1:
                # complete permutation
                cfront = fr.front
                prev = 0
                for i in range(m):
                    fi = cfront[i]
                    if prev < fi:
                        prev = fi
                    prev += p[i][j]
                pos += 1
                pause_ok = True
                if prev < ub:
                    ub = int(prev)
                    shared.update(ub, tuple(path_jobs) + (j,))
                    improved = True
                continue
            if batch:
                if fr.lbs is None:
                    # first enumeration of this frame: bound all children in
                    # one subset-cached kernel call
                    lbs, fronts = bound.children_cached(fr.key, fr.front, rem)
                    fr.lbs = lbs.tolist()
                    fr.fronts = fronts
                idx = fr.rank - 1
                if fr.lbs[idx] < ub:
                    unscheduled[j] = False
                    path_jobs.append(j)
                    frames.append(_Frame(entry_job=j, front=fr.fronts[idx],
                                         remaining=rem[:idx] + rem[fr.rank:],
                                         rank=0, frame_data=None,
                                         key=fr.key & ~(1 << j)))
                    pause_ok = False
                else:
                    # prune: skip the child's whole leaf block
                    pos += fact[k - 1]
                    pause_ok = True
                continue
            # scalar reference path: child front + one bound call
            cfront = fr.front
            nf = [0] * m
            prev = 0
            for i in range(m):
                fi = cfront[i]
                if prev < fi:
                    prev = fi
                prev += p[i][j]
                nf[i] = prev
            unscheduled[j] = False
            for i in range(m):
                rem_sum[i] -= p[i][j]
            lb = bound.child(nf, j, fr.frame_data, rem_sum)
            if lb < ub:
                child_rem = rem[:fr.rank - 1] + rem[fr.rank:]
                path_jobs.append(j)
                frames.append(_Frame(entry_job=j, front=nf,
                                     remaining=child_rem, rank=0,
                                     frame_data=bound.frame(child_rem)))
                pause_ok = False
            else:
                # prune: skip the child's whole leaf block
                pos += fact[k - 1]
                pause_ok = True
                unscheduled[j] = True
                for i in range(m):
                    rem_sum[i] += p[i][j]
        if not frames:
            pos = b  # finished everything we were given
        return nodes, pos, improved


def solve_bruteforce(instance: FlowshopInstance) -> tuple[int, tuple[int, ...]]:
    """Exhaustive oracle for tiny instances (tests)."""
    from itertools import permutations
    if instance.n_jobs > 9:
        raise SimConfigError("brute force capped at 9 jobs")
    best, best_perm = INF, None
    for perm in permutations(range(instance.n_jobs)):
        c = instance.makespan(perm)
        if c < best:
            best, best_perm = c, perm
    return best, best_perm


__all__ = ["BnBEngine", "ExploreResult", "solve_bruteforce"]
