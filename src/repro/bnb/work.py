"""B&B work as a set of disjoint leaf-position intervals (Mezmaz et al.).

"we simply consider that the amount of work, which a node is processing,
corresponds to the length of the interval" (paper §III-B) — with the
caveat, also from the paper, that length is *not* effort: B&B may prune a
huge interval instantly. The protocols balance length; execution time
emerges from what the search actually does.

Processing consumes the *head* interval left to right (depth-first order);
stealing takes positions from the *tail* (the region the owner would reach
last), so a transfer never splits the owner's in-progress region.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..sim.errors import SimConfigError
from ..work.base import WorkItem
from .interval import factorials, tree_leaves

#: Wire bytes per interval: two 64-bit-ish positions. (20! needs 62 bits.)
INTERVAL_BYTES = 16


def _aligned_cut(a: int, b: int, give: int, n_jobs: int) -> int:
    """Cut point for taking ~``give`` tail positions of [a, b).

    Snapped *up* to the coarsest subtree-block boundary not exceeding the
    requested share. An aligned cut means the two sides partition the B&B
    node set cleanly (no straddling DFS path whose children both sides must
    re-bound), so work transfers stay free of duplicated exploration — at
    paper scale the straddling cost is noise, at simulation scale it would
    systematically punish whichever protocol balances most.
    """
    raw = b - give
    width = 1
    for f in factorials(n_jobs):
        if f <= give:
            width = f
        else:
            break
    cut = ((raw + width - 1) // width) * width
    if cut <= a or cut >= b:
        return raw  # degenerate geometry: fall back to the exact cut
    return cut


class BnBWork(WorkItem):
    """Splittable set of disjoint, ordered intervals of [0, n_jobs!)."""

    __slots__ = ("n_jobs", "intervals")

    def __init__(self, n_jobs: int,
                 intervals: Iterable[tuple[int, int]] = ()) -> None:
        if n_jobs < 1:
            raise SimConfigError("n_jobs must be >= 1")
        self.n_jobs = n_jobs
        self.intervals: deque[list[int]] = deque()
        limit = tree_leaves(n_jobs)
        last_end = -1
        for a, b in intervals:
            if not (0 <= a < b <= limit):
                raise SimConfigError(f"bad interval [{a}, {b}) for "
                                     f"n_jobs={n_jobs}")
            if a < last_end:
                raise SimConfigError("intervals must be ordered and disjoint")
            last_end = b
            self.intervals.append([a, b])

    # -- construction -----------------------------------------------------------

    @classmethod
    def full_tree(cls, n_jobs: int) -> "BnBWork":
        """The whole search: [0, n_jobs!)."""
        return cls(n_jobs, [(0, tree_leaves(n_jobs))])

    @classmethod
    def empty(cls, n_jobs: int) -> "BnBWork":
        """An empty work container for the same tree."""
        return cls(n_jobs)

    # -- WorkItem interface --------------------------------------------------------

    def amount(self) -> int:
        return sum(b - a for a, b in self.intervals)

    def split(self, fraction: float) -> Optional["BnBWork"]:
        total = self.amount()
        give = int(total * fraction)
        give = min(give, total - 1)  # keep at least one position
        if give <= 0:
            return None
        taken: list[tuple[int, int]] = []
        while give > 0 and self.intervals:
            a, b = self.intervals[-1]
            length = b - a
            if length <= give:
                # whole intervals create no new cut boundary
                taken.append((a, b))
                self.intervals.pop()
                give -= length
            else:
                cut = _aligned_cut(a, b, give, self.n_jobs)
                if cut < b:
                    taken.append((cut, b))
                    self.intervals[-1][1] = cut
                give = 0
        if not taken:
            return None
        taken.reverse()  # restore ascending order
        piece = BnBWork(self.n_jobs)
        piece.intervals.extend([list(t) for t in taken])
        return piece

    def merge(self, other: WorkItem) -> None:
        if not isinstance(other, BnBWork) or other.n_jobs != self.n_jobs:
            raise SimConfigError("cannot merge incompatible B&B work")
        self.intervals.extend(other.intervals)
        other.intervals = deque()

    def encoded_bytes(self) -> int:
        return INTERVAL_BYTES * len(self.intervals)

    # -- processing hooks (used by the engine) ----------------------------------------

    def head(self) -> Optional[list[int]]:
        """The interval currently being explored (mutable [a, b])."""
        return self.intervals[0] if self.intervals else None

    def pop_head(self) -> None:
        """Drop the (exhausted) head interval."""
        self.intervals.popleft()

    def as_tuples(self) -> list[tuple[int, int]]:
        """Immutable snapshot of the interval set (tests/reports)."""
        return [(a, b) for a, b in self.intervals]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BnBWork(n_jobs={self.n_jobs}, "
                f"{len(self.intervals)} intervals, amount={self.amount()})")


__all__ = ["BnBWork", "INTERVAL_BYTES"]
