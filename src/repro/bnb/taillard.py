"""Taillard's flow-shop benchmark generator (Taillard, EJOR 1993).

Implements Taillard's portable linear congruential generator and the
machine-major instance construction, with the published *time seeds* of the
ta021–ta030 family (20 jobs x 20 machines) used by the paper.

The true 20x20 instances take ~24 CPU-hours each to solve exactly, so the
experiment harness uses **scaled instances** obtained by truncating the
20x20 processing-time matrix to its first ``n_jobs`` jobs (DESIGN.md §2):
the matrices are still Taillard-generated numbers, the B&B trees keep the
heavy-pruning irregularity of the problem class, and the full instances
remain constructible through :func:`taillard_instance` for anyone with the
CPU budget.
"""

from __future__ import annotations

from ..sim.errors import SimConfigError
from .flowshop import FlowshopInstance

#: Taillard's LCG constants (portable 32-bit Lehmer generator).
_M = 2147483647
_A = 16807
_B = 127773
_C = 2836

#: Published time seeds of ta021..ta030 (the 20x20 family, Taillard 1993).
TA_20x20_SEEDS: tuple[int, ...] = (
    479340445, 268827376, 1945283818, 1791839227, 997355831,
    563331215, 1355735245, 1570848242, 903855283, 1595348844,
)


def unif(seed: int, low: int, high: int) -> tuple[int, int]:
    """One draw of Taillard's generator; returns (value, next_seed)."""
    if not (0 < seed < _M):
        raise SimConfigError(f"Taillard seed must be in (0, {_M}), got {seed}")
    k = seed // _B
    seed = _A * (seed % _B) - _C * k
    if seed < 0:
        seed += _M
    value_0_1 = seed / _M
    return low + int(value_0_1 * (high - low + 1)), seed


def processing_times(time_seed: int, n_jobs: int,
                     n_machines: int) -> tuple[tuple[int, ...], ...]:
    """The d[machine][job] matrix, drawn machine-major in U(1, 99)."""
    seed = time_seed
    rows: list[tuple[int, ...]] = []
    for _i in range(n_machines):
        row = []
        for _j in range(n_jobs):
            v, seed = unif(seed, 1, 99)
            row.append(v)
        rows.append(tuple(row))
    return tuple(rows)


def taillard_instance(index: int, n_jobs: int = 20,
                      n_machines: int = 20) -> FlowshopInstance:
    """The full Taillard instance Ta(20+index), index in 1..10 → Ta21..Ta30."""
    if not (1 <= index <= 10):
        raise SimConfigError("index selects Ta21..Ta30: needs 1 <= index <= 10")
    p = processing_times(TA_20x20_SEEDS[index - 1], n_jobs, n_machines)
    return FlowshopInstance(name=f"Ta{20 + index}", p=p)


def scaled_instance(index: int, n_jobs: int = 10,
                    n_machines: int = 20) -> FlowshopInstance:
    """Ta(20+index) truncated to its first ``n_jobs`` x ``n_machines`` block.

    The name carries an ``s`` suffix and the dimensions, e.g. ``Ta21s(10x20)``.
    """
    if not (1 <= index <= 10):
        raise SimConfigError("index selects Ta21s..Ta30s: needs 1 <= index <= 10")
    if not (2 <= n_jobs <= 20 and 1 <= n_machines <= 20):
        raise SimConfigError("scaled instances must fit inside the 20x20 matrix")
    full = processing_times(TA_20x20_SEEDS[index - 1], 20, 20)
    p = tuple(tuple(row[:n_jobs]) for row in full[:n_machines])
    return FlowshopInstance(name=f"Ta{20 + index}s({n_jobs}x{n_machines})", p=p)


__all__ = ["unif", "processing_times", "taillard_instance", "scaled_instance",
           "TA_20x20_SEEDS"]
