"""Vectorised child-batch kernels for the B&B bound layer.

The scalar bound contract (:mod:`repro.bnb.bounds`) evaluates one child per
call; at millions of bound evaluations per experiment the pure-Python inner
loops dominate wall-clock. This module holds the NumPy kernels that bound
*all* children of an expanded node in one shot:

* :func:`instance_arrays` — int64 views of an instance (processing times,
  their machine-prefix sums, tails), built once and cached on the instance.
* :func:`subset_geometry` / :func:`fronts_matrix` — per-unscheduled-subset
  child geometry (gathered prefix sums, per-child remaining work) and the
  child completion fronts derived from it, via the max-plus prefix form of
  the flow-shop recurrence.
* :func:`child_fronts` / :func:`child_rem_sums` — the same quantities in
  the explicit (non-cached) layout of the ``LowerBound.children`` API.
* :class:`PairKernel` — batched two-machine (optionally lagged) Johnson
  relaxations in closed form: one set of skip-one tables bounds every
  (machine pair, child) cell without walking the Johnson order per child.

Everything front-independent is a pure function of the unscheduled *set*,
so it is cached keyed by the subset bitmask: a depth-first search revisits
the same subsets thousands of times (every permutation of a prefix leads to
the same remaining set), which amortises the table construction to nearly
nothing on instances of interval-B&B scale.

The closed form: the two-machine (lagged) Johnson walk is max-plus linear.
For a fixed step sequence with times ``(a_t, lag_t, b_t)`` seeded at
``(ta0, tb0)``, the final second-machine time is::

    tb_fin = max(tb0 + SBtot, ta0 + SBtot + max_t X_t)
    X_t    = SA_{t+1} + lag_t + b_t - SB_{t+1}

with ``SA``/``SB`` the prefix sums of ``a``/``b``. Removing step ``t``
(child ``c`` skips its own job) shifts the suffix, giving::

    tb_fin(skip t) = max(tb0 + B_t, ta0 + A_t)
    B_t = SBtot - b_t
    A_t = SBtot + max(NMAX_t - b_t, RMAX_{t+1} - a_t)

where ``NMAX_t = max_{s<t} X_s`` and ``RMAX_t = max_{s>=t} X_s`` — one
forward and one reverse ``maximum.accumulate`` replace the per-step walk.

All kernels are integer-exact: they perform the same int arithmetic as the
scalar reference implementations, so batched and scalar bounds are
bit-identical (enforced by ``tests/test_bnb_kernels.py``).
"""

from __future__ import annotations

import numpy as np

_CACHE_ATTR = "_kernel_arrays"
_GEOM_ATTR = "_kernel_geometry"

#: "no prefix/suffix yet" sentinel in the skip-one tables: far below any
#: reachable completion time, far above int64 underflow when summed.
NEG = -(1 << 40)

#: subset caches self-clear at this many entries (bounds memory on large
#: instances; a 10-job tree has at most 2**10 subsets and never trips it).
CACHE_CAP = 1 << 14


def instance_arrays(instance):
    """``(p, cp, cpp, tails)`` int64 arrays for ``instance``, cached.

    ``p`` is the (m, n) processing-time matrix; ``cp[i, j]`` the prefix sum
    of job ``j``'s times over machines ``0..i``; ``cpp`` the same shifted by
    one machine (``cpp[0] == 0``); ``tails`` the instance's tail matrix.

    The cache rides in the instance's ``__dict__`` (FlowshopInstance is a
    frozen dataclass without slots), so every bound and engine attached to
    the same instance shares one set of arrays.
    """
    cache = instance.__dict__.get(_CACHE_ATTR)
    if cache is None:
        p = np.asarray(instance.p, dtype=np.int64)
        cp = np.cumsum(p, axis=0)
        cpp = np.empty_like(cp)
        cpp[0] = 0
        cpp[1:] = cp[:-1]
        tails = np.asarray(instance.tails, dtype=np.int64)
        cache = (p, cp, cpp, tails)
        instance.__dict__[_CACHE_ATTR] = cache
    return cache


def subset_geometry(instance, key, remaining):
    """Front-independent child geometry of one unscheduled subset, cached.

    Returns ``(jobs, cc0, cc1, rsT, rsvec)``: the subset as an ascending
    index array, ``cp``/``cpp`` gathered on it (columns per child),
    ``rsT[i, c]`` the machine-``i`` unscheduled work of child ``c`` (the
    subset minus ``jobs[c]``), and ``rsvec`` the subset's own per-machine
    work. ``key`` is the subset bitmask; the cache is shared by everything
    attached to the instance.
    """
    geom = instance.__dict__.get(_GEOM_ATTR)
    if geom is None:
        geom = instance.__dict__[_GEOM_ATTR] = {}
    entry = geom.get(key)
    if entry is None:
        if len(geom) >= CACHE_CAP:
            geom.clear()
        p, cp, cpp, _ = instance_arrays(instance)
        jobs = np.asarray(remaining, dtype=np.intp)
        ps = p[:, jobs]
        rsvec = ps.sum(axis=1)
        entry = (jobs, cp[:, jobs], cpp[:, jobs], rsvec[:, None] - ps, rsvec)
        geom[key] = entry
    return entry


def fronts_matrix(front, cc0, cc1):
    """(m, k) child completion fronts, one column per child.

    Column ``c`` equals ``instance.advance(front, jobs[c])`` for the subset
    behind ``cc0``/``cc1`` (:func:`subset_geometry`). Uses the closed form
    ``nf[i] = cp[i, j] + max_{l<=i}(front[l] - cpp[l, j])`` of the
    recurrence ``nf[i] = max(nf[i-1], front[i]) + p[i, j]`` (valid because
    fronts are non-negative), i.e. one ``maximum.accumulate`` instead of a
    per-child machine loop.
    """
    g = np.asarray(front, dtype=np.int64)[:, None] - cc1
    np.maximum.accumulate(g, axis=0, out=g)
    g += cc0
    return g


def child_fronts(front, jobs, cp, cpp):
    """(k, m) completion fronts after appending each of ``jobs`` to ``front``."""
    return fronts_matrix(front, cp[:, jobs], cpp[:, jobs]).T


def child_rem_sums(rem_sum, jobs, p):
    """(k, m) per-machine unscheduled work after removing each of ``jobs``.

    ``rem_sum`` is the parent's per-machine unscheduled work (children's
    jobs still included, as the engine maintains it).
    """
    return np.asarray(rem_sum, dtype=np.int64)[None, :] - p[:, jobs].T


class PairKernel:
    """Batched closed-form two-machine relaxations over machine pairs.

    Owns the attach-time constants of a pair bound — per-pair step times in
    Johnson-order layout, tails after the second machine, seed machine
    indices — plus the scratch used to filter orders to a subset. One
    instance serves both Johnson variants: pass ``lags`` for the Mitten
    (lagged) transform, leave it None for the zero-lag walk.

    :meth:`tables` builds the skip-one tables ``(A2, B2)`` of a subset
    (child ``c`` of pair ``q`` is bounded by
    ``max(g[u_q, c] + A2[q, c], g[v_q, c] + B2[q, c])`` — see the module
    docstring for the derivation; the per-pair min tail after ``v`` is
    folded in). :meth:`eval` applies them to a child-front matrix.
    """

    def __init__(self, p, tails, pairs, orders, lags=None):
        u = np.asarray([pair[0] for pair in pairs], dtype=np.intp)
        v = np.asarray([pair[1] for pair in pairs], dtype=np.intp)
        npairs, n = orders.shape
        rows = np.arange(npairs)[:, None]
        a = p[u]
        b = p[v]
        bl = b if lags is None else b + np.asarray(lags, dtype=np.int64)
        # channel stack in Johnson-order layout: step s of pair q carries
        # (a, b, b + lag, job id) of the s-th job in q's order
        self._big = np.ascontiguousarray(
            np.stack([a[rows, orders], b[rows, orders],
                      bl[rows, orders], orders.astype(np.int64)]))
        self._orders = orders
        self._tails_v = np.ascontiguousarray(
            np.asarray(tails, dtype=np.int64)[v])
        self._uv = np.ascontiguousarray(np.stack([u, v]))
        self._rows = rows
        self._mask = np.zeros(n, dtype=bool)
        self._jobpos = np.empty(n, dtype=np.int64)
        self._arange = np.arange(n, dtype=np.int64)

    def tables(self, jobs):
        """Skip-one tables ``(A2, B2)`` of a subset, child-column layout."""
        k = jobs.shape[0]
        mask = self._mask
        mask[jobs] = True
        keep = mask[self._orders]
        mask[jobs] = False
        g = self._big[:, keep].reshape(4, -1, k)
        a, b, bl = g[0], g[1], g[2]
        jobpos = self._jobpos
        jobpos[jobs] = self._arange[:k]
        cidx = jobpos[g[3]]                 # child index of each kept step
        s = np.cumsum(g[:2], axis=2)
        x = s[0] - s[1] + bl                # X_t, see module docstring
        nmax = np.empty_like(x)
        nmax[:, 0] = NEG
        np.maximum.accumulate(x[:, :-1], axis=1, out=nmax[:, 1:])
        rmax = np.empty_like(x)
        rmax[:, -1] = NEG
        np.maximum.accumulate(x[:, :0:-1], axis=1, out=rmax[:, -2::-1])
        mtv = self._tails_v[:, jobs].min(axis=1)
        add = s[1][:, -1:] + mtv[:, None]   # SBtot + min tail after v
        A = np.maximum(nmax - b, rmax - a)
        A += add
        B = add - b
        A2 = np.empty_like(A)
        B2 = np.empty_like(B)
        A2[self._rows, cidx] = A            # step layout -> child layout
        B2[self._rows, cidx] = B
        return A2, B2

    def eval(self, tables, g):
        """(k,) per-child maxima over pairs given child fronts ``g`` (m, k)."""
        A2, B2 = tables
        seeds = g[self._uv]                 # (2, npairs, k): front at u / v
        cand = seeds[0] + A2
        np.maximum(cand, seeds[1] + B2, out=cand)
        return cand.max(axis=0)


__all__ = ["instance_arrays", "subset_geometry", "fronts_matrix",
           "child_fronts", "child_rem_sums", "PairKernel",
           "NEG", "CACHE_CAP"]
