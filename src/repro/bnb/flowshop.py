"""The permutation flow-shop scheduling problem (PFSP).

``n`` jobs traverse ``m`` machines in the same machine order; a solution is
one permutation of the jobs (processed in that order on every machine); the
objective is the makespan — the completion time of the last job on the last
machine. PFSP with m >= 3 is strongly NP-hard; it is the paper's B&B
benchmark (Taillard 20x20 instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..sim.errors import SimConfigError


@dataclass(frozen=True)
class FlowshopInstance:
    """An immutable PFSP instance.

    Attributes:
        name: display name (e.g. ``Ta21`` or ``Ta21s(10x20)``).
        p: processing times, machine-major: ``p[i][j]`` is the time of job
            ``j`` on machine ``i``.
    """

    name: str
    p: tuple[tuple[int, ...], ...]
    tails: tuple[tuple[int, ...], ...] = field(init=False, repr=False)
    heads: tuple[tuple[int, ...], ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.p or not self.p[0]:
            raise SimConfigError("instance needs >= 1 machine and >= 1 job")
        n = len(self.p[0])
        if any(len(row) != n for row in self.p):
            raise SimConfigError("ragged processing-time matrix")
        if any(t <= 0 for row in self.p for t in row):
            raise SimConfigError("processing times must be positive")
        m = len(self.p)
        # tails[i][j]: total work of job j on machines strictly after i
        tails = [[0] * n for _ in range(m)]
        for i in range(m - 2, -1, -1):
            for j in range(n):
                tails[i][j] = tails[i + 1][j] + self.p[i + 1][j]
        # heads[i][j]: total work of job j on machines strictly before i
        heads = [[0] * n for _ in range(m)]
        for i in range(1, m):
            for j in range(n):
                heads[i][j] = heads[i - 1][j] + self.p[i - 1][j]
        object.__setattr__(self, "tails", tuple(tuple(r) for r in tails))
        object.__setattr__(self, "heads", tuple(tuple(r) for r in heads))

    @property
    def n_jobs(self) -> int:
        """Number of jobs (columns of p)."""
        return len(self.p[0])

    @property
    def n_machines(self) -> int:
        """Number of machines (rows of p)."""
        return len(self.p)

    @property
    def total_work(self) -> int:
        """Sum of all processing times (a crude size measure)."""
        return sum(sum(row) for row in self.p)

    def makespan(self, perm: Sequence[int]) -> int:
        """Makespan of a complete permutation (O(n*m) dynamic program)."""
        if sorted(perm) != list(range(self.n_jobs)):
            raise SimConfigError(
                f"{list(perm)} is not a permutation of 0..{self.n_jobs - 1}")
        front = [0] * self.n_machines
        for j in perm:
            front = self.advance(front, j)
        return front[-1]

    def advance(self, front: Sequence[int], job: int) -> list[int]:
        """Machine-completion vector after appending ``job`` to the prefix."""
        out = []
        prev = 0
        for i in range(self.n_machines):
            prev = max(prev, front[i]) + self.p[i][job]
            out.append(prev)
        return out

    def makespans_batch(self, perms: np.ndarray) -> np.ndarray:
        """Makespans of many permutations at once (rows of ``perms``)."""
        perms = np.asarray(perms)
        if perms.ndim != 2:
            raise SimConfigError("perms must be a 2-D array")
        k, n = perms.shape
        if n != self.n_jobs:
            raise SimConfigError("permutation length mismatch")
        parr = np.asarray(self.p)
        front = np.zeros((k, self.n_machines), dtype=np.int64)
        for col in range(n):
            jobs = perms[:, col]
            prev = np.zeros(k, dtype=np.int64)
            for i in range(self.n_machines):
                prev = np.maximum(prev, front[:, i]) + parr[i, jobs]
                front[:, i] = prev
        return front[:, -1]

    def describe(self) -> str:
        return (f"{self.name}: {self.n_jobs} jobs x {self.n_machines} "
                f"machines, total work {self.total_work}")


def make_instance(p: Iterable[Iterable[int]],
                  name: str = "custom") -> FlowshopInstance:
    """Convenience wrapper accepting any nested iterable of times."""
    return FlowshopInstance(name=name, p=tuple(tuple(row) for row in p))


__all__ = ["FlowshopInstance", "make_instance"]
