"""The paper's contribution: overlay-centric load balancing."""

from .config import OCLBConfig
from .oclb import BRIDGE, DOWN, REQ, UP, OverlayWorker
from .termination import TerminationWaves
from .worker import BOUND, WORK, WorkerConfig, WorkerProcess

__all__ = [
    "OverlayWorker", "OCLBConfig", "WorkerProcess", "WorkerConfig",
    "TerminationWaves", "WORK", "BOUND", "REQ", "UP", "DOWN",
    "BRIDGE",
]
