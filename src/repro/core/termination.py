"""Wave-based distributed termination detection (four-counter method).

Used where the pure tree-request argument is not enough: BTD (bridges let
work re-enter "exhausted" subtrees) and RWS (no structure at all). A
spanning tree carries verification waves initiated by the root:

* ``WAVE`` floods down the tree; each node answers ``WAVE_R`` up once all
  its children answered, aggregating (work messages sent, work messages
  received, anyone active);
* a wave is *clean* when totals satisfy S == R and nobody was active;
* the root terminates after two consecutive clean waves with identical S —
  Mattern's rule: equal counters across both waves prove no transfer
  happened in between, and S == R proves no grant is in flight, so global
  quiescence held throughout.

Under fault injection (``sim.faults`` set) the waves harden themselves;
none of this costs anything in clean runs, whose message formats and event
sequences stay bit-for-bit identical:

* ``WAVE`` additionally carries the root's current *dead set* and
  ``WAVE_R`` a count of the live nodes reached. A wave is only clean when
  that count equals ``n - |dead|`` (**coverage**): a live node the wave
  missed — e.g. an orphan whose parent crashed mid-splice — keeps the wave
  dirty, so termination cannot be declared while anyone is unaccounted
  for. Two consecutive clean waves must also agree on the dead set.
* per-node counters exclude traffic exchanged with dead peers (both sides
  of each pair consistently, using per-peer counters), so work that died
  with its owner cannot unbalance S and R forever;
* a node whose parent died answers the wave to whoever actually sent it
  (its adopter), and the root aborts a wave by timeout when a crash ate
  part of the flood, retrying with its updated dead set;
* ``active`` includes unacknowledged WORK transfers (the piece is neither
  counted at the sender nor the receiver while in flight on the reliable
  channel).

The tests attack this with random latency jitter, adversarial bridges,
message loss/duplication and crash-stop failures; a false positive would
surface as lost work (count mismatch) or a WORK message after termination
(a hard simulator error).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.messages import Message
from ..sim.process import SimProcess

WAVE = "WAVE"
WAVE_R = "WAVE_R"
TERM = "TERM"

#: (work_msgs_sent, work_msgs_received, active)
Counters = tuple[int, int, bool]


class TerminationWaves:
    """Per-node wave component; the root drives, everyone relays.

    Args:
        host: the process this service sends/receives through.
        parent: tree parent pid (-1 at the root).
        children: tree children pids.
        get_counters: samples this node's (sent, received, active).
        on_terminate: called exactly once on every node when TERM arrives
            (or, at the root, when it decides).
        should_wave: root-only predicate — keep waving while it holds.
        retry_delay: pause between inconclusive waves (virtual seconds).
        counters_vs: fault-mode sampler — like ``get_counters`` but
            excluding traffic with the given frozenset of dead pids.
        absorb_dead: fault-mode callback notifying the host of dead pids
            learnt from a wave payload (no relay needed: the news came
            from the root).
        n_total: total process count, needed for wave coverage checks in
            fault mode.
    """

    def __init__(self, host: SimProcess, parent: int, children: list[int],
                 get_counters: Callable[[], Counters],
                 on_terminate: Callable[[], None],
                 should_wave: Optional[Callable[[], bool]] = None,
                 retry_delay: float = 2e-3,
                 counters_vs: Optional[
                     Callable[[frozenset], Counters]] = None,
                 absorb_dead: Optional[Callable[[tuple], None]] = None,
                 n_total: int = 0) -> None:
        self.host = host
        self.parent = parent
        self.children = list(children)
        self.get_counters = get_counters
        self.on_terminate = on_terminate
        self.should_wave = should_wave or (lambda: True)
        self.retry_delay = retry_delay
        self.counters_vs = counters_vs
        self.absorb_dead = absorb_dead
        self.n_total = n_total
        self.is_root = parent < 0
        self.wave_seq = 0
        self._collecting = False
        self._acc_s = 0
        self._acc_r = 0
        self._acc_active = False
        self._acc_n = 0                       # live nodes covered (faults)
        self._waiting: set[int] = set()
        self._wave_dead: frozenset = frozenset()
        self._wave_from = parent              # who to answer this wave to
        self._answered_seq = -1
        self._last_answer: Optional[tuple] = None
        self._last_clean_s: Optional[int] = None
        self._last_clean_dead: Optional[frozenset] = None
        self._retry_pending = False
        self._backoff = 1.0
        self.terminated = False
        self.waves_run = 0
        # observability (root only): resolved lazily on the first wave —
        # the component is built before the host joins a simulator
        self._m_waves = None
        self._m_roundtrip = None
        self._wave_t0 = 0.0

    # -- root API --------------------------------------------------------------

    def root_try(self) -> None:
        """Root: start a verification wave if none is in flight."""
        if not self.is_root or self._collecting or self.terminated:
            return
        if getattr(self.host, "suspect", None):
            # island-safety: peers routed around by a circuit breaker are
            # alive but unreachable (partition, gray link) — a wave now
            # could not cover them and would only churn until abort. Keep
            # the retry timer alive instead; it re-enters here until the
            # suspicion resolves (heal via peer_recovered, or death).
            self._backoff = min(self._backoff * 2.0, 64.0)
            self._schedule_retry()
            return
        if not self.should_wave():
            return
        self.wave_seq += 1
        self.waves_run += 1
        m = self.host.sim.metrics if self.host.sim is not None else None
        if m is not None:
            if self._m_waves is None:
                self._m_waves = m.counter("term.waves")
                self._m_roundtrip = m.histogram("term.wave_roundtrip_s")
            self._m_waves.inc()
            self._wave_t0 = self.host.now
        self._begin_collect()
        if self._collecting and self._faulted():
            # a crash can eat part of the flood; time the wave out and
            # retry with whatever the root has learnt in the meantime
            self._schedule_abort(self.wave_seq)

    def declare(self) -> None:
        """Declare termination directly (protocols with their own proof)."""
        self._terminate()

    # -- overlay repair hooks (fault mode) -------------------------------------

    def child_dead(self, pid: int) -> None:
        """A wave child crashed: stop expecting its answers."""
        if pid in self.children:
            self.children.remove(pid)
        if self._collecting:
            self._waiting.discard(pid)
            if not self._waiting:
                self._complete()

    def add_child(self, pid: int) -> None:
        """Adopt a wave child (it joins from the *next* wave onward)."""
        if pid not in self.children:
            self.children.append(pid)

    def note_join(self) -> None:
        """A worker joined the fleet (live elastic membership): coverage
        must expect one more answer from the next wave onward.  A wave in
        flight simply comes up short and retries — the same safe direction
        as a mid-wave crash."""
        self.n_total += 1

    def set_parent(self, pid: int) -> None:
        """Re-parent after a splice (the root never re-parents)."""
        self.parent = pid

    # -- message plumbing ----------------------------------------------------------

    def handles(self, kind: str) -> bool:
        return kind in (WAVE, WAVE_R, TERM)

    def handle(self, msg: Message) -> bool:
        if msg.kind == WAVE:
            payload = msg.payload
            if isinstance(payload, tuple):       # fault mode: (seq, dead)
                seq, dead = payload
                if self.absorb_dead is not None:
                    self.absorb_dead(dead)
                if seq <= self.wave_seq:
                    # duplicate or stale flood (an adopter re-floods after
                    # a mid-wave splice, or an aborted wave's tail arrives
                    # late): repeat the recorded answer, never re-collect
                    if self._answered_seq == seq and self._last_answer:
                        self.host.send(msg.src, WAVE_R, self._last_answer,
                                       body_bytes=32)
                    return True
                self.wave_seq = seq
                self._wave_dead = frozenset(dead)
                self._wave_from = msg.src
            else:
                self.wave_seq = payload
            self._begin_collect()
            return True
        if msg.kind == WAVE_R:
            payload = msg.payload
            if len(payload) == 5:                # fault mode: + node count
                seq, s, r, active, count = payload
            else:
                seq, s, r, active = payload
                count = 0
            if seq != self.wave_seq or not self._collecting:
                return True  # stale reply from an aborted wave
            self._acc_s += s
            self._acc_r += r
            self._acc_active = self._acc_active or active
            self._acc_n += count
            self._waiting.discard(msg.src)
            if not self._waiting:
                self._complete()
            return True
        if msg.kind == TERM:
            self._terminate()
            return True
        return False

    # -- internals -----------------------------------------------------------------

    def _faulted(self) -> bool:
        sim = self.host.sim
        return sim is not None and sim.faults is not None

    def _begin_collect(self) -> None:
        self._collecting = True
        if self._faulted():
            if self.is_root:
                self._wave_dead = frozenset(getattr(self.host, "dead", ()))
            s, r, active = self.counters_vs(self._wave_dead)
            self._acc_n = 1
            payload: object = (self.wave_seq, tuple(sorted(self._wave_dead)))
            body = 8 + 8 * len(self._wave_dead)
        else:
            s, r, active = self.get_counters()
            payload = self.wave_seq
            body = 8
        self._acc_s, self._acc_r, self._acc_active = s, r, active
        self._waiting = set(self.children)
        for c in self.children:
            self.host.send(c, WAVE, payload, body_bytes=body)
        if not self._waiting:
            self._complete()

    def _complete(self) -> None:
        self._collecting = False
        faulted = self._faulted()
        if not self.is_root:
            if faulted:
                answer = (self.wave_seq, self._acc_s, self._acc_r,
                          self._acc_active, self._acc_n)
                self._answered_seq = self.wave_seq
                self._last_answer = answer
                self.host.send(self._wave_from, WAVE_R, answer,
                               body_bytes=32)
            else:
                self.host.send(self.parent, WAVE_R,
                               (self.wave_seq, self._acc_s, self._acc_r,
                                self._acc_active), body_bytes=24)
            return
        if self._m_roundtrip is not None:
            self._m_roundtrip.observe(self.host.now - self._wave_t0)
        clean = (not self._acc_active) and self._acc_s == self._acc_r
        if faulted:
            dead_now = frozenset(getattr(self.host, "dead", ()))
            # coverage: every live node must have answered, and the wave's
            # dead set must still be the whole truth
            clean = (clean and self._acc_n == self.n_total - len(dead_now)
                     and self._wave_dead == dead_now)
            confirmed = (clean and self._last_clean_s == self._acc_s
                         and self._last_clean_dead == self._wave_dead)
        else:
            confirmed = clean and self._last_clean_s == self._acc_s
        if confirmed:
            self._terminate()
            return
        if clean:
            self._last_clean_s = self._acc_s
            self._last_clean_dead = self._wave_dead
            self._backoff = 1.0  # confirmation wave should follow promptly
        else:
            self._last_clean_s = None
            self._last_clean_dead = None
            # exponential backoff: an active system does not need the root
            # to keep flooding verification waves
            self._backoff = min(self._backoff * 2.0, 64.0)
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        if self._retry_pending or self.terminated:
            return
        self._retry_pending = True

        def retry() -> None:
            self._retry_pending = False
            self.root_try()

        self.host.call_after(self.retry_delay * self._backoff, retry,
                             tag=f"wave-retry@{self.host.pid}")

    def _schedule_abort(self, seq: int) -> None:
        def fire() -> None:
            if self.terminated or not self._collecting:
                return
            if self.wave_seq != seq:
                return
            self._collecting = False
            self._backoff = min(self._backoff * 2.0, 64.0)
            self._schedule_retry()

        # generously above the channel's crash-detection latency so the
        # abort only fires for genuinely stuck waves
        self.host.call_after(max(16 * self.retry_delay, 40e-3) *
                             self._backoff, fire,
                             tag=f"wave-abort@{self.host.pid}")

    def _terminate(self) -> None:
        if self.terminated:
            return
        self.terminated = True
        for c in self.children:
            self.host.send(c, TERM, None)
        self.on_terminate()


__all__ = ["TerminationWaves", "WAVE", "WAVE_R", "TERM"]
