"""Wave-based distributed termination detection (four-counter method).

Used where the pure tree-request argument is not enough: BTD (bridges let
work re-enter "exhausted" subtrees) and RWS (no structure at all). A
spanning tree carries verification waves initiated by the root:

* ``WAVE`` floods down the tree; each node answers ``WAVE_R`` up once all
  its children answered, aggregating (work messages sent, work messages
  received, anyone active);
* a wave is *clean* when totals satisfy S == R and nobody was active;
* the root terminates after two consecutive clean waves with identical S —
  Mattern's rule: equal counters across both waves prove no transfer
  happened in between, and S == R proves no grant is in flight, so global
  quiescence held throughout.

The tests attack this with random latency jitter and adversarial bridges;
a false positive would surface as lost work (count mismatch) or a WORK
message after termination (a hard simulator error).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.messages import Message
from ..sim.process import SimProcess

WAVE = "WAVE"
WAVE_R = "WAVE_R"
TERM = "TERM"

#: (work_msgs_sent, work_msgs_received, active)
Counters = tuple[int, int, bool]


class TerminationWaves:
    """Per-node wave component; the root drives, everyone relays.

    Args:
        host: the process this service sends/receives through.
        parent: tree parent pid (-1 at the root).
        children: tree children pids.
        get_counters: samples this node's (sent, received, active).
        on_terminate: called exactly once on every node when TERM arrives
            (or, at the root, when it decides).
        should_wave: root-only predicate — keep waving while it holds.
        retry_delay: pause between inconclusive waves (virtual seconds).
    """

    def __init__(self, host: SimProcess, parent: int, children: list[int],
                 get_counters: Callable[[], Counters],
                 on_terminate: Callable[[], None],
                 should_wave: Optional[Callable[[], bool]] = None,
                 retry_delay: float = 2e-3) -> None:
        self.host = host
        self.parent = parent
        self.children = list(children)
        self.get_counters = get_counters
        self.on_terminate = on_terminate
        self.should_wave = should_wave or (lambda: True)
        self.retry_delay = retry_delay
        self.is_root = parent < 0
        self.wave_seq = 0
        self._collecting = False
        self._acc_s = 0
        self._acc_r = 0
        self._acc_active = False
        self._missing = 0
        self._last_clean_s: Optional[int] = None
        self._retry_pending = False
        self._backoff = 1.0
        self.terminated = False
        self.waves_run = 0

    # -- root API --------------------------------------------------------------

    def root_try(self) -> None:
        """Root: start a verification wave if none is in flight."""
        if not self.is_root or self._collecting or self.terminated:
            return
        if not self.should_wave():
            return
        self.wave_seq += 1
        self.waves_run += 1
        self._begin_collect()

    def declare(self) -> None:
        """Declare termination directly (protocols with their own proof)."""
        self._terminate()

    # -- message plumbing ----------------------------------------------------------

    def handles(self, kind: str) -> bool:
        return kind in (WAVE, WAVE_R, TERM)

    def handle(self, msg: Message) -> bool:
        if msg.kind == WAVE:
            self.wave_seq = msg.payload
            self._begin_collect()
            return True
        if msg.kind == WAVE_R:
            seq, s, r, active = msg.payload
            if seq != self.wave_seq or not self._collecting:
                return True  # stale reply from an aborted wave
            self._acc_s += s
            self._acc_r += r
            self._acc_active = self._acc_active or active
            self._missing -= 1
            if self._missing == 0:
                self._complete()
            return True
        if msg.kind == TERM:
            self._terminate()
            return True
        return False

    # -- internals -----------------------------------------------------------------

    def _begin_collect(self) -> None:
        self._collecting = True
        s, r, active = self.get_counters()
        self._acc_s, self._acc_r, self._acc_active = s, r, active
        self._missing = len(self.children)
        for c in self.children:
            self.host.send(c, WAVE, self.wave_seq, body_bytes=8)
        if self._missing == 0:
            self._complete()

    def _complete(self) -> None:
        self._collecting = False
        if not self.is_root:
            self.host.send(self.parent, WAVE_R,
                           (self.wave_seq, self._acc_s, self._acc_r,
                            self._acc_active), body_bytes=24)
            return
        clean = (not self._acc_active) and self._acc_s == self._acc_r
        if clean and self._last_clean_s == self._acc_s:
            self._terminate()
            return
        if clean:
            self._last_clean_s = self._acc_s
            self._backoff = 1.0  # confirmation wave should follow promptly
        else:
            self._last_clean_s = None
            # exponential backoff: an active system does not need the root
            # to keep flooding verification waves
            self._backoff = min(self._backoff * 2.0, 64.0)
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        if self._retry_pending or self.terminated:
            return
        self._retry_pending = True

        def retry() -> None:
            self._retry_pending = False
            self.root_try()

        self.host.call_after(self.retry_delay * self._backoff, retry,
                             tag=f"wave-retry@{self.host.pid}")

    def _terminate(self) -> None:
        if self.terminated:
            return
        self.terminated = True
        for c in self.children:
            self.host.send(c, TERM, None)
        self.on_terminate()


__all__ = ["TerminationWaves", "WAVE", "WAVE_R", "TERM"]
