"""Configuration of the overlay-centric load balancer."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.errors import SimConfigError


@dataclass(slots=True)
class OCLBConfig:
    """Tunables of the overlay-centric protocol (paper §II).

    Attributes:
        sharing: work-sharing policy name — ``"proportional"`` is the
            paper's contribution; ``"half"`` / ``"steal-1"`` / ... give the
            Fig. 2 baselines (see :mod:`repro.work.sharing`).
        wave_retry: pause between inconclusive termination waves.
        probe_retry: pause before an idle node starts a fresh down-phase
            probing round (idle nodes keep searching, paced by this).
        convergecast: compute subtree sizes with the distributed
            converge-cast protocol (paper-faithful). Setting it False reads
            the sizes off the overlay object instantly — a what-if knob for
            ablations; the results are identical, only the bootstrap
            messages disappear.
        withdraw: when a node that obtained work still has a request queued
            elsewhere (at its parent, or over its bridge), send WITHDRAW to
            cancel it. Stale grants would otherwise deliver work to a node
            that no longer needs it, feeding transfer churn; disabling this
            is an ablation knob — results stay correct, traffic grows.
    """

    sharing: str = "proportional"
    wave_retry: float = 2e-3
    probe_retry: float = 2.5e-4
    convergecast: bool = True
    withdraw: bool = True
    #: heterogeneity extension (the paper's stated future work): subtree
    #: "sizes" aggregate per-node compute capacities instead of node
    #: counts, so proportional shares track capacity. Requires the
    #: converge-cast bootstrap (capacities are only known locally).
    capacity_aware: bool = False

    def __post_init__(self) -> None:
        if self.wave_retry <= 0:
            raise SimConfigError("wave_retry must be > 0")
        if self.probe_retry <= 0:
            raise SimConfigError("probe_retry must be > 0")


__all__ = ["OCLBConfig"]
