"""Protocol-agnostic worker: compute quanta, work transfer, bound gossip.

A :class:`WorkerProcess` alternates compute quanta (``quantum`` work units,
priced at the application's ``unit_cost``) with message handling. Between
quanta (and whenever it is idle) its inbox drains; protocol subclasses react
in :meth:`handle` / :meth:`on_idle` / :meth:`on_work_received`.

Shared-knowledge diffusion (the B&B upper bound) is implemented here once
for all protocols as monotone gossip over protocol-chosen targets: a worker
that improves its bound pushes it to ``gossip_targets()``; a received value
that improves the local bound is forwarded onward; stale values die
immediately. For UTS there is nothing to share and the machinery is inert.

Fault tolerance is implemented here once as well, and is entirely inert in
clean runs (``sim.faults is None`` gates every hook):

* all sends route through a :class:`~repro.core.reliable.ReliableChannel`
  (exactly-once over lossy links, crash detection on its retry timers);
* per-peer WORK counters (``sent_to`` / ``recv_from``) let the termination
  waves exclude traffic with dead peers pair-consistently;
* a generic repair protocol — ``DEAD`` gossip, ``ATTACH`` (orphan joins
  its nearest live static ancestor) and ``ADOPT`` (an adopter claims the
  live descendants of a dead child) — re-knits the detection/overlay tree
  around crashed nodes. Protocols expose their tree through the
  ``static_parent`` / ``static_children`` / link hooks below; because
  death knowledge is true-only (perfect detection) every node computes
  the same unique nearest-live-ancestor assignment, so the repair is
  idempotent and convergent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from itertools import accumulate
from operator import add
from typing import Any, Optional

from ..apps.base import Application
from ..sim.messages import Message, sized
from ..sim.process import SimProcess
from ..work.base import WorkItem
from .reliable import RACK, RMSG, ReliableChannel
from .termination import TERM

#: Message kinds owned by the base worker.
WORK = "WORK"
BOUND = "BOUND"

#: Fault-protocol kinds (only ever on the wire when faults are active).
DEAD = "DEAD"        # gossip: payload = a crashed pid
ATTACH = "ATTACH"    # orphan -> new parent: (my subtree size, my dead set)
ADOPT = "ADOPT"      # adopter -> orphan:    (my subtree size, my dead set)
PING = "PING"        # liveness probe (the reliable channel does the work)

#: Kinds a *terminated* node still answers, with TERM — a late requester
#: whose path to the root crashed learns termination this way.
_TERM_REPLY = frozenset({"REQ", "STEAL", ATTACH})


@dataclass(slots=True)
class WorkerConfig:
    """Tunables common to every protocol."""

    quantum: int = 64            # work units per compute quantum
    gossip_bounds: bool = True   # diffuse shared-knowledge improvements
    seed: int = 0                # protocol randomness root
    speed: float = 1.0           # relative CPU speed (heterogeneity knob)
    ack_timeout: float = 2e-3    # reliable-channel base retransmit delay
    ack_retries: int = 5         # backoff doublings before the delay caps
    #: hard ceiling on any retransmit/probe backoff delay; None keeps the
    #: legacy ceiling of ack_timeout * 2^ack_retries
    ack_max_backoff: Optional[float] = None
    #: consecutive retransmit timeouts against one peer before its circuit
    #: breaker opens (the peer is then routed around until a heartbeat
    #: probe succeeds); 0 disables circuit breaking
    breaker_threshold: int = 4


class WorkerProcess(SimProcess):
    """Base class of every load-balancing protocol's worker."""

    def __init__(self, pid: int, app: Application, cfg: WorkerConfig,
                 has_initial_work: bool = False) -> None:
        super().__init__(pid)
        self.app = app
        self.cfg = cfg
        self.work: WorkItem = (app.initial_work() if has_initial_work
                               else app.empty_work())
        self.shared = app.make_shared()
        # Quantum fusion is only sound without shared knowledge: a BOUND
        # improvement arriving between quanta must be protocol-visible at
        # the exact quantum boundary, which fusing would skip. UTS and the
        # synthetic workload share nothing; B&B never fuses.
        self._fusible = self.shared is None
        self.terminated = False
        #: graceful-leave state (live elastic membership): a leaving worker
        #: stops computing and acquiring, hands its pool up, and waits for
        #: its outstanding transfers to settle before departing
        self.leaving = False
        #: optional repro.sim.trace.Tracer; set by the harness, zero cost
        #: when absent
        self.tracer = None
        # observability (repro.obs): instruments cached at start() when the
        # simulator carries a registry; a single None check gates each
        # publishing site, so detached runs pay one dead branch at most
        self._metrics = None
        self._m_steal_requests = None
        self._m_steal_latency = None
        self._m_xfer_units = None
        self._m_xfer_bytes = None
        self._steal_req_time = -1.0   # first open request of an idle episode
        # fault-tolerance state; pure memory, only touched when a
        # FaultPlan is active (self._reliable is then non-None)
        self._reliable: Optional[ReliableChannel] = None
        self.dead: set[int] = set()
        #: peers currently routed around by the channel's circuit breaker
        #: (alive but unreachable/unresponsive — partitions, gray links);
        #: strictly disjoint from ``dead``: nothing is recovered or spliced
        #: for a suspect, and the dead-set waves never count one as dead
        self.suspect: set[int] = set()
        self.sent_to: dict[int, int] = {}    # pid -> WORK messages sent
        self.recv_from: dict[int, int] = {}  # pid -> WORK messages received
        #: WORK pieces from crashed peers that arrived after termination;
        #: dropped from the run but kept for the conservation accounting
        self.crash_dropped: list[WorkItem] = []
        # gray-failure compute slowdown (set in start() when the plan
        # targets this pid); one dead branch per quantum otherwise
        self._gray_slow = False

    # -- protocol hooks ---------------------------------------------------------

    def on_idle(self) -> None:
        """CPU free, no local work, not terminated: go find some."""

    def handle(self, msg: Message) -> None:
        """Protocol-specific message (anything but WORK/BOUND)."""

    def on_work_received(self, msg: Message) -> None:
        """After a WORK message was merged (clear request bookkeeping)."""

    def on_quantum_done(self, units: int) -> None:
        """After each compute quantum (serve queued requesters, etc.)."""

    def quantum_boundary_quiet(self) -> bool:
        """True iff :meth:`on_quantum_done` is a no-op in the current state
        — the protocol-side precondition of quantum fusion.

        The macro-event fast path checks this once before fusing a run of
        quanta; interior boundaries then skip ``on_quantum_done`` entirely.
        That is sound only when the answer cannot change *during* the
        fused block: the state it depends on (queued requesters, pending
        lifelines, ...) must only ever mutate inside message/timer
        handlers, which provably cannot run mid-fusion. Protocols that
        cannot promise this keep the conservative default (False = never
        fuse).
        """
        return False

    def gossip_targets(self) -> list[int]:
        """Where to diffuse shared-knowledge improvements."""
        return []

    # -- repair hooks (protocols with a detection/overlay tree override) --------

    def static_parent(self, pid: int) -> int:
        """Original tree parent of ``pid`` (-1 at the root)."""
        return -1

    def static_children(self, pid: int):
        """Original tree children of ``pid``."""
        return ()

    def _repair_parent(self) -> int:
        """Current (possibly spliced) tree parent."""
        return -1

    def _current_children(self):
        """Current (possibly repaired) tree children."""
        return ()

    def _attach_size(self) -> float:
        """Subtree size advertised in ATTACH/ADOPT (0 = unknown)."""
        return 0

    def _set_parent_link(self, pid: int) -> None:
        """Point the tree parent link at ``pid`` (splice)."""

    def _add_child_link(self, pid: int, size: float) -> None:
        """Accept ``pid`` as an adopted tree child."""

    def _drop_child(self, pid: int) -> None:
        """Remove a crashed tree child from all bookkeeping."""

    def _on_new_parent(self, pid: int, size: float) -> None:
        """An ADOPT settled our parent link; resume protocol activity."""

    def peer_joined(self, pid: int, parent: int) -> None:
        """A new worker joined the overlay mid-run under ``parent`` (live
        elastic membership).  Inert for protocols without a tree."""

    def on_peer_dead(self, pid: int) -> None:
        """Protocol-specific cleanup for a crashed peer (any role)."""

    def on_peer_suspected(self, pid: int) -> None:
        """Protocol hook: route around ``pid`` until it recovers."""

    def on_peer_recovered(self, pid: int) -> None:
        """Protocol hook: ``pid`` answered the breaker probe — re-include."""

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        fc = self.sim.faults
        if fc is not None:
            self._reliable = ReliableChannel(
                self, self.cfg.ack_timeout, self.cfg.ack_retries,
                max_backoff=self.cfg.ack_max_backoff,
                breaker_threshold=self.cfg.breaker_threshold)
            # a gray-slowed pid opts out of quantum fusion: a fused block
            # cannot observe a slowdown window opening or closing mid-block
            # (the live runtime's LiveFaults has no slowdown machinery)
            if getattr(fc, "plan", None) is not None \
                    and fc.has_slowdown(self.pid):
                self._fusible = False
                self._gray_slow = True
        m = self.sim.metrics
        if m is not None:
            from ..obs.registry import SIZE_EDGES
            self._metrics = m
            self._m_steal_requests = m.counter("steal.requests")
            self._m_steal_latency = m.histogram("steal.latency_s")
            self._m_xfer_units = m.histogram("work.transfer_units",
                                             SIZE_EDGES)
            self._m_xfer_bytes = m.histogram("work.transfer_bytes",
                                             SIZE_EDGES)
        # everything starts through the event loop so subclass start() code
        # runs for every process before the first quantum fires
        self.call_after(0.0, self._drain,
                        tag=f"kick@{self.pid}" if self.sim.debug else "")

    def finished(self) -> bool:
        return self.terminated

    def finish(self) -> None:
        """Record local termination (idempotent)."""
        if not self.terminated:
            self.terminated = True
            self.stats.finish_time = self.now
            if self.tracer is not None:
                from ..sim.trace import FINISH
                self.tracer.record(self.now, self.pid, FINISH)

    # -- graceful leave (live elastic membership) -------------------------------

    def begin_leave(self) -> None:
        """Start a graceful departure: stop computing and acquiring work.

        The pool drains through :meth:`leave_tick` (called by the live
        reactor) — handed to the current tree parent, the same direction a
        finished subtree's work report flows.  Idempotent; a no-op once
        terminated (nothing left to hand up)."""
        if self.leaving or self.terminated:
            return
        self.leaving = True
        self.on_leave()

    def on_leave(self) -> None:
        """Protocol hook: retract outstanding requests before departing."""

    def leave_tick(self) -> bool:
        """Advance the departure; True once it is safe to exit.

        Safe means: the pool is empty, no quantum is in flight, and every
        reliable transfer we initiated has been acknowledged — so each
        work piece provably changed hands (or never left: the spool's
        receive log lets the sender recover anything still unlogged)."""
        if self.terminated:
            return True
        if not self.work.is_empty() and not self._cpu_busy:
            self._hand_up()
        return (self.work.is_empty() and not self._cpu_busy
                and (self._reliable is None
                     or not self._reliable.has_pending_work()))

    def _hand_up(self) -> None:
        """Ship the whole pool to the current (possibly spliced) parent."""
        dst = self._repair_parent()
        if dst < 0 or dst == self.pid or dst in self.dead:
            return   # no live parent right now; retried next tick
        piece, self.work = self.work, self.app.empty_work()
        if piece.is_empty():
            self.work = piece
            return
        self.send_work(dst, piece, channel="leave")

    # -- compute loop -----------------------------------------------------------------

    def on_cpu_free(self) -> None:
        if self.terminated or self.leaving:
            return
        if not self.work.is_empty():
            self._run_quantum()
        else:
            if self.tracer is not None:
                from ..sim.trace import IDLE
                self.tracer.record(self.now, self.pid, IDLE)
            self.on_idle()

    def _run_quantum(self) -> None:
        live = self.sim.live
        if live:
            from time import perf_counter
            t0 = perf_counter()
        outcome = self.app.process(self.work, self.cfg.quantum, self.shared)
        if outcome.units <= 0:
            # a non-empty container that yields nothing is drained
            self.on_idle()
            return
        st = self.stats
        st.work_units += outcome.units
        if live:
            # the quantum already *took* real time inside app.process:
            # record what was measured and yield the loop immediately so
            # queued messages interleave between quanta
            st.busy_time += perf_counter() - t0
            duration = 0.0
        else:
            duration = outcome.units * self.app.unit_cost / self.cfg.speed
            if self._gray_slow:
                duration *= self.sim.faults.slow_factor(self.pid, self.now)
            st.busy_time += duration
            sim = self.sim
            if (sim._fuse_active and self._fusible
                    and self.quantum_boundary_quiet()):
                self._run_fused(outcome.units, outcome.improved, duration)
                return
        self.occupy(duration,
                    lambda: self._quantum_done(outcome.units,
                                               outcome.improved),
                    tag=f"quantum@{self.pid}" if self.sim.debug else "")

    def _fusion_horizon(self):
        """Earliest time any *other* event could affect this worker.

        Two sources bound it: (a) events already scheduled *for us* —
        deliveries, our timers, our crash injection — tracked exactly in
        the per-process inbound heap; (b) anything a *foreign* event might
        do. A foreign event firing at time T can only reach us through
        ``transmit``, which prices at least the network's minimum latency,
        so nothing it causes lands before ``peek_time() + min_delay``.
        Quantum starts strictly before the horizon are therefore
        undisturbed: the worker provably computes through them exactly as
        the one-event-per-quantum engine would. None = queue empty and no
        inbound (fuse until the work drains).
        """
        sim = self.sim
        h = sim.queue.peek_time()
        if h is not None:
            h += sim._min_net_delay
        # Sharded runs (repro.sim.shard): a foreign *shard's* events are
        # invisible to this queue, but the conservative-lookahead barrier
        # guarantees their influence lands at or after the current window
        # end — so the window end is a valid horizon term of kind (b).
        wend = sim._window_end
        if wend is not None and (h is None or wend < h):
            h = wend
        mine = self._inbound_horizon()
        if mine is not None and (h is None or mine < h):
            return mine
        return h

    def _run_fused(self, units: int, improved: bool,
                   duration: float) -> None:
        """Macro-event fast path: fuse consecutive quanta into one event.

        The first quantum was already processed and counted (at its start
        time, like the unfused engine); this extends it with as many
        further quanta as provably complete before :meth:`_fusion_horizon`,
        then schedules a *single* engine event at the accumulated boundary.
        Interior boundaries are replayed eagerly — same ``work_done_time``
        updates, same QUANTUM trace samples at the same virtual times, and
        guaranteed-no-op ``on_quantum_done`` calls skipped — while the
        final boundary runs for real in :meth:`_fused_done`, so messages,
        timers or a crash landing inside the last quantum's window behave
        exactly as under the unfused engine. Durations accumulate
        iteratively (``t = t + d``), reproducing the unfused engine's
        float arithmetic bit for bit.

        One caveat: the macro event is *pushed* at the block's start,
        not at the last interior boundary, so if the final boundary
        lands at the identical float time as a causally unrelated
        foreign event, the insertion-order tie-break between them can
        differ from the unfused engine's. Both orders are valid
        executions of the same timed schedule (conservation and, in
        practice, makespans are unaffected); runs whose boundaries
        never collide — all golden/faulted test configurations — are
        bit-identical. See docs/simulation.md, "Scaling to 10^4 nodes".
        """
        sim = self.sim
        queue = sim.queue
        t = queue.now + duration
        horizon = self._fusion_horizon()
        k = 1
        if (horizon is None or t < horizon) and not self.work.is_empty():
            uc = self.app.unit_cost
            speed = self.cfg.speed
            full = self.cfg.quantum * uc / speed
            if full > 0.0:
                if self.tracer is not None:
                    from ..sim.trace import QUANTUM
                rs = sim.stats
                st = self.stats
                tracer = self.tracer
                pid = self.pid
                work = self.work
                quantum = self.cfg.quantum
                process_quanta = self.app.process_quanta
                # accumulate the hot counters locally (same sequential
                # additions, written back once — matters for columnar
                # stats) — nothing else can touch them mid-loop
                wu = st.work_units
                bt = st.busy_time
                wdt = rs.work_done_time
                while ((horizon is None or t < horizon)
                       and not work.is_empty()):
                    if horizon is None:
                        budget = 16384
                    else:
                        # floor, not ceil: the budget only counts quanta
                        # whose *starts* fit strictly under the horizon
                        # even if every one runs full length, leaving a
                        # full quantum of slack against float drift in t;
                        # the while loop mops up any remainder
                        budget = int((horizon - t) / full) or 1
                        if budget > 16384:
                            budget = 16384
                    batch = process_quanta(work, quantum, None, budget)
                    if not batch:
                        break
                    if tracer is None:
                        # C-speed replay: accumulate/reduce apply the
                        # exact left-to-right float additions the
                        # unfused engine performs, at ~5x the speed of
                        # the bytecode loop below
                        ds = [u * uc / speed for u in batch]
                        ts = list(accumulate(ds, initial=t))
                        wu += sum(batch)
                        bt = reduce(add, ds, bt)
                        # boundaries replayed at ts[:-1]; t is monotone,
                        # so the last one is the work_done_time candidate
                        if ts[-2] > wdt:
                            wdt = ts[-2]
                        t = ts[-1]
                        units = batch[-1]
                    else:
                        for u in batch:
                            # replay the previous quantum's boundary at t
                            if t > wdt:
                                wdt = t
                            tracer.record(t, pid, QUANTUM, units)
                            # same operand order as the unfused engine:
                            # (units * unit_cost) / speed, bit for bit
                            d = u * uc / speed
                            wu += u
                            bt += d
                            t = t + d
                            units = u
                    k += len(batch)
                st.work_units = wu
                st.busy_time = bt
                if wdt > rs.work_done_time:
                    rs.work_done_time = wdt
                if k > 1:
                    # interior `improved` flags are meaningless without
                    # shared knowledge (gossip is a no-op); the final
                    # boundary reports False like any non-improving quantum
                    improved = False
                    rs.macro_events += 1
                    rs.fused_quanta += k
        # bypass occupy(): one event at the fused boundary, cancellable by
        # the crash injector exactly like a plain occupy event
        self._cpu_busy = True
        self._occupy_event = queue.push(
            t, self._fused_done, arg=(units, improved),
            tag=f"macro@{self.pid}x{k}" if sim.debug else "")

    def _fused_done(self, arg: tuple) -> None:
        # mirrors SimProcess._occupy_done for the fused boundary
        units, improved = arg
        self._occupy_event = None
        self._cpu_busy = False
        self._quantum_done(units, improved)
        self._drain()

    def _quantum_done(self, units: int, improved: bool) -> None:
        self.sim.note_work_done()
        if self.tracer is not None:
            from ..sim.trace import QUANTUM
            self.tracer.record(self.now, self.pid, QUANTUM, units)
        if improved and self.cfg.gossip_bounds:
            self._gossip(exclude=-1)
        self.on_quantum_done(units)
        # _drain (in SimProcess.occupy) now absorbs queued messages and
        # re-enters on_cpu_free, chaining the next quantum or idling.

    # -- work transfer ----------------------------------------------------------------

    def note_steal_request(self) -> None:
        """Count one work request (protocols call this, not the raw stat).

        Feeds ``stats.steals_attempted`` exactly as the old inline bumps
        did, plus — when a metrics registry is attached — the
        ``steal.requests`` counter and the start-of-episode timestamp the
        ``steal.latency_s`` histogram measures against (first open request
        of an idle episode to the next WORK arrival).
        """
        self.stats.steals_attempted += 1
        if self._metrics is not None:
            self._m_steal_requests.inc()
            if self._steal_req_time < 0.0:
                self._steal_req_time = self.now

    def send(self, dst: int, kind: str, payload: Any = None,
             body_bytes: int = 0) -> None:
        ch = self._reliable
        if ch is None:
            super().send(dst, kind, payload, body_bytes)
            return
        if dst in self.dead:
            return  # talking to the dead is pointless (WORK guarded earlier)
        ch.send(dst, kind, payload, body_bytes)

    def send_work(self, dst: int, piece: WorkItem, channel: str = "") -> None:
        """Ship a work piece; counted for the termination-detection waves."""
        if self._reliable is not None:
            if dst in self.dead:
                # never hand work to a peer known to be dead — keep it
                self.work.merge(piece)
                return
            self.sent_to[dst] = self.sent_to.get(dst, 0) + 1
        self.stats.work_msgs_sent += 1
        body = piece.encoded_bytes()
        if self._metrics is not None:
            self._m_xfer_units.observe(piece.amount())
            self._m_xfer_bytes.observe(body)
        self.send(dst, WORK, (piece, channel), body_bytes=body)

    def on_message(self, msg: Message) -> None:
        ch = self._reliable
        if ch is not None:
            if msg.kind == RACK:
                ch.on_ack(msg.payload)
                return
            if msg.kind == RMSG:
                seq, inner_kind, inner_payload = msg.payload
                if msg.src not in self.dead:
                    # transport ack: plain send, the envelope stops here
                    self.sim.transmit(sized(RACK, self.pid, msg.src, seq, 4))
                if not ch.register(msg.src, seq):
                    return  # duplicate delivery: already processed once
                msg = sized(inner_kind, msg.src, self.pid, inner_payload, 0)
        if self.tracer is not None:
            from ..sim.trace import MESSAGE
            self.tracer.record(self.now, self.pid, MESSAGE, 1.0)
        if self.terminated:
            if msg.kind == WORK:
                if ch is not None and msg.src in self.dead:
                    # a transfer the peer launched before crashing, landing
                    # after we terminated: the wave proof already excluded
                    # this pair, so drop it — but keep the piece visible to
                    # the conservation accounting
                    self.crash_dropped.append(msg.payload[0])
                    return
                # a correct protocol never terminates with work in flight;
                # losing it silently would corrupt results, so fail loudly
                from ..sim.errors import SimRuntimeError
                raise SimRuntimeError(
                    f"worker {self.pid} received WORK after termination")
            if ch is not None and msg.kind in _TERM_REPLY:
                # late requester cut off from the root by crashes: tell it
                self.send(msg.src, TERM, None)
            return
        if msg.kind == WORK:
            piece, _channel = msg.payload
            self.stats.work_msgs_received += 1
            self.stats.steals_successful += 1
            if ch is not None:
                self.recv_from[msg.src] = self.recv_from.get(msg.src, 0) + 1
            if self._metrics is not None and self._steal_req_time >= 0.0:
                self._m_steal_latency.observe(self.now - self._steal_req_time)
                self._steal_req_time = -1.0
            if self.tracer is not None:
                from ..sim.trace import TRANSFER
                self.tracer.record(self.now, self.pid, TRANSFER,
                                   float(msg.src))
            self.work.merge(piece)
            self.on_work_received(msg)
            return
        if msg.kind == BOUND:
            if self.shared is not None and self.app.absorb_value(
                    self.shared, msg.payload):
                self._gossip(exclude=msg.src)
            return
        if ch is not None:
            if msg.kind == DEAD:
                self.learn_dead(msg.payload)
                return
            if msg.kind == ATTACH:
                self._on_attach(msg)
                return
            if msg.kind == ADOPT:
                self._on_adopt(msg)
                return
            if msg.kind == PING:
                return  # the channel round-trip was the point
        self.handle(msg)

    def _gossip(self, exclude: int) -> None:
        if self.shared is None:
            return
        value = self.app.shared_value(self.shared)
        if value is None:
            return
        for t in self.gossip_targets():
            if t != exclude and t != self.pid:
                self.send(t, BOUND, value, body_bytes=8)

    # -- crash handling (never reached in clean runs) ---------------------------

    def channel_peer_dead(self, pid: int, recovered: list[WorkItem]) -> None:
        """The reliable channel detected a crashed peer.

        ``recovered`` holds the WORK pieces we sent it that provably never
        arrived (absent from its receive log): merge them back — the work
        changes hands back to us, conservation intact.
        """
        for piece in recovered:
            self.work.merge(piece)
        self.learn_dead(pid)
        if recovered and not self._cpu_busy and not self.terminated:
            self._drain()  # the recovered work restarts the compute loop

    def peer_suspected(self, pid: int) -> None:
        """The channel's circuit breaker opened on ``pid``: exclude it from
        victim selection and overlay re-picks until the probe succeeds."""
        if pid in self.suspect or pid in self.dead:
            return
        self.suspect.add(pid)
        self.on_peer_suspected(pid)

    def peer_recovered(self, pid: int) -> None:
        """The breaker probe got through: ``pid`` is reachable again."""
        if pid not in self.suspect:
            return
        self.suspect.discard(pid)
        self.on_peer_recovered(pid)

    def learn_dead(self, pid: int, relay: bool = True) -> None:
        """Absorb the (true) fact that ``pid`` crashed; idempotent."""
        if pid == self.pid or pid in self.dead:
            return
        self.dead.add(pid)
        self.suspect.discard(pid)  # the suspicion resolved into a death
        self._react_dead(pid)
        if relay:
            p = self._repair_parent()
            if p >= 0 and p not in self.dead:
                self.send(p, DEAD, pid, body_bytes=8)

    def _absorb_dead(self, pids) -> None:
        """Dead-set news from a wave payload (root-originated: no relay)."""
        for pid in pids:
            self.learn_dead(pid, relay=False)

    def _react_dead(self, pid: int) -> None:
        if pid == self._repair_parent():
            self._splice_up()
        if pid in self._current_children():
            self._drop_child(pid)
        if self._nearest_live_ancestor_of(pid) == self.pid:
            self._adopt_descendants(pid)
        self.on_peer_dead(pid)

    def _nearest_live_ancestor_of(self, pid: int) -> int:
        p = self.static_parent(pid)
        while p > 0 and p in self.dead:
            p = self.static_parent(p)
        return p

    def join_overlay(self) -> None:
        """Freshly joined node (live elastic membership): announce
        ourselves to the nearest live static ancestor — normally the
        assigned graft parent, unless it died while we were spawning.
        Same ATTACH/ADOPT exchange as a post-crash splice, but joining is
        not a repair, so the repair counter stays untouched."""
        np = self._nearest_live_ancestor_of(self.pid)
        self._set_parent_link(np)
        self.send(np, ATTACH,
                  (self._attach_size(), tuple(sorted(self.dead))),
                  body_bytes=16 + 8 * len(self.dead))

    def _splice_up(self) -> None:
        """Our parent died: re-attach to the nearest live static ancestor
        (the root cannot crash, so one always exists)."""
        np = self._nearest_live_ancestor_of(self.pid)
        self._set_parent_link(np)
        self.stats.repairs += 1
        if self.tracer is not None:
            from ..sim.trace import REPAIR
            self.tracer.record(self.now, self.pid, REPAIR, np)
        self.send(np, ATTACH,
                  (self._attach_size(), tuple(sorted(self.dead))),
                  body_bytes=16 + 8 * len(self.dead))

    def _adopt_descendants(self, dead_pid: int) -> None:
        """Claim the live static descendants of a dead child (recursing
        through chains of dead nodes)."""
        for g in self.static_children(dead_pid):
            if g in self.dead:
                self._adopt_descendants(g)
            elif self.terminated:
                # adopting into a terminated subtree means one thing only:
                # the orphan missed the news
                self.send(g, TERM, None)
            elif g not in self._current_children():
                self._add_child_link(g, 0)
                self.stats.repairs += 1
                if self.tracer is not None:
                    from ..sim.trace import REPAIR
                    self.tracer.record(self.now, self.pid, REPAIR, g)
                self.send(g, ADOPT,
                          (self._attach_size(), tuple(sorted(self.dead))),
                          body_bytes=16 + 8 * len(self.dead))

    def _on_attach(self, msg: Message) -> None:
        size, dead = msg.payload
        for d in dead:
            self.learn_dead(d)  # the orphan may know deaths we missed
        if msg.src in self.dead:
            return  # raced with the orphan's own crash
        if msg.src not in self._current_children():
            self._add_child_link(msg.src, size)
            self.stats.repairs += 1
        # answer with our size so the orphan's sharing fractions stay sane
        self.send(msg.src, ADOPT,
                  (self._attach_size(), tuple(sorted(self.dead))),
                  body_bytes=16 + 8 * len(self.dead))

    def _on_adopt(self, msg: Message) -> None:
        size, dead = msg.payload
        # the adopter sits toward the root and already gossips these
        for d in dead:
            self.learn_dead(d, relay=False)
        if msg.src in self.dead:
            return
        if msg.src != self._repair_parent():
            self._set_parent_link(msg.src)
            self.stats.repairs += 1
        self._on_new_parent(msg.src, size)

    def _counters_vs(self, dead: frozenset) -> tuple[int, int, bool]:
        """Wave counters excluding traffic with dead peers (pair-consistent
        with the exclusion every other live node applies)."""
        st = self.stats
        s = st.work_msgs_sent
        r = st.work_msgs_received
        for p, c in self.sent_to.items():
            if p in dead:
                s -= c
        for p, c in self.recv_from.items():
            if p in dead:
                r -= c
        active = (not self.work.is_empty() or self.cpu_busy
                  or (self._reliable is not None
                      and self._reliable.has_pending_work()))
        return s, r, active


__all__ = ["WorkerProcess", "WorkerConfig", "WORK", "BOUND", "DEAD",
           "ATTACH", "ADOPT", "PING"]
