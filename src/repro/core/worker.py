"""Protocol-agnostic worker: compute quanta, work transfer, bound gossip.

A :class:`WorkerProcess` alternates compute quanta (``quantum`` work units,
priced at the application's ``unit_cost``) with message handling. Between
quanta (and whenever it is idle) its inbox drains; protocol subclasses react
in :meth:`handle` / :meth:`on_idle` / :meth:`on_work_received`.

Shared-knowledge diffusion (the B&B upper bound) is implemented here once
for all protocols as monotone gossip over protocol-chosen targets: a worker
that improves its bound pushes it to ``gossip_targets()``; a received value
that improves the local bound is forwarded onward; stale values die
immediately. For UTS there is nothing to share and the machinery is inert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..apps.base import Application
from ..sim.messages import Message
from ..sim.process import SimProcess
from ..work.base import WorkItem

#: Message kinds owned by the base worker.
WORK = "WORK"
BOUND = "BOUND"


@dataclass(slots=True)
class WorkerConfig:
    """Tunables common to every protocol."""

    quantum: int = 64            # work units per compute quantum
    gossip_bounds: bool = True   # diffuse shared-knowledge improvements
    seed: int = 0                # protocol randomness root
    speed: float = 1.0           # relative CPU speed (heterogeneity knob)


class WorkerProcess(SimProcess):
    """Base class of every load-balancing protocol's worker."""

    def __init__(self, pid: int, app: Application, cfg: WorkerConfig,
                 has_initial_work: bool = False) -> None:
        super().__init__(pid)
        self.app = app
        self.cfg = cfg
        self.work: WorkItem = (app.initial_work() if has_initial_work
                               else app.empty_work())
        self.shared = app.make_shared()
        self.terminated = False
        #: optional repro.sim.trace.Tracer; set by the harness, zero cost
        #: when absent
        self.tracer = None

    # -- protocol hooks ---------------------------------------------------------

    def on_idle(self) -> None:
        """CPU free, no local work, not terminated: go find some."""

    def handle(self, msg: Message) -> None:
        """Protocol-specific message (anything but WORK/BOUND)."""

    def on_work_received(self, msg: Message) -> None:
        """After a WORK message was merged (clear request bookkeeping)."""

    def on_quantum_done(self, units: int) -> None:
        """After each compute quantum (serve queued requesters, etc.)."""

    def gossip_targets(self) -> list[int]:
        """Where to diffuse shared-knowledge improvements."""
        return []

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        # everything starts through the event loop so subclass start() code
        # runs for every process before the first quantum fires
        self.call_after(0.0, self._drain,
                        tag=f"kick@{self.pid}" if self.sim.debug else "")

    def finished(self) -> bool:
        return self.terminated

    def finish(self) -> None:
        """Record local termination (idempotent)."""
        if not self.terminated:
            self.terminated = True
            self.stats.finish_time = self.now
            if self.tracer is not None:
                from ..sim.trace import FINISH
                self.tracer.record(self.now, self.pid, FINISH)

    # -- compute loop -----------------------------------------------------------------

    def on_cpu_free(self) -> None:
        if self.terminated:
            return
        if not self.work.is_empty():
            self._run_quantum()
        else:
            if self.tracer is not None:
                from ..sim.trace import IDLE
                self.tracer.record(self.now, self.pid, IDLE)
            self.on_idle()

    def _run_quantum(self) -> None:
        outcome = self.app.process(self.work, self.cfg.quantum, self.shared)
        if outcome.units <= 0:
            # a non-empty container that yields nothing is drained
            self.on_idle()
            return
        duration = outcome.units * self.app.unit_cost / self.cfg.speed
        st = self.stats
        st.work_units += outcome.units
        st.busy_time += duration
        self.occupy(duration,
                    lambda: self._quantum_done(outcome.units,
                                               outcome.improved),
                    tag=f"quantum@{self.pid}" if self.sim.debug else "")

    def _quantum_done(self, units: int, improved: bool) -> None:
        self.sim.note_work_done()
        if self.tracer is not None:
            from ..sim.trace import QUANTUM
            self.tracer.record(self.now, self.pid, QUANTUM, units)
        if improved and self.cfg.gossip_bounds:
            self._gossip(exclude=-1)
        self.on_quantum_done(units)
        # _drain (in SimProcess.occupy) now absorbs queued messages and
        # re-enters on_cpu_free, chaining the next quantum or idling.

    # -- work transfer ----------------------------------------------------------------

    def send_work(self, dst: int, piece: WorkItem, channel: str = "") -> None:
        """Ship a work piece; counted for the termination-detection waves."""
        self.stats.work_msgs_sent += 1
        self.send(dst, WORK, (piece, channel),
                  body_bytes=piece.encoded_bytes())

    def on_message(self, msg: Message) -> None:
        if self.tracer is not None:
            from ..sim.trace import MESSAGE
            self.tracer.record(self.now, self.pid, MESSAGE, 1.0)
        if self.terminated:
            if msg.kind == WORK:
                # a correct protocol never terminates with work in flight;
                # losing it silently would corrupt results, so fail loudly
                from ..sim.errors import SimRuntimeError
                raise SimRuntimeError(
                    f"worker {self.pid} received WORK after termination")
            return
        if msg.kind == WORK:
            piece, _channel = msg.payload
            self.stats.work_msgs_received += 1
            self.stats.steals_successful += 1
            self.work.merge(piece)
            self.on_work_received(msg)
            return
        if msg.kind == BOUND:
            if self.shared is not None and self.app.absorb_value(
                    self.shared, msg.payload):
                self._gossip(exclude=msg.src)
            return
        self.handle(msg)

    def _gossip(self, exclude: int) -> None:
        if self.shared is None:
            return
        value = self.app.shared_value(self.shared)
        if value is None:
            return
        for t in self.gossip_targets():
            if t != exclude and t != self.pid:
                self.send(t, BOUND, value, body_bytes=8)


__all__ = ["WorkerProcess", "WorkerConfig", "WORK", "BOUND"]
