"""Exactly-once message transport over lossy links.

When a :class:`~repro.sim.faults.FaultPlan` is active the fault layer may
drop or duplicate any transmission, so the protocol state machines (OCLB
request/serve, termination waves) can no longer rely on the engine's
exactly-once delivery. Rather than hardening every state machine, the
worker routes its sends through this channel, which restores exactly-once
semantics at the transport level:

* every protocol message is wrapped in an ``RMSG (seq, kind, payload)``
  envelope; the receiver always answers ``RACK seq`` and processes the
  inner message only the first time a ``(src, seq)`` pair is seen;
* unacknowledged transfers are retransmitted with exponential backoff
  (base ``timeout``, doubling up to ``2^retries``). With loss < 1 a live
  receiver is reached with probability 1, so the protocols above need no
  changes at all for loss and duplication — only crashes leak through.

Crash handling makes two explicit modelling choices (documented in
``docs/experiments.md``):

* **Perfect failure detection.** Each retransmission timer first consults
  the engine's ground truth (:meth:`~repro.sim.engine.Simulator.is_crashed`)
  before resending. A crashed peer is therefore detected within one
  ``timeout`` of the first lost exchange, and a live peer is *never*
  falsely declared dead — the resilient-GLB literature assumes the same
  (heartbeat-based detectors with conservative timeouts).
* **A stable receive log.** On peer death the sender must decide, for each
  unacknowledged WORK transfer, whether the piece reached the peer before
  the crash (abandon it: the work died with its owner and is accounted as
  crashed) or not (recover it: merge the piece back locally). The channel
  resolves this two-generals ambiguity by peeking the dead peer's dedup
  log — modelling the write-ahead receive log a real fault-tolerant
  runtime keeps on stable storage. Without it, exact work conservation
  over the surviving nodes would be unprovable.

The channel only exists when faults are active; clean runs never construct
one and keep the engine's native delivery path bit-for-bit unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim.messages import sized

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .worker import WorkerProcess

RMSG = "RMSG"   # reliable envelope: payload = (seq, inner kind, inner payload)
RACK = "RACK"   # transport acknowledgement: payload = seq

#: Envelope overhead charged on the wire (seq + kind tag).
_ENVELOPE_BYTES = 12
_ACK_BYTES = 4

#: Inner kind whose payload carries a work piece — tracked for the
#: termination waves ("work in flight" counts as active) and recovered on
#: peer death. Literal to avoid a circular import with ``worker``.
_WORK = "WORK"


class _Transfer:
    """One in-flight reliable send awaiting acknowledgement."""

    __slots__ = ("seq", "dst", "kind", "payload", "body_bytes", "attempts",
                 "done")

    def __init__(self, seq: int, dst: int, kind: str, payload: Any,
                 body_bytes: int) -> None:
        self.seq = seq
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.body_bytes = body_bytes
        self.attempts = 0
        self.done = False


class ReliableChannel:
    """Per-worker reliable transport; see module docstring."""

    def __init__(self, host: "WorkerProcess", timeout: float = 2e-3,
                 retries: int = 5) -> None:
        self.host = host
        self.timeout = timeout
        self.retries = retries
        self._next_seq = 0
        self._pending: dict[int, _Transfer] = {}
        self._seen: dict[int, set[int]] = {}   # src -> delivered seqs
        self._pending_work = 0
        # observability: the channel is built in start(), so host.sim and
        # its (optional) metrics registry are already attached
        m = host.sim.metrics
        if m is not None:
            self._m_retransmits = m.counter("reliable.retransmits")
            self._m_delay = m.histogram("reliable.retransmit_delay_s")
        else:
            self._m_retransmits = None
            self._m_delay = None

    # -- sender side ---------------------------------------------------------

    def send(self, dst: int, kind: str, payload: Any,
             body_bytes: int) -> None:
        """Ship one message with at-least-once delivery to a live peer."""
        seq = self._next_seq
        self._next_seq += 1
        xf = _Transfer(seq, dst, kind, payload, body_bytes)
        self._pending[seq] = xf
        if kind == _WORK:
            self._pending_work += 1
        self._transmit(xf)
        self._schedule(xf)

    def on_ack(self, seq: int) -> None:
        """An RACK arrived; settle the matching transfer (dups are no-ops)."""
        xf = self._pending.pop(seq, None)
        if xf is None:
            return
        xf.done = True
        if xf.kind == _WORK:
            self._pending_work -= 1

    def has_pending_work(self) -> bool:
        """True while any WORK transfer is unacknowledged (counts as active
        for termination detection: the piece is neither here nor there)."""
        return self._pending_work > 0

    def pending_to(self, pid: int) -> list[_Transfer]:
        """Unacknowledged transfers addressed to ``pid`` (test hook)."""
        return [xf for xf in self._pending.values() if xf.dst == pid]

    # -- receiver side -------------------------------------------------------

    def register(self, src: int, seq: int) -> bool:
        """Record a delivery; False when (src, seq) was already processed."""
        seen = self._seen.setdefault(src, set())
        if seq in seen:
            return False
        seen.add(seq)
        host = self.host
        host.sim.note_reliable_delivery(host.pid, src, seq)
        return True

    def was_delivered(self, src: int, seq: int) -> bool:
        """Whether a transfer from ``src`` reached this node (stable log)."""
        return seq in self._seen.get(src, ())

    # -- internals -----------------------------------------------------------

    def _transmit(self, xf: _Transfer) -> None:
        host = self.host
        host.sim.transmit(sized(RMSG, host.pid, xf.dst,
                                (xf.seq, xf.kind, xf.payload),
                                xf.body_bytes + _ENVELOPE_BYTES))

    def _schedule(self, xf: _Transfer) -> None:
        delay = self.timeout * (1 << min(xf.attempts, self.retries))
        self.host.call_after(delay, lambda: self._retry(xf),
                             tag=f"rexmit@{self.host.pid}")

    def _retry(self, xf: _Transfer) -> None:
        if xf.done:
            return
        if self.host.sim.is_crashed(xf.dst):
            # perfect failure detection: consult ground truth instead of
            # burning the full retry ladder against a dead peer
            self.peer_crashed(xf.dst)
            return
        if self._m_retransmits is not None:
            self._m_retransmits.inc()
            # the backoff that just elapsed (what _schedule armed last time)
            self._m_delay.observe(
                self.timeout * (1 << min(xf.attempts, self.retries)))
        xf.attempts += 1
        self.host.stats.retransmits += 1
        self._transmit(xf)
        self._schedule(xf)

    def peer_crashed(self, pid: int) -> None:
        """Settle every transfer to a crashed peer and notify the host.

        WORK pieces the peer never logged are recovered (merged back by the
        host); everything else — and WORK the peer *did* receive before
        crashing — is abandoned.  The retry timers reach this through the
        perfect-FD consult above; the live runtime's failure detector calls
        it directly when the supervisor announces a death.  Which log gets
        peeked is the environment's business
        (:meth:`repro.sim.engine.Simulator.peer_logged` — the simulator
        reads the peer's in-memory dedup set, the live environment reads
        the on-disk spool the dead process left behind).
        """
        host = self.host
        recovered = []
        for xf in [x for x in self._pending.values() if x.dst == pid]:
            del self._pending[xf.seq]
            xf.done = True
            if xf.kind == _WORK:
                self._pending_work -= 1
                if not host.sim.peer_logged(pid, host.pid, xf.seq):
                    recovered.append(xf.payload[0])  # the work piece
        host.channel_peer_dead(pid, recovered)


__all__ = ["ReliableChannel", "RMSG", "RACK"]
