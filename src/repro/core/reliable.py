"""Exactly-once message transport over lossy links.

When a :class:`~repro.sim.faults.FaultPlan` is active the fault layer may
drop or duplicate any transmission, so the protocol state machines (OCLB
request/serve, termination waves) can no longer rely on the engine's
exactly-once delivery. Rather than hardening every state machine, the
worker routes its sends through this channel, which restores exactly-once
semantics at the transport level:

* every protocol message is wrapped in an ``RMSG (seq, kind, payload)``
  envelope; the receiver always answers ``RACK seq`` and processes the
  inner message only the first time a ``(src, seq)`` pair is seen;
* unacknowledged transfers are retransmitted with exponential backoff
  (base ``timeout``, doubling up to ``2^retries``, clamped to
  ``max_backoff``). With loss < 1 a live receiver is reached with
  probability 1, so the protocols above need no changes at all for loss
  and duplication — only crashes leak through.

Gray failures and partitions add a third failure mode: a peer that is
*alive but unreachable* (or pathologically slow). Retrying such a peer
forever wastes the sender and, worse, keeps the overlay routing work at a
black hole. The channel therefore keeps one **circuit breaker** per peer:

* **closed** — normal operation; every retransmit timeout against the
  peer bumps a consecutive-failure counter, any ack resets it;
* **open** — after ``breaker_threshold`` consecutive timeouts the breaker
  trips: outbound transfers to the peer are *parked* (they stay pending —
  unacked WORK still counts as in-flight for termination detection — but
  stop burning retransmits), and the host is told to route around the
  peer (``peer_suspected``: excluded from victim selection and bridge
  re-pick);
* **half-open** — after a probe delay (doubling, clamped to
  ``max_backoff``) the breaker sends one heartbeat PING through the
  envelope layer; any ack from the peer — the probe's or a late data
  ack — closes the breaker, releases the parked transfers and tells the
  host the peer is back (``peer_recovered``).

A suspected peer is *not* a dead peer: nothing is abandoned or recovered,
the dead-set termination waves never count it, and the splice/adopt repair
machinery is not invoked. Suspicion is a routing decision that heals; only
the failure detector (ground-truth ``is_crashed`` in the simulator, the
supervisor's EOF watch live) turns a peer into a corpse.

Crash handling makes two explicit modelling choices (documented in
``docs/experiments.md``):

* **Perfect failure detection.** Each retransmission timer first consults
  the engine's ground truth (:meth:`~repro.sim.engine.Simulator.is_crashed`)
  before resending. A crashed peer is therefore detected within one
  ``timeout`` of the first lost exchange, and a live peer is *never*
  falsely declared dead — the resilient-GLB literature assumes the same
  (heartbeat-based detectors with conservative timeouts).
* **A stable receive log.** On peer death the sender must decide, for each
  unacknowledged WORK transfer, whether the piece reached the peer before
  the crash (abandon it: the work died with its owner and is accounted as
  crashed) or not (recover it: merge the piece back locally). The channel
  resolves this two-generals ambiguity by peeking the dead peer's dedup
  log — modelling the write-ahead receive log a real fault-tolerant
  runtime keeps on stable storage. Without it, exact work conservation
  over the surviving nodes would be unprovable.

The channel only exists when faults are active; clean runs never construct
one and keep the engine's native delivery path bit-for-bit unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim.messages import sized

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .worker import WorkerProcess

RMSG = "RMSG"   # reliable envelope: payload = (seq, inner kind, inner payload)
RACK = "RACK"   # transport acknowledgement: payload = seq

#: Envelope overhead charged on the wire (seq + kind tag).
_ENVELOPE_BYTES = 12
_ACK_BYTES = 4

#: Inner kind whose payload carries a work piece — tracked for the
#: termination waves ("work in flight" counts as active) and recovered on
#: peer death. Literal to avoid a circular import with ``worker``.
_WORK = "WORK"

#: Inner kind of the breaker's half-open heartbeat probe. The receiver's
#: envelope layer acks every RMSG before looking at the inner kind, and
#: the worker's PING handler is a no-op, so the probe costs one
#: round-trip and nothing else.
_PING = "PING"

#: Circuit-breaker states (also the CIRCUIT trace sample encoding:
#: value = peer * 4 + state).
B_CLOSED, B_OPEN, B_HALF_OPEN = 0, 1, 2
_STATE_NAMES = {B_CLOSED: "closed", B_OPEN: "open", B_HALF_OPEN: "half-open"}


class _Transfer:
    """One in-flight reliable send awaiting acknowledgement."""

    __slots__ = ("seq", "dst", "kind", "payload", "body_bytes", "attempts",
                 "done", "parked", "timer")

    def __init__(self, seq: int, dst: int, kind: str, payload: Any,
                 body_bytes: int) -> None:
        self.seq = seq
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.body_bytes = body_bytes
        self.attempts = 0
        self.done = False
        self.parked = False
        self.timer: Any = None


class _Breaker:
    """Per-peer circuit-breaker state."""

    __slots__ = ("state", "consecutive", "probe_delay", "opened_at",
                 "open_s", "opens", "probes", "probe_seq")

    def __init__(self) -> None:
        self.state = B_CLOSED
        self.consecutive = 0
        self.probe_delay = 0.0
        self.opened_at = 0.0
        self.open_s = 0.0    # total time spent open/half-open (closed spans)
        self.opens = 0       # times the breaker tripped
        self.probes = 0      # half-open probes sent
        self.probe_seq: int | None = None


class ReliableChannel:
    """Per-worker reliable transport; see module docstring."""

    def __init__(self, host: "WorkerProcess", timeout: float = 2e-3,
                 retries: int = 5, max_backoff: float | None = None,
                 breaker_threshold: int = 0) -> None:
        self.host = host
        self.timeout = timeout
        self.retries = retries
        # Backoff clamp: the legacy ladder already tops out at
        # timeout * 2^retries, so the default cap equals that ceiling and
        # changes nothing; a tighter cap bounds the worst-case silence
        # after long blackouts (and the breaker's probe interval).
        self.max_backoff = (max_backoff if max_backoff is not None
                            else timeout * (1 << retries))
        #: consecutive retransmit timeouts before a peer's breaker trips;
        #: 0 disables circuit breaking entirely.
        self.breaker_threshold = breaker_threshold
        self._next_seq = 0
        self._pending: dict[int, _Transfer] = {}
        self._seen: dict[int, set[int]] = {}   # src -> delivered seqs
        self._pending_work = 0
        self._breakers: dict[int, _Breaker] = {}
        # observability: the channel is built in start(), so host.sim and
        # its (optional) metrics registry are already attached
        m = host.sim.metrics
        if m is not None:
            self._m_retransmits = m.counter("reliable.retransmits")
            self._m_delay = m.histogram("reliable.retransmit_delay_s")
            self._m_breaker_opens = m.counter("reliable.breaker_opens")
            self._m_breaker_probes = m.counter("reliable.breaker_probes")
            self._m_breaker_open_s = m.histogram("reliable.breaker_open_s")
        else:
            self._m_retransmits = None
            self._m_delay = None
            self._m_breaker_opens = None
            self._m_breaker_probes = None
            self._m_breaker_open_s = None

    # -- sender side ---------------------------------------------------------

    def send(self, dst: int, kind: str, payload: Any,
             body_bytes: int) -> None:
        """Ship one message with at-least-once delivery to a live peer."""
        seq = self._next_seq
        self._next_seq += 1
        xf = _Transfer(seq, dst, kind, payload, body_bytes)
        self._pending[seq] = xf
        if kind == _WORK:
            self._pending_work += 1
        br = self._breakers.get(dst)
        if br is not None and br.state != B_CLOSED:
            # routed-around peer: park instead of transmitting — the
            # transfer stays pending (WORK still counts as in flight) and
            # is released when the half-open probe closes the breaker
            xf.parked = True
            return
        self._transmit(xf)
        self._schedule(xf)

    def on_ack(self, seq: int) -> None:
        """An RACK arrived; settle the matching transfer (dups are no-ops)."""
        xf = self._pending.pop(seq, None)
        if xf is None:
            return
        xf.done = True
        if xf.kind == _WORK:
            self._pending_work -= 1
        br = self._breakers.get(xf.dst)
        if br is not None:
            br.consecutive = 0
            if br.state != B_CLOSED:
                # any ack proves the peer reachable again — the probe's,
                # or a late data ack racing past it
                self._close_breaker(xf.dst, br)

    def has_pending_work(self) -> bool:
        """True while any WORK transfer is unacknowledged (counts as active
        for termination detection: the piece is neither here nor there)."""
        return self._pending_work > 0

    def pending_to(self, pid: int) -> list[_Transfer]:
        """Unacknowledged transfers addressed to ``pid`` (test hook)."""
        return [xf for xf in self._pending.values() if xf.dst == pid]

    # -- receiver side -------------------------------------------------------

    def register(self, src: int, seq: int) -> bool:
        """Record a delivery; False when (src, seq) was already processed."""
        seen = self._seen.setdefault(src, set())
        if seq in seen:
            return False
        seen.add(seq)
        host = self.host
        host.sim.note_reliable_delivery(host.pid, src, seq)
        return True

    def was_delivered(self, src: int, seq: int) -> bool:
        """Whether a transfer from ``src`` reached this node (stable log)."""
        return seq in self._seen.get(src, ())

    # -- internals -----------------------------------------------------------

    def _transmit(self, xf: _Transfer) -> None:
        host = self.host
        host.sim.transmit(sized(RMSG, host.pid, xf.dst,
                                (xf.seq, xf.kind, xf.payload),
                                xf.body_bytes + _ENVELOPE_BYTES))

    def _backoff(self, attempts: int) -> float:
        return min(self.timeout * (1 << min(attempts, self.retries)),
                   self.max_backoff)

    def _schedule(self, xf: _Transfer) -> None:
        xf.timer = self.host.call_after(self._backoff(xf.attempts),
                                        lambda: self._retry(xf),
                                        tag=f"rexmit@{self.host.pid}")

    def _retry(self, xf: _Transfer) -> None:
        if xf.done or xf.parked:
            return
        if self.host.sim.is_crashed(xf.dst):
            # perfect failure detection: consult ground truth instead of
            # burning the full retry ladder against a dead peer
            self.peer_crashed(xf.dst)
            return
        # Only a *repeat* timeout (the transfer was already retransmitted
        # and still got no ack) feeds the breaker: a first timeout is
        # routine under i.i.d. loss, and counting it would trip breakers
        # on healthy-but-lossy links whenever several independent
        # transfers get unlucky at once.
        if (self.breaker_threshold > 0 and xf.attempts >= 1
                and self._note_timeout(xf.dst)):
            return   # breaker tripped; this transfer is now parked
        if self._m_retransmits is not None:
            self._m_retransmits.inc()
            # the backoff that just elapsed (what _schedule armed last time)
            self._m_delay.observe(self._backoff(xf.attempts))
        xf.attempts += 1
        self.host.stats.retransmits += 1
        self._transmit(xf)
        self._schedule(xf)

    # -- circuit breaker -------------------------------------------------------

    def breaker_state(self, pid: int) -> int:
        """Current breaker state for ``pid`` (B_CLOSED when untracked)."""
        br = self._breakers.get(pid)
        return B_CLOSED if br is None else br.state

    def suspected_peers(self) -> set[int]:
        """Peers currently routed around (breaker open or half-open)."""
        return {pid for pid, br in self._breakers.items()
                if br.state != B_CLOSED}

    def breaker_snapshot(self) -> dict[int, dict[str, Any]]:
        """Per-peer breaker statistics for run reports.

        ``open_s`` includes the still-running open span of a breaker that
        has not closed by snapshot time.
        """
        now = self.host.sim.queue.now
        out: dict[int, dict[str, Any]] = {}
        for pid, br in sorted(self._breakers.items()):
            if br.opens == 0 and br.state == B_CLOSED:
                continue
            open_s = br.open_s
            if br.state != B_CLOSED:
                open_s += now - br.opened_at
            out[pid] = {"state": _STATE_NAMES[br.state], "opens": br.opens,
                        "probes": br.probes, "open_s": open_s}
        return out

    def _trace_breaker(self, peer: int, state: int) -> None:
        tracer = getattr(self.host, "tracer", None)
        if tracer is not None:
            from ..sim.trace import CIRCUIT
            tracer.record(self.host.sim.queue.now, self.host.pid, CIRCUIT,
                          float(peer * 4 + state))

    def _note_timeout(self, dst: int) -> bool:
        """Count one retransmit timeout against ``dst``; True if the
        breaker tripped (the caller's transfer must park, not resend)."""
        br = self._breakers.get(dst)
        if br is None:
            br = self._breakers[dst] = _Breaker()
        if br.state != B_CLOSED:
            # already routed around (a straggler timer fired late)
            return True
        br.consecutive += 1
        if br.consecutive < self.breaker_threshold:
            return False
        br.state = B_OPEN
        br.opens += 1
        br.opened_at = self.host.sim.queue.now
        br.probe_delay = self._backoff(0)
        self.host.stats.breaker_opens += 1
        for xf in self._pending.values():
            if xf.dst == dst and not xf.done:
                xf.parked = True
                if xf.timer is not None:
                    xf.timer.cancel()
                    xf.timer = None
        if self._m_breaker_opens is not None:
            self._m_breaker_opens.inc()
        self._trace_breaker(dst, B_OPEN)
        host = self.host
        host.call_after(br.probe_delay, lambda: self._probe(dst),
                        tag=f"cb-probe@{host.pid}")
        host.peer_suspected(dst)
        return True

    def _probe(self, dst: int) -> None:
        """Half-open: ship one heartbeat PING at the peer."""
        br = self._breakers.get(dst)
        if br is None or br.state == B_CLOSED:
            return
        host = self.host
        if host.sim.is_crashed(dst):
            # the FD (ground truth / supervisor announcement) owns death;
            # settle through the normal crash path
            self.peer_crashed(dst)
            return
        # drop the previous unanswered probe so probes don't accumulate
        if br.probe_seq is not None:
            stale = self._pending.pop(br.probe_seq, None)
            if stale is not None:
                stale.done = True
        br.state = B_HALF_OPEN
        br.probes += 1
        if self._m_breaker_probes is not None:
            self._m_breaker_probes.inc()
        self._trace_breaker(dst, B_HALF_OPEN)
        seq = self._next_seq
        self._next_seq += 1
        xf = _Transfer(seq, dst, _PING, host.pid, 8)
        self._pending[seq] = xf
        br.probe_seq = seq
        self._transmit(xf)
        # no per-transfer retry for the probe: the breaker's own timer
        # decides — unanswered means back to open with a doubled (capped)
        # probe interval
        host.call_after(br.probe_delay, lambda: self._probe_check(dst),
                        tag=f"cb-check@{host.pid}")

    def _probe_check(self, dst: int) -> None:
        br = self._breakers.get(dst)
        if br is None or br.state != B_HALF_OPEN:
            return
        br.state = B_OPEN
        br.probe_delay = min(br.probe_delay * 2, self.max_backoff)
        self._trace_breaker(dst, B_OPEN)
        self.host.call_after(br.probe_delay, lambda: self._probe(dst),
                             tag=f"cb-probe@{self.host.pid}")

    def _close_breaker(self, dst: int, br: _Breaker) -> None:
        """Probe answered: stop routing around ``dst`` and flush the park."""
        now = self.host.sim.queue.now
        br.open_s += now - br.opened_at
        if self._m_breaker_open_s is not None:
            self._m_breaker_open_s.observe(now - br.opened_at)
        br.state = B_CLOSED
        br.consecutive = 0
        br.probe_seq = None
        self._trace_breaker(dst, B_CLOSED)
        released = [xf for xf in self._pending.values()
                    if xf.dst == dst and xf.parked and not xf.done]
        for xf in released:
            xf.parked = False
            xf.attempts = 0   # the peer is back: restart the ladder fresh
            self._transmit(xf)
            self._schedule(xf)
        self.host.peer_recovered(dst)

    def peer_crashed(self, pid: int) -> None:
        """Settle every transfer to a crashed peer and notify the host.

        WORK pieces the peer never logged are recovered (merged back by the
        host); everything else — and WORK the peer *did* receive before
        crashing — is abandoned.  The retry timers reach this through the
        perfect-FD consult above; the live runtime's failure detector calls
        it directly when the supervisor announces a death.  Which log gets
        peeked is the environment's business
        (:meth:`repro.sim.engine.Simulator.peer_logged` — the simulator
        reads the peer's in-memory dedup set, the live environment reads
        the on-disk spool the dead process left behind).
        """
        host = self.host
        br = self._breakers.get(pid)
        if br is not None and br.state != B_CLOSED:
            # the suspicion resolved into a death: close the books (the
            # open span ends here) without releasing anything — the
            # settlement below owns every pending transfer
            br.open_s += host.sim.queue.now - br.opened_at
            br.state = B_CLOSED
            br.probe_seq = None
        recovered = []
        for xf in [x for x in self._pending.values() if x.dst == pid]:
            del self._pending[xf.seq]
            xf.done = True
            if xf.kind == _WORK:
                self._pending_work -= 1
                if not host.sim.peer_logged(pid, host.pid, xf.seq):
                    recovered.append(xf.payload[0])  # the work piece
        host.channel_peer_dead(pid, recovered)


__all__ = ["ReliableChannel", "RMSG", "RACK", "B_CLOSED", "B_OPEN",
           "B_HALF_OPEN"]
