"""The overlay-centric load-balancing protocol — the paper's contribution.

Protocol sketch (paper §II, DESIGN.md §7). Peers form a tree (TD/TR),
optionally extended with one random bridge per node (BTD). Work starts at
the root and flows along overlay edges; transferred amounts are
proportional to overlay subtree sizes.

An idle node searches **down first**: it probes its children sequentially,
one at a time in uniformly random order. A probed child that has work
answers with a subtree-proportional share at once; an idle child keeps the
probe queued while it hunts for work in its own subtree, and the probe
resolves either with work or with the child's own *upward request* — the
definitive "my whole subtree is finished" signal, which supersedes the
queued probe ("the parent needs not request that child"). Only when every
child is known-exhausted does the node send its single upward request,
which stays queued at the parent until work (or termination) arrives. In
parallel (BTD) each idle node keeps one asynchronous *bridge* request
outstanding; bridge requests also queue at their target. Whenever a node
with queued requests obtains work it serves them all,
subtree-proportionally, in arrival order: idle nodes "should not be
selfish" — they acquire enough work to serve their neighbourhood,
implicitly forming the paper's cooperative cluster of idle nodes.

Termination: an upward request signals a completed down phase, so when the
root is idle and every child has an upward request queued, the system is
*probably* finished — bridges (and late work deep in a subtree) can make
the signal stale, which the paper handles with aggregated work-request
accounting. We implement that accounting as the explicit four-counter
verification waves of :mod:`repro.core.termination` (with exponential
backoff between inconclusive waves): the root only declares termination
after two consecutive clean waves over the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..apps.base import Application
from ..overlay.bridges import BridgedTreeOverlay
from ..overlay.convergecast import SizeService
from ..overlay.tree import TreeOverlay
from ..sim.messages import Message
from ..sim.rng import RngStream
from ..work.sharing import LinkKind, ShareContext, get_policy
from .config import OCLBConfig
from .termination import TerminationWaves
from .worker import PING, WorkerConfig, WorkerProcess

REQ = "REQ"
NOWORK = "NOWORK"
WITHDRAW = "WITHDRAW"

#: Requester-side link labels carried by REQ and echoed in WORK channels.
UP = "up"          # request to my parent (queued there)
DOWN = "down"      # probe to one of my children (answered immediately)
BRIDGE = "bridge"  # asynchronous request over my bridge edge (queued)

_LINK_OF = {UP: LinkKind.TO_CHILD,      # an 'up' requester is my child
            DOWN: LinkKind.TO_PARENT,   # a 'down' requester is my parent
            BRIDGE: LinkKind.BRIDGE}


@dataclass(slots=True)
class _Pending:
    """A queued work request waiting for this node to have work."""

    pid: int
    link: str            # UP or BRIDGE (DOWN probes are never queued)
    subtree: int         # requester's subtree size (bridges carry it)


class OverlayWorker(WorkerProcess):
    """One peer of the overlay-centric protocol."""

    def __init__(self, pid: int, app: Application, cfg: WorkerConfig,
                 overlay: Union[TreeOverlay, BridgedTreeOverlay],
                 oclb: Optional[OCLBConfig] = None) -> None:
        super().__init__(pid, app, cfg, has_initial_work=(pid == 0))
        self.oclb = oclb or OCLBConfig()
        if isinstance(overlay, BridgedTreeOverlay):
            self.tree = overlay.tree
            self.bridge_target = overlay.bridge_of(pid)
            self.bridged = True
        else:
            self.tree = overlay
            self.bridge_target = None
            self.bridged = False
        self.parent = self.tree.parent[pid]
        self.children = list(self.tree.children[pid])
        self.policy = get_policy(self.oclb.sharing)
        self.rng = RngStream(cfg.seed, "oclb", pid)

        # subtree sizes: distributed converge-cast or instant (ablation);
        # in capacity-aware mode a node contributes its CPU speed instead
        # of 1, so shares track aggregate capacity (heterogeneity extension)
        if self.oclb.capacity_aware and not self.oclb.convergecast:
            from ..sim.errors import SimConfigError
            raise SimConfigError("capacity_aware needs the converge-cast "
                                 "bootstrap (capacities are local knowledge)")
        weight = cfg.speed if self.oclb.capacity_aware else 1.0
        self.sizes = SizeService(self, self.tree, on_ready=self._on_ready,
                                 weight=weight)
        self.child_sizes: dict[int, float] = {}
        self.ready = False
        if not self.oclb.convergecast:
            self.sizes.my_size = self.tree.subtree_size[pid]
            self.sizes.parent_size = (None if pid == 0 else
                                      self.tree.subtree_size[self.parent])
            self.child_sizes = {c: self.tree.subtree_size[c]
                                for c in self.children}
            self.sizes.ready = True

        # search state
        self.R: set[int] = set()           # children with queued upward REQs
        self.pending: list[_Pending] = []  # queued UP/BRIDGE requesters
        self.probe_target: Optional[int] = None
        self.probed: set[int] = set()      # children probed this round
        self.up_outstanding = False
        self.bridge_outstanding = False
        self._reprobe_pending = False

        self.waves = TerminationWaves(
            host=self, parent=self.parent, children=self.children,
            get_counters=self._counters, on_terminate=self.finish,
            should_wave=self._root_trigger, retry_delay=self.oclb.wave_retry,
            counters_vs=self._counters_vs, absorb_dead=self._absorb_dead,
            n_total=self.tree.n)
        self._bridge_rng: Optional[RngStream] = None  # lazy, repairs only

    # -- bootstrap ------------------------------------------------------------

    def start(self) -> None:
        super().start()
        if self.oclb.convergecast:
            self.call_after(0.0, self.sizes.start, tag=f"sizes@{self.pid}")
            if self.sim.faults is not None:
                # the converge-cast only sends child -> parent, so a parent
                # cannot notice a crashed child by itself: probe the
                # stragglers until the bootstrap completes
                self.call_after(8 * self.cfg.ack_timeout,
                                self._bootstrap_sweep,
                                tag=f"sizes-sweep@{self.pid}")
        else:
            self.ready = True

    def _bootstrap_sweep(self) -> None:
        if self.terminated or self.sizes.ready:
            return
        for c in self.sizes.waiting_children():
            if c in self.dead:
                self.sizes.child_dead(c)
            else:
                self.send(c, PING, None)
        self.call_after(8 * self.cfg.ack_timeout, self._bootstrap_sweep,
                        tag=f"sizes-sweep@{self.pid}")

    def _on_ready(self) -> None:
        self.ready = True
        if self._reliable is not None:
            # adopted children missed the static SIZE_DOWN cascade; a
            # repeat to everyone is idempotent
            from ..overlay.convergecast import SIZE_DOWN
            for c in self.children:
                self.send(c, SIZE_DOWN, self.sizes.my_size, body_bytes=8)
        self._serve_pending()
        self._search()

    @property
    def t_self(self) -> int:
        """Own subtree size (or capacity, in capacity-aware mode)."""
        return self.sizes.my_size or 1

    # -- idle search (paper §II-A) ------------------------------------------------

    def on_idle(self) -> None:
        if not self.ready or self.terminated or self.leaving:
            return
        self._search()

    def _search(self) -> None:
        if (self.terminated or self.leaving or not self.ready
                or not self.work.is_empty() or self.cpu_busy):
            return
        if (self.bridged and self.bridge_target is not None
                and not self.bridge_outstanding):
            self.bridge_outstanding = True
            self.note_steal_request()
            self.send(self.bridge_target, REQ, (BRIDGE, self.t_self),
                      body_bytes=8)
        if self.probe_target is None:
            candidates = [c for c in self.children
                          if c not in self.R and c not in self.probed
                          and c not in self.suspect]
            if candidates:
                self.probe_target = self.rng.choice(candidates)
                self.probed.add(self.probe_target)
                self.note_steal_request()
                self.send(self.probe_target, REQ, (DOWN, self.t_self),
                          body_bytes=8)
            else:
                # down phase round complete: every child is idle (NOWORK)
                # or known-exhausted — request the parent "at last" (the
                # request stays queued there), then, while still idle, keep
                # probing in fresh rounds after a short pause
                if self.parent >= 0 and not self.up_outstanding:
                    self.up_outstanding = True
                    self.note_steal_request()
                    self.send(self.parent, REQ, (UP, self.t_self),
                              body_bytes=8)
                self._schedule_reprobe()
        self._root_check()

    def _schedule_reprobe(self) -> None:
        """Start a fresh down-phase round after ``probe_retry`` seconds."""
        if self._reprobe_pending or self.terminated or self.leaving:
            return
        if all(c in self.R for c in self.children):
            return  # nothing to probe; their upward requests sit here anyway

        def fire() -> None:
            self._reprobe_pending = False
            self.probed.clear()
            self._search()

        self._reprobe_pending = True
        self.call_after(self.oclb.probe_retry, fire,
                        tag=f"reprobe@{self.pid}")

    # -- message handling ----------------------------------------------------------

    def handle(self, msg: Message) -> None:
        if self.sizes.handles(msg.kind):
            if self.sizes.handle(msg):
                from ..overlay.convergecast import SIZE_UP
                if msg.kind == SIZE_UP:
                    self.child_sizes[msg.src] = msg.payload
            return
        if self.waves.handles(msg.kind):
            self.waves.handle(msg)
            return
        if msg.kind == REQ:
            self._on_request(msg)
            return
        if msg.kind == NOWORK:
            if msg.src == self.probe_target:
                self.probe_target = None
                self._search()
            return
        if msg.kind == WITHDRAW:
            # the requester found work elsewhere; its queued request here
            # is stale — forget it (it will re-request when idle again)
            self.pending = [e for e in self.pending if e.pid != msg.src]
            self.R.discard(msg.src)
            self._search()
            return

    def _on_request(self, msg: Message) -> None:
        link, req_subtree = msg.payload
        entry = _Pending(pid=msg.src, link=link, subtree=req_subtree)
        if link == DOWN:
            # a probe from our parent: answered immediately, never queued
            if not (self.ready and self._try_serve(entry)):
                self.send(msg.src, NOWORK, None)
            return
        if link == UP:
            # the child's upward request resolves our probe to it, if any
            self.R.add(msg.src)
            if self.probe_target == msg.src:
                self.probe_target = None
        if not (self.ready and self._try_serve(entry)):
            self.pending.append(entry)
        # known-exhausted children change the search frontier; re-evaluate
        self._search()

    def on_work_received(self, msg: Message) -> None:
        channel = msg.payload[1]
        if channel == UP:
            self.up_outstanding = False
        elif channel == DOWN and msg.src == self.probe_target:
            self.probe_target = None
        elif channel == BRIDGE:
            self.bridge_outstanding = False
        if self.oclb.withdraw:
            # pull back the requests still queued elsewhere: left in place
            # they would deliver stale grants that only feed churn
            if self.up_outstanding:
                self.up_outstanding = False
                self.send(self.parent, WITHDRAW, None)
            if self.bridge_outstanding:
                self.bridge_outstanding = False
                self.send(self.bridge_target, WITHDRAW, None)
        # a fresh idle period starts a fresh down-phase round
        self.probed.clear()
        # "whenever an idle node gets work [...] it services all nodes from
        # which a work request was received" (paper §II-B3)
        self._serve_pending()

    def on_quantum_done(self, units: int) -> None:
        # work may have grown during the quantum (UTS stacks do): requests
        # that could not be served before may be servable now
        if self.pending:
            self._serve_pending()

    def quantum_boundary_quiet(self) -> bool:
        # no queued requesters, nothing to serve at the boundary; `pending`
        # only ever grows inside message handlers, so this cannot flip
        # during a fused block
        return not self.pending

    # -- serving (paper §II-B2 sharing fractions) -------------------------------------

    def _share_context(self, entry: _Pending) -> ShareContext:
        link = _LINK_OF[entry.link]
        if link is LinkKind.TO_CHILD:
            requester_t = self.child_sizes.get(entry.pid, entry.subtree)
        elif link is LinkKind.TO_PARENT:
            requester_t = self.sizes.parent_size or entry.subtree
        else:
            requester_t = entry.subtree
        return ShareContext(link=link, victim_subtree=self.t_self,
                            requester_subtree=max(1e-9, requester_t),
                            work_amount=self.work.amount())

    def _try_serve(self, entry: _Pending) -> bool:
        """Serve one requester; False when nothing can be given."""
        if self.work.is_empty() or not self.ready:
            return False
        piece = self.work.split(self.policy.fraction(self._share_context(entry)))
        if piece is None:
            return False
        self.send_work(entry.pid, piece, channel=entry.link)
        if entry.link == UP:
            self.R.discard(entry.pid)
        return True

    def _serve_pending(self) -> None:
        if not self.pending:
            return
        still = []
        for entry in self.pending:
            if not self._try_serve(entry):
                still.append(entry)
        self.pending = still

    def gossip_targets(self) -> list[int]:
        """Bound diffusion goes to overlay neighbours (+ my bridge target)."""
        out = list(self.children)
        if self.parent >= 0:
            out.append(self.parent)
        if self.bridged and self.bridge_target is not None:
            out.append(self.bridge_target)
        return out

    # -- crash repair (only reached when fault injection is active) ---------------------

    def static_parent(self, pid: int) -> int:
        return self.tree.parent[pid]

    def static_children(self, pid: int):
        return self.tree.children[pid]

    def _repair_parent(self) -> int:
        return self.parent

    def _current_children(self):
        return self.children

    def _attach_size(self) -> float:
        return self.sizes.my_size or 0

    def _set_parent_link(self, pid: int) -> None:
        self.parent = pid
        self.waves.set_parent(pid)
        # the upward request queued at the dead parent is gone with it
        self.up_outstanding = False

    def _add_child_link(self, pid: int, size: float) -> None:
        if pid not in self.children:
            self.children.append(pid)
        self.child_sizes[pid] = size or self.tree.subtree_size[pid]
        self.waves.add_child(pid)

    def _drop_child(self, pid: int) -> None:
        if pid in self.children:
            self.children.remove(pid)
        self.R.discard(pid)
        self.child_sizes.pop(pid, None)
        self.probed.discard(pid)
        self.sizes.child_dead(pid)
        self.waves.child_dead(pid)

    def _on_new_parent(self, pid: int, size: float) -> None:
        if size:
            self.sizes.note_parent_size(size)
        if not self.terminated and self.ready:
            self._search()

    def on_leave(self) -> None:
        """Retract our queued requests so nobody grants work to a node on
        its way out; queued requesters *at* this node stay — serving them
        while draining only sheds the pool faster, and whoever is still
        unserved re-requests once the departure is announced."""
        if self.up_outstanding and self.parent >= 0 \
                and self.parent not in self.dead:
            self.send(self.parent, WITHDRAW, None)
        self.up_outstanding = False
        if (self.bridged and self.bridge_outstanding
                and self.bridge_target is not None
                and self.bridge_target not in self.dead):
            self.send(self.bridge_target, WITHDRAW, None)
        self.bridge_outstanding = False
        self.probe_target = None

    def peer_joined(self, pid: int, parent: int) -> None:
        """Graft a mid-run joiner (live elastic membership) as a new leaf.

        Every member applies the same graft, so the static tree the splice
        machinery walks stays identical fleet-wide; the joiner announces
        itself with ATTACH, which flows through the ordinary
        :meth:`_add_child_link` adoption at its parent.
        """
        if pid < self.tree.n:
            return                      # duplicate announcement
        if pid != self.tree.n:
            from ..sim.errors import SimRuntimeError
            raise SimRuntimeError(
                f"out-of-order join announcement: got pid {pid}, "
                f"expected {self.tree.n}")
        from ..overlay.tree import graft_leaf
        self.tree = graft_leaf(self.tree, parent)
        self.sizes.tree = self.tree     # only own links are read; idem here
        self.waves.note_join()

    def on_peer_dead(self, pid: int) -> None:
        if self.bridged and pid == self.bridge_target:
            self.bridge_outstanding = False
            self.bridge_target = self._pick_live_bridge()
        if self.probe_target == pid:
            self.probe_target = None
        self.pending = [e for e in self.pending if e.pid != pid]
        self.R.discard(pid)
        if not self.terminated and self.ready:
            self._search()

    def on_peer_suspected(self, pid: int) -> None:
        """Circuit breaker opened on ``pid``: stop waiting on it. The
        suspect keeps its queued requests (it is alive; serving it later
        is correct) but stops being a probe or bridge target."""
        if self.bridged and pid == self.bridge_target:
            self.bridge_outstanding = False
            self.bridge_target = self._pick_live_bridge()
        if self.probe_target == pid:
            self.probe_target = None
        if not self.terminated and self.ready:
            self._search()

    def on_peer_recovered(self, pid: int) -> None:
        """Breaker closed: ``pid`` is fair game again; re-enter the search
        (and let the root resume verification waves)."""
        if not self.terminated and self.ready:
            self._search()
        self._root_check()

    def _pick_live_bridge(self) -> Optional[int]:
        live = [p for p in range(self.tree.n)
                if p != self.pid and p not in self.dead
                and p not in self.suspect]
        if not live:
            # everyone else is dead or routed around; fall back to the
            # dead-exclusion set so a later recovery can still serve us
            live = [p for p in range(self.tree.n)
                    if p != self.pid and p not in self.dead]
        if not live:
            return None
        if self._bridge_rng is None:
            self._bridge_rng = RngStream(self.cfg.seed, "bridge-repair",
                                         self.pid)
        return self._bridge_rng.choice(live)

    # -- termination ----------------------------------------------------------------------

    def _root_trigger(self) -> bool:
        if (self.pid != 0 or self.terminated or not self.ready
                or not self.work.is_empty() or self.cpu_busy):
            return False
        if self._reliable is not None:
            # crashed children never file an upward request; the waves'
            # coverage counting takes over the completeness role of R
            return True
        return len(self.R) == len(self.children)

    def _root_check(self) -> None:
        if self._root_trigger():
            self.waves.root_try()

    def _counters(self) -> tuple[int, int, bool]:
        st = self.stats
        return (st.work_msgs_sent, st.work_msgs_received,
                not self.work.is_empty() or self.cpu_busy)


__all__ = ["OverlayWorker", "REQ", "NOWORK", "UP", "DOWN", "BRIDGE"]
