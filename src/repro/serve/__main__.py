"""``python -m repro.serve``: start the work-distribution daemon."""

import sys

from .daemon import serve_main

if __name__ == "__main__":
    sys.exit(serve_main())
