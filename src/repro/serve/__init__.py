"""`repro.serve`: a long-lived work-distribution service over the live runtime.

Where :mod:`repro.runtime` executes **one** run per fleet — spawn workers,
run, collect, tear down — this package keeps the fleet *warm* and feeds it
a **stream** of jobs: ``python -m repro.serve`` starts a daemon that owns
persistent worker processes (:mod:`repro.serve.jobhost`), accepts job
specs over a small newline-JSON API (:mod:`repro.serve.daemon`), and
multiplexes the jobs onto the warm fleet (:mod:`repro.serve.fleet`)
instead of paying interpreter + import + handshake per run.

The resilience patterns the service layer implements:

* **queue-based load leveling** — a bounded FIFO job queue decouples the
  submission rate from the execution rate; ``status`` responses carry the
  queue position and an ETA estimate;
* **admission control / throttling** — once the queue is full (or the
  daemon is draining) a submission is *rejected* with a structured
  ``busy`` / ``draining`` error instead of queueing without bound;
* **bulkhead isolation** — the fleet is partitioned into *lanes* (one
  in-flight job per lane, each lane its own worker processes): a poisoned
  spec, a crash or a timeout is contained to its lane and never takes
  down the daemon or the jobs running in other lanes;
* **dead-letter records** — a job that cannot complete (build error,
  worker death, timeout) is recorded with its spec, error and traceback,
  retrievable via the API;
* **graceful drain / rolling restart** — ``drain`` stops admission and
  completes every accepted job; ``restart`` recycles the lanes one at a
  time (SIGTERM-clean worker exits, fresh respawns) while the other
  lanes keep serving, losing zero accepted jobs.

See ``docs/serve.md`` for the API schema and lifecycle details, and
:mod:`repro.serve.loadgen` for the sustained-traffic benchmark client.
"""

from .daemon import ServeConfig, ServeDaemon, serve_main

__all__ = ["ServeConfig", "ServeDaemon", "serve_main"]
