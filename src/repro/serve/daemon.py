"""The serve daemon: bounded queue, admission control, lanes, JSON API.

``python -m repro.serve`` starts one daemon process.  It owns:

* the **API listener** (TCP loopback or a UNIX socket) — one thread per
  client connection, newline-JSON requests in, newline-JSON responses
  out (:mod:`repro.serve.protocol`);
* the **job queue** — a bounded FIFO.  Admission control happens at
  ``submit`` time: a full queue answers ``busy`` (with depth and a
  retry hint), a draining daemon answers ``draining``; nothing is ever
  queued unboundedly, which is what keeps the daemon's latency and
  memory flat under overload (queue-based load leveling);
* the **lanes** (:class:`~repro.serve.fleet.Lane`) — warm worker fleets
  pulling jobs from the queue, at most one job in flight per lane (the
  in-flight ceiling doubles as the bulkhead count);
* the **dead-letter store** — every job that terminally failed, with
  its spec, error and traceback, capped at a configured size;
* the **lifecycle ops** — ``drain`` (stop admitting, finish everything
  accepted), ``resume``, ``restart`` (rolling lane recycle: each lane
  rebuilt between jobs, one at a time, so capacity never drops by more
  than one lane and no accepted job is lost) and ``shutdown``.

SIGTERM and SIGINT trigger drain-then-exit — the same orderly teardown
contract the one-shot supervisor honours, extended to a server: stop
admitting, let every accepted job reach ``done`` or the dead-letter
store, then reap the lanes and release the sockets.
"""

from __future__ import annotations

import argparse
import collections
import os
import signal
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Optional

from ..sim.errors import SimConfigError
from .fleet import Lane
from .protocol import (BadRequest, SERVE_PROTOCOLS, error_response,
                       format_address, read_line, validate_app, validate_run,
                       write_line)

#: Smoothing of the execution-time EWMA behind the queue-ETA estimate.
_EWMA_ALPHA = 0.3


@dataclass(slots=True)
class ServeConfig:
    """One daemon (defaults favour a small local service)."""

    transport: str = "tcp"          # API + lane transport
    host: str = "127.0.0.1"
    port: int = 0                   # API port; 0 = ephemeral
    socket_path: Optional[str] = None   # unix API socket (default: run_dir)
    lanes: int = 2                  # concurrent jobs = warm fleets
    n: int = 2                      # workers per lane
    protocol: str = "BTD"           # default per-job run config ...
    quantum: int = 64
    seed: int = 0
    dmax: int = 10
    sharing: str = "proportional"
    p2p: bool = False               # lanes run a p2p data plane
    queue_limit: int = 16           # bounded FIFO; beyond this -> busy
    max_inflight: int = 0           # concurrent jobs ceiling; 0 = lanes
    job_timeout_s: float = 60.0     # default per-job deadline
    dead_letter_limit: int = 200
    run_dir: Optional[str] = None   # artifacts dir (default: a tempdir)
    boot_timeout_s: float = 60.0    # lane fleet handshake ceiling

    def __post_init__(self) -> None:
        if self.protocol not in SERVE_PROTOCOLS:
            raise SimConfigError(
                f"protocol {self.protocol!r} not servable "
                f"(live-validated: {', '.join(SERVE_PROTOCOLS)})")
        if self.transport not in ("tcp", "unix"):
            raise SimConfigError(f"unknown transport {self.transport!r}")
        if self.lanes < 1:
            raise SimConfigError("need at least one lane")
        if self.n < 2:
            raise SimConfigError("a lane needs at least 2 workers")
        if self.queue_limit < 1:
            raise SimConfigError("queue_limit must be >= 1")
        if not self.max_inflight:
            self.max_inflight = self.lanes
        if not (1 <= self.max_inflight <= self.lanes):
            raise SimConfigError("max_inflight must be in [1, lanes]")
        if self.job_timeout_s <= 0:
            raise SimConfigError("job_timeout_s must be positive")


class Job:
    """One accepted submission, through its whole lifecycle."""

    __slots__ = ("id", "app", "run", "timeout_s", "state", "t_submit",
                 "t_start", "t_done", "lane", "epoch", "outcome", "error",
                 "traceback")

    def __init__(self, job_id: str, app: dict, run: dict,
                 timeout_s: float) -> None:
        self.id = job_id
        self.app = app
        self.run = run
        self.timeout_s = timeout_s
        self.state = "queued"        # queued|running|done|dead
        self.t_submit = time.time()
        self.t_start: Optional[float] = None
        self.t_done: Optional[float] = None
        self.lane: Optional[int] = None
        self.epoch: Optional[int] = None
        self.outcome: Optional[dict] = None
        self.error: Optional[str] = None
        self.traceback: Optional[str] = None


class ServeDaemon:
    """The long-lived service (see module docstring)."""

    def __init__(self, cfg: ServeConfig) -> None:
        self.cfg = cfg
        self.run_dir: Optional[str] = None
        self._cond = threading.Condition()
        self._queue: collections.deque[Job] = collections.deque()
        self._jobs: dict[str, Job] = {}
        self._dead_letters: collections.deque[dict] = collections.deque(
            maxlen=cfg.dead_letter_limit)
        self._lanes: list[Lane] = []
        self._lane_failures: list[str] = []
        self._seq = 0
        self._running = 0
        self._draining = False
        self._stopping = False
        self._accepted = 0
        self._completed = 0
        self._dead = 0
        self._rejected_busy = 0
        self._rejected_draining = 0
        self._ewma_exec_s = 1.0
        self._t0 = time.time()
        self._listener = None
        self._address: Optional[tuple] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._clients: list[threading.Thread] = []
        self._shutdown_ev = threading.Event()
        self._signals: list[int] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple:
        """Open the API listener and boot the lanes; returns the address."""
        cfg = self.cfg
        self.run_dir = cfg.run_dir or tempfile.mkdtemp(prefix="repro-serve-")
        os.makedirs(self.run_dir, exist_ok=True)
        from ..runtime.transport import open_listener
        if cfg.transport == "unix":
            path = cfg.socket_path or os.path.join(self.run_dir, "api.sock")
            self._listener, ep = open_listener("unix", path=path)
            self._address = ("unix", ep["path"])
        else:
            self._listener, ep = open_listener("tcp", host=cfg.host,
                                               port=cfg.port)
            self._address = ("tcp", ep["host"], ep["port"])
        self._listener.settimeout(0.5)
        self._lanes = [Lane(i, cfg, self.run_dir, self)
                       for i in range(cfg.lanes)]
        for lane in self._lanes:
            lane.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="serve-accept")
        self._accept_thread.start()
        return self._address

    @property
    def address(self) -> Optional[tuple]:
        return self._address

    def serve_forever(self) -> None:
        """Block until ``shutdown`` (API op or SIGTERM/SIGINT drain)."""
        while not self._shutdown_ev.is_set():
            if self._signals:
                self.drain(wait=True, timeout_s=300.0)
                break
            self._shutdown_ev.wait(0.2)
        self.stop()

    def stop(self) -> None:
        """Tear everything down (idempotent)."""
        with self._cond:
            self._stopping = True
            self._draining = True
            self._cond.notify_all()
        for lane in self._lanes:
            lane.stop()
        for lane in self._lanes:
            lane.join(timeout=30.0)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
            if self._address and self._address[0] == "unix":
                from ..runtime.transport import unlink_quietly
                unlink_quietly(self._address[1])
        self._shutdown_ev.set()

    def _on_signal(self, signum, _frame) -> None:
        self._signals.append(signum)

    # -- lane source interface ----------------------------------------------

    def _try_pop(self) -> Optional[Job]:
        if (self._queue and self._running < self.cfg.max_inflight
                and not self._stopping):
            job = self._queue.popleft()
            job.state = "running"
            self._running += 1
            return job
        return None

    def next_job(self, lane: Lane) -> Optional[Job]:
        with self._cond:
            job = self._try_pop()
            if job is None and not self._stopping:
                self._cond.wait(0.2)
                job = self._try_pop()
            return job

    def job_finished(self, job: Job, outcome: dict) -> None:
        with self._cond:
            job.state = "done"
            job.t_done = time.time()
            job.outcome = outcome
            self._running -= 1
            self._completed += 1
            exec_s = job.t_done - job.t_start
            self._ewma_exec_s = (_EWMA_ALPHA * exec_s
                                 + (1 - _EWMA_ALPHA) * self._ewma_exec_s)
            self._cond.notify_all()

    def job_dead(self, job: Job, error: str, tb: str) -> None:
        with self._cond:
            job.state = "dead"
            job.t_done = time.time()
            job.error = error
            job.traceback = tb
            self._running -= 1
            self._dead += 1
            self._dead_letters.append({
                "job_id": job.id, "app": job.app, "run": job.run,
                "lane": job.lane, "error": error, "traceback": tb,
                "t": job.t_done})
            self._cond.notify_all()

    def lane_failed(self, lane: Lane, tb: str) -> None:
        with self._cond:
            self._lane_failures.append(
                f"lane {lane.lane_id}: {tb.strip().splitlines()[-1]}")
            self._cond.notify_all()

    # -- API ops -------------------------------------------------------------

    def _eta_s(self, position: int) -> float:
        """Crude queue ETA: how many service slots must turn over before
        this position runs, times the smoothed execution time."""
        servers = max(1, sum(1 for ln in self._lanes
                             if ln.state not in ("failed", "stopped")))
        return round(self._ewma_exec_s * (1.0 + position / servers), 3)

    def op_submit(self, req: dict) -> dict:
        try:
            app = validate_app(req.get("app"))
            run = validate_run(req.get("run"))
            timeout_s = float(req.get("timeout_s", self.cfg.job_timeout_s))
            if not (0 < timeout_s <= 3600):
                raise BadRequest("timeout_s out of range (0, 3600]")
        except BadRequest as exc:
            return error_response("bad-request", detail=str(exc))
        with self._cond:
            if self._draining or self._stopping:
                self._rejected_draining += 1
                return error_response("draining")
            if len(self._queue) >= self.cfg.queue_limit:
                self._rejected_busy += 1
                return error_response(
                    "busy", queue_depth=len(self._queue),
                    queue_limit=self.cfg.queue_limit,
                    retry_after_s=self._eta_s(0))
            self._seq += 1
            job = Job(f"j{self._seq:06d}", app, run, timeout_s)
            position = len(self._queue)
            self._queue.append(job)
            self._jobs[job.id] = job
            self._accepted += 1
            self._cond.notify_all()
            return {"ok": True, "job_id": job.id, "position": position,
                    "eta_s": self._eta_s(position)}

    def _job_of(self, req: dict) -> Job:
        job = self._jobs.get(req.get("job_id"))
        if job is None:
            raise BadRequest(f"unknown job_id {req.get('job_id')!r}")
        return job

    def op_status(self, req: dict) -> dict:
        with self._cond:
            try:
                job = self._job_of(req)
            except BadRequest as exc:
                return error_response("unknown-job", detail=str(exc))
            out = {"ok": True, "job_id": job.id, "state": job.state}
            if job.state == "queued":
                try:
                    position = list(self._queue).index(job)
                except ValueError:     # popped between checks
                    position = 0
                out["position"] = position
                out["eta_s"] = self._eta_s(position)
            elif job.state == "running":
                out["lane"] = job.lane
                out["elapsed_s"] = round(time.time() - job.t_start, 3)
            elif job.state == "done":
                oc = job.outcome
                out.update(makespan=oc["makespan"],
                           total_units=oc["total_units"],
                           optimum=oc["optimum"], lane=job.lane,
                           queue_s=round(job.t_start - job.t_submit, 6),
                           exec_s=round(job.t_done - job.t_start, 6))
            else:   # dead
                out["error"] = job.error
                out["lane"] = job.lane
            return out

    def op_result(self, req: dict) -> dict:
        with self._cond:
            try:
                job = self._job_of(req)
            except BadRequest as exc:
                return error_response("unknown-job", detail=str(exc))
            if job.state == "dead":
                return {"ok": True, "job_id": job.id, "state": "dead",
                        "error": job.error, "traceback": job.traceback}
            if job.state != "done":
                return error_response("not-done", state=job.state)
            oc = dict(job.outcome)
            oc.pop("report", None)
            return {"ok": True, "job_id": job.id, "state": "done", **oc}

    def op_report(self, req: dict) -> dict:
        with self._cond:
            try:
                job = self._job_of(req)
            except BadRequest as exc:
                return error_response("unknown-job", detail=str(exc))
            if job.state != "done":
                return error_response("not-done", state=job.state)
            return {"ok": True, "job_id": job.id,
                    "report": job.outcome["report"]}

    def op_stats(self, _req: dict) -> dict:
        with self._cond:
            return {"ok": True,
                    "accepted": self._accepted,
                    "completed": self._completed,
                    "dead_lettered": self._dead,
                    "rejected_busy": self._rejected_busy,
                    "rejected_draining": self._rejected_draining,
                    "queue_depth": len(self._queue),
                    "queue_limit": self.cfg.queue_limit,
                    "running": self._running,
                    "max_inflight": self.cfg.max_inflight,
                    "draining": self._draining,
                    "ewma_exec_s": round(self._ewma_exec_s, 6),
                    "uptime_s": round(time.time() - self._t0, 3),
                    "lane_failures": list(self._lane_failures),
                    "lanes": [ln.snapshot() for ln in self._lanes]}

    def op_fleet(self, _req: dict) -> dict:
        return {"ok": True, "p2p": self.cfg.p2p, "n": self.cfg.n,
                "lanes": [ln.snapshot() for ln in self._lanes]}

    def op_dead_letters(self, req: dict) -> dict:
        limit = int(req.get("limit", 50))
        with self._cond:
            records = list(self._dead_letters)[-limit:]
        return {"ok": True, "count": len(records), "dead_letters": records}

    def drain(self, wait: bool, timeout_s: float = 300.0) -> dict:
        with self._cond:
            self._draining = True
            self._cond.notify_all()
        drained = self._wait_drained(timeout_s) if wait else False
        with self._cond:
            return {"ok": True, "draining": True, "drained": drained,
                    "queue_depth": len(self._queue),
                    "running": self._running}

    def _wait_drained(self, timeout_s: float) -> bool:
        end = time.monotonic() + timeout_s
        with self._cond:
            while self._queue or self._running:
                left = end - time.monotonic()
                if left <= 0:
                    return False
                self._cond.wait(min(0.2, left))
            return True

    def op_drain(self, req: dict) -> dict:
        return self.drain(wait=bool(req.get("wait", True)),
                          timeout_s=float(req.get("timeout_s", 300.0)))

    def op_resume(self, _req: dict) -> dict:
        with self._cond:
            if not self._stopping:
                self._draining = False
            return {"ok": True, "draining": self._draining}

    def op_restart(self, _req: dict) -> dict:
        """Rolling restart: recycle lanes one at a time, between jobs.

        Serialised on purpose — capacity never drops by more than one
        lane, and a lane is only rebuilt at a job boundary, so every
        accepted job still runs to completion: zero-loss by construction.
        """
        per_lane = self.cfg.job_timeout_s + self.cfg.boot_timeout_s + 30.0
        restarted, failed = [], []
        for lane in self._lanes:
            if lane.state in ("failed", "stopped"):
                failed.append(lane.lane_id)
                continue
            ev = lane.request_recycle()
            if ev.wait(timeout=per_lane) and lane.state != "failed":
                restarted.append(lane.lane_id)
            else:
                failed.append(lane.lane_id)
        return {"ok": not failed, "restarted": restarted, "failed": failed}

    def op_shutdown(self, req: dict) -> dict:
        resp = self.drain(wait=bool(req.get("wait", True)),
                          timeout_s=float(req.get("timeout_s", 300.0)))
        self._shutdown_ev.set()
        return {"ok": True, "shutdown": True, "drained": resp["drained"]}

    def op_ping(self, _req: dict) -> dict:
        return {"ok": True, "pong": True,
                "address": format_address(self._address)}

    _OPS = {"ping": op_ping, "submit": op_submit, "status": op_status,
            "result": op_result, "report": op_report, "stats": op_stats,
            "fleet": op_fleet, "dead_letters": op_dead_letters,
            "drain": op_drain, "resume": op_resume, "restart": op_restart,
            "shutdown": op_shutdown}

    # -- API server ----------------------------------------------------------

    def _accept_loop(self) -> None:
        import socket as socket_mod
        while not self._shutdown_ev.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket_mod.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(target=self._serve_client, args=(sock,),
                                 daemon=True)
            t.start()
            self._clients = [c for c in self._clients if c.is_alive()]
            self._clients.append(t)

    def _serve_client(self, sock) -> None:
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            while True:
                try:
                    req = read_line(rfile)
                except (ValueError, BadRequest) as exc:
                    write_line(wfile, error_response("bad-request",
                                                     detail=str(exc)))
                    continue
                if req is None:
                    return
                write_line(wfile, self._dispatch(req))
                if req.get("op") == "shutdown":
                    return
        except (OSError, ValueError):
            pass   # client vanished mid-exchange
        finally:
            for f in (rfile, wfile):
                try:
                    f.close()
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass

    def _dispatch(self, req: dict) -> dict:
        handler = self._OPS.get(req.get("op"))
        if handler is None:
            return error_response("unknown-op", op=req.get("op"),
                                  known=sorted(self._OPS))
        try:
            return handler(self, req)
        except Exception:
            tb = traceback.format_exc()
            return error_response("internal-error",
                                  detail=tb.strip().splitlines()[-1])


# -- CLI ----------------------------------------------------------------------

def serve_main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="long-lived work-distribution service over one warm "
                    "live worker fleet (see docs/serve.md)")
    ap.add_argument("--transport", choices=("tcp", "unix"), default="tcp")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0,
                    help="API port (0 = ephemeral, printed at startup)")
    ap.add_argument("--socket", default=None, metavar="PATH",
                    help="unix API socket path (implies --transport unix)")
    ap.add_argument("--lanes", type=int, default=2,
                    help="concurrent jobs = independent warm fleets")
    ap.add_argument("--n", type=int, default=2,
                    help="workers per lane")
    ap.add_argument("--protocol", default="BTD", choices=SERVE_PROTOCOLS)
    ap.add_argument("--quantum", type=int, default=64)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--dmax", type=int, default=10)
    ap.add_argument("--sharing", default="proportional")
    ap.add_argument("--p2p", action="store_true",
                    help="worker-to-worker data plane inside each lane")
    ap.add_argument("--queue-limit", type=int, default=16)
    ap.add_argument("--max-inflight", type=int, default=0,
                    help="0 = one job per lane")
    ap.add_argument("--job-timeout", type=float, default=60.0)
    ap.add_argument("--run-dir", default=None)
    args = ap.parse_args(argv)
    cfg = ServeConfig(
        transport="unix" if args.socket else args.transport,
        host=args.host, port=args.port, socket_path=args.socket,
        lanes=args.lanes, n=args.n, protocol=args.protocol,
        quantum=args.quantum, seed=args.seed, dmax=args.dmax,
        sharing=args.sharing, p2p=args.p2p, queue_limit=args.queue_limit,
        max_inflight=args.max_inflight, job_timeout_s=args.job_timeout,
        run_dir=args.run_dir)
    daemon = ServeDaemon(cfg)
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, daemon._on_signal)
    address = daemon.start()
    print(f"repro.serve listening on {format_address(address)} "
          f"(lanes={cfg.lanes} n={cfg.n} protocol={cfg.protocol}"
          f"{' p2p' if cfg.p2p else ''})", flush=True)
    daemon.serve_forever()
    print("repro.serve drained and stopped", flush=True)
    return 0


__all__ = ["Job", "ServeConfig", "ServeDaemon", "serve_main"]
