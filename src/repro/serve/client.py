"""Client side of the serve API: one socket, newline-JSON request/response.

The protocol is strictly one response per request on a single connection,
so the client is a thin synchronous wrapper; it is **not** thread-safe —
give each submitter thread its own :class:`ServeClient` (they are cheap:
one socket each).
"""

from __future__ import annotations

import socket
import time
from typing import Optional, Union

from ..sim.errors import SimRuntimeError
from .protocol import parse_address, read_line, write_line


class ServeClientError(SimRuntimeError):
    """The daemon is unreachable or closed the connection mid-exchange."""


def connect_address(address: tuple, timeout: float = 10.0) -> socket.socket:
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address[1])
    else:
        sock = socket.create_connection((address[1], address[2]),
                                        timeout=timeout)
    sock.settimeout(timeout)
    return sock


class ServeClient:
    """One connection to a serve daemon.

    ``address`` is either the tuple :meth:`repro.serve.daemon.ServeDaemon.
    start` returned (``("tcp", host, port)`` / ``("unix", path)``) or the
    string form (``tcp:HOST:PORT`` / ``unix:/path``).
    """

    def __init__(self, address: Union[tuple, str],
                 timeout: float = 30.0) -> None:
        self.address = (parse_address(address) if isinstance(address, str)
                        else tuple(address))
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None

    # -- plumbing ------------------------------------------------------------

    def connect(self, retry_for_s: float = 0.0) -> "ServeClient":
        """Open the socket; optionally retry (a daemon still booting)."""
        deadline = time.monotonic() + retry_for_s
        while True:
            try:
                self._sock = connect_address(self.address, self.timeout)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        return self

    def close(self) -> None:
        for f in (self._rfile, self._wfile, self._sock):
            if f is not None:
                try:
                    f.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "ServeClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def request(self, op: str, **fields) -> dict:
        if self._sock is None:
            self.connect()
        req = {"op": op}
        req.update(fields)
        try:
            write_line(self._wfile, req)
            resp = read_line(self._rfile)
        except (OSError, ValueError) as exc:
            self.close()
            raise ServeClientError(f"daemon connection failed during "
                                   f"{op!r}: {exc}") from exc
        if resp is None:
            self.close()
            raise ServeClientError(f"daemon closed the connection "
                                   f"during {op!r}")
        return resp

    # -- ops -----------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, app: dict, run: Optional[dict] = None,
               timeout_s: Optional[float] = None) -> dict:
        fields: dict = {"app": app}
        if run is not None:
            fields["run"] = run
        if timeout_s is not None:
            fields["timeout_s"] = timeout_s
        return self.request("submit", **fields)

    def status(self, job_id: str) -> dict:
        return self.request("status", job_id=job_id)

    def result(self, job_id: str) -> dict:
        return self.request("result", job_id=job_id)

    def report(self, job_id: str) -> dict:
        return self.request("report", job_id=job_id)

    def stats(self) -> dict:
        return self.request("stats")

    def fleet(self) -> dict:
        return self.request("fleet")

    def dead_letters(self, limit: int = 50) -> dict:
        return self.request("dead_letters", limit=limit)

    def drain(self, wait: bool = True, timeout_s: float = 300.0) -> dict:
        return self.request("drain", wait=wait, timeout_s=timeout_s)

    def resume(self) -> dict:
        return self.request("resume")

    def restart(self) -> dict:
        return self.request("restart")

    def shutdown(self, wait: bool = True, timeout_s: float = 300.0) -> dict:
        return self.request("shutdown", wait=wait, timeout_s=timeout_s)

    # -- conveniences --------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.02) -> dict:
        """Poll ``status`` until the job is terminal (done or dead)."""
        deadline = time.monotonic() + timeout
        while True:
            st = self.status(job_id)
            if not st.get("ok") or st.get("state") in ("done", "dead"):
                return st
            if time.monotonic() > deadline:
                raise ServeClientError(
                    f"job {job_id} not terminal after {timeout}s "
                    f"(state {st.get('state')!r})")
            time.sleep(poll)

    def submit_retry(self, app: dict, run: Optional[dict] = None,
                     timeout_s: Optional[float] = None,
                     retry_for_s: float = 120.0,
                     backoff0_s: float = 0.05) -> tuple[dict, int]:
        """Submit, retrying structured ``busy`` rejections with capped
        exponential backoff.  Returns ``(accept_response, rejections)``;
        any non-busy rejection is returned immediately."""
        deadline = time.monotonic() + retry_for_s
        backoff = backoff0_s
        rejections = 0
        while True:
            resp = self.submit(app, run=run, timeout_s=timeout_s)
            if resp.get("ok") or resp.get("error") != "busy":
                return resp, rejections
            rejections += 1
            if time.monotonic() > deadline:
                return resp, rejections
            hint = resp.get("retry_after_s")
            delay = min(backoff, 1.0)
            if isinstance(hint, (int, float)) and hint > 0:
                delay = min(max(delay, 0.2 * float(hint)), 2.0)
            time.sleep(delay)
            backoff = min(backoff * 2, 1.0)


__all__ = ["ServeClient", "ServeClientError", "connect_address"]
