"""Persistent worker: ``python -m repro.serve.jobhost '<json>'``.

Where :mod:`repro.runtime.worker` lives for exactly one run, a job host
is spawned **once** per lane slot and then executes an unbounded stream
of jobs: connect, ``hello``, wait for the lane's ``init`` (the p2p peer
table), then alternate between an *idle* wait and a *job* reactor.  Each
``job`` frame carries the app spec, the run overrides and an **epoch** —
a lane-wide counter that stamps every protocol frame of the job (the
``"j"`` tag :attr:`repro.runtime.env.LiveEnv.frame_tag` injects).  A
frame whose epoch is not the current one is a straggler from a previous
job on the same warm connections and is dropped on receipt; the idle
state likewise discards protocol frames.  That filter is what makes the
multiplexing safe: termination detection guarantees a finishing job is
globally quiet *except* for droppable wave/ack chatter, and the tag makes
sure none of that chatter leaks into the next job's state.

Per job the host builds a fresh application, protocol worker and
:class:`~repro.runtime.env.LiveEnv` (fresh timer queue, fresh stats) via
the exact factories the one-shot worker uses, so a served run and a
spawned run execute identical protocol code.  The p2p mesh, by contrast,
is **shared across jobs** — that is the point of serving warm: peer
connections are dialled once and reused, and the ``done`` report carries
per-job *deltas* of the mesh's link counters.

Failure containment (the lane's bulkhead relies on these):

* an exception while building or executing a job — including the
  ``SystemExit`` an unknown app kind raises — is caught and reported as
  ``job_error`` with the traceback; the host itself survives and returns
  to idle (poisoned specs must not cost a process);
* an ``abort`` order (the lane saw a sibling fail) unwinds the current
  job and acks with ``aborted``;
* lane EOF or ``shutdown`` exits the process; a hard per-job deadline
  (double the lane's own timeout) is the last-resort backstop against a
  wedged application — the lane notices the EOF and recycles.
"""

from __future__ import annotations

import collections
import json
import os
import signal
import sys
import time
import traceback
from selectors import EVENT_READ, EVENT_WRITE, DefaultSelector

from ..experiments.runner import worker_factory
from ..obs.registry import MetricsRegistry
from ..runtime.codec import message_from_frame, stats_to_wire
from ..runtime.env import LiveEnv
from ..runtime.mesh import PeerMesh, open_peer_listener
from ..runtime.transport import FramedConnection, connect_endpoint
from ..runtime.worker import IDLE_TICK_S, build_app, build_run_config

#: Hello -> init handshake ceiling (covers sibling interpreter starts).
INIT_TIMEOUT_S = 60.0


class _Exit(Exception):
    """Unwind the host (code carried to sys.exit)."""

    def __init__(self, code: int) -> None:
        self.code = code


class JobHost:
    """Reactor state of one persistent worker process."""

    def __init__(self, cfg: dict) -> None:
        self.cfg = cfg
        self.pid = int(cfg["pid"])
        self.slots = int(cfg["slots"])
        self.sel = DefaultSelector()
        self._interest: dict[int, int] = {}
        self.conn: FramedConnection = None      # lane control connection
        self.mesh: PeerMesh = None
        self.epoch = -1                          # current job epoch (-1 idle)
        self._env: LiveEnv = None
        self._seen_epoch = -1                    # newest job frame handled
        #: control frames received but not yet consumed.  The lane sends
        #: control back-to-back (``init`` then ``job``, ``job_end`` then
        #: the next ``job``), so one socket drain can surface several —
        #: consumers must pop exactly what they handle and leave the rest.
        self._ctrl: collections.deque[dict] = collections.deque()
        #: protocol frames from an epoch *ahead* of us — a faster sibling
        #: started the job before our own ``job`` frame arrived; replayed
        #: at job start (stragglers from completed epochs are dropped)
        self._early: list[dict] = []

    # -- selector plumbing (same shape as the one-shot worker) ---------------

    def _set_interest(self, sock, flags, data) -> None:
        fd = sock.fileno()
        if fd < 0:
            return
        if fd not in self._interest:
            self.sel.register(sock, flags, data)
            self._interest[fd] = flags
        elif self._interest[fd] != flags:
            self.sel.modify(sock, flags, data)
            self._interest[fd] = flags

    def _forget_sock(self, sock) -> None:
        fd = sock.fileno()
        if fd in self._interest:
            self.sel.unregister(sock)
            del self._interest[fd]

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> int:
        try:
            self._connect()
            while True:
                job = self._await_job()
                self._run_job(job)
        except _Exit as ex:
            return ex.code
        finally:
            if self.conn is not None:
                self.conn.close()
            if self.mesh is not None:
                self.mesh.close()

    def _connect(self) -> None:
        cfg = self.cfg
        peer_endpoint = None
        if cfg.get("p2p"):
            listener, peer_endpoint = open_peer_listener(
                cfg.get("transport", "tcp"), cfg.get("host", "127.0.0.1"), 0,
                cfg.get("run_dir"), self.pid)
            self.mesh = PeerMesh(
                self.pid, listener,
                on_conn=lambda c: self._set_interest(c.sock, EVENT_READ, c),
                on_drop=lambda c: self._forget_sock(c.sock))
            self._set_interest(listener, EVENT_READ, "accept")
        self.conn = FramedConnection(connect_endpoint(cfg["endpoint"]))
        hello = {"t": "hello", "pid": self.pid, "ospid": os.getpid()}
        if peer_endpoint is not None:
            hello["peer"] = peer_endpoint
        self.conn.send_frame(hello)
        self.conn.flush()
        self._set_interest(self.conn.sock, EVENT_READ, "ctrl")

        deadline = time.monotonic() + INIT_TIMEOUT_S
        init = None
        while init is None:
            if time.monotonic() > deadline:
                raise _Exit(3)
            self._pump(0.5)
            while self._ctrl and init is None:
                frame = self._ctrl.popleft()
                t = frame.get("t")
                if t == "init":
                    init = frame   # frames behind it stay queued
                elif t == "shutdown":
                    raise _Exit(0)
                # anything else is pre-init noise
        if self.mesh is not None:
            for peer, ep in init.get("peers", {}).items():
                if int(peer) != self.pid:
                    self.mesh.add_member(int(peer), ep)

    def _pump(self, timeout: float) -> None:
        """One reactor turn: select, drain everything, flush everything.

        Control frames land on the :attr:`_ctrl` queue; protocol frames
        are delivered (or stashed/dropped) through :meth:`_deliver`.
        """
        self._set_interest(
            self.conn.sock,
            EVENT_READ | (EVENT_WRITE if self.conn.wants_write else 0),
            "ctrl")
        if self.mesh is not None:
            for c in self.mesh.open_conns():
                self._set_interest(
                    c.sock,
                    EVENT_READ | (EVENT_WRITE if c.wants_write else 0), c)
        for key, _mask in self.sel.select(timeout=timeout):
            if key.data == "accept":
                self.mesh.accept()
            elif isinstance(key.data, FramedConnection):
                c = key.data
                for frame in self.mesh.service(c):
                    self._deliver(frame)
                if c.eof:
                    self.mesh.forget(c)
        for frame in self.conn.receive():
            if frame.get("t") == "msg":
                self._deliver(frame)
            else:
                self._ctrl.append(frame)
        if self.conn.eof:
            raise _Exit(1)       # lane vanished: don't linger
        self.conn.flush()
        if self.mesh is not None:
            self.mesh.flush_all()

    def _deliver(self, frame: dict) -> None:
        """Protocol frame in: deliver only if it belongs to the current
        job's epoch.  Frames tagged ahead of every epoch we have handled
        are a race (sibling started first) and wait in ``_early``; frames
        from completed epochs are stragglers and are dropped."""
        tag = frame.get("j")
        if not isinstance(tag, int):
            return
        if self.epoch >= 0 and tag == self.epoch:
            self._env.deliver(message_from_frame(frame))
        elif tag > self._seen_epoch and len(self._early) < 10_000:
            self._early.append(frame)

    def _await_job(self) -> dict:
        self.epoch = -1
        self._env = None
        while True:
            if not self._ctrl:
                self._pump(IDLE_TICK_S)
            while self._ctrl:
                frame = self._ctrl.popleft()
                t = frame.get("t")
                if t == "job":
                    return frame
                if t == "shutdown":
                    self._flush_hard(2.0)
                    raise _Exit(0)
                if t == "abort":
                    # an abort that raced our own job_error/aborted reply:
                    # ack again so the lane's barrier always closes
                    self.conn.send_frame({"t": "aborted",
                                          "epoch": frame.get("epoch")})

    # -- one job -------------------------------------------------------------

    def _run_job(self, job: dict) -> None:
        epoch = int(job["epoch"])
        job_id = job["id"]
        self._seen_epoch = max(self._seen_epoch, epoch)
        try:
            app, app_label = build_app(job["app"])
            rcfg = build_run_config({"run": job["run"]})
            proc = worker_factory(rcfg, app)(self.pid)
            metrics = MetricsRegistry()
            env = LiveEnv(self.pid, self.slots, self.conn, mesh=self.mesh,
                          seed=rcfg.seed, metrics=metrics)
            env.frame_tag = epoch
            env.attach(proc)
        except (Exception, SystemExit):
            self._report_error(job_id, epoch, traceback.format_exc())
            return
        self.epoch = epoch
        self._env = env
        t0_epoch = time.time()
        # per-job mesh traffic = counter deltas across the shared mesh
        lf0 = dict(self.mesh.link_frames) if self.mesh is not None else {}
        lb0 = dict(self.mesh.link_bytes) if self.mesh is not None else {}
        deadline = time.monotonic() + 2.0 * float(job.get("timeout_s", 120.0))
        done_sent = False
        try:
            proc.start()
            early, self._early = self._early, []
            for frame in early:
                if frame.get("j") == epoch:
                    env.deliver(message_from_frame(frame))
            while True:
                if time.monotonic() > deadline:
                    raise _Exit(4)   # wedged: lane recycles us via EOF
                nxt = env.queue.next_deadline()
                timeout = (IDLE_TICK_S if nxt is None
                           else min(IDLE_TICK_S, max(0.0, nxt - env.now)))
                self._pump(timeout)
                while self._ctrl:
                    frame = self._ctrl.popleft()
                    t = frame.get("t")
                    if t == "abort" and frame.get("epoch") == epoch:
                        self.conn.send_frame({"t": "aborted",
                                              "epoch": epoch})
                        self._flush_hard(2.0)
                        return
                    if t == "job_end" and frame.get("epoch") == epoch:
                        return   # a queued next job stays in _ctrl
                    if t == "shutdown":
                        self._flush_hard(2.0)
                        raise _Exit(0)
                env.queue.fire_due()
                if proc.terminated and not done_sent:
                    done_sent = True
                    ps = env.stats.per_process[self.pid]
                    rep = {"t": "done", "job": job_id, "epoch": epoch,
                           "t0": t0_epoch, "stats": stats_to_wire(ps),
                           "work_done": env.stats.work_done_time,
                           "optimum": (app.shared_value(proc.shared)
                                       if proc.shared is not None else None),
                           "metrics": metrics.snapshot()}
                    if self.mesh is not None:
                        rep["links"] = {
                            str(d): [n - lf0.get(d, 0),
                                     self.mesh.link_bytes.get(d, 0)
                                     - lb0.get(d, 0)]
                            for d, n in self.mesh.link_frames.items()
                            if n - lf0.get(d, 0)}
                    self.conn.send_frame(rep)
        except _Exit:
            raise
        except Exception:
            # mid-run poison (an app whose process()/merge() blows up):
            # same containment as a build failure
            self._report_error(job_id, epoch, traceback.format_exc())
        finally:
            self.epoch = -1
            self._env = None

    def _report_error(self, job_id, epoch: int, tb: str) -> None:
        self.conn.send_frame({"t": "job_error", "job": job_id,
                              "epoch": epoch,
                              "error": tb.strip().splitlines()[-1],
                              "traceback": tb})
        self._flush_hard(2.0)

    def _flush_hard(self, budget_s: float) -> None:
        until = time.monotonic() + budget_s
        while time.monotonic() < until:
            ok = self.conn.flush()
            if self.mesh is not None:
                ok = self.mesh.flush_all() and ok
            if ok:
                return
            time.sleep(0.005)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.serve.jobhost '<json config>'",
              file=sys.stderr)
        return 2
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    return JobHost(json.loads(argv[0])).run()


if __name__ == "__main__":
    sys.exit(main())
