"""Lanes: warm worker fleets that execute the daemon's job stream.

A **lane** is the unit of concurrency *and* of failure containment (the
bulkhead): it owns ``n`` persistent :mod:`~repro.serve.jobhost`
processes, runs **at most one job at a time** on them, and is recycled —
killed and respawned — as a whole when something it contains goes wrong.
The daemon starts ``lanes`` of them against one shared job queue, so the
service executes up to ``lanes`` jobs concurrently, and a poisoned spec,
worker crash or timeout in one lane never perturbs the jobs running in
the others.

Per job the lane broadcasts a ``job`` frame (spec + run config + a fresh
**epoch**), relays ``msg`` frames between its hosts (star mode — the
same per-connection FIFO relay the one-shot supervisor does; in p2p mode
the hosts exchange protocol traffic directly over their shared mesh),
collects one ``done`` report per host, and assembles the same
:class:`~repro.obs.report.RunReport` a one-shot live run produces.

Failure paths, in order of severity:

* ``job_error`` from any host (poisoned spec / mid-run application
  exception): the job is dead-lettered, the remaining hosts get an
  ``abort`` and ack with ``aborted`` — the lane stays warm, no process
  is paid;
* job timeout: same abort path; hosts that do not ack within the grace
  window force a recycle;
* host process death: the job is dead-lettered and the lane is recycled
  unconditionally (a half-dead fleet cannot be trusted — in p2p mode the
  survivors' meshes still route toward the corpse, and serve jobs run
  without the reliable channel that would recover those frames).

A **recycle** reuses the one-shot supervisor's reaper (SIGTERM, grace,
SIGKILL), then respawns and re-handshakes the lane's hosts while other
lanes keep serving; the daemon's rolling restart is exactly one recycle
per lane, serialised, between jobs — which is why it loses nothing.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import traceback
from selectors import EVENT_READ, EVENT_WRITE, DefaultSelector
from typing import Optional

from ..experiments.runner import ExperimentResult, RunConfig
from ..obs.registry import MetricsRegistry
from ..obs.report import build_report
from ..runtime.codec import stats_from_wire
from ..runtime.supervisor import _absorb_snapshot, _reap
from ..runtime.transport import FramedConnection, open_listener, unlink_quietly
from ..sim.errors import SimRuntimeError
from ..sim.stats import RunStats
from .protocol import spec_label

#: Abort-ack grace: hosts unwind at quantum granularity, so acks are
#: prompt; a host that stays silent this long is wedged and gets recycled.
ABORT_GRACE_S = 5.0

#: Lane reactor tick while a job is in flight.
_TICK_S = 0.05


class LaneError(SimRuntimeError):
    """A lane could not (re)build its worker fleet."""


class _Host:
    """One persistent jobhost process, lane-side."""

    __slots__ = ("pid", "popen", "conn", "state", "ospid", "peer")

    def __init__(self, pid: int, popen) -> None:
        self.pid = pid
        self.popen = popen
        self.conn: Optional[FramedConnection] = None
        self.state = "boot"      # boot|idle|running|done|errored|aborted
        self.ospid: Optional[int] = None
        self.peer: Optional[dict] = None     # p2p data-plane endpoint


class Lane:
    """One warm fleet + the thread that feeds it from the job source.

    ``source`` is the daemon, duck-typed: ``next_job(lane)`` (blocking
    poll, returns ``None`` periodically so the lane can service control
    flags), ``job_finished(job, outcome)``, ``job_dead(job, error,
    traceback)`` and ``lane_failed(lane, traceback)``.
    """

    def __init__(self, lane_id: int, scfg, run_dir: str, source) -> None:
        self.lane_id = lane_id
        self.scfg = scfg
        self.n = scfg.n
        self.dir = os.path.join(run_dir, f"lane{lane_id}")
        self.source = source
        self.state = "boot"          # boot|idle|busy|recycling|failed|stopped
        self.epoch = 0               # last dispatched job epoch
        self.restarts = 0            # completed recycles
        self.jobs_run = 0
        self.current_job = None
        self._hosts: list[_Host] = []
        self._pending: list[FramedConnection] = []   # accepted, no hello yet
        self._sel = DefaultSelector()
        self._interest: dict[int, int] = {}
        self._listener = None
        self._endpoint = None
        self._stop = False
        self._recycle_req: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None
        # per-job collection state
        self._reports: dict[int, dict] = {}
        self._errors: dict[int, dict] = {}

    # -- public (daemon-facing) ----------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name=f"lane{self.lane_id}")
        self._thread.start()

    def stop(self) -> None:
        self._stop = True

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def request_recycle(self) -> threading.Event:
        """Ask for a recycle at the next between-jobs point; the returned
        event fires when it completed (or the lane failed trying)."""
        if self._recycle_req is None:
            self._recycle_req = threading.Event()
        return self._recycle_req

    def snapshot(self) -> dict:
        """JSON-able lane state for the ``fleet`` API op."""
        job = self.current_job
        return {"lane": self.lane_id, "state": self.state,
                "restarts": self.restarts, "jobs_run": self.jobs_run,
                "epoch": self.epoch,
                "job": None if job is None else job.id,
                "workers": [{"pid": h.pid, "ospid": h.ospid}
                            for h in self._hosts]}

    # -- selector plumbing ---------------------------------------------------

    def _set_interest(self, sock, flags, data) -> None:
        fd = sock.fileno()
        if fd < 0:
            return
        if fd not in self._interest:
            self._sel.register(sock, flags, data)
            self._interest[fd] = flags
        elif self._interest[fd] != flags:
            self._sel.modify(sock, flags, data)
            self._interest[fd] = flags

    def _forget_sock(self, sock) -> None:
        fd = sock.fileno()
        if fd in self._interest:
            self._sel.unregister(sock)
            del self._interest[fd]

    # -- thread main ---------------------------------------------------------

    def _main(self) -> None:
        try:
            self._open_listener()
            self._boot()
        except Exception:
            self.state = "failed"
            self.source.lane_failed(self, traceback.format_exc())
            self._teardown()
            return
        while not self._stop:
            if self._recycle_req is not None:
                req, self._recycle_req = self._recycle_req, None
                try:
                    self.state = "recycling"
                    self._recycle()
                    self.state = "idle"
                except Exception:
                    self.state = "failed"
                    self.source.lane_failed(self, traceback.format_exc())
                    req.set()
                    self._teardown()
                    return
                req.set()
                continue
            if any(h.popen.poll() is not None for h in self._hosts):
                # a host died while idle — rebuild before taking work
                try:
                    self.state = "recycling"
                    self._recycle()
                    self.state = "idle"
                except Exception:
                    self.state = "failed"
                    self.source.lane_failed(self, traceback.format_exc())
                    self._teardown()
                    return
                continue
            job = self.source.next_job(self)
            if job is None:
                continue
            self.state = "busy"
            self.current_job = job
            try:
                self._execute(job)
            except Exception:
                # lane-level defect: account for the job, then rebuild
                self.source.job_dead(job, "lane failure",
                                     traceback.format_exc())
                try:
                    self._recycle()
                except Exception:
                    self.state = "failed"
                    self.source.lane_failed(self, traceback.format_exc())
                    self._teardown()
                    return
            finally:
                self.current_job = None
                if self.state == "busy":
                    self.state = "idle"
        self._teardown()
        self.state = "stopped"

    # -- fleet lifecycle -----------------------------------------------------

    def _open_listener(self) -> None:
        os.makedirs(self.dir, exist_ok=True)
        if self.scfg.transport == "unix":
            self._listener, self._endpoint = open_listener(
                "unix", path=os.path.join(self.dir, "ctrl.sock"))
        else:
            self._listener, self._endpoint = open_listener(
                "tcp", host=self.scfg.host, port=0)
        self._listener.setblocking(False)
        self._set_interest(self._listener, EVENT_READ, "accept")

    def _host_json(self, pid: int) -> str:
        return json.dumps({
            "pid": pid, "slots": self.n, "endpoint": self._endpoint,
            "run_dir": self.dir, "p2p": bool(self.scfg.p2p),
            "transport": self.scfg.transport, "host": self.scfg.host})

    def _spawn_host(self, pid: int) -> _Host:
        import repro
        env = os.environ.copy()
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        # append mode: one log per slot across recycles keeps the history
        log = open(os.path.join(self.dir, f"host_{pid}.log"), "ab")
        try:
            popen = subprocess.Popen(
                [sys.executable, "-m", "repro.serve.jobhost",
                 self._host_json(pid)],
                stdout=log, stderr=subprocess.STDOUT, env=env)
        finally:
            log.close()
        return _Host(pid, popen)

    def _boot(self) -> None:
        self._hosts = [self._spawn_host(pid) for pid in range(self.n)]
        deadline = time.monotonic() + self.scfg.boot_timeout_s
        while any(h.conn is None for h in self._hosts):
            if time.monotonic() > deadline:
                raise LaneError(
                    f"lane {self.lane_id}: fleet handshake timed out "
                    f"(logs in {self.dir})")
            if any(h.popen.poll() is not None and h.conn is None
                   for h in self._hosts):
                raise LaneError(
                    f"lane {self.lane_id}: a host died during boot "
                    f"(logs in {self.dir})")
            self._pump(0.2)
        init = {"t": "init"}
        if self.scfg.p2p:
            init["peers"] = {str(h.pid): h.peer for h in self._hosts}
        for h in self._hosts:
            h.conn.send_frame(init)
            h.state = "idle"
        self._flush()
        self.state = "idle"

    def _recycle(self) -> None:
        """Kill and rebuild the whole fleet (listener survives)."""
        for h in self._hosts:
            if h.conn is not None and not h.conn.closed:
                try:
                    h.conn.send_frame({"t": "shutdown"})
                    h.conn.flush()
                except OSError:
                    pass
        _reap(self._hosts)
        self._drop_conns()
        if self.scfg.transport == "unix":
            for pid in range(self.n):   # stale p2p data-plane sockets
                unlink_quietly(os.path.join(self.dir, f"peer_{pid}.sock"))
        self._boot()
        self.restarts += 1

    def _drop_conns(self) -> None:
        for h in self._hosts:
            if h.conn is not None:
                self._forget_sock(h.conn.sock)
                h.conn.close()
                h.conn = None
        for c in self._pending:
            self._forget_sock(c.sock)
            c.close()
        self._pending.clear()

    def _teardown(self) -> None:
        for h in self._hosts:
            if h.conn is not None and not h.conn.closed:
                try:
                    h.conn.send_frame({"t": "shutdown"})
                    h.conn.flush()
                except OSError:
                    pass
        if self._hosts:
            _reap(self._hosts)
        self._drop_conns()
        if self._listener is not None:
            self._forget_sock(self._listener)
            try:
                self._listener.close()
            except OSError:
                pass
            if self.scfg.transport == "unix":
                unlink_quietly(os.path.join(self.dir, "ctrl.sock"))

    # -- reactor -------------------------------------------------------------

    def _pump(self, timeout: float) -> None:
        """One lane reactor turn: accept, identify, route, collect."""
        for h in self._hosts:
            if h.conn is not None and not h.conn.closed:
                self._set_interest(
                    h.conn.sock,
                    EVENT_READ | (EVENT_WRITE if h.conn.wants_write else 0),
                    h)
        for key, _mask in self._sel.select(timeout=timeout):
            if key.data == "accept":
                self._accept()
        for c in list(self._pending):
            self._identify(c)
        for h in self._hosts:
            if h.conn is None or h.conn.closed:
                continue
            for frame in h.conn.receive():
                self._handle(h, frame)
            if h.conn.eof:
                self._forget_sock(h.conn.sock)
                h.conn.close()
        self._flush()

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError, OSError):
                return
            sock.setblocking(False)
            self._pending.append(FramedConnection(sock))

    def _identify(self, conn: FramedConnection) -> None:
        frames = conn.receive()
        for i, frame in enumerate(frames):
            if frame.get("t") == "hello":
                pid = int(frame["pid"])
                if not (0 <= pid < self.n):
                    break
                host = self._hosts[pid]
                host.conn = conn
                host.ospid = frame.get("ospid")
                host.peer = frame.get("peer")
                self._pending.remove(conn)
                for extra in frames[i + 1:]:   # rode in behind the hello
                    self._handle(host, extra)
                return
        if conn.eof:
            self._forget_sock(conn.sock)
            conn.close()
            self._pending.remove(conn)

    def _handle(self, host: _Host, frame: dict) -> None:
        t = frame.get("t")
        if t == "msg":
            dst = frame.get("dst")
            if isinstance(dst, int) and 0 <= dst < self.n:
                peer = self._hosts[dst]
                if peer.conn is not None and not peer.conn.closed:
                    peer.conn.send_frame(frame)
        elif t == "done":
            if frame.get("epoch") == self.epoch:
                host.state = "done"
                self._reports[host.pid] = frame
        elif t == "job_error":
            if frame.get("epoch") == self.epoch:
                host.state = "errored"
                self._errors[host.pid] = frame
        elif t == "aborted":
            if frame.get("epoch") == self.epoch:
                host.state = "aborted"

    def _flush(self) -> None:
        for h in self._hosts:
            if h.conn is not None and not h.conn.closed:
                h.conn.flush()

    # -- one job -------------------------------------------------------------

    def _execute(self, job) -> None:
        self.epoch += 1
        self._reports = {}
        self._errors = {}
        job.t_start = time.time()
        job.lane = self.lane_id
        job.epoch = self.epoch
        run = {"protocol": self.scfg.protocol, "n": self.n,
               "quantum": self.scfg.quantum, "seed": self.scfg.seed,
               "dmax": self.scfg.dmax, "sharing": self.scfg.sharing}
        run.update(job.run)
        run["n"] = self.n
        frame = {"t": "job", "id": job.id, "epoch": self.epoch,
                 "app": job.app, "run": run, "timeout_s": job.timeout_s}
        for h in self._hosts:
            h.state = "running"
            h.conn.send_frame(frame)
        self._flush()

        deadline = time.monotonic() + job.timeout_s
        while True:
            self._pump(_TICK_S)
            dead = [h for h in self._hosts if h.popen.poll() is not None]
            if dead:
                h = dead[0]
                self._fail_job(
                    job, f"worker {h.pid} died "
                    f"(exit {h.popen.returncode}) during job {job.id}",
                    self._log_tail(h.pid), recycle=True)
                return
            if self._errors:
                pid, err = min(self._errors.items())
                self._fail_job(job, err.get("error", "job error"),
                               err.get("traceback", ""), recycle=False)
                return
            if len(self._reports) == self.n:
                break
            if time.monotonic() > deadline:
                self._fail_job(
                    job, f"job {job.id} timed out after {job.timeout_s}s",
                    "", recycle=False)
                return
        for h in self._hosts:
            h.conn.send_frame({"t": "job_end", "epoch": self.epoch})
            h.state = "idle"
        self._flush()
        outcome = self._assemble(job, run, self._reports)
        self.jobs_run += 1
        self.source.job_finished(job, outcome)

    def _fail_job(self, job, error: str, tb: str, recycle: bool) -> None:
        """Abort the epoch everywhere, then dead-letter the job.

        Hosts still ``running``/``done`` get an ``abort`` and must ack;
        missing acks (a wedged or dying host) escalate to a recycle, as
        does ``recycle=True`` (a host process already died).
        """
        targets = [h for h in self._hosts
                   if h.state in ("running", "done")
                   and h.conn is not None and not h.conn.closed
                   and h.popen.poll() is None]
        for h in targets:
            h.conn.send_frame({"t": "abort", "epoch": self.epoch})
        self._flush()
        grace = time.monotonic() + ABORT_GRACE_S
        while time.monotonic() < grace:
            self._pump(_TICK_S)
            if all(h.state in ("aborted", "errored", "idle")
                   or h.popen.poll() is not None for h in self._hosts):
                break
        unclean = [h for h in self._hosts
                   if h.state not in ("aborted", "errored", "idle")
                   or h.popen.poll() is not None]
        self.source.job_dead(job, error, tb)
        if recycle or unclean:
            self.state = "recycling"
            self._recycle()
        else:
            for h in self._hosts:
                h.state = "idle"

    def _log_tail(self, pid: int, limit: int = 4096) -> str:
        try:
            with open(os.path.join(self.dir, f"host_{pid}.log"), "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - limit))
                return fh.read().decode("utf-8", "replace")
        except OSError:
            return ""

    # -- result assembly (the one-shot supervisor's, minus fault paths) ------

    def _assemble(self, job, run: dict, reports: dict[int, dict]) -> dict:
        n = self.n
        stats = RunStats.create(n)
        t0s = {pid: float(rep["t0"]) for pid, rep in reports.items()}
        base = min(t0s.values())
        makespan = 0.0
        work_done = 0.0
        optimum = None
        for pid, rep in reports.items():
            ps = stats_from_wire(rep["stats"], pid)
            off = t0s[pid] - base
            if ps.finish_time > 0.0:
                ps.finish_time += off
            makespan = max(makespan, ps.finish_time)
            work_done = max(work_done, rep.get("work_done", 0.0) + off)
            stats.per_process[pid] = ps
            opt = rep.get("optimum")
            if opt is not None and (optimum is None or opt < optimum):
                optimum = opt
        stats.makespan = makespan
        stats.work_done_time = work_done
        stats.seal()

        metrics = MetricsRegistry()
        for rep in reports.values():
            _absorb_snapshot(metrics, rep.get("metrics", {}))
        metrics.gauge("engine.makespan_s").set(stats.makespan)

        links: dict[tuple[int, int], tuple[int, int]] = {}
        if self.scfg.p2p:
            for pid, rep in reports.items():
                for dst, counts in rep.get("links", {}).items():
                    links[(pid, int(dst))] = (int(counts[0]),
                                              int(counts[1]))

        lost, dup, rexmit, crashes, repairs = stats.fault_totals()
        result = ExperimentResult(
            protocol=run["protocol"], n=n, makespan=stats.makespan,
            work_done_time=stats.work_done_time,
            total_units=stats.total_work_units, total_msgs=stats.total_msgs,
            total_steals=stats.total_steals, msgs_by_pid=stats.msgs_by_pid(),
            optimum=optimum, events=0, msgs_lost=lost, msgs_duplicated=dup,
            retransmits=rexmit, crashes=crashes, repairs=repairs,
            breaker_opens=stats.total_breaker_opens())

        rcfg = RunConfig(protocol=run["protocol"], n=n, dmax=run["dmax"],
                         sharing=run["sharing"], quantum=run["quantum"],
                         seed=run["seed"])
        report = build_report(
            rcfg, result, stats, metrics=metrics, app=spec_label(job.app),
            unit_cost=0.0,
            extra_meta={"serve": True, "job_id": job.id,
                        "lane": self.lane_id, "epoch": self.epoch,
                        "p2p": bool(self.scfg.p2p),
                        "queue_s": round(job.t_start - job.t_submit, 6)},
            links=links or None)
        return {"makespan": stats.makespan,
                "total_units": result.total_units,
                "total_msgs": result.total_msgs,
                "total_steals": result.total_steals,
                "optimum": optimum,
                "report": report.to_json()}


__all__ = ["ABORT_GRACE_S", "Lane", "LaneError"]
