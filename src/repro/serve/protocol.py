"""Wire schema of the serve API: newline-delimited JSON, shallow validation.

One request per line, one response per line, UTF-8 JSON objects.  Every
response carries ``"ok": true`` or ``"ok": false`` plus ``"error"`` (a
stable machine-readable code) and optionally ``"detail"`` (human text).

Submission validation here is deliberately *shallow* — kind, types and
field names only.  Deep validation (does the UTS preset exist? is the
Taillard index in range?) happens when a job host builds the application:
a spec that passes admission but fails to build is the canonical
*poisoned spec* and lands in the dead-letter store with its traceback,
instead of being silently impossible to submit.
"""

from __future__ import annotations

import json
from typing import Optional

from ..sim.errors import SimConfigError

#: Protocols the service executes (the live-validated subset).
SERVE_PROTOCOLS = ("TD", "TR", "BTD", "BTR", "RWS")

#: App-spec kinds a submission may name (shallow check; see module doc).
APP_KINDS = ("uts", "bnb", "synthetic")

#: Per-job run-config overrides a submission may carry.
RUN_OVERRIDES = ("protocol", "quantum", "seed", "dmax", "sharing")


class BadRequest(SimConfigError):
    """A malformed API request (rejected before admission)."""


def error_response(code: str, **fields) -> dict:
    out = {"ok": False, "error": code}
    out.update(fields)
    return out


def validate_app(app) -> dict:
    """Shallow-validate a submitted app spec; returns it normalised."""
    if not isinstance(app, dict):
        raise BadRequest("app spec must be a JSON object")
    kind = app.get("kind")
    if kind not in APP_KINDS:
        raise BadRequest(f"unknown app kind {kind!r}; "
                         f"known: {', '.join(APP_KINDS)}")
    if kind == "uts" and not isinstance(app.get("preset"), str):
        raise BadRequest("uts spec needs a string 'preset'")
    if kind == "bnb" and not isinstance(app.get("index"), int):
        raise BadRequest("bnb spec needs an integer 'index'")
    if kind == "synthetic" and not isinstance(app.get("units"), int):
        raise BadRequest("synthetic spec needs an integer 'units'")
    return dict(app)


def validate_run(run) -> dict:
    """Shallow-validate per-job run overrides; returns them normalised."""
    if run is None:
        return {}
    if not isinstance(run, dict):
        raise BadRequest("run overrides must be a JSON object")
    unknown = sorted(set(run) - set(RUN_OVERRIDES))
    if unknown:
        raise BadRequest(f"unknown run override(s) {unknown}; "
                         f"known: {', '.join(RUN_OVERRIDES)}")
    out = dict(run)
    proto = out.get("protocol")
    if proto is not None and proto not in SERVE_PROTOCOLS:
        raise BadRequest(f"unknown protocol {proto!r}; "
                         f"known: {', '.join(SERVE_PROTOCOLS)}")
    for key in ("quantum", "seed", "dmax"):
        if key in out and not isinstance(out[key], int):
            raise BadRequest(f"run override {key!r} must be an integer")
    if "sharing" in out and not isinstance(out["sharing"], str):
        raise BadRequest("run override 'sharing' must be a string")
    return out


def spec_label(app: dict) -> str:
    """Human label of an app spec, without building the application."""
    kind = app.get("kind")
    if kind == "uts":
        return f"uts/{app.get('preset')}"
    if kind == "bnb":
        return (f"bnb/ta{20 + app.get('index', 0)}"
                f"@{app.get('jobs', 10)}x{app.get('machines', 10)}"
                f"/{app.get('bound', 'lb1')}")
    if kind == "synthetic":
        return f"synthetic/{app.get('units')}"
    return f"{kind}/?"


def parse_address(text: str) -> tuple:
    """``tcp:HOST:PORT`` or ``unix:/path`` -> a connectable address."""
    if text.startswith("unix:"):
        return ("unix", text[len("unix:"):])
    if text.startswith("tcp:"):
        host, _, port = text[len("tcp:"):].rpartition(":")
        if not host or not port.isdigit():
            raise BadRequest(f"bad tcp address {text!r} "
                             "(want tcp:HOST:PORT)")
        return ("tcp", host, int(port))
    raise BadRequest(f"bad address {text!r} (want tcp:HOST:PORT "
                     "or unix:/path)")


def format_address(addr: tuple) -> str:
    if addr[0] == "unix":
        return f"unix:{addr[1]}"
    return f"tcp:{addr[1]}:{addr[2]}"


def write_line(wfile, obj: dict) -> None:
    """One response/request on a newline-JSON stream."""
    wfile.write(json.dumps(obj, separators=(",", ":"),
                           allow_nan=False).encode("utf-8") + b"\n")
    wfile.flush()


def read_line(rfile) -> Optional[dict]:
    """Next object from a newline-JSON stream (None at EOF)."""
    line = rfile.readline()
    if not line:
        return None
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise BadRequest("request must be a JSON object")
    return obj


__all__ = ["APP_KINDS", "BadRequest", "RUN_OVERRIDES", "SERVE_PROTOCOLS",
           "error_response", "format_address", "parse_address", "read_line",
           "spec_label", "validate_app", "validate_run", "write_line"]
