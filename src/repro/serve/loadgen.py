"""Load generator: sustained job streams against one serve daemon.

``python -m repro.serve.loadgen --connect tcp:127.0.0.1:PORT --jobs 100
--submitters 4`` drives a mixed workload from concurrent submitter
threads (each with its own connection), retrying ``busy`` rejections
with backoff, and reports:

* **throughput** — completed jobs per second of wall time;
* **latency** — p50 / p99 of accept-to-terminal wall time (queue wait
  *included*: that is the latency a service's caller experiences);
* **accounting** — every accepted job must end ``done`` or in the
  dead-letter store; the daemon-side counters are cross-checked so a
  lost job is an error here, not a footnote.

Options exercise the failure machinery under load: ``--poison-every K``
makes every K-th submission a spec that cannot build (it must land in
the dead-letter store), and ``--restart-at K`` fires a rolling restart
mid-stream (the run then asserts the zero-loss property).  The
``benchmarks/record.py serve`` recorder is a thin wrapper over
:func:`run_loadgen`.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from typing import Optional

from ..sim.errors import SimConfigError
from .client import ServeClient, ServeClientError

#: A spec that passes shallow admission checks and fails at build time —
#: the canonical poisoned submission.
POISON_SPEC = {"kind": "uts", "preset": "__poisoned__"}

#: Default workload mix (cheap enough for CI, heavy enough to overlap).
DEFAULT_MIX = "synthetic:20000,uts:bin_mini,synthetic:8000"


def parse_mix(text: str) -> list[dict]:
    """``synthetic:20000,uts:bin_mini,bnb:0:6x5`` -> app spec list."""
    out: list[dict] = []
    for part in text.split(","):
        fields = part.strip().split(":")
        kind = fields[0]
        try:
            if kind == "synthetic":
                out.append({"kind": "synthetic", "units": int(fields[1])})
            elif kind == "uts":
                out.append({"kind": "uts", "preset": fields[1]})
            elif kind == "bnb":
                jobs, machines = fields[2].split("x")
                out.append({"kind": "bnb", "index": int(fields[1]),
                            "jobs": int(jobs), "machines": int(machines)})
            else:
                raise SimConfigError(f"unknown mix kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise SimConfigError(f"bad mix entry {part!r}: {exc}") from exc
    if not out:
        raise SimConfigError("empty workload mix")
    return out


def percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 on empty)."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1,
              max(0, int(round(q * (len(sorted_vals) - 1)))))
    return sorted_vals[idx]


def run_loadgen(address, jobs: int = 100, submitters: int = 4,
                mix: str = DEFAULT_MIX, poison_every: int = 0,
                restart_at: Optional[int] = None,
                job_timeout_s: float = 60.0,
                wait_timeout_s: float = 240.0) -> dict:
    """Drive ``jobs`` submissions from ``submitters`` threads; see module
    docstring for what is measured.  Returns the result document."""
    specs = parse_mix(mix)
    counter_lock = threading.Lock()
    counter = [0]
    latencies: list[float] = []           # accept -> done
    dead_latencies: list[float] = []      # accept -> dead-letter
    busy_retries = [0]
    accepted = [0]
    errors: list[str] = []
    restart_result: list[dict] = []

    def next_index() -> Optional[int]:
        with counter_lock:
            if counter[0] >= jobs:
                return None
            counter[0] += 1
            return counter[0] - 1

    def fire_restart() -> None:
        try:
            with ServeClient(address) as rc:
                restart_result.append(rc.restart())
        except ServeClientError as exc:
            restart_result.append({"ok": False, "error": str(exc)})

    restart_thread: list[threading.Thread] = []

    def submitter() -> None:
        with ServeClient(address) as client:
            while True:
                k = next_index()
                if k is None:
                    return
                if restart_at is not None and k == restart_at:
                    t = threading.Thread(target=fire_restart, daemon=True)
                    t.start()
                    restart_thread.append(t)
                poisoned = poison_every and (k + 1) % poison_every == 0
                app = POISON_SPEC if poisoned else specs[k % len(specs)]
                t_req = time.monotonic()
                resp, rejections = client.submit_retry(
                    app, timeout_s=job_timeout_s,
                    retry_for_s=wait_timeout_s)
                with counter_lock:
                    busy_retries[0] += rejections
                if not resp.get("ok"):
                    with counter_lock:
                        errors.append(f"job {k}: submit failed: "
                                      f"{resp.get('error')}")
                    continue
                with counter_lock:
                    accepted[0] += 1
                st = client.wait(resp["job_id"], timeout=wait_timeout_s)
                dt = time.monotonic() - t_req
                with counter_lock:
                    if st.get("state") == "done":
                        latencies.append(dt)
                    elif st.get("state") == "dead":
                        dead_latencies.append(dt)
                        if not poisoned:
                            errors.append(
                                f"job {k} ({app}) dead-lettered: "
                                f"{st.get('error')}")
                    else:
                        errors.append(f"job {k}: non-terminal {st}")

    t0 = time.monotonic()
    threads = [threading.Thread(target=submitter, daemon=True,
                                name=f"submit{i}")
               for i in range(submitters)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for t in restart_thread:
        t.join(timeout=120.0)
    wall_s = time.monotonic() - t0

    with ServeClient(address) as client:
        stats = client.stats()
        dl = client.dead_letters(limit=jobs)

    done = len(latencies)
    dead = len(dead_latencies)
    lat = sorted(latencies)
    accounted = (accepted[0] == done + dead
                 and stats.get("accepted", -1) >= accepted[0]
                 and stats.get("completed", 0) + stats.get(
                     "dead_lettered", 0) >= done + dead)
    return {
        "jobs": jobs,
        "submitters": submitters,
        "mix": mix,
        "accepted": accepted[0],
        "completed": done,
        "dead_lettered": dead,
        "busy_retries": busy_retries[0],
        "wall_s": round(wall_s, 3),
        "jobs_per_s": round(done / wall_s, 3) if wall_s > 0 else 0.0,
        "p50_s": round(percentile(lat, 0.50), 4),
        "p99_s": round(percentile(lat, 0.99), 4),
        "mean_s": round(sum(lat) / done, 4) if done else 0.0,
        "poison_every": poison_every,
        "restart_at": restart_at,
        "restart": restart_result[0] if restart_result else None,
        "all_accounted": accounted,
        "errors": errors,
        "daemon": {k: stats.get(k) for k in
                   ("accepted", "completed", "dead_lettered",
                    "rejected_busy", "queue_depth", "running")},
        "dead_letter_count": dl.get("count", 0),
    }


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="sustained-load benchmark client for repro.serve")
    ap.add_argument("--connect", required=True,
                    help="daemon address (tcp:HOST:PORT or unix:/path)")
    ap.add_argument("--jobs", type=int, default=100)
    ap.add_argument("--submitters", type=int, default=4)
    ap.add_argument("--mix", default=DEFAULT_MIX)
    ap.add_argument("--poison-every", type=int, default=0,
                    help="every K-th submission is a poisoned spec")
    ap.add_argument("--restart-at", type=int, default=None,
                    help="fire a rolling restart at submission K")
    ap.add_argument("--job-timeout", type=float, default=60.0)
    ap.add_argument("--wait-timeout", type=float, default=240.0)
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="also write the result document here")
    args = ap.parse_args(argv)
    doc = run_loadgen(args.connect, jobs=args.jobs,
                      submitters=args.submitters, mix=args.mix,
                      poison_every=args.poison_every,
                      restart_at=args.restart_at,
                      job_timeout_s=args.job_timeout,
                      wait_timeout_s=args.wait_timeout)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(f"loadgen: {doc['completed']}/{doc['jobs']} done "
          f"(+{doc['dead_lettered']} dead-lettered) in {doc['wall_s']}s "
          f"= {doc['jobs_per_s']} jobs/s; "
          f"p50 {doc['p50_s']}s p99 {doc['p99_s']}s; "
          f"busy retries {doc['busy_retries']}; "
          f"accounted={doc['all_accounted']}")
    for err in doc["errors"]:
        print(f"loadgen error: {err}")
    return 0 if (doc["all_accounted"] and not doc["errors"]) else 1


if __name__ == "__main__":
    import sys
    sys.exit(main())
