"""Observability: metrics registry, structured trace export, run reports.

Three layers, all strictly opt-in and zero-cost when detached:

* :mod:`repro.obs.registry` — counters, gauges and bounded histograms the
  engine/worker/termination/reliable layers publish into when a
  :class:`MetricsRegistry` is attached (``Simulator(metrics=...)``);
* :mod:`repro.obs.export` — schema-versioned NDJSON trace files
  (stream-written or dumped post-run, gzip-able, bit-identical round-trip);
* :mod:`repro.obs.report` — per-run reports (per-node load table, steal
  matrix, utilization/idle breakdown) with human and JSON renderings,
  served by ``python -m repro.experiments report``.

See ``docs/observability.md`` for the metric catalogue and trace schema.
"""

from .export import (TRACE_SCHEMA_VERSION, LoadedTrace, TraceWriter,
                     export_trace, load_trace)
from .registry import (LATENCY_EDGES, METRICS, SIZE_EDGES, Counter, Gauge,
                       Histogram, MetricsRegistry)
from .report import (REPORT_SCHEMA_VERSION, RunReport, build_report,
                     load_entropy, steal_matrix)

__all__ = [
    "Counter", "Gauge", "Histogram", "LATENCY_EDGES", "LoadedTrace",
    "METRICS", "MetricsRegistry", "REPORT_SCHEMA_VERSION", "RunReport",
    "SIZE_EDGES", "TRACE_SCHEMA_VERSION", "TraceWriter", "build_report",
    "export_trace", "load_entropy", "load_trace", "steal_matrix",
]
