"""Run reports: one simulation distilled into tables a human can read.

The paper's §IV argues protocol quality from run-internal distributions —
who did the work, who moved it, who sat idle. :func:`build_report` turns
the artefacts of one finished run (:class:`~repro.sim.stats.RunStats`, an
optional :class:`~repro.sim.trace.Tracer`, an optional
:class:`~repro.obs.registry.MetricsRegistry`) into a :class:`RunReport`
with a human rendering (:meth:`RunReport.render`) and a JSON summary
(:meth:`RunReport.to_json`) whose per-node work totals sum *exactly* to the
run's total work units — the invariant the observability tests pin.

The ``python -m repro.experiments report`` CLI
(:mod:`repro.experiments.runreport`) is a thin wrapper over this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..experiments.report import banner, fmt, render_table
from ..experiments.runner import ExperimentResult, RunConfig
from ..sim.stats import RunStats
from ..sim.trace import CIRCUIT, QUANTUM, TRANSFER, Tracer
from .registry import MetricsRegistry

#: JSON summary schema; bump on incompatible shape changes.
REPORT_SCHEMA_VERSION = 1

#: Above this worker count the full steal matrix is elided for the top
#: transfer edges (a 1000x1000 table helps nobody).
_MATRIX_LIMIT = 32


def load_entropy(units: list[int]) -> Optional[float]:
    """Normalised Shannon entropy of the per-node work distribution.

    1.0 = perfectly even load, 0.0 = one node did everything (the
    distributional balance metric of the BON line of work). ``None`` when
    no work was done or there is a single node.
    """
    total = sum(units)
    if total <= 0 or len(units) < 2:
        return None
    h = 0.0
    for u in units:
        if u > 0:
            p = u / total
            h -= p * math.log(p)
    return h / math.log(len(units))


def breaker_summary(tracer: Tracer, makespan: float) -> list[dict]:
    """Per-(owner, peer) circuit-breaker history from CIRCUIT samples.

    CIRCUIT samples encode transitions as ``value = peer * 4 + state``
    (0 closed / 1 open / 2 half-open) on the breaker owner's timeline
    (:mod:`repro.sim.trace`). Folding them back out makes routed-around
    peers visible in run reports: how often each breaker tripped
    (``opens``), how many half-open probes it sent (``probes``), the total
    time the peer spent routed around (``open_s`` — a still-open breaker
    accrues until ``makespan``), and the state it ended the run in.
    """
    hist: dict[tuple[int, int], dict] = {}
    for s in sorted((s for s in tracer.samples if s.kind == CIRCUIT),
                    key=lambda s: s.time):
        peer, state = divmod(int(s.value), 4)
        row = hist.setdefault((s.pid, peer), {
            "owner": s.pid, "peer": peer, "opens": 0, "probes": 0,
            "open_s": 0.0, "state": "closed", "_opened_at": None})
        if state == 1:                      # -> open (trip or failed probe)
            if row["_opened_at"] is None:
                row["opens"] += 1
                row["_opened_at"] = s.time
            row["state"] = "open"
        elif state == 2:                    # -> half-open (probe in flight)
            row["probes"] += 1
            row["state"] = "half-open"
        else:                               # -> closed (probe answered)
            if row["_opened_at"] is not None:
                row["open_s"] += s.time - row["_opened_at"]
                row["_opened_at"] = None
            row["state"] = "closed"
    out = []
    for key in sorted(hist):
        row = hist[key]
        opened_at = row.pop("_opened_at")
        if opened_at is not None:           # never closed: accrue to the end
            row["open_s"] += max(0.0, makespan - opened_at)
        out.append(row)
    return out


def steal_matrix(tracer: Tracer) -> dict[tuple[int, int], int]:
    """(src, dst) -> number of WORK transfers, from TRANSFER samples."""
    matrix: dict[tuple[int, int], int] = {}
    for s in tracer.samples:
        if s.kind == TRANSFER:
            key = (int(s.value), s.pid)
            matrix[key] = matrix.get(key, 0) + 1
    return matrix


@dataclass
class RunReport:
    """Everything the report CLI renders/exports for one run."""

    meta: dict
    totals: dict
    per_node: list[dict]
    load: dict
    idle_breakdown: dict
    faults: dict
    transfers: list[dict] = field(default_factory=list)
    utilization: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    breakers: list[dict] = field(default_factory=list)
    #: live runs: per-link frame/byte traffic — relay-counted (star) or
    #: mesh-counted (p2p); empty for simulated runs
    links: list[dict] = field(default_factory=list)

    # -- structured form -----------------------------------------------------

    def to_json(self) -> dict:
        """JSON-safe summary (schema-versioned)."""
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "meta": self.meta,
            "totals": self.totals,
            "per_node": self.per_node,
            "load": self.load,
            "idle_breakdown": self.idle_breakdown,
            "faults": self.faults,
            "transfers": self.transfers,
            "utilization": self.utilization,
            "metrics": self.metrics,
            "breakers": self.breakers,
            "links": self.links,
        }

    # -- human form ----------------------------------------------------------

    def render(self) -> str:
        m, t = self.meta, self.totals
        parts = [banner(f"run report: {m.get('app', '?')} / "
                        f"{m.get('protocol', '?')} n={m.get('n', '?')} "
                        f"seed={m.get('seed', '?')}")]
        parts.append(
            f"makespan {t['makespan'] * 1e3:,.3f} ms | "
            f"{t['work_units']:,} work units | {t['msgs']:,} msgs | "
            f"{t['steals']:,} steal requests "
            f"({100 * t['steal_success_rate']:.0f}% served) | "
            f"{t['events']:,} events")
        cached = m.get("cached_cell")
        if cached is not None:
            parts.append(f"grid cell {m.get('cell_key', '?')[:16]}...: "
                         + ("cache hit (fresh run matches cached result)"
                            if cached else "not in cache"))
        parts.append("")
        parts.append(render_table(
            ["pid", "units", "share%", "msgs out", "msgs in", "steals",
             "served", "busy ms", "handler ms", "idle ms", "util%", "state"],
            [[p["pid"], p["units"], p["share_pct"], p["msgs_sent"],
              p["msgs_received"], p["steals_attempted"],
              p["steals_successful"], p["busy_s"] * 1e3,
              p["handler_s"] * 1e3, p["idle_s"] * 1e3, p["util_pct"],
              p["state"]] for p in self.per_node],
            title="per-node load", digits=2))
        parts.append("")
        ld = self.load
        parts.append(
            f"load balance: entropy {fmt(ld['entropy'], 3)} "
            f"(1 = even) | imbalance max/mean {fmt(ld['imbalance'], 2)} | "
            f"units min {ld['min']:,} / mean {ld['mean']:,.1f} / "
            f"max {ld['max']:,}")
        ib = self.idle_breakdown
        parts.append(
            f"fleet time: busy {100 * ib['busy_frac']:.1f}% | handler "
            f"{100 * ib['handler_frac']:.1f}% | idle "
            f"{100 * ib['idle_frac']:.1f}% of "
            f"{ib['node_seconds'] * 1e3:,.1f} node-ms")
        if any(self.faults.values()):
            f = self.faults
            parts.append(
                f"faults: {f['crashes']} crashes | {f['msgs_lost']} lost | "
                f"{f['msgs_duplicated']} duplicated | "
                f"{f['retransmits']} retransmits | {f['repairs']} repairs | "
                f"{f.get('breaker_opens', 0)} breaker trips")
        if self.breakers:
            parts.append("")
            parts.append(render_table(
                ["owner", "peer", "opens", "probes", "open ms", "state"],
                [[b["owner"], b["peer"], b["opens"], b["probes"],
                  b["open_s"] * 1e3, b["state"]] for b in self.breakers],
                title="circuit breakers (routed-around peers)", digits=2))
        if self.transfers:
            parts.append("")
            parts.append(render_table(
                ["from", "to", "transfers"],
                [[e["src"], e["dst"], e["count"]] for e in self.transfers],
                title=f"work transfer matrix "
                      f"({'top edges' if self.meta.get('matrix_elided') else 'all edges'})"))
        if self.links:
            parts.append("")
            parts.append(render_table(
                ["from", "to", "frames", "payload kB"],
                [[e["src"], e["dst"], e["frames"], e["bytes"] / 1e3]
                 for e in self.links],
                title=f"per-link traffic "
                      f"({'top links' if self.meta.get('links_elided') else 'all links'}, "
                      f"{'mesh-counted' if self.meta.get('p2p') else 'relay-counted'})",
                digits=2))
        if self.utilization:
            parts.append("")
            parts.append(render_table(
                ["t ms", "busy%"],
                [[u["t"] * 1e3, 100 * u["busy_frac"]]
                 for u in self.utilization],
                title="utilization profile", digits=1))
        if self.metrics:
            parts.append("")
            rows = []
            for name, snap in self.metrics.items():
                if snap["type"] == "histogram":
                    rows.append([name, snap["count"], fmt(snap["mean"], 6),
                                 fmt(snap["min"], 6), fmt(snap["max"], 6)])
                else:
                    rows.append([name, snap["value"], None, None, None])
            parts.append(render_table(
                ["metric", "count/value", "mean", "min", "max"], rows,
                title="metrics registry", digits=6))
        return "\n".join(parts)


def build_report(cfg: RunConfig, result: ExperimentResult, stats: RunStats,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 app: str = "?", unit_cost: float = 0.0,
                 extra_meta: Optional[dict] = None,
                 links: Optional[dict] = None) -> RunReport:
    """Assemble a :class:`RunReport` from one finished run's artefacts.

    ``links`` is a live run's per-link traffic: ``(src, dst) ->
    (frames, payload_bytes)``, counted by the star router while relaying
    or by each worker's mesh in p2p mode.
    """
    makespan = stats.makespan
    total_units = stats.total_work_units
    meta = {"app": app, "protocol": cfg.protocol, "n": cfg.n,
            "seed": cfg.seed, "quantum": cfg.quantum,
            "sharing": cfg.sharing}
    if extra_meta:
        meta.update(extra_meta)

    per_node = []
    units = []
    busy_sum = handler_sum = idle_sum = lifetime_sum = 0.0
    for p in stats.per_process:
        # a crashed node's clock stops at its crash; everyone else is
        # accountable until the run's makespan
        lifetime = min(makespan, p.crash_time)
        idle = p.idle_time(makespan)
        units.append(p.work_units)
        busy_sum += p.busy_time
        handler_sum += p.handler_time
        idle_sum += idle
        lifetime_sum += lifetime
        per_node.append({
            "pid": p.pid,
            "units": p.work_units,
            "share_pct": (100.0 * p.work_units / total_units
                          if total_units else 0.0),
            "msgs_sent": p.msgs_sent,
            "msgs_received": p.msgs_received,
            "steals_attempted": p.steals_attempted,
            "steals_successful": p.steals_successful,
            "busy_s": p.busy_time,
            "handler_s": p.handler_time,
            "idle_s": idle,
            "util_pct": (100.0 * p.busy_time / lifetime
                         if lifetime > 0 else 0.0),
            "state": "crashed" if p.crashes else "ok",
        })

    totals = {
        "makespan": makespan,
        "work_done_time": stats.work_done_time,
        "work_units": total_units,
        "msgs": stats.total_msgs,
        "steals": stats.total_steals,
        "steals_ok": stats.total_steals_ok,
        "steal_success_rate": (stats.total_steals_ok / stats.total_steals
                               if stats.total_steals else 0.0),
        "events": stats.events_fired,
        "optimum": result.optimum,
    }
    load = {
        "entropy": load_entropy(units),
        "imbalance": (max(units) * len(units) / sum(units)
                      if units and sum(units) else None),
        "min": min(units) if units else 0,
        "mean": (sum(units) / len(units)) if units else 0.0,
        "max": max(units) if units else 0,
    }
    idle_breakdown = {
        "node_seconds": lifetime_sum,
        "busy_frac": busy_sum / lifetime_sum if lifetime_sum else 0.0,
        "handler_frac": handler_sum / lifetime_sum if lifetime_sum else 0.0,
        "idle_frac": idle_sum / lifetime_sum if lifetime_sum else 0.0,
    }
    faults = {
        "crashes": result.crashes,
        "msgs_lost": result.msgs_lost,
        "msgs_duplicated": result.msgs_duplicated,
        "retransmits": result.retransmits,
        "repairs": result.repairs,
        "breaker_opens": result.breaker_opens,
    }

    link_rows: list[dict] = []
    if links:
        edges = sorted(links.items(), key=lambda kv: (-kv[1][0], kv[0]))
        if len(edges) > _MATRIX_LIMIT:
            meta["links_elided"] = True
            edges = edges[:_MATRIX_LIMIT]
        link_rows = [{"src": s, "dst": d, "frames": fc, "bytes": bc}
                     for (s, d), (fc, bc) in edges]

    transfers: list[dict] = []
    utilization: list[dict] = []
    breakers: list[dict] = []
    if tracer is not None:
        breakers = breaker_summary(tracer, makespan)
        matrix = steal_matrix(tracer)
        edges = sorted(matrix.items(), key=lambda kv: (-kv[1], kv[0]))
        if cfg.n > _MATRIX_LIMIT and len(edges) > _MATRIX_LIMIT:
            meta["matrix_elided"] = True
            edges = edges[:_MATRIX_LIMIT]
        transfers = [{"src": s, "dst": d, "count": c}
                     for (s, d), c in edges]
        if makespan > 0 and unit_cost > 0 and any(
                s.kind == QUANTUM for s in tracer.samples):
            for t, frac in tracer.utilization_profile(
                    makespan, unit_cost, cfg.n, buckets=10):
                utilization.append({"t": t, "busy_frac": frac})

    return RunReport(meta=meta, totals=totals, per_node=per_node, load=load,
                     idle_breakdown=idle_breakdown, faults=faults,
                     transfers=transfers, utilization=utilization,
                     metrics=metrics.snapshot() if metrics is not None
                     else {}, breakers=breakers, links=link_rows)


__all__ = ["REPORT_SCHEMA_VERSION", "RunReport", "breaker_summary",
           "build_report", "load_entropy", "steal_matrix"]
