"""Metrics registry: counters, gauges and bounded histograms.

The paper's evaluation (§IV) is built from *distributional* run-internal
signals — steal-request latencies, work-transfer sizes, termination-wave
round-trips — not just the flat totals in :class:`repro.sim.stats.RunStats`.
This module provides the registry those signals are published into.

Design constraints, in order:

1. **Zero cost when detached.** No registry is created unless the caller
   asks for one (``Simulator(metrics=...)`` / ``run_once(metrics=...)``);
   every publishing site is gated on a single ``is not None`` check against
   a cached attribute, so clean hot paths keep their exact instruction
   sequence. ``benchmarks/check_regression.py`` holds the event-queue
   throughput within tolerance of the recorded baseline to keep it that way.
2. **Purely observational.** Publishing never schedules events, draws
   randomness or mutates simulation state, so an instrumented run is
   bit-identical to a bare one (asserted by the test suite).
3. **Bounded memory.** Histograms hold fixed bucket arrays (upper-edge
   buckets plus one overflow bucket), never raw samples — a million-event
   run costs the same few hundred bytes as a ten-event run.

Instrument names are dotted strings (``steal.latency_s``); the catalogue of
names the framework publishes lives in :data:`METRICS` and is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence, Union

from ..sim.errors import SimConfigError


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    ``edges`` are the inclusive upper bounds of the finite buckets, in
    strictly increasing order; one extra overflow bucket catches anything
    above the last edge, so :attr:`counts` has ``len(edges) + 1`` entries
    and no observation is ever dropped. Exact ``count``/``total``/``min``/
    ``max`` ride along so means stay exact even though the distribution is
    bucketed.
    """

    __slots__ = ("name", "help", "edges", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, edges: Sequence[float],
                 help: str = "") -> None:
        if not edges:
            raise SimConfigError(f"histogram {name!r} needs >= 1 bucket edge")
        e = [float(x) for x in edges]
        if any(b <= a for a, b in zip(e, e[1:])):
            raise SimConfigError(
                f"histogram {name!r} edges must strictly increase: {e}")
        self.name = name
        self.help = help
        self.edges = e
        self.counts = [0] * (len(e) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def overflow(self) -> int:
        """Observations above the last edge."""
        return self.counts[-1]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": [{"le": le, "count": c}
                        for le, c in zip(self.edges, self.counts)],
            "overflow": self.overflow,
        }


Instrument = Union[Counter, Gauge, Histogram]

#: Geometric latency edges (seconds): 10us .. ~40s, factor 4.
LATENCY_EDGES = tuple(1e-5 * 4 ** k for k in range(12))
#: Geometric size edges (units / bytes): 1 .. 64k, factor 4.
SIZE_EDGES = tuple(4 ** k for k in range(9))

#: Catalogue of the instruments the framework publishes (name -> (kind,
#: help)); see docs/observability.md. User code may register more.
METRICS = {
    "steal.requests": ("counter", "work requests issued (all protocols)"),
    "steal.latency_s": ("histogram", "first request of an idle episode -> "
                                     "WORK arrival (virtual s)"),
    "work.transfer_units": ("histogram", "work units per WORK transfer"),
    "work.transfer_bytes": ("histogram", "encoded bytes per WORK transfer"),
    "term.waves": ("counter", "verification waves started by the root"),
    "term.wave_roundtrip_s": ("histogram", "root wave start -> all answers "
                                           "collected (virtual s)"),
    "reliable.retransmits": ("counter", "reliable-channel retransmissions"),
    "reliable.retransmit_delay_s": ("histogram",
                                    "backoff delay of each retransmission"),
    "engine.events": ("gauge", "events fired over the run"),
    "engine.makespan_s": ("gauge", "virtual time of termination"),
    "engine.crashes": ("counter", "crash-stop faults injected"),
}


class MetricsRegistry:
    """Named instruments, created on first use (get-or-create semantics)."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def _get(self, name: str, cls, **kwargs) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            help = kwargs.pop("help", "") or METRICS.get(name, ("", ""))[1]
            inst = cls(name, help=help, **kwargs)
            self._instruments[name] = inst
            return inst
        if not isinstance(inst, cls):
            raise SimConfigError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, edges: Sequence[float] = LATENCY_EDGES,
                  help: str = "") -> Histogram:
        inst = self._instruments.get(name)
        if inst is not None:
            if not isinstance(inst, Histogram):
                raise SimConfigError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not Histogram")
            return inst
        return self._get(name, Histogram, edges=edges, help=help)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument, sorted by name."""
        return {name: self._instruments[name].snapshot()
                for name in self.names()}


__all__ = ["Counter", "Gauge", "Histogram", "Instrument", "LATENCY_EDGES",
           "METRICS", "MetricsRegistry", "SIZE_EDGES"]
