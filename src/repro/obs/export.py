"""Structured trace export: schema-versioned NDJSON, gzip-able, round-trip.

A trace file is newline-delimited JSON with exactly three record shapes:

* line 1 — header: ``{"record": "header", "schema": 1, "meta": {...}}``
* body  — one sample per line:
  ``{"record": "sample", "t": <float>, "pid": <int>, "kind": <str>,
  "v": <float>}``
* last line — footer: ``{"record": "end", "samples": <int>}``

The footer's count makes truncated files detectable: a crashed writer never
reaches it, and :func:`load_trace` refuses the file rather than silently
returning a partial trace. Floats are emitted with Python's shortest
round-trip ``repr``, so a load → re-export cycle is **bit-identical** —
asserted by the test suite, and the property offline analysis relies on.

Paths ending in ``.gz`` are transparently gzip-compressed on both ends.

Two ways to produce a trace:

* :func:`export_trace` dumps an in-memory
  :class:`~repro.sim.trace.Tracer` after the run;
* :class:`TraceWriter` *is* a tracer sink (same ``record()`` signature and
  ``enabled`` attribute), so it can be attached anywhere a ``Tracer`` is
  accepted and streams samples to disk as the engine emits them — traces
  larger than memory never materialise a sample list.
"""

from __future__ import annotations

import gzip
import io
import json
from dataclasses import dataclass
from typing import Optional, Union

from ..sim.errors import SimConfigError
from ..sim.trace import Sample, Tracer

#: Bump on any incompatible record-shape change; loaders refuse unknown
#: versions instead of guessing.
TRACE_SCHEMA_VERSION = 1


def _open_write(path: str) -> io.TextIOBase:
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: str) -> io.TextIOBase:
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


class TraceWriter:
    """Streaming NDJSON sink, duck-compatible with ``Tracer.record``.

    Use as a context manager (or call :meth:`close`) — the footer that
    validates the file is only written on close::

        with TraceWriter("run.trace.ndjson.gz", meta={"seed": 42}) as tw:
            run_once(cfg, app, tracer=tw)
    """

    def __init__(self, path: str, meta: Optional[dict] = None) -> None:
        self.path = str(path)
        self.enabled = True
        self.samples_written = 0
        self._fh: Optional[io.TextIOBase] = _open_write(self.path)
        header = {"record": "header", "schema": TRACE_SCHEMA_VERSION,
                  "meta": meta or {}}
        self._fh.write(json.dumps(header) + "\n")

    def record(self, time: float, pid: int, kind: str,
               value: float = 0.0) -> None:
        """Append one sample (no-op while disabled or after close)."""
        if not self.enabled or self._fh is None:
            return
        self._fh.write('{"record": "sample", "t": %s, "pid": %d, '
                       '"kind": %s, "v": %s}\n'
                       % (repr(float(time)), pid, json.dumps(kind),
                          repr(float(value))))
        self.samples_written += 1

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps({"record": "end",
                                   "samples": self.samples_written}) + "\n")
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def export_trace(tracer: Tracer, path: str,
                 meta: Optional[dict] = None) -> int:
    """Write an in-memory tracer's samples to ``path``; returns the count."""
    with TraceWriter(path, meta=meta) as tw:
        for s in tracer.samples:
            tw.record(s.time, s.pid, s.kind, s.value)
        return tw.samples_written


@dataclass
class LoadedTrace:
    """A trace file pulled back into memory."""

    schema: int
    meta: dict
    tracer: Tracer

    @property
    def samples(self) -> list[Sample]:
        return self.tracer.samples


def load_trace(path: str) -> LoadedTrace:
    """Parse a trace file; validates schema version and footer count."""
    tracer = Tracer()
    header: Optional[dict] = None
    footer: Optional[dict] = None
    with _open_read(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SimConfigError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from exc
            kind = rec.get("record")
            if lineno == 1:
                if kind != "header":
                    raise SimConfigError(
                        f"{path}: not a trace file (no header record)")
                schema = rec.get("schema")
                if schema != TRACE_SCHEMA_VERSION:
                    raise SimConfigError(
                        f"{path}: unsupported trace schema {schema!r} "
                        f"(this loader reads {TRACE_SCHEMA_VERSION})")
                header = rec
            elif kind == "sample":
                tracer.samples.append(Sample(rec["t"], rec["pid"],
                                             rec["kind"], rec["v"]))
            elif kind == "end":
                footer = rec
            else:
                raise SimConfigError(
                    f"{path}:{lineno}: unknown record type {kind!r}")
    if header is None:
        raise SimConfigError(f"{path}: empty trace file")
    if footer is None:
        raise SimConfigError(
            f"{path}: truncated trace (no end record; writer died mid-run?)")
    if footer.get("samples") != len(tracer.samples):
        raise SimConfigError(
            f"{path}: sample count mismatch (footer says "
            f"{footer.get('samples')}, file holds {len(tracer.samples)})")
    return LoadedTrace(schema=header["schema"], meta=header.get("meta", {}),
                       tracer=tracer)


TracerLike = Union[Tracer, TraceWriter]

__all__ = ["LoadedTrace", "TRACE_SCHEMA_VERSION", "TraceWriter", "TracerLike",
           "export_trace", "load_trace"]
