"""Tests for BnBWork: interval arithmetic, conservation, coverage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bnb.interval import tree_leaves
from repro.bnb.work import INTERVAL_BYTES, BnBWork
from repro.sim.errors import SimConfigError


def test_full_tree():
    w = BnBWork.full_tree(5)
    assert w.amount() == 120
    assert not w.is_empty()
    assert BnBWork.empty(5).is_empty()


def test_constructor_validation():
    with pytest.raises(SimConfigError):
        BnBWork(0)
    with pytest.raises(SimConfigError):
        BnBWork(4, [(5, 3)])
    with pytest.raises(SimConfigError):
        BnBWork(4, [(0, 100)])  # beyond 4!
    with pytest.raises(SimConfigError):
        BnBWork(4, [(0, 5), (3, 8)])  # overlapping


def test_split_takes_from_tail():
    w = BnBWork(5, [(0, 100)])
    piece = w.split(0.25)
    # cut point snapped up to a block boundary (multiples of 4! = 24 here),
    # so the piece is the tail [96, 100) and nothing is lost
    assert piece.as_tuples() == [(96, 100)]
    assert w.as_tuples() == [(0, 96)]
    assert piece.amount() + w.amount() == 100
    assert piece.amount() <= 25  # never more than requested


def test_split_spans_multiple_intervals():
    w = BnBWork(5, [(0, 10), (50, 60), (100, 110)])
    piece = w.split(0.5)  # ~15 positions from the tail
    # the whole tail interval is taken as-is; the partial cut of the middle
    # interval snaps to a 2-aligned boundary
    assert piece.as_tuples() == [(56, 60), (100, 110)]
    assert piece.amount() == 14
    assert w.as_tuples() == [(0, 10), (50, 56)]
    assert piece.amount() + w.amount() == 30


def test_split_keeps_at_least_one_position():
    w = BnBWork(5, [(0, 10)])
    piece = w.split(1.0)
    assert w.amount() >= 1
    assert piece is not None
    assert piece.amount() + w.amount() == 10


def test_split_alignment_boundaries():
    """Partial cuts land on subtree-block boundaries (width <= give)."""
    from repro.bnb.interval import factorials
    w = BnBWork(8, [(0, tree_leaves(8))])
    piece = w.split(0.3)
    cut = piece.as_tuples()[0][0]
    give_requested = int(tree_leaves(8) * 0.3)
    width = max(f for f in factorials(8) if f <= give_requested)
    assert cut % width == 0


def test_split_indivisible():
    w = BnBWork(5, [(7, 8)])
    assert w.split(0.9) is None
    assert w.split(0.0) is None


def test_merge():
    w = BnBWork(5, [(0, 10)])
    other = BnBWork(5, [(20, 30)])
    w.merge(other)
    assert w.amount() == 20
    assert other.is_empty()
    with pytest.raises(SimConfigError):
        w.merge(BnBWork(4, [(0, 2)]))


def test_head_pop():
    w = BnBWork(5, [(0, 10), (20, 30)])
    assert w.head() == [0, 10]
    w.pop_head()
    assert w.head() == [20, 30]
    w.pop_head()
    assert w.head() is None


def test_encoded_bytes():
    w = BnBWork(5, [(0, 10), (20, 30)])
    assert w.encoded_bytes() == 2 * INTERVAL_BYTES


def test_huge_amounts_are_exact():
    w = BnBWork.full_tree(20)
    assert w.amount() == tree_leaves(20)
    piece = w.split(0.5)
    assert piece.amount() + w.amount() == tree_leaves(20)


@settings(max_examples=60)
@given(st.lists(st.floats(min_value=0.01, max_value=0.99),
                min_size=1, max_size=8))
def test_property_split_chain_conserves_and_stays_disjoint(fractions):
    w = BnBWork.full_tree(8)
    total = w.amount()
    pieces = [w]
    for f in fractions:
        donor = max(pieces, key=lambda x: x.amount())
        p = donor.split(f)
        if p is not None:
            pieces.append(p)
    assert sum(p.amount() for p in pieces) == total
    # disjoint coverage check
    ivs = sorted(iv for p in pieces for iv in p.as_tuples())
    pos = 0
    for a, b in ivs:
        assert a >= pos and b > a
        pos = b
    assert pos == total  # nothing lost


@given(st.floats(min_value=0.0, max_value=1.0))
def test_property_split_fraction_rounding(f):
    w = BnBWork(6, [(0, 720)])
    before = w.amount()
    piece = w.split(f)
    given = 0 if piece is None else piece.amount()
    assert given + w.amount() == before
    assert given <= int(before * f) or given == 0
