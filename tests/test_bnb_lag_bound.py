"""Tests for the lag-aware Johnson machinery and the full LLRK bound."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bnb.bounds import JohnsonLagBound, JohnsonPairBound, get_bound
from repro.bnb.engine import BnBEngine, solve_bruteforce
from repro.bnb.flowshop import make_instance
from repro.bnb.johnson import lag_makespan, lag_optimal, lag_order
from repro.bnb.taillard import scaled_instance
from tests.test_bnb_johnson_bounds import (best_completion_below,
                                           eval_child_bound)

INST = make_instance([[5, 2, 7, 3], [4, 6, 1, 8], [9, 3, 5, 2]], name="t")


def test_lag_order_validates():
    with pytest.raises(ValueError):
        lag_order([1], [1], [1, 2])


def test_zero_lags_reduce_to_johnson():
    a, b = [3, 5, 1], [2, 4, 6]
    assert lag_optimal(a, b, [0, 0, 0]) == 13


@settings(max_examples=50)
@given(st.integers(min_value=2, max_value=5), st.data())
def test_property_mitten_rule_optimal(n, data):
    """Johnson on (a+l, l+b) is exactly optimal for the lagged problem."""
    a = [data.draw(st.integers(min_value=1, max_value=15)) for _ in range(n)]
    b = [data.draw(st.integers(min_value=1, max_value=15)) for _ in range(n)]
    lag = [data.draw(st.integers(min_value=0, max_value=20))
           for _ in range(n)]
    best = min(lag_makespan(a, b, lag, order)
               for order in itertools.permutations(range(n)))
    assert lag_optimal(a, b, lag) == best


def test_lag_bound_admissible_everywhere():
    bound = get_bound("johnson-lag:all").attach(INST)
    n = INST.n_jobs
    for depth in (1, 2, 3):
        for prefix in itertools.permutations(range(n), depth):
            lb = eval_child_bound(bound, INST, prefix)
            true = best_completion_below(INST, prefix)
            assert lb <= true, (prefix, lb, true)


def test_lag_bound_dominates_zero_lag_on_spread_pairs():
    """With in-between machines, lags only tighten the relaxation."""
    inst = scaled_instance(2, n_jobs=6, n_machines=6)
    lagged = JohnsonLagBound([(0, 5)]).attach(inst)
    plain = JohnsonPairBound([(0, 5)]).attach(inst)
    dominated = 0
    for prefix in itertools.permutations(range(6), 2):
        l1 = eval_child_bound(lagged, inst, prefix)
        l0 = eval_child_bound(plain, inst, prefix)
        assert l1 >= l0
        dominated += l1 > l0
    assert dominated > 0  # strictly better somewhere


@pytest.mark.parametrize("bound", ["johnson-lag", "llrk-full"])
def test_lag_bounds_solve_to_optimum(bound):
    inst = scaled_instance(3, n_jobs=7, n_machines=6)
    opt, _ = solve_bruteforce(inst)
    value, perm, nodes = BnBEngine(inst, bound=bound).solve()
    assert value == opt
    assert inst.makespan(perm) == opt


def test_stronger_bound_prunes_more():
    inst = scaled_instance(1, n_jobs=8, n_machines=8)
    _, _, n_plain = BnBEngine(inst, bound="llrk").solve()
    _, _, n_full = BnBEngine(inst, bound="llrk-full").solve()
    assert n_full <= n_plain


def test_factory_names():
    assert isinstance(get_bound("johnson-lag:last"), JohnsonLagBound)
    assert get_bound("llrk-full").name.startswith("max(")
    from repro.sim.errors import SimConfigError
    with pytest.raises(SimConfigError):
        JohnsonLagBound("nope").attach(INST)
    with pytest.raises(SimConfigError):
        JohnsonLagBound([(3, 1)]).attach(INST)
