"""Tests for the Taillard generator and instance construction."""

import pytest

from repro.bnb.taillard import (TA_20x20_SEEDS, processing_times,
                                scaled_instance, taillard_instance, unif)
from repro.sim.errors import SimConfigError


def test_unif_range_and_determinism():
    seed = 1234567
    vals = []
    s = seed
    for _ in range(1000):
        v, s = unif(s, 1, 99)
        vals.append(v)
    assert all(1 <= v <= 99 for v in vals)
    # deterministic replay
    s = seed
    again = []
    for _ in range(1000):
        v, s = unif(s, 1, 99)
        again.append(v)
    assert vals == again
    assert len(set(vals)) > 50  # actually random-looking


def test_unif_lehmer_recurrence():
    # one step computed by hand: seed' = 16807*(seed % 127773) - 2836*(seed//127773)
    seed = 479340445
    k = seed // 127773
    expected = 16807 * (seed % 127773) - 2836 * k
    if expected < 0:
        expected += 2147483647
    _, s2 = unif(seed, 1, 99)
    assert s2 == expected


def test_unif_rejects_bad_seed():
    with pytest.raises(SimConfigError):
        unif(0, 1, 99)
    with pytest.raises(SimConfigError):
        unif(2147483647, 1, 99)


def test_processing_times_shape():
    p = processing_times(TA_20x20_SEEDS[0], 20, 20)
    assert len(p) == 20 and all(len(r) == 20 for r in p)
    assert all(1 <= t <= 99 for row in p for t in row)


def test_full_instances():
    inst = taillard_instance(1)
    assert inst.name == "Ta21"
    assert inst.n_jobs == 20 and inst.n_machines == 20
    assert taillard_instance(10).name == "Ta30"
    with pytest.raises(SimConfigError):
        taillard_instance(0)
    with pytest.raises(SimConfigError):
        taillard_instance(11)


def test_scaled_instance_is_prefix_of_full():
    full = taillard_instance(3)
    scaled = scaled_instance(3, n_jobs=10, n_machines=20)
    assert scaled.n_jobs == 10 and scaled.n_machines == 20
    for i in range(20):
        assert scaled.p[i] == full.p[i][:10]
    assert scaled.name == "Ta23s(10x20)"


def test_scaled_instance_validation():
    with pytest.raises(SimConfigError):
        scaled_instance(1, n_jobs=21)
    with pytest.raises(SimConfigError):
        scaled_instance(1, n_jobs=1)
    with pytest.raises(SimConfigError):
        scaled_instance(0)


def test_instances_differ():
    names = set()
    matrices = set()
    for k in range(1, 11):
        inst = scaled_instance(k, n_jobs=8, n_machines=10)
        names.add(inst.name)
        matrices.add(inst.p)
    assert len(names) == 10 and len(matrices) == 10
