"""Service layer (``repro.serve``): the resilience contracts, in-process.

One daemon with two warm lanes is shared by most tests (boot is the
expensive part); the tests then hit the newline-JSON API exactly like an
external client would and check the properties ``docs/serve.md``
promises:

* correct per-job results, concurrently, on *warm* fleets (same worker
  OS pids across jobs — no per-run spawning);
* poisoned specs are admitted, fail at build time, and land in the
  dead-letter store with a traceback — the lane stays in service;
* a full queue yields a structured ``busy`` rejection (load leveling +
  admission control), never a hang;
* graceful drain completes every accepted job, rejects new ones with
  ``draining``, and ``resume`` re-opens admission;
* a rolling restart recycles every lane without losing accepted jobs.
"""

import shutil
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.loadgen import POISON_SPEC
from repro.sim.errors import SimConfigError
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree

TINY_NODES = count_tree(PRESETS["bin_tiny"].params).nodes
UTS_TINY = {"kind": "uts", "preset": "bin_tiny"}
SYN = {"kind": "synthetic", "units": 4000}


def _wait_idle(d, timeout=60.0):
    """Block until every lane finished booting (fleet snapshots taken
    before the handshake show ospid=None)."""
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        lanes = [ln.snapshot() for ln in d._lanes]
        if all(ln["state"] == "idle"
               and all(w["ospid"] for w in ln["workers"])
               for ln in lanes):
            return
        time.sleep(0.05)
    raise AssertionError(f"lanes never went idle: {lanes}")


@pytest.fixture(scope="module")
def daemon():
    d = ServeDaemon(ServeConfig(lanes=2, n=2, queue_limit=16,
                                job_timeout_s=60.0))
    d.start()
    _wait_idle(d)
    yield d
    d.stop()
    shutil.rmtree(d.run_dir, ignore_errors=True)


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.address) as c:
        yield c


# -- config & admission-side validation ---------------------------------------

def test_config_rejects_nonsense():
    with pytest.raises(SimConfigError):
        ServeConfig(protocol="nope")
    with pytest.raises(SimConfigError):
        ServeConfig(lanes=0)
    with pytest.raises(SimConfigError):
        ServeConfig(n=1)
    with pytest.raises(SimConfigError):
        ServeConfig(queue_limit=0)
    with pytest.raises(SimConfigError):
        ServeConfig(lanes=2, max_inflight=3)


def test_bad_request_and_unknown_op(client):
    resp = client.request("submit", app={"kind": "uts"})   # missing preset
    assert resp["ok"] is False and resp["error"] == "bad-request"
    resp = client.request("submit", app=dict(SYN), run={"protocol": "??"})
    assert resp["ok"] is False and resp["error"] == "bad-request"
    resp = client.request("no_such_op")
    assert resp["ok"] is False and resp["error"] == "unknown-op"
    resp = client.request("status", job_id="j999999")
    assert resp["ok"] is False and resp["error"] == "unknown-job"


# -- warm-fleet execution ------------------------------------------------------

def test_concurrent_jobs_on_warm_lanes(client):
    """Two jobs in flight at once, each with the right answer, and the
    fleet's worker processes survive across jobs (warm reuse)."""
    before = client.fleet()
    pids_before = {ln["lane"]: sorted(w["ospid"] for w in ln["workers"])
                   for ln in before["lanes"]}

    subs = [client.submit(UTS_TINY), client.submit(SYN)]
    assert all(s["ok"] for s in subs)
    st_uts = client.wait(subs[0]["job_id"], timeout=90.0)
    st_syn = client.wait(subs[1]["job_id"], timeout=90.0)
    assert st_uts["state"] == "done" and st_syn["state"] == "done"
    assert st_uts["total_units"] == TINY_NODES
    assert st_syn["total_units"] == SYN["units"]
    assert st_uts["queue_s"] >= 0 and st_uts["exec_s"] > 0

    # with 2 idle lanes and 2 simultaneous submissions, the jobs ran in
    # parallel on distinct bulkheads
    lanes_used = {client.status(s["job_id"])["lane"] for s in subs}
    assert len(lanes_used) == 2

    after = client.fleet()
    pids_after = {ln["lane"]: sorted(w["ospid"] for w in ln["workers"])
                  for ln in after["lanes"]}
    assert pids_after == pids_before            # nobody was respawned
    assert all(ln["restarts"] == 0 for ln in after["lanes"])

    # the full observability report rides along
    rep = client.report(subs[0]["job_id"])
    assert rep["ok"] and rep["report"]["meta"]["serve"] is True


def test_poison_spec_dead_letters_and_lane_survives(client):
    resp = client.submit(POISON_SPEC)
    assert resp["ok"], "poison must pass admission (fails at build time)"
    st = client.wait(resp["job_id"], timeout=60.0)
    assert st["state"] == "dead"
    assert "__poisoned__" in st["error"]

    dl = client.dead_letters()
    assert dl["count"] >= 1
    rec = next(r for r in dl["dead_letters"]
               if r["job_id"] == resp["job_id"])
    assert rec["app"] == POISON_SPEC
    assert rec["traceback"]                      # API exposes the traceback

    # the lane that hit the poison is still in service
    again = client.submit(SYN)
    assert client.wait(again["job_id"], timeout=90.0)["state"] == "done"


# -- drain / resume / rolling restart -----------------------------------------

def test_graceful_drain_completes_accepted_then_rejects(client):
    subs = [client.submit(SYN) for _ in range(4)]
    assert all(s["ok"] for s in subs)
    resp = client.drain(wait=True, timeout_s=120.0)
    assert resp["drained"] is True
    assert resp["queue_depth"] == 0 and resp["running"] == 0
    for s in subs:                               # zero loss
        assert client.status(s["job_id"])["state"] == "done"

    rej = client.submit(SYN)
    assert rej["ok"] is False and rej["error"] == "draining"

    assert client.resume()["draining"] is False
    ok = client.submit(SYN)
    assert client.wait(ok["job_id"], timeout=90.0)["state"] == "done"


def test_rolling_restart_recycles_every_lane_zero_loss(client):
    subs = [client.submit(SYN) for _ in range(3)]
    resp = client.restart()
    assert resp["ok"] is True
    assert sorted(resp["restarted"]) == [0, 1] and not resp["failed"]
    for s in subs:                               # accepted before/while
        assert client.wait(s["job_id"], timeout=90.0)["state"] == "done"
    fleet = client.fleet()
    assert all(ln["restarts"] >= 1 for ln in fleet["lanes"])
    # service is still healthy after the rebuild
    ok = client.submit(UTS_TINY)
    assert client.wait(ok["job_id"], timeout=90.0)["state"] == "done"


# -- admission control under pressure -----------------------------------------

def test_full_queue_rejects_busy_with_backpressure_hint():
    d = ServeDaemon(ServeConfig(lanes=1, n=2, queue_limit=1,
                                max_inflight=1, job_timeout_s=60.0))
    d.start()
    try:
        with ServeClient(d.address) as c:
            slow = {"kind": "synthetic", "units": 300_000}
            resps = [c.submit(slow) for _ in range(5)]
            busy = [r for r in resps if not r["ok"]]
            accepted = [r for r in resps if r["ok"]]
            assert busy, "queue_limit=1 must shed some of 5 instant submits"
            for r in busy:
                assert r["error"] == "busy"
                assert r["queue_limit"] == 1
                assert r["queue_depth"] >= 1
                assert r["retry_after_s"] > 0
            assert c.stats()["rejected_busy"] == len(busy)
            for r in accepted:                   # the rest still complete
                assert c.wait(r["job_id"], timeout=120.0)["state"] == "done"
    finally:
        d.stop()
        shutil.rmtree(d.run_dir, ignore_errors=True)
