"""Unit tests of the protocol-agnostic worker framework."""

import pytest

from repro.apps.synthetic import SyntheticApplication, SyntheticWork
from repro.core.worker import WorkerConfig, WorkerProcess
from repro.sim import Simulator, uniform_network
from repro.sim.errors import SimRuntimeError


class LoneWorker(WorkerProcess):
    """Processes its initial work and stops; no balancing."""

    def on_idle(self):
        if not self.terminated:
            self.finish()


def run_sim(*procs, **net_kw):
    net_kw.setdefault("latency", 1e-4)
    sim = Simulator(uniform_network(**net_kw), seed=1)
    for p in procs:
        sim.add_process(p)
    return sim, sim.run()


def test_quantum_loop_processes_everything():
    app = SyntheticApplication(1000, unit_cost=1e-5)
    w = LoneWorker(0, app, WorkerConfig(quantum=64))
    w.work = app.initial_work()
    _, stats = run_sim(w)
    assert stats.per_process[0].work_units == 1000
    assert w.terminated
    # virtual busy time is exact: units x unit_cost
    assert stats.per_process[0].busy_time == pytest.approx(1000 * 1e-5)


def test_quantum_respects_configured_size():
    app = SyntheticApplication(100, unit_cost=1e-5)
    seen = []

    class Spy(LoneWorker):
        def on_quantum_done(self, units):
            seen.append(units)

    w = Spy(0, app, WorkerConfig(quantum=30))
    w.work = app.initial_work()
    run_sim(w)
    assert seen == [30, 30, 30, 10]


def test_makespan_counts_termination_not_just_work():
    app = SyntheticApplication(10, unit_cost=1e-5)
    w = LoneWorker(0, app, WorkerConfig(quantum=100))
    w.work = app.initial_work()
    _, stats = run_sim(w)
    assert stats.makespan >= stats.work_done_time > 0


def test_work_after_termination_is_loud():
    class Sender(WorkerProcess):
        def start(self):
            super().start()
            self.finish()
            self.call_after(0.01, lambda: self.send_work(
                1, SyntheticWork(5), channel="x"))

    app = SyntheticApplication(10)
    s = Sender(0, app, WorkerConfig())
    t = LoneWorker(1, app, WorkerConfig())
    t.terminated = True  # already finished
    sim = Simulator(uniform_network(latency=1e-4), seed=1)
    sim.add_process(s)
    sim.add_process(t)
    with pytest.raises(SimRuntimeError):
        sim.run()


def test_work_message_updates_stats_and_merges():
    app = SyntheticApplication(50)

    class Giver(LoneWorker):
        def start(self):
            super().start()
            piece = self.work.split(0.5)
            self.send_work(1, piece, channel="gift")

    class Taker(LoneWorker):
        def on_idle(self):
            # only stop once the gift arrived and was processed
            if self.stats.work_units > 0:
                self.finish()

    g = Giver(0, app, WorkerConfig())
    g.work = app.initial_work()
    t = Taker(1, app, WorkerConfig())
    _, stats = run_sim(g, t)
    assert stats.per_process[0].work_msgs_sent == 1
    assert stats.per_process[1].work_msgs_received == 1
    assert stats.per_process[1].steals_successful == 1
    assert stats.total_work_units == 50


def test_bound_gossip_monotone_no_loops():
    """A BOUND value floods once; stale values die immediately."""
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.taillard import scaled_instance

    app = BnBApplication(scaled_instance(1, n_jobs=5, n_machines=3))

    class Ring(WorkerProcess):
        def __init__(self, pid, n):
            super().__init__(pid, app, WorkerConfig())
            self.n = n

        def gossip_targets(self):
            return [(self.pid + 1) % self.n, (self.pid - 1) % self.n]

        def start(self):
            super().start()
            if self.pid == 0:
                self.shared.update(500, (0, 1, 2, 3, 4))
                self._gossip(exclude=-1)

        def finished(self):
            return True  # passive listeners; the run ends at quiescence

    n = 6
    sim = Simulator(uniform_network(latency=1e-4), seed=1)
    workers = [sim.add_process(Ring(p, n)) for p in range(n)]
    stats = sim.run()
    assert all(w.shared.value == 500 for w in workers)
    bound_msgs = sum(p.msgs_sent for p in stats.per_process)
    # flooding a ring: bounded traffic, not an infinite loop
    assert bound_msgs <= 4 * n


def test_gossip_disabled():
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.taillard import scaled_instance
    app = BnBApplication(scaled_instance(1, n_jobs=5, n_machines=3))

    class W(WorkerProcess):
        def gossip_targets(self):
            return [1]

        def start(self):
            super().start()
            if self.pid == 0:
                self.shared.update(500, (0, 1, 2, 3, 4))
                if self.cfg.gossip_bounds:
                    self._gossip(exclude=-1)
            self.finish()

    sim = Simulator(uniform_network(latency=1e-4), seed=1)
    ws = [sim.add_process(W(p, app, WorkerConfig(gossip_bounds=False)))
          for p in range(2)]
    sim.run()
    assert ws[1].shared.value > 500  # never heard about it
