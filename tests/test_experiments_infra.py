"""Tests for the experiment harness infrastructure (not the experiments)."""

import pytest

from repro.apps.synthetic import SyntheticApplication
from repro.apps.uts_app import UTSApplication
from repro.experiments.config import (SCALES, bnb_app, bnb_instances,
                                      get_scale, uts_app)
from repro.experiments.registry import EXPERIMENTS, ORDER, get_experiment
from repro.experiments.report import (Series, banner, fmt, render_series,
                                      render_table)
from repro.experiments.runner import (PROTOCOLS, RunConfig, TrialStats,
                                      run_trials)
from repro.experiments.seqref import (sequential_optimum, sequential_time,
                                      sequential_units)
from repro.sim.errors import SimConfigError
from repro.uts.params import PRESETS


# -- report rendering ----------------------------------------------------------

def test_fmt():
    assert fmt(None) == "-"
    assert fmt(True) == "yes"
    assert fmt(1234567) == "1,234,567"
    assert fmt(3.14159, 2) == "3.14"
    assert fmt("x") == "x"


def test_render_table_alignment():
    out = render_table(["a", "long_header"], [[1, 2.5], [333, 4.25]],
                       title="t", digits=2)
    lines = out.splitlines()
    assert lines[0] == "t"
    assert "long_header" in lines[1]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # rectangular


def test_render_series_merges_x():
    s1 = Series("a")
    s1.add(1, 10.0)
    s1.add(2, 20.0)
    s2 = Series("b")
    s2.add(2, 200.0)
    out = render_series([s1, s2], "n", "y")
    assert "a" in out and "b" in out
    assert "-" in out  # the missing (1, b) cell


def test_banner():
    assert "hello" in banner("hello")


def test_ascii_chart():
    from repro.experiments.report import ascii_chart
    s1 = Series("a")
    s2 = Series("b")
    for x, y1, y2 in [(1, 10.0, 5.0), (2, 8.0, 6.0), (3, 4.0, 9.0)]:
        s1.add(x, y1)
        s2.add(x, y2)
    out = ascii_chart([s1, s2], width=30, height=8, x_label="n",
                      y_label="t", title="T")
    assert "T" in out and "* a" in out and "o b" in out
    assert out.count("|") >= 8
    assert ascii_chart([]) == "(empty chart)"


def test_ascii_chart_flat_series():
    from repro.experiments.report import ascii_chart
    s = Series("flat")
    s.add(1, 5.0)
    s.add(2, 5.0)
    out = ascii_chart([s], width=20, height=4)
    assert "*" in out  # constant series renders without dividing by zero


# -- runner ----------------------------------------------------------------------

def test_runconfig_validation():
    with pytest.raises(SimConfigError):
        RunConfig(protocol="NOPE")
    with pytest.raises(SimConfigError):
        RunConfig(protocol="TD", n=0)
    with pytest.raises(SimConfigError):
        RunConfig(protocol="MW", n=1)
    assert set(PROTOCOLS) == {"TD", "TR", "BTD", "BTR", "RWS", "MW", "AHMW",
                              "LIFELINE"}


def test_run_trials_uses_distinct_seeds():
    app_factory = lambda: UTSApplication(PRESETS["bin_tiny"].params)
    cfg = RunConfig(protocol="RWS", n=8, quantum=64, seed=5)
    ts = run_trials(cfg, app_factory, trials=3)
    outcomes = [(r.makespan, r.total_msgs) for r in ts.results]
    assert len(set(outcomes)) > 1  # different seeds, different runs
    assert ts.t_min <= ts.t_avg <= ts.t_max
    assert ts.t_std >= 0


def test_run_trials_validation():
    cfg = RunConfig(protocol="TD", n=4)
    with pytest.raises(SimConfigError):
        run_trials(cfg, lambda: SyntheticApplication(10), trials=0)


def test_trialstats_of_single():
    from repro.experiments.runner import ExperimentResult
    r = ExperimentResult(protocol="TD", n=2, makespan=1.0,
                         work_done_time=1.0, total_units=1, total_msgs=0,
                         total_steals=0, msgs_by_pid=[0, 0])
    ts = TrialStats.of([r])
    assert ts.t_std == 0.0 and ts.t_avg == 1.0


def test_efficiency_helper():
    from repro.experiments.runner import ExperimentResult
    r = ExperimentResult(protocol="TD", n=4, makespan=2.0,
                         work_done_time=2.0, total_units=1, total_msgs=0,
                         total_steals=0, msgs_by_pid=[])
    assert r.efficiency(t_seq=8.0) == 1.0
    assert r.efficiency(t_seq=8.0, workers=2) == 2.0


# -- scales & registry ---------------------------------------------------------------

def test_scales_registry():
    assert set(SCALES) == {"micro", "quick", "default", "full"}
    assert get_scale("quick").trials == 2
    with pytest.raises(SimConfigError):
        get_scale("huge")


def test_experiment_registry():
    assert list(ORDER) == ["table1", "fig1", "fig2", "table2", "fig3",
                           "fig4", "fig5", "granularity", "faults"]
    assert set(ORDER) == set(EXPERIMENTS)
    for exp_id in ORDER:
        assert callable(get_experiment(exp_id))
    with pytest.raises(SimConfigError):
        get_experiment("fig9")


def test_scale_apps():
    scale = get_scale("quick")
    instances = bnb_instances(scale)
    assert len(instances) == 10
    assert instances[0].n_jobs == scale.bnb_std[0]
    app = bnb_app(scale, 1)
    assert app.warm_start is True
    big = bnb_app(scale, 1, big=True)
    assert big.instance.n_jobs == scale.bnb_big[0]
    assert uts_app(scale).params == PRESETS[scale.uts_main].params


# -- sequential references ----------------------------------------------------------

def test_seqref_uts_exact():
    app = UTSApplication(PRESETS["bin_tiny"].params)
    assert sequential_units(app) == PRESETS["bin_tiny"].nodes
    assert sequential_time(app) == PRESETS["bin_tiny"].nodes * app.unit_cost


def test_seqref_bnb_memoised_and_consistent():
    scale = get_scale("quick")
    app = bnb_app(scale, 2)
    u1 = sequential_units(app)
    u2 = sequential_units(bnb_app(scale, 2))
    assert u1 == u2 > 0
    opt = sequential_optimum(app)
    from repro.bnb.engine import solve_bruteforce
    assert opt == solve_bruteforce(app.instance)[0]


def test_seqref_rejects_unknown_app():
    with pytest.raises(SimConfigError):
        sequential_units(SyntheticApplication(10))


def test_cli_list(capsys):
    from repro.experiments.__main__ import main
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig5" in out and "granularity" in out


def test_report_summary_jsonable():
    import json
    from repro.experiments.base import ExperimentReport
    rep = ExperimentReport(exp_id="x", title="t", expectation="e",
                           sections=["s1", "s2"])
    rep.wall_seconds = 1.234
    encoded = json.dumps(rep.summary())
    decoded = json.loads(encoded)
    assert decoded["experiment"] == "x"
    assert decoded["sections"] == ["s1", "s2"]
    assert decoded["wall_seconds"] == 1.23


def test_cli_requires_ids(capsys):
    from repro.experiments.__main__ import main
    with pytest.raises(SystemExit):
        main([])


def test_cli_trials_validation():
    from repro.experiments.__main__ import main
    with pytest.raises(SystemExit):
        main(["table1", "--trials", "0"])


def test_scale_replace_for_overrides():
    import dataclasses
    s = get_scale("quick")
    s2 = dataclasses.replace(s, trials=7, seed=99)
    assert s2.trials == 7 and s2.seed == 99
    assert s.trials == 2  # original untouched (frozen)
