"""Tests for statistics containers and aggregation."""

import pytest

from repro.sim.stats import ProcessStats, RunStats


def test_process_stats_idle_time():
    p = ProcessStats(pid=0, busy_time=0.3, handler_time=0.1)
    assert p.idle_time(horizon=1.0) == pytest.approx(0.6)
    assert p.idle_time(horizon=0.2) == 0.0  # clamped


def test_idle_time_stops_at_crash():
    """Regression: a crashed process must not accrue idle until the horizon.

    Its accountable window ends at crash_time — a node dead at t=0.5 of a
    2.0s run idled for 0.1s (0.5 - 0.4 active), not 1.6s.
    """
    dead = ProcessStats(pid=1, busy_time=0.3, handler_time=0.1,
                        crashes=1, crash_time=0.5)
    assert dead.idle_time(horizon=2.0) == pytest.approx(0.1)
    alive = ProcessStats(pid=2, busy_time=0.3, handler_time=0.1)
    assert alive.idle_time(horizon=2.0) == pytest.approx(1.6)
    # crash after the horizon: the horizon still wins
    late = ProcessStats(pid=3, busy_time=0.3, crash_time=5.0)
    assert late.idle_time(horizon=1.0) == pytest.approx(0.7)


def test_engine_stamps_crash_time():
    """A faulted run records when each victim died, bounding its idle."""
    from repro.apps.synthetic import SyntheticApplication
    from repro.experiments.runner import RunConfig, run_instrumented
    from repro.sim.faults import FaultPlan

    cfg = RunConfig(protocol="BTD", n=8, quantum=16, seed=11,
                    faults=FaultPlan(crashes=((3, 1e-3),)))
    _, stats = run_instrumented(cfg, SyntheticApplication(2000,
                                                          unit_cost=1e-5))
    victim = stats.per_process[3]
    assert victim.crashes == 1
    assert victim.crash_time == pytest.approx(1e-3)
    assert victim.crash_time < stats.makespan
    assert victim.idle_time(stats.makespan) <= victim.crash_time
    survivor = stats.per_process[0]
    assert survivor.crash_time == float("inf")


def test_runstats_create():
    rs = RunStats.create(4)
    assert rs.n == 4
    assert [p.pid for p in rs.per_process] == [0, 1, 2, 3]


def test_runstats_aggregates():
    rs = RunStats.create(3)
    for i, p in enumerate(rs.per_process):
        p.work_units = 10 * (i + 1)
        p.msgs_sent = i
        p.steals_attempted = 2
        p.steals_successful = 1
        p.busy_time = 0.5
    rs.makespan = 1.0
    assert rs.total_work_units == 60
    assert rs.total_msgs == 3
    assert rs.total_steals == 6
    assert rs.total_steals_ok == 3
    assert rs.total_busy == pytest.approx(1.5)
    assert rs.msgs_by_pid() == [0, 1, 2]
    assert rs.busy_fraction() == pytest.approx(0.5)


def test_runstats_efficiency():
    rs = RunStats.create(4)
    rs.makespan = 2.0
    assert rs.efficiency_vs(t_seq=8.0) == 1.0
    rs.makespan = 4.0
    assert rs.efficiency_vs(t_seq=8.0) == 0.5
    rs.makespan = 0.0
    assert rs.efficiency_vs(t_seq=8.0) == 0.0


def test_empty_runstats_guards():
    rs = RunStats.create(0)
    assert rs.busy_fraction() == 0.0
    assert rs.efficiency_vs(1.0) == 0.0


def test_seal_freezes_aggregates():
    """Aggregates are computed live during a run, then cached by seal()."""
    rs = RunStats.create(2)
    rs.per_process[0].work_units = 5
    assert rs.total_work_units == 5      # live before seal
    rs.per_process[1].work_units = 7
    assert rs.total_work_units == 12
    rs.seal()
    assert rs.total_work_units == 12
    assert rs.total_msgs == 0
    # post-seal mutation is invisible: the totals are frozen sums
    rs.per_process[0].work_units = 999
    rs.per_process[0].msgs_sent = 999
    assert rs.total_work_units == 12
    assert rs.total_msgs == 0


def test_seal_covers_all_five_totals():
    rs = RunStats.create(1)
    p = rs.per_process[0]
    p.work_units, p.msgs_sent, p.busy_time = 3, 4, 0.25
    p.steals_attempted, p.steals_successful = 6, 2
    rs.seal()
    assert (rs.total_work_units, rs.total_msgs, rs.total_steals,
            rs.total_steals_ok) == (3, 4, 6, 2)
    assert rs.total_busy == pytest.approx(0.25)


def test_simulator_seals_stats():
    """Engine runs hand back sealed stats."""
    from repro.sim import Simulator, SimProcess
    from repro.sim.network import uniform_network
    sim = Simulator(uniform_network(latency=1e-4, handler_cost=1e-6))
    sim.add_process(SimProcess(0))
    st = sim.run()
    assert st._aggregates is not None


# -- columnar (fleet-scale) storage --------------------------------------------


def _full_run(monkeypatch, threshold):
    from repro.apps.uts_app import UTSApplication
    from repro.experiments.runner import RunConfig, run_instrumented
    from repro.uts.params import PRESETS

    monkeypatch.setattr(RunStats, "COLUMNAR_THRESHOLD", threshold)
    cfg = RunConfig(protocol="TD", n=16, dmax=4, quantum=32, seed=9)
    return run_instrumented(cfg, UTSApplication(PRESETS["bin_mini"].params))


def test_columnar_run_is_bit_identical(monkeypatch):
    """Array-backed and list-backed stats must agree field for field."""
    import dataclasses

    res_list, st_list = _full_run(monkeypatch, threshold=1 << 30)
    res_cols, st_cols = _full_run(monkeypatch, threshold=1)
    assert type(st_cols.per_process).__name__ == "_ColumnarSeq"
    assert isinstance(st_list.per_process, list)
    assert res_cols == dataclasses.replace(res_list)
    for f in ("makespan", "work_done_time", "total_work_units",
              "total_msgs", "total_steals", "total_steals_ok",
              "total_busy", "events_fired"):
        assert getattr(st_cols, f) == getattr(st_list, f), f
    assert st_cols.msgs_by_pid() == st_list.msgs_by_pid()
    assert st_cols.fault_totals() == st_list.fault_totals()
    for pc, pl in zip(st_cols.per_process, st_list.per_process):
        assert pc.pid == pl.pid
        for name in ("msgs_sent", "msgs_received", "bytes_sent",
                     "work_units", "busy_time", "handler_time",
                     "steals_attempted", "steals_successful",
                     "finish_time", "crash_time"):
            assert getattr(pc, name) == getattr(pl, name), (pc.pid, name)
        assert pc.idle_time(st_cols.makespan) == pl.idle_time(
            st_list.makespan)


def test_columnar_seq_indexing():
    rs = RunStats.create(8)
    rs.per_process[3].work_units = 7   # exercise a view write
    cols = RunStats.create(8)
    # force columnar regardless of threshold by checking create() output
    if isinstance(cols.per_process, list):   # numpy always present in CI
        import numpy  # noqa: F401  (would have raised if missing)
        cols = RunStats.create(RunStats.COLUMNAR_THRESHOLD)
    seq = cols.per_process
    n = cols.n
    assert len(seq) == n
    assert seq[0].pid == 0 and seq[-1].pid == n - 1
    assert [p.pid for p in seq[2:5]] == [2, 3, 4]
    assert seq[n - 1].pid == seq[-1].pid
    with pytest.raises(IndexError):
        seq[n]
    seq[1].msgs_sent = 42
    assert seq[1].msgs_sent == 42


def test_columnar_view_rejects_unknown_counter():
    cols = RunStats.create(RunStats.COLUMNAR_THRESHOLD)
    p = cols.per_process[0]
    with pytest.raises(AttributeError):
        p.no_such_counter
    with pytest.raises(AttributeError):
        p.no_such_counter = 1
