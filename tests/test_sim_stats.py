"""Tests for statistics containers and aggregation."""

import pytest

from repro.sim.stats import ProcessStats, RunStats


def test_process_stats_idle_time():
    p = ProcessStats(pid=0, busy_time=0.3, handler_time=0.1)
    assert p.idle_time(horizon=1.0) == pytest.approx(0.6)
    assert p.idle_time(horizon=0.2) == 0.0  # clamped


def test_runstats_create():
    rs = RunStats.create(4)
    assert rs.n == 4
    assert [p.pid for p in rs.per_process] == [0, 1, 2, 3]


def test_runstats_aggregates():
    rs = RunStats.create(3)
    for i, p in enumerate(rs.per_process):
        p.work_units = 10 * (i + 1)
        p.msgs_sent = i
        p.steals_attempted = 2
        p.steals_successful = 1
        p.busy_time = 0.5
    rs.makespan = 1.0
    assert rs.total_work_units == 60
    assert rs.total_msgs == 3
    assert rs.total_steals == 6
    assert rs.total_steals_ok == 3
    assert rs.total_busy == pytest.approx(1.5)
    assert rs.msgs_by_pid() == [0, 1, 2]
    assert rs.busy_fraction() == pytest.approx(0.5)


def test_runstats_efficiency():
    rs = RunStats.create(4)
    rs.makespan = 2.0
    assert rs.efficiency_vs(t_seq=8.0) == 1.0
    rs.makespan = 4.0
    assert rs.efficiency_vs(t_seq=8.0) == 0.5
    rs.makespan = 0.0
    assert rs.efficiency_vs(t_seq=8.0) == 0.0


def test_empty_runstats_guards():
    rs = RunStats.create(0)
    assert rs.busy_fraction() == 0.0
    assert rs.efficiency_vs(1.0) == 0.0


def test_seal_freezes_aggregates():
    """Aggregates are computed live during a run, then cached by seal()."""
    rs = RunStats.create(2)
    rs.per_process[0].work_units = 5
    assert rs.total_work_units == 5      # live before seal
    rs.per_process[1].work_units = 7
    assert rs.total_work_units == 12
    rs.seal()
    assert rs.total_work_units == 12
    assert rs.total_msgs == 0
    # post-seal mutation is invisible: the totals are frozen sums
    rs.per_process[0].work_units = 999
    rs.per_process[0].msgs_sent = 999
    assert rs.total_work_units == 12
    assert rs.total_msgs == 0


def test_seal_covers_all_five_totals():
    rs = RunStats.create(1)
    p = rs.per_process[0]
    p.work_units, p.msgs_sent, p.busy_time = 3, 4, 0.25
    p.steals_attempted, p.steals_successful = 6, 2
    rs.seal()
    assert (rs.total_work_units, rs.total_msgs, rs.total_steals,
            rs.total_steals_ok) == (3, 4, 6, 2)
    assert rs.total_busy == pytest.approx(0.25)


def test_simulator_seals_stats():
    """Engine runs hand back sealed stats."""
    from repro.sim import Simulator, SimProcess
    from repro.sim.network import uniform_network
    sim = Simulator(uniform_network(latency=1e-4, handler_cost=1e-6))
    sim.add_process(SimProcess(0))
    st = sim.run()
    assert st._aggregates is not None
