"""Circuit breaker and backoff clamp in the reliable channel.

The breaker is a *routing* device, not a failure detector: an unreachable
(partitioned or gray) peer is parked and routed around, then probed with
heartbeat PINGs until it answers — nothing is abandoned, recovered or
spliced, and the dead-set termination waves never count a suspect as
dead. These tests pin the state machine (closed -> open -> half-open ->
closed), the park/release bookkeeping, the backoff clamp that bounds the
probe interval, and the suspicion-resolves-into-death path.
"""

import pytest

from repro.apps.uts_app import UTSApplication
from repro.core.reliable import B_CLOSED, B_OPEN, ReliableChannel
from repro.experiments.runner import RunConfig, build_workers
from repro.sim import Simulator, grid5000
from repro.sim.faults import FaultPlan
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree

from test_fault_tolerance import conserved_units

TINY = PRESETS["bin_tiny"].params
TINY_NODES = count_tree(TINY).nodes

#: Tight channel pacing so the breaker ladder trips well inside the short
#: fault windows bin_tiny runs allow (~13 ms makespan at n=12).
PACING = {"ack_timeout": 5e-4, "breaker_threshold": 3, "quantum": 16}

#: A long mid-run split: half the fleet unreachable for 7 ms, forcing
#: breakers open on both sides before the heal.
def _partition_plan(n, start=1e-3, end=8e-3):
    side = tuple(range(n // 2, n))
    return FaultPlan(partitions=((side, start, end),))


def _run(proto, n, plan, seed=0, probe=None, **cfg_kwargs):
    """One faulted run; optionally invoke ``probe(sim, workers)`` at
    virtual times given by ``probe = (times, fn)``."""
    app = UTSApplication(TINY)
    cfg = RunConfig(protocol=proto, n=n, dmax=3, seed=seed, faults=plan,
                    **cfg_kwargs)
    sim = Simulator(network=grid5000(), seed=seed, faults=plan)
    workers = build_workers(sim, cfg, app)
    if probe is not None:
        times, fn = probe
        for t in times:
            sim.queue.push(t, lambda: fn(sim, workers), tag="test-probe")
    stats = sim.run()
    assert all(w.terminated for w in workers if not w._crashed)
    return conserved_units(sim, workers, app, stats), stats, workers


# -- satellite: the backoff clamp --------------------------------------------

class _StubSim:
    metrics = None


class _StubHost:
    sim = _StubSim()


def test_default_cap_equals_legacy_ceiling():
    """With no max_backoff the ladder tops out at timeout * 2^retries —
    exactly the pre-clamp behaviour, so old configs are unchanged."""
    ch = ReliableChannel(_StubHost(), timeout=1e-3, retries=5)
    assert ch.max_backoff == 1e-3 * 32
    assert [ch._backoff(k) for k in range(8)] == \
        [1e-3, 2e-3, 4e-3, 8e-3, 16e-3, 32e-3, 32e-3, 32e-3]


def test_max_backoff_clamps_the_ladder():
    ch = ReliableChannel(_StubHost(), timeout=1e-3, retries=5,
                         max_backoff=4e-3)
    assert [ch._backoff(k) for k in range(6)] == \
        [1e-3, 2e-3, 4e-3, 4e-3, 4e-3, 4e-3]


def test_tight_cap_bounds_post_blackout_silence():
    """A long blackout drives attempts deep into the ladder; a tight cap
    must still finish the run (retries keep coming at the cap rate)."""
    plan = FaultPlan(blackouts=((None, None, 5e-4, 5e-3),))
    total, stats, _ = _run("TD", 8, plan, seed=3, ack_timeout=5e-4,
                           ack_max_backoff=1e-3, breaker_threshold=0)
    assert total == TINY_NODES
    assert stats.fault_totals()[2] > 0       # retransmits happened


# -- the breaker state machine -----------------------------------------------

@pytest.mark.parametrize("proto", ["TD", "BTD", "RWS"])
def test_breaker_trips_and_closes_across_partition(proto):
    """A long split trips breakers; the heal closes every one of them and
    the run still conserves exactly."""
    n = 16
    snaps = []

    def sample(sim, workers):
        snaps.append([(w.pid, sorted(w.suspect),
                       sorted(w._reliable.suspected_peers()))
                      for w in workers
                      if w._reliable is not None and w.suspect])

    # trips cluster differently per protocol (TD stragglers only trip
    # their ladder *after* the heal), so sample densely across both the
    # window and the post-heal probing phase
    times = tuple(t * 5e-4 for t in range(6, 25))
    total, stats, workers = _run(
        proto, n, _partition_plan(n), seed=1,
        probe=(times, sample), **PACING)
    assert total == TINY_NODES
    assert stats.total_breaker_opens() > 0
    # at some sampled instant, somebody was routing around a peer — and
    # the host's suspect set agreed with the channel's breaker view
    assert any(snap for snap in snaps)
    for snap in snaps:
        for _, suspects, breaker_view in snap:
            assert suspects == breaker_view
    # every suspicion healed: breakers closed, suspect sets empty
    for w in workers:
        assert not w.suspect
        ch = w._reliable
        assert not ch.suspected_peers()
        for pid in range(n):
            assert ch.breaker_state(pid) == B_CLOSED
        assert not ch.has_pending_work()      # no parked WORK left behind


def test_park_and_release_bookkeeping():
    """While open, transfers to the peer are parked (timers cancelled,
    still pending); the heal releases them with a fresh ladder."""
    n = 16
    seen = []

    def sample(sim, workers):
        for w in workers:
            ch = w._reliable
            for pid in list(ch.suspected_peers()):
                parked = [xf for xf in ch.pending_to(pid) if xf.parked]
                seen.append((w.pid, pid, len(parked),
                             [xf.timer is None for xf in parked]))

    total, _, workers = _run("BTD", n, _partition_plan(n), seed=1,
                             probe=((7e-3,), sample), **PACING)
    assert total == TINY_NODES
    # at least one open breaker had parked transfers with dead timers
    assert any(count > 0 and all(dead) for _, _, count, dead in seen)
    for w in workers:                         # ...and all were released
        assert not w._reliable._pending or all(
            xf.done for xf in w._reliable._pending.values())


def test_breaker_snapshot_reports_spans():
    n = 16
    total, _, workers = _run("BTD", n, _partition_plan(n), seed=2, **PACING)
    assert total == TINY_NODES
    snaps = [w._reliable.breaker_snapshot() for w in workers]
    rows = [row for snap in snaps for row in snap.values()]
    assert rows, "no breaker ever tripped"
    for row in rows:
        assert row["state"] == "closed"       # everything healed
        assert row["opens"] >= 1
        assert row["open_s"] > 0.0
    # somewhere, half-open probing happened (a breaker that trips right
    # at the heal may close off a late data ack before its first probe)
    assert sum(row["probes"] for row in rows) >= 1


def test_threshold_zero_disables_breaking():
    n = 16
    total, stats, workers = _run("BTD", n, _partition_plan(n), seed=5,
                                 ack_timeout=5e-4, breaker_threshold=0)
    assert total == TINY_NODES
    assert stats.total_breaker_opens() == 0
    assert all(not w.suspect for w in workers)


def test_suspicion_resolves_into_death():
    """A peer that crashes while its breaker is open must settle through
    the normal crash path: suspect set cleared, books closed, exact
    conservation (nothing double-recovered from the park)."""
    n = 16
    side = tuple(range(n // 2, n))
    plan = FaultPlan(partitions=((side, 1e-3, 8e-3),),
                     crashes=((n // 2, 4e-3),))   # dies mid-window
    total, stats, workers = _run("BTD", n, plan, seed=6, **PACING)
    assert total == TINY_NODES
    assert stats.fault_totals()[3] == 1
    for w in workers:
        assert n // 2 not in w.suspect            # death won over suspicion
        if not w._crashed:
            br = w._reliable._breakers.get(n // 2)
            assert br is None or br.state != B_OPEN
