"""Engine tests: optimality, resumability, split-anywhere correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bnb.engine import BnBEngine, solve_bruteforce
from repro.bnb.interval import tree_leaves
from repro.bnb.state import INF, BoundState
from repro.bnb.taillard import scaled_instance
from repro.bnb.work import BnBWork
from repro.sim.errors import SimConfigError

INST6 = scaled_instance(1, n_jobs=6, n_machines=5)


@pytest.mark.parametrize("bound", ["trivial", "lb1", "johnson", "llrk"])
def test_solve_matches_bruteforce(bound):
    opt, perm = solve_bruteforce(INST6)
    value, found_perm, nodes = BnBEngine(INST6, bound=bound).solve()
    assert value == opt
    assert INST6.makespan(found_perm) == value
    assert nodes <= sum(tree_leaves(6) // 1 for _ in range(1))  # sanity


def test_stronger_bound_explores_fewer_nodes():
    _, _, n_triv = BnBEngine(INST6, bound="trivial").solve()
    _, _, n_lb1 = BnBEngine(INST6, bound="lb1").solve()
    _, _, n_llrk = BnBEngine(INST6, bound="llrk").solve()
    assert n_lb1 <= n_triv
    assert n_llrk <= n_lb1


def test_small_quantum_same_answer():
    coarse = BnBEngine(INST6).solve(quantum=10**9)
    fine = BnBEngine(INST6).solve(quantum=7)
    assert coarse[0] == fine[0]
    assert coarse[2] == fine[2]  # identical node count: DFS order unchanged


def test_explore_budget_respected():
    engine = BnBEngine(INST6)
    work = BnBWork.full_tree(6)
    res = engine.explore(work, BoundState(), max_nodes=10)
    assert 1 <= res.nodes <= 16  # may finish the frame batch slightly over?
    assert not res.exhausted


def test_explore_interval_positions_monotone():
    engine = BnBEngine(INST6)
    work = BnBWork.full_tree(6)
    shared = BoundState()
    prev = 0
    while not work.is_empty():
        engine.explore(work, shared, 50)
        head = work.head()
        if head is not None:
            assert head[0] > prev or head[0] == prev  # non-decreasing
            prev = head[0]
    assert shared.value == solve_bruteforce(INST6)[0]


def test_split_across_workers_same_optimum():
    """Splitting the interval anywhere yields the same optimum."""
    opt = solve_bruteforce(INST6)[0]
    total = tree_leaves(6)
    for cut in (1, 17, total // 3, total // 2, total - 1):
        w1 = BnBWork(6, [(0, cut)])
        w2 = BnBWork(6, [(cut, total)])
        s1, s2 = BoundState(), BoundState()
        e = BnBEngine(INST6)
        while not w1.is_empty():
            e.explore(w1, s1, 1000)
        while not w2.is_empty():
            e.explore(w2, s2, 1000)
        assert min(s1.value, s2.value) == opt


def test_shared_bound_prunes_more():
    """Starting with the optimal UB explores far fewer nodes."""
    opt, _ = solve_bruteforce(INST6)
    e = BnBEngine(INST6)
    cold = e.solve()[2]
    warm_state = BoundState(value=opt + 1)
    warm = 0
    work = BnBWork.full_tree(6)
    while not work.is_empty():
        warm += e.explore(work, warm_state, 10**6).nodes
    assert warm < cold
    assert warm_state.value == opt


def test_engine_rejects_mismatched_work():
    e = BnBEngine(INST6)
    with pytest.raises(SimConfigError):
        e.explore(BnBWork.full_tree(5), BoundState(), 10)


def test_solve_max_nodes_guard():
    with pytest.raises(SimConfigError):
        BnBEngine(INST6).solve(quantum=50, max_nodes=5)


def test_boundstate():
    s = BoundState()
    assert s.value == INF and s.perm is None
    assert s.update(100, (0, 1)) is True
    assert s.update(100) is False
    assert s.update(99) is True
    assert s.perm == (0, 1)  # perm only replaced when provided
    assert s.version == 2
    assert s.snapshot() == (99, (0, 1))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=10), st.integers(min_value=4,
                                                           max_value=6))
def test_property_engine_optimal_on_taillard_prefixes(idx, n_jobs):
    inst = scaled_instance(idx, n_jobs=n_jobs, n_machines=4)
    opt, _ = solve_bruteforce(inst)
    assert BnBEngine(inst, bound="lb1").solve()[0] == opt


def test_resume_equivalence():
    """Pausing/resuming mid-interval does not change what gets explored."""
    e1 = BnBEngine(INST6)
    v1, p1, n1 = e1.solve(quantum=10**9)
    e2 = BnBEngine(INST6)
    v2, p2, n2 = e2.solve(quantum=3)
    assert (v1, n1) == (v2, n2)
