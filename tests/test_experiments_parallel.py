"""Tests for the parallel grid runner, app specs and the result cache."""

import pickle

import pytest

from repro.experiments.cache import ResultCache, cell_key, code_fingerprint
from repro.experiments.config import get_scale
from repro.experiments.parallel import (ExperimentGrid, configure,
                                        resolve_jobs, resolve_use_cache,
                                        run_cells)
from repro.experiments.runner import (RunConfig, cell_configs, run_once,
                                      run_trials)
from repro.experiments.specs import BnBSpec, UTSSpec, is_spec
from repro.sim.errors import SimConfigError
from repro.uts.params import PRESETS

UTS_SPEC = UTSSpec(PRESETS["bin_mini"].params)
BNB_SPEC = BnBSpec(5, n_jobs=6, n_machines=5)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


# -- specs ---------------------------------------------------------------------

def test_specs_are_callable_factories():
    app = UTS_SPEC()
    assert "UTS" in app.name
    bapp = BNB_SPEC()
    assert bapp.instance.n_jobs == 6 and bapp.warm_start is True


def test_bnb_spec_ships_precomputed_inputs():
    """The matrix and NEH ride the pickle; workers must not recompute."""
    from repro.bnb.neh import neh
    assert BNB_SPEC.neh == neh(BNB_SPEC.instance)
    clone = pickle.loads(pickle.dumps(BNB_SPEC))
    assert clone.instance == BNB_SPEC.instance
    assert clone.neh == BNB_SPEC.neh
    # the shipped NEH feeds the warm start without rerunning the heuristic
    app = clone.build()
    assert app.make_shared().value == BNB_SPEC.neh[0] + 1


def test_is_spec():
    assert is_spec(UTS_SPEC) and is_spec(BNB_SPEC)
    assert not is_spec(lambda: None)
    assert not is_spec(42)


# -- canonical cell expansion --------------------------------------------------

def test_cell_configs_derived_seeds():
    cfg = RunConfig(protocol="TD", n=4, seed=7)
    cells = cell_configs(cfg, 3)
    assert [c.seed for c in cells] == [7, 1007, 2007]
    assert all(c.protocol == "TD" and c.n == 4 for c in cells)
    with pytest.raises(SimConfigError):
        cell_configs(cfg, 0)


# -- jobs / cache resolution ---------------------------------------------------

def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1           # 0 = all cores
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2           # explicit beats env
    configure(jobs=4)
    try:
        assert resolve_jobs() == 4        # configured beats env
    finally:
        configure()                       # reset process-wide defaults
    monkeypatch.setenv("REPRO_JOBS", "nope")
    with pytest.raises(SimConfigError):
        resolve_jobs()


def test_resolve_use_cache(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    assert resolve_use_cache() is True
    assert resolve_use_cache(False) is False
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert resolve_use_cache() is False
    assert resolve_use_cache(True) is True    # explicit beats env
    monkeypatch.setenv("REPRO_NO_CACHE", "0")
    assert resolve_use_cache() is True


# -- grid determinism: parallel == serial, bit for bit -------------------------

def _grid_results(spec, protocols, ns, quantum, jobs, trials=2):
    out = []
    for proto in protocols:
        for n in ns:
            cfg = RunConfig(protocol=proto, n=n, quantum=quantum, seed=42)
            ts = run_trials(cfg, spec, trials, jobs=jobs, use_cache=False)
            out.extend(ts.results)
    return out


def test_uts_grid_parallel_bit_identical_to_serial():
    serial = _grid_results(UTS_SPEC, ("TD", "RWS"), (4, 8), 32, jobs=1)
    parallel = _grid_results(UTS_SPEC, ("TD", "RWS"), (4, 8), 32, jobs=2)
    assert serial == parallel      # full dataclass equality, every field
    assert [r.msgs_by_pid for r in serial] == \
           [r.msgs_by_pid for r in parallel]


def test_bnb_grid_parallel_bit_identical_to_serial():
    serial = _grid_results(BNB_SPEC, ("BTD", "MW"), (4,), 16, jobs=1)
    parallel = _grid_results(BNB_SPEC, ("BTD", "MW"), (4,), 16, jobs=2)
    assert serial == parallel
    assert all(r.optimum == serial[0].optimum for r in parallel)
    assert [r.makespan for r in serial] == [r.makespan for r in parallel]


def test_run_cells_preserves_input_order():
    cfgs = [RunConfig(protocol="TD", n=n, quantum=32, seed=s)
            for n, s in ((4, 1), (8, 2), (4, 3), (8, 4))]
    results = run_cells([(c, UTS_SPEC) for c in cfgs], jobs=2,
                        use_cache=False)
    assert [r.n for r in results] == [4, 8, 4, 8]
    expected = [run_once(c, UTS_SPEC()) for c in cfgs]
    assert results == expected


def test_plain_callable_factory_still_works_with_jobs():
    """Closures cannot cross the pool; they run serially, same results."""
    from repro.apps.uts_app import UTSApplication
    factory = lambda: UTSApplication(PRESETS["bin_mini"].params)
    cfg = RunConfig(protocol="RWS", n=4, quantum=32, seed=5)
    ts = run_trials(cfg, factory, 2, jobs=4, use_cache=True)
    ref = run_trials(cfg, factory, 2, jobs=1, use_cache=False)
    assert ts.results == ref.results


def test_grid_progress_reports_every_cell():
    seen = []
    grid = ExperimentGrid(seed=1, default_trials=2, jobs=2, use_cache=False,
                          progress=lambda d, t, label: seen.append((d, t)))
    grid.add("a", UTS_SPEC, protocol="TD", n=4, quantum=32)
    grid.add("b", UTS_SPEC, protocol="RWS", n=4, quantum=32)
    grid.run()
    assert sorted(seen) == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_grid_rejects_duplicate_keys_and_late_adds():
    grid = ExperimentGrid(seed=1, default_trials=1, use_cache=False)
    grid.add("a", UTS_SPEC, protocol="TD", n=4, quantum=32)
    with pytest.raises(SimConfigError):
        grid.add("a", UTS_SPEC, protocol="TR", n=4, quantum=32)
    grid.run()
    with pytest.raises(SimConfigError):
        grid.add("b", UTS_SPEC, protocol="TR", n=4, quantum=32)


# -- result cache --------------------------------------------------------------

def test_cache_hit_returns_bit_identical_result(cache):
    cfg = RunConfig(protocol="BTD", n=6, quantum=32, seed=9)
    first = run_cells([(cfg, UTS_SPEC)], jobs=1, cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    again = run_cells([(cfg, UTS_SPEC)], jobs=1, cache=cache)
    assert (cache.hits, cache.misses) == (1, 1)
    assert first == again
    assert first[0] == run_once(cfg, UTS_SPEC())


def test_cache_miss_on_any_config_change(cache):
    base = RunConfig(protocol="BTD", n=6, quantum=32, seed=9)
    key = cell_key(base, UTS_SPEC)
    assert cell_key(base, UTS_SPEC) == key          # stable
    import dataclasses
    for change in ({"quantum": 64}, {"seed": 10}, {"n": 7},
                   {"protocol": "TR"}, {"sharing": "half"},
                   {"handler_cost": 2e-5}, {"speed_spread": 0.2}):
        assert cell_key(dataclasses.replace(base, **change), UTS_SPEC) != key
    assert cell_key(base, BNB_SPEC) != key          # app spec in the key
    assert cell_key(base, UTSSpec(PRESETS["bin_tiny"].params)) != key


def test_cache_survives_corrupt_entries(cache):
    cfg = RunConfig(protocol="TD", n=4, quantum=32, seed=1)
    run_cells([(cfg, UTS_SPEC)], jobs=1, cache=cache)
    (entry,) = cache.root.rglob("*.pkl")
    entry.write_bytes(b"garbage")
    results = run_cells([(cfg, UTS_SPEC)], jobs=1, cache=cache)
    assert results[0] == run_once(cfg, UTS_SPEC())


def test_cache_disabled_paths(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    cfg = RunConfig(protocol="TD", n=4, quantum=32, seed=1)
    run_cells([(cfg, UTS_SPEC)], jobs=1, use_cache=False)
    assert not (tmp_path / "c").exists()
    run_cells([(cfg, UTS_SPEC)], jobs=1, use_cache=True)
    assert len(list((tmp_path / "c").rglob("*.pkl"))) == 1


def test_unwritable_cache_degrades_gracefully(tmp_path):
    blocked = tmp_path / "file"
    blocked.write_text("not a directory")
    broken = ResultCache(blocked / "sub")       # mkdir will fail
    cfg = RunConfig(protocol="TD", n=4, quantum=32, seed=1)
    results = run_cells([(cfg, UTS_SPEC)], jobs=1, cache=broken)
    assert results[0] == run_once(cfg, UTS_SPEC())
    assert broken._broken is True


def test_code_fingerprint_stable_and_in_key():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_trial_stats_via_grid_match_run_trials(cache):
    """ExperimentGrid aggregation == run_trials on the same config."""
    scale = get_scale("micro")
    grid = ExperimentGrid(seed=scale.seed, default_trials=2, cache=cache)
    grid.add("x", UTS_SPEC, protocol="BTD", n=6, quantum=64)
    ts_grid = grid.stats("x")
    ts_ref = run_trials(RunConfig(protocol="BTD", n=6, quantum=64,
                                  seed=scale.seed),
                        UTS_SPEC, 2, jobs=1, use_cache=False)
    assert ts_grid.results == ts_ref.results
    assert ts_grid.t_avg == ts_ref.t_avg
