"""Tests for the heterogeneity extension (the paper's stated future work)."""

import pytest

from repro.apps.synthetic import SyntheticApplication
from repro.apps.uts_app import UTSApplication
from repro.core.config import OCLBConfig
from repro.core.oclb import OverlayWorker
from repro.core.worker import WorkerConfig
from repro.experiments.runner import RunConfig, run_once
from repro.overlay.tree import deterministic_tree
from repro.sim import Simulator, uniform_network
from repro.sim.errors import SimConfigError
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree

TINY = PRESETS["bin_tiny"].params


def test_capacity_aware_requires_convergecast():
    tree = deterministic_tree(4, 2)
    app = SyntheticApplication(100)
    with pytest.raises(SimConfigError):
        OverlayWorker(0, app, WorkerConfig(), tree,
                      OCLBConfig(capacity_aware=True, convergecast=False))


def test_capacity_sizes_aggregate_speeds():
    tree = deterministic_tree(7, 2)
    app = SyntheticApplication(5000, unit_cost=1e-5)
    sim = Simulator(uniform_network(latency=1e-4), seed=2)
    speeds = [1.0, 2.0, 0.5, 1.0, 1.0, 3.0, 1.0]
    ws = [sim.add_process(OverlayWorker(
        p, app, WorkerConfig(quantum=16, seed=2, speed=speeds[p]), tree,
        OCLBConfig(capacity_aware=True))) for p in range(7)]
    sim.run()
    # node 1's subtree = {1, 3, 4}: capacity 2 + 1 + 1
    assert ws[1].sizes.my_size == pytest.approx(4.0)
    # root's "size" = total capacity
    assert ws[0].sizes.my_size == pytest.approx(sum(speeds))
    # the parent learned its children's capacities
    assert ws[0].child_sizes[1] == pytest.approx(4.0)


def test_capacity_aware_conserves_work():
    for placement in ("random", "fast-interior"):
        r = run_once(RunConfig(protocol="BTD", n=24, dmax=4, quantum=64,
                               seed=6, speed_spread=0.7,
                               speed_placement=placement,
                               oclb=OCLBConfig(capacity_aware=True)),
                     UTSApplication(TINY))
        assert r.total_units == count_tree(TINY).nodes


def test_fast_interior_sorts_speeds():
    from repro.experiments.runner import _speeds
    cfg = RunConfig(protocol="TD", n=16, speed_spread=0.5,
                    speed_placement="fast-interior", seed=3)
    speeds = _speeds(cfg)
    assert speeds == sorted(speeds, reverse=True)
    cfg2 = RunConfig(protocol="TD", n=16, speed_spread=0.5, seed=3)
    assert _speeds(cfg2) != speeds


def test_placement_validation():
    with pytest.raises(SimConfigError):
        RunConfig(protocol="TD", n=4, speed_placement="bogus")


def test_capacity_aware_helps_under_heterogeneity():
    """Capacity-proportional shares beat count-proportional ones when
    speeds are very uneven (the point of the extension)."""
    total = 60_000
    times = {}
    for aware in (False, True):
        r = run_once(RunConfig(protocol="TD", n=16, dmax=4, quantum=64,
                               seed=11, speed_spread=0.9,
                               oclb=OCLBConfig(capacity_aware=aware)),
                     SyntheticApplication(total, unit_cost=1e-5))
        assert r.total_units == total
        times[aware] = r.makespan
    assert times[True] <= times[False] * 1.1  # at least not worse


def test_homogeneous_capacity_mode_equals_plain():
    """With equal speeds, capacity mode degenerates to subtree counts."""
    a = run_once(RunConfig(protocol="TD", n=12, dmax=3, quantum=32, seed=4,
                           oclb=OCLBConfig(capacity_aware=True)),
                 UTSApplication(TINY))
    b = run_once(RunConfig(protocol="TD", n=12, dmax=3, quantum=32, seed=4,
                           oclb=OCLBConfig(capacity_aware=False)),
                 UTSApplication(TINY))
    assert a.total_units == b.total_units
    assert a.makespan == pytest.approx(b.makespan)
