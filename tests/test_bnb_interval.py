"""Tests for the factoradic interval encoding."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.bnb.interval import (digits_to_position, factorials,
                                permutation_to_position, position_to_digits,
                                position_to_permutation, prefix_block,
                                tree_leaves)
from repro.sim.errors import SimConfigError


def test_factorials():
    assert factorials(5) == (1, 1, 2, 6, 24, 120)
    assert tree_leaves(20) == 2432902008176640000
    with pytest.raises(SimConfigError):
        factorials(-1)


def test_dfs_order_is_lexicographic():
    """Leaf k is the k-th permutation in lexicographic order."""
    n = 4
    perms = list(itertools.permutations(range(n)))
    for k, perm in enumerate(perms):
        assert tuple(position_to_permutation(k, n)) == perm
        assert permutation_to_position(perm) == k


def test_digits_roundtrip_exhaustive_small():
    n = 5
    for pos in range(tree_leaves(n)):
        d = position_to_digits(pos, n)
        assert digits_to_position(d, n) == pos


def test_position_bounds():
    with pytest.raises(SimConfigError):
        position_to_digits(-1, 3)
    with pytest.raises(SimConfigError):
        position_to_digits(6, 3)
    with pytest.raises(SimConfigError):
        digits_to_position([3, 0, 0], 3)  # digit 0 must be < 3
    with pytest.raises(SimConfigError):
        digits_to_position([0, 0], 3)


def test_permutation_to_position_validates():
    with pytest.raises(SimConfigError):
        permutation_to_position([0, 0, 1])


def test_prefix_block():
    # n=4: fixing first job = rank-2 job covers [2*3!, 3*3!) = [12, 18)
    assert prefix_block([2], 4) == (12, 18)
    assert prefix_block([], 4) == (0, 24)
    assert prefix_block([2, 0], 4) == (12, 14)
    with pytest.raises(SimConfigError):
        prefix_block([4], 4)


def test_prefix_block_contains_its_leaves():
    n = 4
    a, b = prefix_block([1], n)
    for pos in range(a, b):
        assert position_to_permutation(pos, n)[0] == 1


@given(st.integers(min_value=2, max_value=9), st.data())
def test_property_roundtrip(n, data):
    pos = data.draw(st.integers(min_value=0, max_value=tree_leaves(n) - 1))
    perm = position_to_permutation(pos, n)
    assert sorted(perm) == list(range(n))
    assert permutation_to_position(perm) == pos


@given(st.integers(min_value=2, max_value=8), st.data())
def test_property_order_isomorphism(n, data):
    p1 = data.draw(st.integers(min_value=0, max_value=tree_leaves(n) - 1))
    p2 = data.draw(st.integers(min_value=0, max_value=tree_leaves(n) - 1))
    perm1 = tuple(position_to_permutation(p1, n))
    perm2 = tuple(position_to_permutation(p2, n))
    assert (p1 < p2) == (perm1 < perm2)


def test_20_jobs_positions_work():
    n = 20
    last = tree_leaves(n) - 1
    assert position_to_permutation(0, n) == list(range(n))
    assert position_to_permutation(last, n) == list(range(n))[::-1]
