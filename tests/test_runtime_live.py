"""Live multi-process backend: cross-validation against the simulator.

These tests spawn real OS worker processes connected over sockets and
check the properties the paper's testbed runs rely on:

* a live UTS run explores exactly the sequential node count (and exactly
  what the discrete-event simulator explores);
* a live B&B run finds exactly the simulator's optimal makespan;
* ``kill -9`` on a worker mid-run still terminates, and the write-ahead
  spools make the four-place work-conservation identity exact;
* the supervisor drains its fleet on interruption — no orphan processes,
  no leaked sockets.

Each run costs a second or two of wall clock; the suite stays small.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import run_instrumented
from repro.runtime.supervisor import LiveConfig, run_live
from repro.runtime.worker import build_app
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree

TINY_NODES = count_tree(PRESETS["bin_tiny"].params).nodes
UTS_TINY = {"kind": "uts", "preset": "bin_tiny"}


def _children_of(pid: int) -> set[int]:
    """Live child pids of ``pid``, via /proc (no helper subprocesses that
    would themselves show up as children)."""
    kids = set()
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                fields = fh.read().rsplit(")", 1)[1].split()
            # fields[0] is state, fields[1] is ppid; zombies count as
            # leaks too — an unreaped child is a supervisor bug
            if int(fields[1]) == pid:
                kids.add(int(entry))
        except (OSError, IndexError, ValueError):
            continue
    return kids


# -- clean runs == simulator -------------------------------------------------

@pytest.mark.parametrize("n", [2, 4])
def test_live_uts_matches_sequential_and_simulator(n):
    cfg = LiveConfig(protocol="BTD", n=n, app=UTS_TINY, seed=11,
                     timeout_s=60.0)
    live = run_live(cfg)
    assert live.result.total_units == TINY_NODES
    app, _ = build_app(UTS_TINY)
    sim, _stats = run_instrumented(cfg.run_config(), app)
    assert live.result.total_units == sim.total_units
    assert live.result.crashes == 0
    assert live.killed == ()


def test_live_rws_baseline_matches_node_count():
    live = run_live(LiveConfig(protocol="RWS", n=4, app=UTS_TINY, seed=11,
                               timeout_s=60.0))
    assert live.result.total_units == TINY_NODES


def test_live_bnb_matches_simulated_optimum():
    spec = {"kind": "bnb", "index": 1, "jobs": 8, "machines": 5}
    cfg = LiveConfig(protocol="BTD", n=4, app=spec, seed=11, timeout_s=90.0)
    live = run_live(cfg)
    app, _ = build_app(spec)
    sim, _stats = run_instrumented(cfg.run_config(), app)
    assert live.result.optimum is not None
    assert live.result.optimum == sim.optimum
    # node counts legitimately differ (bound-arrival timing), the
    # incumbent value must not


def test_live_stats_and_metrics_flow_through():
    live = run_live(LiveConfig(protocol="BTD", n=2, app=UTS_TINY, seed=12,
                               timeout_s=60.0))
    assert live.stats.total_work_units == TINY_NODES
    assert live.result.makespan > 0.0
    assert live.stats.per_process[0].busy_time > 0.0   # measured, not priced
    assert live.metrics.counter("steal.requests").value >= 0
    assert live.metrics.gauge("engine.makespan_s").value > 0.0


def test_live_trace_merges_into_loadable_schema(tmp_path):
    run_dir = str(tmp_path / "run")
    live = run_live(LiveConfig(protocol="BTD", n=2, app=UTS_TINY, seed=13,
                               timeout_s=60.0, trace=True, run_dir=run_dir))
    from repro.obs.export import load_trace
    from repro.sim.trace import FINISH, QUANTUM
    loaded = load_trace(live.trace_path)
    assert loaded.meta["live"] is True
    kinds = {s.kind for s in loaded.samples}
    assert QUANTUM in kinds and FINISH in kinds
    assert sum(s.value for s in loaded.samples
               if s.kind == QUANTUM) == TINY_NODES


# -- fault injection ---------------------------------------------------------

def test_default_run_dir_removed_after_clean_run():
    """A successful untraced run must not leak its tempdir (regression:
    every ``run_live`` call used to leave a ``repro-live-*`` directory of
    worker logs in $TMPDIR forever)."""
    live = run_live(LiveConfig(protocol="BTD", n=2, app=UTS_TINY, seed=7,
                               timeout_s=60.0))
    assert live.result.total_units == TINY_NODES
    assert not os.path.exists(live.run_dir)


def test_explicit_run_dir_survives_clean_run(tmp_path):
    """Caller-supplied run dirs are the caller's to manage — cleanup only
    applies to the default tempdir."""
    run_dir = str(tmp_path / "run")
    live = run_live(LiveConfig(protocol="BTD", n=2, app=UTS_TINY, seed=7,
                               timeout_s=60.0, run_dir=run_dir))
    assert live.result.total_units == TINY_NODES
    assert os.path.isdir(run_dir)
    assert live.run_dir == run_dir


def test_sigkill_mid_run_conserves_every_unit(tmp_path):
    cfg = LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=21,
                     timeout_s=90.0, fault_tolerance=True,
                     run_dir=str(tmp_path / "run"),
                     kills=({"pid": 2, "after_units": 400},))
    live = run_live(cfg)
    assert live.killed == (2,)
    assert live.result.crashes == 1
    assert live.conserved == TINY_NODES          # exact, not approximate
    assert live.stats.per_process[2].crashes == 1
    assert 2 in live.spools                      # post-mortem state exists
    # every survivor terminated and reported
    for pid in (0, 1, 3):
        assert pid in live.reports
        assert live.reports[pid]["stats"]["finish_time"] > 0.0


def test_fault_mode_without_kills_is_exact():
    live = run_live(LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=22,
                               timeout_s=90.0, fault_tolerance=True))
    assert live.result.total_units == TINY_NODES
    assert live.conserved == TINY_NODES


def test_kill_config_validation():
    from repro.sim.errors import SimConfigError
    with pytest.raises(SimConfigError):          # root is not killable
        LiveConfig(n=4, kills=({"pid": 0, "after_s": 0.1},),
                   fault_tolerance=True)
    with pytest.raises(SimConfigError):          # kills need fault tolerance
        LiveConfig(n=4, kills=({"pid": 1, "after_s": 0.1},))
    with pytest.raises(SimConfigError):          # exactly one trigger
        LiveConfig(n=4, fault_tolerance=True,
                   kills=({"pid": 1, "after_s": 0.1, "after_units": 5},))


# -- network partitions (transport-layer splits) -----------------------------

def test_live_partition_heal_conserves_every_unit(tmp_path):
    """A real split-then-heal: the supervisor's router drops cross-cut
    frames for a wall-clock window. No node dies, so the run must finish
    with the full tree *processed* and the identity exact."""
    # the window must overlap the run: bin_tiny on 4 local workers takes
    # ~0.1 s of protocol time, so cut early and heal before the timeout
    cfg = LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=23,
                     timeout_s=90.0, fault_tolerance=True,
                     run_dir=str(tmp_path / "run"),
                     partitions=({"side": [2, 3],
                                  "start_s": 0.02, "end_s": 0.3},))
    live = run_live(cfg)
    assert live.killed == ()
    assert live.result.total_units == TINY_NODES
    assert live.conserved == TINY_NODES
    # frames actually crossed (and were eaten by) the cut
    assert live.metrics.counter("live.partition_drops").value > 0
    for pid in range(4):
        assert live.reports[pid]["stats"]["finish_time"] > 0.0


def test_sigkill_during_partition_conserves(tmp_path):
    """kill -9 on a partitioned worker: the spool identity must survive
    the composition of a split and a death inside it."""
    # termination waves cannot cross the cut, so the run must outlive the
    # window — an after_s kill at 0.1 s is therefore guaranteed to land
    # *inside* the 0.02-0.5 s split, not before or after it
    cfg = LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=24,
                     timeout_s=90.0, fault_tolerance=True,
                     run_dir=str(tmp_path / "run"),
                     kills=({"pid": 3, "after_s": 0.1},),
                     partitions=({"side": [2, 3],
                                  "start_s": 0.02, "end_s": 0.5},))
    live = run_live(cfg)
    assert live.killed == (3,)
    assert live.result.crashes == 1
    assert live.conserved == TINY_NODES          # exact, not approximate
    for pid in (0, 1, 2):
        assert live.reports[pid]["stats"]["finish_time"] > 0.0


def test_partition_config_validation():
    from repro.sim.errors import SimConfigError
    ok = {"side": [2, 3], "start_s": 0.1, "end_s": 0.5}
    with pytest.raises(SimConfigError):          # needs fault tolerance
        LiveConfig(n=4, partitions=(ok,))
    with pytest.raises(SimConfigError):          # empty side
        LiveConfig(n=4, fault_tolerance=True,
                   partitions=({"side": [], "start_s": 0.1, "end_s": 0.5},))
    with pytest.raises(SimConfigError):          # pid out of range
        LiveConfig(n=4, fault_tolerance=True,
                   partitions=({"side": [7], "start_s": 0.1, "end_s": 0.5},))
    with pytest.raises(SimConfigError):          # whole-fleet side: no cut
        LiveConfig(n=4, fault_tolerance=True,
                   partitions=({"side": [0, 1, 2, 3],
                                "start_s": 0.1, "end_s": 0.5},))
    with pytest.raises(SimConfigError):          # start >= end
        LiveConfig(n=4, fault_tolerance=True,
                   partitions=({"side": [2], "start_s": 0.5, "end_s": 0.1},))
    LiveConfig(n=4, fault_tolerance=True, partitions=(ok,))


# -- shutdown hygiene --------------------------------------------------------

def test_no_orphan_processes_after_clean_run():
    before = set(_children_of(os.getpid()))
    run_live(LiveConfig(protocol="BTD", n=2, app=UTS_TINY, seed=31,
                        timeout_s=60.0))
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = set(_children_of(os.getpid())) - before
        if not leaked:
            return
        time.sleep(0.1)
    pytest.fail(f"leaked worker processes: {leaked}")


def test_sigint_drains_the_fleet(tmp_path):
    """A live run interrupted mid-flight exits 130 and leaves no workers."""
    script = (
        "import sys\n"
        "from repro.experiments.live import live_main\n"
        "sys.exit(live_main(['--n', '2', '--preset', 'bin_mini',\n"
        "                    '--seed', '1', '--quiet',\n"
        f"                   '--run-dir', {str(tmp_path / 'run')!r}]))\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"),
         env.get("PYTHONPATH", "")])
    proc = subprocess.Popen([sys.executable, "-c", script], env=env,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            start_new_session=True)
    try:
        time.sleep(1.5)                          # let workers spawn
        os.killpg(proc.pid, signal.SIGINT)
        out, err = proc.communicate(timeout=30)
    except Exception:
        proc.kill()
        raise
    assert proc.returncode in (130, 0), (proc.returncode, err.decode())
    # the supervisor's process group is gone: nothing to leak by design
    # (killpg already signalled workers too; the drain must not hang)


def test_worker_crash_without_fault_tolerance_fails_loudly(tmp_path):
    """A silent mid-run death in a non-fault run must raise, not hang."""
    from repro.runtime.supervisor import LiveRuntimeError
    cfg = LiveConfig(protocol="BTD", n=2,
                     app={"kind": "uts", "preset": "bin_mini"},
                     seed=41, timeout_s=60.0, run_dir=str(tmp_path / "run"))
    orig = run_live.__globals__["_spawn"]

    def sabotage(cfg_, endpoint, run_dir):
        workers = orig(cfg_, endpoint, run_dir)
        time.sleep(0.8)                          # let them handshake
        os.kill(workers[1].popen.pid, signal.SIGKILL)
        return workers

    run_live.__globals__["_spawn"] = sabotage
    try:
        with pytest.raises(LiveRuntimeError, match="died unexpectedly"):
            run_live(cfg)
    finally:
        run_live.__globals__["_spawn"] = orig


# -- p2p data plane + elastic membership -------------------------------------

def test_p2p_clean_run_matches_sequential():
    """Direct worker<->worker frames explore exactly the same tree, and
    the mesh's per-link accounting reaches the result."""
    live = run_live(LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=11,
                               p2p=True, timeout_s=90.0))
    assert live.result.total_units == TINY_NODES
    assert live.links                            # mesh-counted traffic
    assert all(src != dst for src, dst in live.links)
    # the supervisor relayed nothing: every counted link is worker<->worker
    sim_res, _ = run_instrumented(
        LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=11,
                   p2p=True).run_config(),
        build_app(UTS_TINY)[0])
    assert live.result.total_units == sim_res.total_units


def test_p2p_sigkill_conserves_every_unit(tmp_path):
    cfg = LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=21, p2p=True,
                     fault_tolerance=True, timeout_s=90.0,
                     kills=({"pid": 2, "after_units": 150},),
                     run_dir=str(tmp_path / "run"))
    live = run_live(cfg)
    assert live.killed == (2,)
    assert live.conserved == TINY_NODES          # exact, not approximate


def test_p2p_join_leave_and_kill_compose(tmp_path):
    """The full elastic-membership lifecycle in one run: a worker joins
    mid-run (grafted by the registry), another drains out gracefully, a
    third is SIGKILLed — and the conservation identity stays exact."""
    cfg = LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=23, p2p=True,
                     fault_tolerance=True, timeout_s=90.0,
                     joins=({"pid": 4, "after_s": 0.07},),
                     leaves=({"pid": 2, "after_s": 0.04},),
                     kills=({"pid": 3, "after_units": 100},),
                     run_dir=str(tmp_path / "run"))
    live = run_live(cfg)
    assert live.joined == (4,)
    assert live.left == (2,)
    assert live.killed == (3,)
    assert live.conserved == TINY_NODES
    # the leaver is a survivor: its stats flowed into the report and its
    # row is not marked crashed
    assert live.stats.per_process[2].crashes == 0
    assert live.stats.per_process[3].crashes == 1


def test_p2p_join_during_partition_conserves(tmp_path):
    """A worker joining while the fleet is split must attach through the
    reachable side (or retry past the cut) without losing a unit —
    membership news rides the control plane, which partitions never cut."""
    cfg = LiveConfig(protocol="BTD", n=4, app=UTS_TINY, seed=29, p2p=True,
                     fault_tolerance=True, timeout_s=90.0,
                     joins=({"pid": 4, "after_s": 0.06},),
                     partitions=({"side": [1, 3], "start_s": 0.03,
                                  "end_s": 0.4},),
                     run_dir=str(tmp_path / "run"))
    live = run_live(cfg)
    assert live.joined == (4,)
    assert live.conserved == TINY_NODES
