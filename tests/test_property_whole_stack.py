"""Whole-stack invariants over randomized configurations.

Beyond conservation (covered in test_failure_injection), these pin the
*physics* of the simulation: no protocol can beat perfect parallelism, busy
time is exactly priced, and nothing deadlocks even on degenerate networks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.synthetic import SyntheticApplication
from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, build_workers, run_once
from repro.sim import Simulator, uniform_network
from repro.uts.params import PRESETS

MINI = PRESETS["bin_mini"].params


@settings(max_examples=25, deadline=None)
@given(proto=st.sampled_from(["TD", "BTD", "TR", "BTR", "RWS", "LIFELINE"]),
       n=st.integers(min_value=2, max_value=20),
       quantum=st.sampled_from([4, 32, 128]),
       seed=st.integers(min_value=0, max_value=500))
def test_property_makespan_bounded_below_by_perfect_parallelism(
        proto, n, quantum, seed):
    unit_cost = 1e-5
    total = 4000
    r = run_once(RunConfig(protocol=proto, n=n, quantum=quantum, dmax=4,
                           seed=seed),
                 SyntheticApplication(total, unit_cost=unit_cost))
    assert r.total_units == total
    ideal = total * unit_cost / n
    assert r.makespan >= ideal * 0.999
    # and bounded above by the sequential time + generous overhead
    assert r.makespan < total * unit_cost + 1.0


@settings(max_examples=10, deadline=None)
@given(proto=st.sampled_from(["BTD", "RWS"]),
       seed=st.integers(min_value=0, max_value=100))
def test_property_busy_time_exactly_priced(proto, seed):
    app = UTSApplication(MINI)
    cfg = RunConfig(protocol=proto, n=6, dmax=3, quantum=32, seed=seed)
    sim = Simulator(uniform_network(latency=1e-4), seed=seed)
    build_workers(sim, cfg, app)
    stats = sim.run()
    priced = stats.total_work_units * app.unit_cost
    assert stats.total_busy == pytest.approx(priced)


def test_zero_latency_network():
    """Degenerate network: everything delivered 'instantly' still works."""
    net = uniform_network(latency=0.0, handler_cost=0.0)
    for proto in ("TD", "BTD", "RWS"):
        r = run_once(RunConfig(protocol=proto, n=8, dmax=3, quantum=16,
                               seed=1, network=net),
                     UTSApplication(MINI))
        from repro.uts.sequential import count_tree
        assert r.total_units == count_tree(MINI).nodes


def test_huge_handler_cost_network():
    """Messages costing more than quanta still converge."""
    net = uniform_network(latency=1e-4, handler_cost=5e-3)
    r = run_once(RunConfig(protocol="BTD", n=6, dmax=3, quantum=16, seed=1,
                           network=net),
                 UTSApplication(MINI))
    from repro.uts.sequential import count_tree
    assert r.total_units == count_tree(MINI).nodes


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_property_finish_times_ordered(seed):
    """No worker finishes before the last work unit completed... except
    that detection propagates: all finishes come after work_done_time of
    the worker's own last quantum — globally, makespan >= work_done."""
    r = run_once(RunConfig(protocol="BTD", n=10, dmax=3, quantum=32,
                           seed=seed),
                 UTSApplication(MINI))
    assert r.makespan >= r.work_done_time


def test_single_unit_of_work_many_workers():
    r = run_once(RunConfig(protocol="BTD", n=16, dmax=4, quantum=8, seed=2),
                 SyntheticApplication(1, unit_cost=1e-5))
    assert r.total_units == 1
