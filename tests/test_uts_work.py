"""Tests for UTSWork: conservation, splitting, distributed-count equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree
from repro.uts.tree import UTSParams
from repro.uts.work import ENTRY_BYTES, UTSWork

P_SMALL = UTSParams(b0=30, q=0.44, m=2, root_seed=1)


def drain(work: UTSWork, quantum=64) -> int:
    done = 0
    while not work.is_empty():
        done += work.process(quantum)
    return done


def test_root_work_counts_whole_tree():
    expected = count_tree(P_SMALL).nodes
    assert drain(UTSWork.root(P_SMALL)) == expected


def test_process_zero_units():
    w = UTSWork.root(P_SMALL)
    assert w.process(0) == 0
    assert UTSWork.empty(P_SMALL).process(100) == 0


def test_process_respects_quantum():
    w = UTSWork.root(P_SMALL)
    w.process(1)  # pops the root, pushes b0 children
    assert w.amount() == 30
    assert w.process(10) == 10


def test_split_conservation():
    w = UTSWork.root(P_SMALL)
    w.process(1)
    before = w.amount()
    piece = w.split(0.4)
    assert piece is not None
    assert piece.amount() + w.amount() == before
    assert piece.amount() == int(0.4 * before)


def test_split_keeps_at_least_one():
    w = UTSWork.root(P_SMALL)
    w.process(1)
    piece = w.split(1.0)
    assert w.amount() >= 1
    assert piece.amount() == 29


def test_split_of_single_entry_returns_none():
    w = UTSWork.root(P_SMALL)  # one entry (the root)
    assert w.split(0.9) is None
    assert w.amount() == 1


def test_split_zero_fraction():
    w = UTSWork.root(P_SMALL)
    w.process(1)
    assert w.split(0.0) is None


def test_merge_conservation_and_emptying():
    w = UTSWork.root(P_SMALL)
    w.process(1)
    piece = w.split(0.5)
    total = w.amount() + piece.amount()
    w.merge(piece)
    assert w.amount() == total
    assert piece.amount() == 0


def test_merge_type_check():
    from repro.sim.errors import SimConfigError

    class Fake:
        pass

    w = UTSWork.root(P_SMALL)
    with pytest.raises((SimConfigError, TypeError)):
        w.merge(Fake())


def test_encoded_bytes():
    w = UTSWork.root(P_SMALL)
    w.process(1)
    assert w.encoded_bytes() == ENTRY_BYTES * w.amount()


def test_split_then_drain_equals_sequential():
    """Work split across two 'workers' still counts the whole tree."""
    expected = count_tree(P_SMALL).nodes
    w = UTSWork.root(P_SMALL)
    done = w.process(1)
    piece = w.split(0.5)
    done += drain(w) + drain(piece)
    assert done == expected


@settings(deadline=None, max_examples=25)
@given(st.lists(st.tuples(st.floats(min_value=0.05, max_value=0.95),
                          st.integers(min_value=1, max_value=200)),
                min_size=0, max_size=6),
       st.integers(min_value=0, max_value=5))
def test_property_arbitrary_split_schedule_preserves_count(schedule, seed):
    """Any interleaving of process/split/merge across many piles conserves
    the total node count — the core distributed-correctness invariant."""
    params = UTSParams(b0=12, q=0.40, m=2, root_seed=seed)
    expected = count_tree(params).nodes
    piles = [UTSWork.root(params)]
    done = 0
    for frac, quantum in schedule:
        # process a bit of the biggest pile, then split it onto a new pile
        piles.sort(key=lambda w: -w.amount())
        done += piles[0].process(quantum)
        piece = piles[0].split(frac)
        if piece is not None:
            piles.append(piece)
    # merge one pair back if possible, then drain everything
    if len(piles) >= 2:
        piles[0].merge(piles.pop())
    for w in piles:
        done += drain(w)
    assert done == expected


def test_stack_grows_beyond_initial_capacity():
    params = PRESETS["bin_mini"].params
    w = UTSWork.root(params)
    total = drain(w, quantum=8)
    assert total == count_tree(params).nodes


def test_merge_puts_incoming_under_the_stack():
    w = UTSWork.root(P_SMALL)
    w.process(1)
    piece = w.split(0.3)
    top_before, _ = w.peek()
    w.merge(piece)
    after, _ = w.peek()
    # the previous top of stack is still on top (end of array)
    assert after[-1] == top_before[-1]
