"""Quantum fusion (macro events): fused runs must match unfused runs.

The macro-event fast path replaces the per-quantum event train of a busy
worker with one engine event per fused block, gated on a per-worker proof
that nothing can arrive before the block completes.  These tests pin the
equivalence down at every level:

* result identity (makespan, units, messages, steals, per-process
  counters) for every protocol, clean and faulted;
* *schedule* identity: the full trace sample sets agree (compared in
  time order — a fused worker appends interior samples eagerly, so list
  order may interleave differently across workers);
* the events-equivalent accounting: a fused run reports exactly the
  event count its unfused twin actually fires;
* the gates: B&B (shared state) never fuses, bounded runs
  (``max_events``) never fuse.

Identity is exact whenever no fused boundary collides with a foreign
event at the identical float time (see docs/simulation.md); all the
configurations here are in that regime, and — the simulator being
bit-deterministic — stay there.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.synthetic import SyntheticApplication
from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, run_instrumented
from repro.sim.faults import FaultPlan
from repro.sim.network import uniform_network
from repro.sim.trace import Tracer
from repro.uts.params import PRESETS

UTS_PROTOCOLS = ("TD", "BTD", "RWS", "LIFELINE")


def run_pair(cfg: RunConfig, make_app, trace: bool = True):
    """(fused, unfused) ``(result, stats, tracer)`` triples for one config."""
    out = []
    for fuse in (True, False):
        tracer = Tracer() if trace else None
        res, stats = run_instrumented(dataclasses.replace(cfg, fuse=fuse),
                                      make_app(), tracer=tracer)
        out.append((res, stats, tracer))
    return out


def sorted_samples(tracer: Tracer):
    return sorted((s.time, s.pid, s.kind, s.value) for s in tracer.samples)


def assert_identical(fused, unfused):
    fr, fs, ft = fused
    ur, us, ut = unfused
    assert fr.makespan == ur.makespan
    assert fr.work_done_time == ur.work_done_time
    assert fr.total_units == ur.total_units
    assert fr.total_msgs == ur.total_msgs
    assert fr.total_steals == ur.total_steals
    assert fr.msgs_by_pid == ur.msgs_by_pid
    for f_st, u_st in zip(fs.per_process, us.per_process):
        assert f_st.work_units == u_st.work_units
        assert f_st.busy_time == u_st.busy_time
        assert f_st.msgs_sent == u_st.msgs_sent
        assert f_st.msgs_received == u_st.msgs_received
        assert f_st.steals_attempted == u_st.steals_attempted
        assert f_st.finish_time == u_st.finish_time
    if ft is not None and ut is not None:
        assert sorted_samples(ft) == sorted_samples(ut)


@pytest.mark.parametrize("proto", UTS_PROTOCOLS)
def test_fused_identity_uts(proto):
    """The golden UTS configs: bit-identical, with fusion engaged."""
    preset = PRESETS["bin_tiny"]
    cfg = RunConfig(protocol=proto, n=24, dmax=4, quantum=64, seed=123)
    fused, unfused = run_pair(cfg, lambda: UTSApplication(preset.params))
    assert_identical(fused, unfused)
    assert fused[0].macro_events > 0, "fusion never engaged"
    assert fused[0].fused_quanta > fused[0].macro_events
    assert fused[0].events < unfused[0].events
    assert unfused[0].macro_events == 0


@pytest.mark.parametrize("proto", ("TD", "BTD", "RWS"))
def test_fused_identity_faulted(proto):
    """Crashes, loss and duplication inside fused windows stay exact."""
    preset = PRESETS["bin_tiny"]
    plan = FaultPlan(crashes=((5, 0.002), (11, 0.004)), loss=0.02, dup=0.01)
    cfg = RunConfig(protocol=proto, n=24, dmax=4, quantum=64, seed=123,
                    faults=plan)
    fused, unfused = run_pair(cfg, lambda: UTSApplication(preset.params))
    assert_identical(fused, unfused)
    assert fused[0].crashes == 2
    assert fused[0].macro_events > 0


def test_fused_identity_synthetic_fleet_net():
    """The scale sweep's flat-network regime, shrunk to test size."""
    cfg = RunConfig(protocol="TD", n=64, quantum=16, seed=7,
                    network=uniform_network(cores=4096, latency=1e-3))
    fused, unfused = run_pair(
        cfg, lambda: SyntheticApplication(64 * 500, unit_cost=1e-6))
    assert_identical(fused, unfused)
    assert fused[0].macro_events > 0


def test_events_equivalent_accounting():
    """events_equivalent of a fused run == events of its unfused twin."""
    cfg = RunConfig(protocol="TD", n=64, quantum=16, seed=7,
                    network=uniform_network(cores=4096, latency=1e-3))
    fused, unfused = run_pair(
        cfg, lambda: SyntheticApplication(64 * 500, unit_cost=1e-6),
        trace=False)
    assert fused[0].events_equivalent == unfused[0].events
    assert unfused[0].events_equivalent == unfused[0].events
    ratio = ((fused[1].fused_quanta - fused[1].macro_events)
             / fused[1].events_equivalent)
    assert 0.0 < ratio < 1.0
    assert ratio == pytest.approx(fused[1].fused_ratio)


def test_bnb_never_fuses():
    """Shared bound state (gossip at boundaries) disables fusion."""
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.taillard import scaled_instance

    inst = scaled_instance(2, n_jobs=8, n_machines=8)
    cfg = RunConfig(protocol="BTD", n=12, quantum=16, seed=123, dmax=3)
    fused, unfused = run_pair(cfg, lambda: BnBApplication(inst,
                                                          warm_start=True),
                              trace=False)
    assert fused[0].macro_events == 0 and fused[0].fused_quanta == 0
    assert fused[0].makespan == unfused[0].makespan
    assert fused[0].events == unfused[0].events
    assert fused[0].optimum == unfused[0].optimum


def test_bounded_runs_never_fuse():
    """max_events forbids fusion (a macro event would overshoot the cap)."""
    preset = PRESETS["bin_tiny"]
    cfg = RunConfig(protocol="TD", n=24, dmax=4, quantum=64, seed=123,
                    max_events=500)
    res, _ = run_instrumented(cfg, UTSApplication(preset.params))
    assert res.macro_events == 0 and res.fused_quanta == 0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_fused_schedule_identical(seed):
    """Across seeds: identical event-visible schedules, fused vs not."""
    preset = PRESETS["bin_mini"]
    cfg = RunConfig(protocol="TD", n=16, dmax=4, quantum=16, seed=seed)
    fused, unfused = run_pair(cfg, lambda: UTSApplication(preset.params))
    assert_identical(fused, unfused)
