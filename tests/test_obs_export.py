"""Tests for the NDJSON trace exporter: round-trip, schema, truncation."""

import json

import pytest

from repro.obs.export import (TRACE_SCHEMA_VERSION, TraceWriter, export_trace,
                              load_trace)
from repro.sim.errors import SimConfigError
from repro.sim.trace import Tracer


def make_tracer():
    t = Tracer()
    t.record(0.0, 0, "quantum", 64.0)
    t.record(1e-4, 3, "message", 1.0)
    t.record(0.25, 1, "transfer", 2.0)
    # values that stress float round-tripping
    t.record(1 / 3, 2, "quantum", 1e-7)
    t.record(0.1 + 0.2, 0, "finish", 0.0)
    return t


def test_export_load_round_trip(tmp_path):
    tracer = make_tracer()
    path = tmp_path / "run.ndjson"
    n = export_trace(tracer, str(path), meta={"seed": 42, "proto": "BTD"})
    assert n == len(tracer.samples)

    loaded = load_trace(str(path))
    assert loaded.schema == TRACE_SCHEMA_VERSION
    assert loaded.meta == {"seed": 42, "proto": "BTD"}
    # bit-identical samples: repr round-trip of every float
    assert loaded.samples == tracer.samples

    # a load -> re-export cycle reproduces the file byte for byte
    path2 = tmp_path / "again.ndjson"
    export_trace(loaded.tracer, str(path2), meta=loaded.meta)
    assert path.read_bytes() == path2.read_bytes()


def test_gzip_round_trip(tmp_path):
    tracer = make_tracer()
    path = tmp_path / "run.ndjson.gz"
    export_trace(tracer, str(path), meta={"k": 1})
    assert path.read_bytes()[:2] == b"\x1f\x8b"     # actually gzipped
    loaded = load_trace(str(path))
    assert loaded.samples == tracer.samples
    assert loaded.meta == {"k": 1}


def test_streaming_writer_matches_post_hoc_export(tmp_path):
    tracer = make_tracer()
    streamed = tmp_path / "streamed.ndjson"
    with TraceWriter(str(streamed), meta={"m": 1}) as tw:
        assert tw.enabled
        for s in tracer.samples:
            tw.record(s.time, s.pid, s.kind, s.value)
    dumped = tmp_path / "dumped.ndjson"
    export_trace(tracer, str(dumped), meta={"m": 1})
    assert streamed.read_bytes() == dumped.read_bytes()


def test_writer_record_after_close_is_noop(tmp_path):
    path = tmp_path / "t.ndjson"
    tw = TraceWriter(str(path))
    tw.record(0.0, 0, "quantum", 1.0)
    tw.close()
    tw.record(1.0, 0, "quantum", 1.0)       # ignored, not an error
    tw.close()                              # idempotent
    assert len(load_trace(str(path)).samples) == 1


def test_unsupported_schema_version_rejected(tmp_path):
    path = tmp_path / "future.ndjson"
    path.write_text(
        json.dumps({"record": "header", "schema": 99, "meta": {}}) + "\n"
        + json.dumps({"record": "end", "samples": 0}) + "\n")
    with pytest.raises(SimConfigError, match="unsupported trace schema"):
        load_trace(str(path))


def test_missing_header_rejected(tmp_path):
    path = tmp_path / "noheader.ndjson"
    path.write_text(json.dumps({"record": "end", "samples": 0}) + "\n")
    with pytest.raises(SimConfigError, match="no header"):
        load_trace(str(path))


def test_truncated_trace_rejected(tmp_path):
    tracer = make_tracer()
    full = tmp_path / "full.ndjson"
    export_trace(tracer, str(full), meta={})
    lines = full.read_text().splitlines(keepends=True)

    # writer died before the footer
    trunc = tmp_path / "trunc.ndjson"
    trunc.write_text("".join(lines[:-1]))
    with pytest.raises(SimConfigError, match="truncated"):
        load_trace(str(trunc))

    # footer present but samples missing
    holey = tmp_path / "holey.ndjson"
    holey.write_text("".join(lines[:2] + lines[-1:]))
    with pytest.raises(SimConfigError, match="sample count mismatch"):
        load_trace(str(holey))


def test_garbage_rejected(tmp_path):
    path = tmp_path / "garbage.ndjson"
    path.write_text("this is not json\n")
    with pytest.raises(SimConfigError, match="not valid JSON"):
        load_trace(str(path))
    empty = tmp_path / "empty.ndjson"
    empty.write_text("")
    with pytest.raises(SimConfigError, match="empty"):
        load_trace(str(empty))


def test_trace_writer_streams_a_live_run(tmp_path):
    """TraceWriter is duck-compatible with Tracer: attach it to a run."""
    from repro.experiments.runner import RunConfig, run_once
    from repro.experiments.specs import UTSSpec
    from repro.uts.params import PRESETS

    spec = UTSSpec(PRESETS["bin_mini"].params)
    cfg = RunConfig(protocol="BTD", n=4, quantum=16, seed=7)

    mem = Tracer()
    run_once(cfg, spec.build(), tracer=mem)

    path = tmp_path / "live.ndjson.gz"
    with TraceWriter(str(path), meta={"streamed": True}) as tw:
        run_once(cfg, spec.build(), tracer=tw)

    loaded = load_trace(str(path))
    assert loaded.meta == {"streamed": True}
    assert loaded.samples == mem.samples    # deterministic + bit-identical
