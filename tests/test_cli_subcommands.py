"""The ``repro.experiments`` subcommand registry cannot drift.

Three invariants, each of which has historically broken in CLIs with
hand-rolled dispatch:

1. every subcommand in :data:`SUBCOMMANDS` actually dispatches (its
   ``--help`` exits 0 instead of falling through to the experiment-id
   parser, which would ``parser.error`` with exit 2);
2. the ``--help`` epilog mentions every subcommand, so users can
   discover them;
3. the literal ``argv[0] == "..."`` dispatch guards in the source and
   the :data:`SUBCOMMANDS` keys are the *same set* — adding a dispatch
   branch without documenting it (or vice versa) fails here.
"""

import inspect
import re

import pytest

import repro.experiments.__main__ as cli
from repro.experiments.__main__ import SUBCOMMANDS, main


def test_registry_covers_known_subcommands():
    # The service PR's contract: serve rides next to the original three.
    assert {"report", "live", "scale", "serve"} <= set(SUBCOMMANDS)


@pytest.mark.parametrize("name", sorted(SUBCOMMANDS))
def test_subcommand_dispatches_help(name):
    with pytest.raises(SystemExit) as exc:
        main([name, "--help"])
    assert exc.value.code == 0


@pytest.mark.parametrize("name", sorted(SUBCOMMANDS))
def test_epilog_documents_subcommand(name, capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    assert name in out
    # And the first few words of the description survive into the epilog.
    first_words = " ".join(SUBCOMMANDS[name].split()[:3])
    assert first_words in out


def test_dispatch_guards_match_registry():
    src = inspect.getsource(cli.main)
    dispatched = set(re.findall(r'argv\[0\] == "(\w+)"', src))
    assert dispatched == set(SUBCOMMANDS), (
        "dispatch branches and SUBCOMMANDS drifted: "
        f"dispatch-only={dispatched - set(SUBCOMMANDS)} "
        f"registry-only={set(SUBCOMMANDS) - dispatched}")


def test_descriptions_are_nonempty_strings():
    for name, desc in SUBCOMMANDS.items():
        assert isinstance(desc, str) and desc.strip(), name
