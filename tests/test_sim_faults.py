"""Simulator-level fault injection: plans, determinism, zero overhead.

Protocol-level recovery (splices, work conservation under crashes) lives
in test_fault_tolerance.py; this file pins down the *engine* contract —
FaultPlan validation, null-plan normalisation, bit-reproducibility of
faulted runs, stat accounting, and the debug/deadlock tooling the fault
work leans on.
"""

import pytest

from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, run_once
from repro.sim import Simulator, grid5000
from repro.sim.errors import SimConfigError, SimDeadlockError
from repro.sim.faults import FaultPlan
from repro.sim.process import SimProcess
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree

MINI = PRESETS["bin_mini"].params
MINI_NODES = count_tree(MINI).nodes


# -- FaultPlan validation ----------------------------------------------------

def test_plan_rejects_root_crash():
    with pytest.raises(SimConfigError, match="root"):
        FaultPlan(crashes=((0, 1e-3),))


def test_plan_rejects_duplicate_crash():
    with pytest.raises(SimConfigError, match="more than once"):
        FaultPlan(crashes=((3, 1e-3), (3, 2e-3)))


def test_plan_rejects_bad_probabilities():
    for bad in (-0.1, 1.0, 1.5):
        with pytest.raises(SimConfigError):
            FaultPlan(loss=bad)
        with pytest.raises(SimConfigError):
            FaultPlan(dup=bad)


def test_plan_rejects_bad_crash_time():
    with pytest.raises(SimConfigError, match="crash time"):
        FaultPlan(crashes=((1, 0.0),))


def test_plan_rejects_bad_blackout_window():
    with pytest.raises(SimConfigError, match="blackout"):
        FaultPlan(blackouts=((None, None, 2e-3, 1e-3),))


def test_plan_rejects_overlapping_blackouts():
    with pytest.raises(SimConfigError, match="overlap"):
        FaultPlan(blackouts=((1, 2, 1e-3, 3e-3), (1, 2, 2e-3, 4e-3)))
    with pytest.raises(SimConfigError, match="overlap"):
        # wildcard windows collide on the same (None, None) link key too
        FaultPlan(blackouts=((None, None, 0.0, 5e-3),
                             (None, None, 4e-3, 6e-3)))
    # adjacent windows are fine (half-open [start, end) intervals)...
    FaultPlan(blackouts=((1, 2, 1e-3, 2e-3), (1, 2, 2e-3, 3e-3)))
    # ...and so is the same window on *different* link keys
    FaultPlan(blackouts=((1, 2, 1e-3, 3e-3), (2, 1, 1e-3, 3e-3)))


def test_plan_rejects_bad_partition_sides():
    with pytest.raises(SimConfigError, match="nonempty"):
        FaultPlan(partitions=(((), 1e-3, 2e-3),))
    with pytest.raises(SimConfigError, match="more than once"):
        FaultPlan(partitions=(((1, 1, 2), 1e-3, 2e-3),))
    with pytest.raises(SimConfigError, match=">= 0"):
        FaultPlan(partitions=(((-1, 2), 1e-3, 2e-3),))
    with pytest.raises(SimConfigError, match="start < end"):
        FaultPlan(partitions=(((1, 2), 2e-3, 1e-3),))


def test_plan_rejects_bad_gray_failures():
    with pytest.raises(SimConfigError, match="factor must be >= 1"):
        FaultPlan(slowdowns=((1, 0.0, 1e-3, 0.5),))
    with pytest.raises(SimConfigError, match="start < end"):
        FaultPlan(slowdowns=((1, 2e-3, 1e-3, 2.0),))
    with pytest.raises(SimConfigError, match="delay_factor"):
        FaultPlan(gray_links=((None, 1, 0.0, 1e-3, 0.5, 0.0),))
    with pytest.raises(SimConfigError, match="loss"):
        FaultPlan(gray_links=((None, 1, 0.0, 1e-3, 2.0, 1.0),))


def test_fleet_validation_rejects_improper_splits():
    """validate_fleet needs the actual n: a side that covers the whole
    fleet (no cut) or names unknown pids only shows up at run start."""
    from repro.sim.faults import FaultController
    plan = FaultPlan(partitions=(((0, 1, 2, 3), 1e-3, 2e-3),))
    FaultController(plan, seed=0).validate_fleet(8)      # proper split
    with pytest.raises(SimConfigError, match="whole"):
        FaultController(plan, seed=0).validate_fleet(4)
    with pytest.raises(SimConfigError, match="unknown"):
        FaultController(FaultPlan(partitions=(((9,), 1e-3, 2e-3),)),
                        seed=0).validate_fleet(8)
    with pytest.raises(SimConfigError, match="unknown"):
        FaultController(FaultPlan(slowdowns=((9, 0.0, 1e-3, 2.0),)),
                        seed=0).validate_fleet(8)


def test_null_plan_covers_new_fault_kinds():
    assert FaultPlan().is_null()
    assert not FaultPlan(partitions=(((1,), 1e-3, 2e-3),)).is_null()
    assert not FaultPlan(slowdowns=((1, 0.0, 1e-3, 2.0),)).is_null()
    assert not FaultPlan(
        gray_links=((None, 1, 0.0, 1e-3, 2.0, 0.1),)).is_null()


def test_sample_is_deterministic_and_bounded():
    a = FaultPlan.sample(16, crashes=4, seed=9)
    b = FaultPlan.sample(16, crashes=4, seed=9)
    assert a == b
    assert len(a.crashes) == 4
    assert all(1 <= pid < 16 for pid, _ in a.crashes)
    with pytest.raises(SimConfigError, match="immortal"):
        FaultPlan.sample(4, crashes=4, seed=0)


def test_runconfig_rejects_out_of_range_crash():
    with pytest.raises(SimConfigError):
        RunConfig(protocol="TD", n=4,
                  faults=FaultPlan(crashes=((7, 1e-3),)))


def test_runconfig_gates_unhardened_protocols():
    plan = FaultPlan(loss=0.1)
    for proto in ("MW", "AHMW", "LIFELINE"):
        with pytest.raises(SimConfigError, match="fault injection"):
            RunConfig(protocol=proto, n=8, faults=plan)
    # a *null* plan is fine anywhere: it normalises to no faults at all
    RunConfig(protocol="MW", n=8, faults=FaultPlan())


# -- null-plan normalisation and zero drift ----------------------------------

def test_null_plan_normalises_away():
    sim = Simulator(grid5000(), seed=0, faults=FaultPlan())
    assert sim.faults is None
    assert Simulator(grid5000(), seed=0, faults=None).faults is None
    assert Simulator(grid5000(), seed=0,
                     faults=FaultPlan(loss=0.1)).faults is not None


def test_null_plan_zero_drift():
    """faults=None and a null FaultPlan produce bit-identical runs."""
    def go(plan):
        cfg = RunConfig(protocol="BTD", n=10, dmax=3, seed=11, faults=plan)
        return run_once(cfg, UTSApplication(MINI))

    clean, null = go(None), go(FaultPlan())
    assert clean.makespan == null.makespan
    assert clean.total_msgs == null.total_msgs
    assert clean.total_units == null.total_units == MINI_NODES
    assert null.msgs_lost == null.retransmits == null.repairs == 0


def test_faulted_runs_are_deterministic():
    plan = FaultPlan.sample(12, crashes=3, seed=21, loss=0.1, dup=0.05,
                            window=(2e-4, 2e-3))

    def go():
        cfg = RunConfig(protocol="BTD", n=12, dmax=3, seed=5, faults=plan)
        return run_once(cfg, UTSApplication(MINI))

    a, b = go(), go()
    assert (a.makespan, a.total_msgs, a.total_units) == \
           (b.makespan, b.total_msgs, b.total_units)
    assert (a.msgs_lost, a.msgs_duplicated, a.retransmits,
            a.crashes, a.repairs) == \
           (b.msgs_lost, b.msgs_duplicated, b.retransmits,
            b.crashes, b.repairs)


# -- stat accounting ---------------------------------------------------------

def test_loss_is_counted_and_repaired():
    cfg = RunConfig(protocol="TD", n=8, dmax=3, seed=3,
                    faults=FaultPlan(loss=0.1))
    r = run_once(cfg, UTSApplication(MINI))
    assert r.total_units == MINI_NODES
    assert r.msgs_lost > 0
    assert r.retransmits > 0


def test_duplicates_are_counted_and_absorbed():
    cfg = RunConfig(protocol="TD", n=8, dmax=3, seed=4,
                    faults=FaultPlan(dup=0.15))
    r = run_once(cfg, UTSApplication(MINI))
    assert r.total_units == MINI_NODES
    assert r.msgs_duplicated > 0


def test_blackout_drops_messages():
    plan = FaultPlan(blackouts=((None, None, 1e-4, 6e-4),))
    cfg = RunConfig(protocol="TD", n=8, dmax=3, seed=5, faults=plan)
    r = run_once(cfg, UTSApplication(MINI))
    assert r.total_units == MINI_NODES
    assert r.msgs_lost > 0


def test_partition_drops_are_counted_and_heal():
    """Cross-cut frames count as lost; the heal restores every unit."""
    plan = FaultPlan(partitions=(((4, 5, 6, 7), 1e-3, 4e-3),))
    cfg = RunConfig(protocol="TD", n=8, dmax=3, seed=5, faults=plan)
    r = run_once(cfg, UTSApplication(MINI))
    assert r.total_units == MINI_NODES
    assert r.msgs_lost > 0


def test_gray_runs_are_deterministic():
    """Gray-link keyed drops and slowdown inflation reproduce exactly."""
    plan = FaultPlan(slowdowns=((4, 0.0, 8e-3, 8.0),),
                     gray_links=((None, 4, 0.0, 8e-3, 4.0, 0.5),
                                 (4, None, 0.0, 8e-3, 4.0, 0.5)))

    def go():
        cfg = RunConfig(protocol="BTD", n=8, dmax=3, seed=6, faults=plan)
        return run_once(cfg, UTSApplication(MINI))

    a, b = go(), go()
    assert a.total_units == b.total_units == MINI_NODES
    assert (a.makespan, a.total_msgs, a.msgs_lost, a.retransmits) == \
           (b.makespan, b.total_msgs, b.msgs_lost, b.retransmits)
    assert a.msgs_lost > 0                   # the flaky links actually drop


def test_crash_is_counted():
    plan = FaultPlan.sample(12, crashes=3, seed=31, window=(2e-4, 2e-3))
    cfg = RunConfig(protocol="BTD", n=12, dmax=3, seed=6, faults=plan)
    r = run_once(cfg, UTSApplication(MINI))
    assert r.crashes == 3
    assert r.total_units <= MINI_NODES


# -- satellite: re-placement determinism -------------------------------------

def test_replace_resets_jitter_stream():
    """Re-placing a NetworkModel reproduces a fresh model's jitter draws.

    One NetworkModel instance is reused across grid cells; if place() only
    created the jitter stream on first use, the second cell's delays would
    continue the first cell's sequence and diverge from a fresh run.
    """
    def delays(net):
        net.place(8, seed=13)
        return [net.delivery_delay(1, 2, 100) for _ in range(50)]

    reused = grid5000(jitter=2.0)
    first = delays(reused)
    second = delays(reused)          # re-place the same instance
    fresh = delays(grid5000(jitter=2.0))
    assert first == second == fresh


# -- satellite: deadlock snapshots under debug=True --------------------------

class _Stuck(SimProcess):
    """Never finishes; schedules one no-op timer so the run isn't empty."""

    def start(self):
        self.sim.queue.push(1e-3, lambda: None, tag="stuck-timer")

    def finished(self):
        return False


def test_deadlock_error_names_stuck_process():
    sim = Simulator(grid5000(), seed=0, debug=True)
    sim.add_process(_Stuck(0))
    with pytest.raises(SimDeadlockError) as err:
        sim.run()
    msg = str(err.value)
    assert "1 unfinished" in msg and "[0]" in msg
    # debug mode: the hint to enable it must NOT appear
    assert "debug=True" not in msg


def test_deadlock_error_hints_at_debug_mode():
    sim = Simulator(grid5000(), seed=0)          # debug off
    sim.add_process(_Stuck(0))
    with pytest.raises(SimDeadlockError, match="debug=True"):
        sim.run()


def test_debug_tags_appear_in_snapshot():
    """debug=True tags deliveries/timers so snapshot_tags() is readable."""
    sim = Simulator(grid5000(), seed=0, debug=True)
    sim.add_process(_Stuck(0))
    sim.network.place(1, seed=0)
    sim.processes[0].start()
    tags = [tag for _, tag in sim.queue.snapshot_tags()]
    assert "stuck-timer" in tags
