"""Tests for overlay metrics against hand-computed and networkx oracles."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.overlay.metrics import (degree_histogram, diameter, summarize)
from repro.overlay.tree import (chain_tree, deterministic_tree, from_parents,
                                random_tree, star_tree)
from repro.overlay.topology import (bridge_edges, hypercube_edges,
                                    neighbors_from_edges, overlay_edges,
                                    tree_edges)
from repro.overlay.bridges import add_bridges


def test_diameter_known_shapes():
    assert diameter(chain_tree(10)) == 9
    assert diameter(star_tree(10)) == 2
    assert diameter(deterministic_tree(1, 2)) == 0
    assert diameter(deterministic_tree(3, 2)) == 2


def test_degree_histogram_star():
    h = degree_histogram(star_tree(6))
    assert h == {5: 1, 1: 5}


def test_summary_fields():
    s = summarize(deterministic_tree(100, dmax=10))
    assert s.n == 100 and s.kind == "TD"
    assert s.height == 2
    assert s.leaves == 90  # nodes 10..99 have no children
    assert "TD(n=100)" in str(s)


def test_summary_leaves_consistent():
    t = deterministic_tree(100, dmax=10)
    assert summarize(t).leaves == len(t.leaves())


@st.composite
def parent_vectors(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    return [-1] + [draw(st.integers(min_value=0, max_value=v - 1))
                   for v in range(1, n)]


@given(parent_vectors())
def test_property_diameter_matches_networkx(parents):
    t = from_parents(parents)
    g = nx.Graph(tree_edges(t))
    g.add_nodes_from(range(t.n))
    assert diameter(t) == nx.diameter(g)


@given(parent_vectors())
def test_property_distance_matches_networkx(parents):
    t = from_parents(parents)
    g = nx.Graph(tree_edges(t))
    g.add_nodes_from(range(t.n))
    for u in range(0, t.n, max(1, t.n // 5)):
        lengths = nx.single_source_shortest_path_length(g, u)
        for v in range(0, t.n, max(1, t.n // 5)):
            assert t.distance(u, v) == lengths[v]


def test_tree_edges_count():
    t = random_tree(30, seed=2)
    assert len(tree_edges(t)) == 29


def test_overlay_edges_with_bridges():
    t = deterministic_tree(30, dmax=3)
    b = add_bridges(t, seed=1)
    edges = overlay_edges(b)
    assert len(edges) == 29 + len(bridge_edges(b))
    assert len(bridge_edges(b)) == 30


def test_hypercube_edges():
    edges = hypercube_edges(8)
    g = nx.Graph(edges)
    assert g.number_of_edges() == 12  # 3-cube
    assert all(d == 3 for _, d in g.degree())


def test_hypercube_with_remainder():
    edges = hypercube_edges(10)
    g = nx.Graph(edges)
    g.add_nodes_from(range(10))
    assert nx.is_connected(g)


def test_neighbors_from_edges_validation():
    with pytest.raises(Exception):
        neighbors_from_edges(3, [(0, 5)])
    adj = neighbors_from_edges(3, [(0, 1), (1, 2)])
    assert adj[1] == [0, 2]
