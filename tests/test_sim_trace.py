"""Tests for the activity tracing subsystem."""

import pytest

from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, run_once
from repro.sim.errors import SimConfigError
from repro.sim.trace import (FINISH, MESSAGE, QUANTUM, Tracer,
                             render_profile)
from repro.uts.params import PRESETS

PRESET = PRESETS["bin_mini"].params


def traced_run(proto="BTD", n=8, **kw):
    tracer = Tracer()
    result = run_once(RunConfig(protocol=proto, n=n, dmax=3, quantum=16,
                                seed=4, **kw),
                      UTSApplication(PRESET), tracer=tracer)
    return tracer, result


def test_quantum_samples_sum_to_total_units():
    tracer, result = traced_run()
    total = sum(s.value for s in tracer.of_kind(QUANTUM))
    assert total == result.total_units


def test_every_worker_finishes_once():
    tracer, result = traced_run()
    finishes = tracer.of_kind(FINISH)
    assert len(finishes) == result.n
    assert {s.pid for s in finishes} == set(range(result.n))


def test_utilization_profile_bounds():
    tracer, result = traced_run()
    app = UTSApplication(PRESET)
    profile = tracer.utilization_profile(result.makespan, app.unit_cost,
                                         result.n, buckets=8)
    assert len(profile) == 8
    assert all(0.0 <= frac <= 1.001 for _, frac in profile)
    assert profile[-1][0] == pytest.approx(result.makespan)
    # total busy time recovered from the profile equals units x cost
    width = result.makespan / 8
    recovered = sum(frac for _, frac in profile) * width * result.n
    assert recovered == pytest.approx(result.total_units * app.unit_cost,
                                      rel=1e-6)


def test_work_completed_by():
    tracer, result = traced_run()
    t_half = tracer.work_completed_by(0.5, result.total_units)
    t_all = tracer.work_completed_by(1.0, result.total_units)
    assert 0 < t_half <= t_all <= result.work_done_time + 1e-9
    with pytest.raises(SimConfigError):
        tracer.work_completed_by(0.0, 10)


def test_per_worker_units_match_stats():
    tracer, result = traced_run()
    per = tracer.per_worker_units(result.n)
    assert sum(per) == result.total_units


def test_idle_episodes_and_messages_recorded():
    tracer, result = traced_run()
    assert sum(tracer.idle_episodes(p) for p in range(result.n)) > 0
    assert len(tracer.of_kind(MESSAGE)) > 0
    rate = tracer.message_rate(result.makespan, buckets=5)
    assert len(rate) == 5
    assert all(r >= 0 for _, r in rate)


def test_render_profile():
    out = render_profile([(0.001, 0.5), (0.002, 1.0)])
    assert "50%" in out and "100%" in out
    assert out.count("\n") == 2


def test_tracer_disable():
    tracer = Tracer()
    tracer.enabled = False
    tracer.record(0.0, 0, QUANTUM, 5)
    assert tracer.samples == []


def test_validation():
    tracer = Tracer()
    with pytest.raises(SimConfigError):
        tracer.utilization_profile(0.0, 1e-6, 4)
    with pytest.raises(SimConfigError):
        tracer.message_rate(-1.0)


def test_untraced_run_has_no_overhead_hooks():
    result = run_once(RunConfig(protocol="TD", n=4, dmax=2, seed=1),
                      UTSApplication(PRESET))
    assert result.total_units > 0  # just exercises the tracer-less path
