"""Protocol-level tests of the overlay-centric load balancer."""

import pytest

from repro.apps.synthetic import SyntheticApplication
from repro.core.config import OCLBConfig
from repro.core.oclb import BRIDGE, OverlayWorker
from repro.core.worker import WorkerConfig
from repro.overlay.bridges import add_bridges
from repro.overlay.tree import chain_tree, deterministic_tree
from repro.sim import Message, Simulator, uniform_network
from repro.sim.errors import SimConfigError


def run_oclb(overlay, app=None, quantum=16, seed=3, oclb=None, net=None,
             max_time=None):
    app = app or SyntheticApplication(2000, unit_cost=1e-5)
    sim = Simulator(net or uniform_network(latency=1e-4), seed=seed)
    workers = [sim.add_process(OverlayWorker(
        p, app, WorkerConfig(quantum=quantum, seed=seed), overlay, oclb))
        for p in range(overlay.n)]
    stats = sim.run(max_time=max_time)
    return workers, stats


def test_all_work_processed_and_all_terminate():
    tree = deterministic_tree(13, 3)
    workers, stats = run_oclb(tree)
    assert stats.total_work_units == 2000
    assert all(w.terminated for w in workers)


def test_initial_work_at_root_only():
    tree = deterministic_tree(5, 2)
    app = SyntheticApplication(100)
    sim = Simulator(uniform_network(), seed=1)
    ws = [sim.add_process(OverlayWorker(p, app, WorkerConfig(), tree))
          for p in range(5)]
    assert ws[0].work.amount() == 100
    assert all(w.work.amount() == 0 for w in ws[1:])


def test_subtree_sizes_learned_by_convergecast():
    tree = deterministic_tree(13, 3)
    workers, _ = run_oclb(tree)
    for w in workers:
        assert w.sizes.my_size == tree.subtree_size[w.pid]
        for c in tree.children[w.pid]:
            assert w.child_sizes[c] == tree.subtree_size[c]


def test_every_worker_contributes_on_a_chain():
    """Even the worst overlay (a path) distributes work to everyone."""
    tree = chain_tree(6)
    workers, stats = run_oclb(tree, app=SyntheticApplication(6000))
    contributions = [p.work_units for p in stats.per_process]
    assert sum(contributions) == 6000
    assert all(c > 0 for c in contributions)


def test_bridged_overlay_works():
    overlay = add_bridges(deterministic_tree(20, 4), seed=2)
    workers, stats = run_oclb(overlay)
    assert stats.total_work_units == 2000
    assert all(w.terminated for w in workers)
    assert all(w.bridged for w in workers)


def test_sharing_fraction_proportionality():
    """The root's grant to a child tracks the child's subtree share."""
    # TD(12, 3): child 1 has subtree size 4 (nodes 1,4,5,6... within 12)
    tree = deterministic_tree(13, 3)
    app = SyntheticApplication(13_000, unit_cost=1e-3)  # slow: one quantum

    recorded = {}
    orig = OverlayWorker._try_serve

    def spy(self, entry):
        before = self.work.amount()
        ok = orig(self, entry)
        if ok and self.pid == 0 and entry.pid not in recorded:
            recorded[entry.pid] = (before, before - self.work.amount())
        return ok

    OverlayWorker._try_serve = spy
    try:
        run_oclb(tree, app=app, quantum=4, max_time=0.5)
    finally:
        OverlayWorker._try_serve = orig
    # children of the root are 1, 2, 3 with subtree sizes 4, 4, 4 of 13
    for child in (1, 2, 3):
        if child in recorded:
            before, given = recorded[child]
            assert given == pytest.approx(before * 4 / 13, abs=2)


def test_up_request_marks_exhausted_child():
    tree = deterministic_tree(4, 3)
    workers, _ = run_oclb(tree)
    # by the end every child requested up at least once; the root served or
    # retained them, and everything terminated
    assert all(w.terminated for w in workers)


def test_single_node_overlay():
    tree = deterministic_tree(1, 2)
    workers, stats = run_oclb(tree)
    assert stats.total_work_units == 2000
    assert workers[0].terminated


def test_two_node_overlay():
    tree = deterministic_tree(2, 1)
    workers, stats = run_oclb(tree)
    assert stats.total_work_units == 2000
    assert stats.per_process[1].work_units > 0


def test_unknown_message_kind_ignored():
    tree = deterministic_tree(2, 1)
    app = SyntheticApplication(10)
    sim = Simulator(uniform_network(), seed=1)
    ws = [sim.add_process(OverlayWorker(p, app, WorkerConfig(), tree))
          for p in range(2)]
    ws[0].handle(Message(src=1, dst=0, kind="GARBAGE"))  # no crash


def test_config_validation():
    with pytest.raises(SimConfigError):
        OCLBConfig(wave_retry=0)
    with pytest.raises(SimConfigError):
        OCLBConfig(probe_retry=-1)


def test_withdraw_toggle():
    overlay = add_bridges(deterministic_tree(16, 4), seed=2)
    app = lambda: SyntheticApplication(4000, unit_cost=1e-5)
    _, with_w = run_oclb(overlay, app=app(),
                         oclb=OCLBConfig(withdraw=True))
    _, without_w = run_oclb(overlay, app=app(),
                            oclb=OCLBConfig(withdraw=False))
    assert with_w.total_work_units == without_w.total_work_units == 4000


def test_message_channels_clear_right_flags():
    """WORK on the bridge channel clears only the bridge flag."""
    tree = deterministic_tree(3, 2)
    overlay = add_bridges(tree, seed=1)
    app = SyntheticApplication(50)
    sim = Simulator(uniform_network(), seed=1)
    ws = [sim.add_process(OverlayWorker(p, app, WorkerConfig(), overlay))
          for p in range(3)]
    w = ws[1]
    w.up_outstanding = True
    w.bridge_outstanding = True
    w.oclb.withdraw = False
    piece = app.initial_work().split(0.1)
    w.work.merge(piece)  # simulate base-class merge
    msg = Message(src=overlay.bridge_of(1), dst=1, kind="WORK",
                  payload=(piece, BRIDGE))
    w.on_work_received(msg)
    assert w.bridge_outstanding is False
    assert w.up_outstanding is True


def test_stats_count_steal_attempts():
    tree = deterministic_tree(8, 2)
    _, stats = run_oclb(tree)
    assert stats.total_steals > 0
