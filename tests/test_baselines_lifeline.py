"""Tests for the lifeline-stealing extension (Saraswat et al.)."""

import pytest

from repro.apps.synthetic import SyntheticApplication
from repro.apps.uts_app import UTSApplication
from repro.baselines.lifeline import DEFAULT_W, LifelineWorker
from repro.core.worker import WorkerConfig
from repro.experiments.runner import RunConfig, run_once
from repro.sim import Simulator, uniform_network
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree

MINI = PRESETS["bin_mini"].params
MINI_NODES = count_tree(MINI).nodes


def run_ll(n, total=2000, seed=3, quantum=16, w=DEFAULT_W):
    app = SyntheticApplication(total, unit_cost=1e-5)
    sim = Simulator(uniform_network(latency=1e-4), seed=seed)
    workers = [sim.add_process(LifelineWorker(
        p, n, app, WorkerConfig(quantum=quantum, seed=seed), w=w))
        for p in range(n)]
    stats = sim.run()
    return workers, stats


def test_conservation_and_termination():
    workers, stats = run_ll(16)
    assert stats.total_work_units == 2000
    assert all(w.terminated for w in workers)


@pytest.mark.parametrize("n", [1, 2, 5, 8, 16, 20])
def test_various_sizes_including_non_powers_of_two(n):
    workers, stats = run_ll(n)
    assert stats.total_work_units == 2000
    assert all(w.terminated for w in workers)


def test_lifeline_graph_is_hypercube():
    workers, _ = run_ll(8, total=100)
    assert sorted(workers[0].lifelines) == [1, 2, 4]
    assert sorted(workers[5].lifelines) == [1, 4, 7]


def test_lifelines_activate_after_w_failures():
    """With w=1, lifelines arm quickly under scarce work."""
    workers, stats = run_ll(16, total=200, w=1)
    assert stats.total_work_units == 200
    # some lifeline requests happened (steals > pure random attempts)
    assert stats.total_steals > 0


def test_through_runner_uts():
    r = run_once(RunConfig(protocol="LIFELINE", n=24, quantum=64, seed=7),
                 UTSApplication(MINI))
    assert r.total_units == MINI_NODES


def test_through_runner_bnb():
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.engine import solve_bruteforce
    from repro.bnb.taillard import scaled_instance
    inst = scaled_instance(6, n_jobs=7, n_machines=5)
    r = run_once(RunConfig(protocol="LIFELINE", n=12, quantum=16, seed=7),
                 BnBApplication(inst))
    assert r.optimum == solve_bruteforce(inst)[0]


def test_deterministic():
    a = run_ll(12, seed=5)[1]
    b = run_ll(12, seed=5)[1]
    assert (a.makespan, a.total_msgs) == (b.makespan, b.total_msgs)


def test_heterogeneous_speeds_still_conserve():
    for proto in ("BTD", "RWS", "LIFELINE"):
        r = run_once(RunConfig(protocol=proto, n=16, dmax=4, quantum=32,
                               seed=9, speed_spread=0.6),
                     UTSApplication(MINI))
        assert r.total_units == MINI_NODES


def test_speed_scales_virtual_time():
    app = SyntheticApplication(1000, unit_cost=1e-5)

    class Lone(LifelineWorker):
        def on_idle(self):
            self.finish()

    def one(speed):
        sim = Simulator(uniform_network(), seed=1)
        w = Lone(0, 1, app_ := SyntheticApplication(1000, unit_cost=1e-5),
                 WorkerConfig(quantum=1000, speed=speed))
        w.work = app_.initial_work()
        sim.add_process(w)
        return sim.run().per_process[0].busy_time

    assert one(2.0) == pytest.approx(one(1.0) / 2)
