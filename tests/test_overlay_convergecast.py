"""The distributed subtree-size protocol must agree with the analytic sizes."""

import pytest

from repro.overlay.convergecast import ConvergecastProcess
from repro.overlay.tree import (chain_tree, deterministic_tree, random_tree,
                                star_tree)
from repro.sim import Simulator, uniform_network


def run_convergecast(tree, seed=0):
    sim = Simulator(uniform_network(latency=1e-4, handler_cost=1e-5),
                    seed=seed)
    procs = [sim.add_process(ConvergecastProcess(v, tree))
             for v in range(tree.n)]
    stats = sim.run()
    return procs, stats


@pytest.mark.parametrize("tree", [
    deterministic_tree(1, 2),
    deterministic_tree(2, 2),
    deterministic_tree(50, 2),
    deterministic_tree(100, 10),
    random_tree(64, seed=3),
    chain_tree(20),
    star_tree(30),
], ids=["n1", "n2", "td2", "td10", "tr", "chain", "star"])
def test_sizes_match_analytic(tree):
    procs, _ = run_convergecast(tree)
    for v, p in enumerate(procs):
        assert p.service.ready
        assert p.service.my_size == tree.subtree_size[v]
        if v == 0:
            assert p.service.parent_size is None
        else:
            assert p.service.parent_size == tree.subtree_size[tree.parent[v]]


def test_message_count_linear():
    tree = deterministic_tree(100, dmax=3)
    _, stats = run_convergecast(tree)
    # one SIZE_UP per non-root + one SIZE_DOWN per non-root
    assert stats.total_msgs == 2 * (tree.n - 1)


def test_completion_time_scales_with_height():
    shallow = deterministic_tree(255, dmax=16)
    deep = chain_tree(255)
    _, s1 = run_convergecast(shallow)
    _, s2 = run_convergecast(deep)
    assert s2.makespan > s1.makespan


def test_with_jitter_still_correct():
    tree = random_tree(80, seed=1)
    sim = Simulator(uniform_network(latency=1e-4, jitter=3.0), seed=2)
    procs = [sim.add_process(ConvergecastProcess(v, tree))
             for v in range(tree.n)]
    sim.run()
    for v, p in enumerate(procs):
        assert p.service.my_size == tree.subtree_size[v]
