"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# Whole-simulation property tests are slow by nature; the default 200ms
# deadline would flake on loaded CI machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
