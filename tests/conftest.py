"""Shared test configuration."""

import os
import sys

from hypothesis import HealthCheck, settings

# Let test modules import helpers from sibling modules (e.g. the
# four-place conservation oracle in test_fault_tolerance).
sys.path.insert(0, os.path.dirname(__file__))

# Whole-simulation property tests are slow by nature; the default 200ms
# deadline would flake on loaded CI machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
