"""Tests for the application adapters."""

import pytest

from repro.apps.base import ProcessOutcome
from repro.apps.bnb_app import BNB_UNIT_COST, BnBApplication
from repro.apps.synthetic import SyntheticApplication, SyntheticWork
from repro.apps.uts_app import UTS_UNIT_COST, UTSApplication
from repro.bnb.state import INF
from repro.bnb.taillard import scaled_instance
from repro.sim.errors import SimConfigError
from repro.uts.params import PRESETS


def test_uts_app_processes_tree():
    app = UTSApplication(PRESETS["bin_mini"].params)
    work = app.initial_work()
    total = 0
    while not work.is_empty():
        out = app.process(work, 64, None)
        assert isinstance(out, ProcessOutcome)
        assert not out.improved
        total += out.units
    from repro.uts.sequential import count_tree
    assert total == count_tree(app.params).nodes
    assert app.make_shared() is None
    assert app.unit_cost == UTS_UNIT_COST
    assert "UTS" in app.describe()


def test_bnb_app_solves_instance():
    inst = scaled_instance(5, n_jobs=6, n_machines=5)
    app = BnBApplication(inst)
    work = app.initial_work()
    shared = app.make_shared()
    assert shared.value == INF
    improved_seen = False
    while not work.is_empty():
        out = app.process(work, 128, shared)
        improved_seen = improved_seen or out.improved
    assert improved_seen
    from repro.bnb.engine import solve_bruteforce
    assert shared.value == solve_bruteforce(inst)[0]
    assert app.unit_cost == BNB_UNIT_COST


def test_bnb_app_shared_value_roundtrip():
    inst = scaled_instance(5, n_jobs=6, n_machines=5)
    app = BnBApplication(inst)
    shared = app.make_shared()
    assert app.shared_value(shared) is None  # INF: nothing to diffuse
    shared.update(777, (0, 1, 2, 3, 4, 5))
    assert app.shared_value(shared) == 777
    assert app.absorb_value(shared, 700) is True
    assert app.absorb_value(shared, 800) is False
    assert shared.value == 700


def test_bnb_warm_start_state():
    inst = scaled_instance(5, n_jobs=6, n_machines=5)
    from repro.bnb.neh import neh
    heuristic, _ = neh(inst)
    app = BnBApplication(inst, warm_start=True)
    shared = app.make_shared()
    assert shared.value == heuristic + 1
    # warm-started search still finds the exact optimum
    work = app.initial_work()
    while not work.is_empty():
        app.process(work, 512, shared)
    from repro.bnb.engine import solve_bruteforce
    assert shared.value == solve_bruteforce(inst)[0]


def test_synthetic_validation_and_take():
    with pytest.raises(SimConfigError):
        SyntheticApplication(0)
    with pytest.raises(SimConfigError):
        SyntheticWork(-1)
    w = SyntheticWork(10)
    assert w.take(4) == 4
    assert w.take(100) == 6
    assert w.is_empty()


def test_synthetic_split_merge():
    w = SyntheticWork(10)
    piece = w.split(0.5)
    assert piece.units == 5 and w.units == 5
    w.merge(piece)
    assert w.units == 10 and piece.units == 0
    assert w.split(0.0) is None
    tiny = SyntheticWork(1)
    assert tiny.split(0.99) is None
    with pytest.raises(SimConfigError):
        w.merge(object())


def test_synthetic_encoded_bytes():
    assert SyntheticWork(5).encoded_bytes() == 8
