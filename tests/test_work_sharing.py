"""Tests for sharing policies: the paper's proportional rules + baselines."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.errors import SimConfigError
from repro.work.base import clamp_fraction
from repro.work.sharing import (PROPORTIONAL, STEAL_HALF, LinkKind,
                                ShareContext, fixed_fraction, get_policy,
                                steal_k)


def ctx(link, tu=1, tv=1, amount=100):
    return ShareContext(link=link, requester_subtree=tu, victim_subtree=tv,
                        work_amount=amount)


def test_proportional_child_steals_from_parent():
    # child subtree 33, parent subtree 100 -> T_u / T_v = 0.33
    c = ctx(LinkKind.TO_CHILD, tu=33, tv=100)
    assert PROPORTIONAL.fraction(c) == pytest.approx(0.33)


def test_proportional_parent_steals_from_child():
    # parent subtree 100, child subtree 33 -> (T_u - T_v)/T_u = 0.67
    c = ctx(LinkKind.TO_PARENT, tu=100, tv=33)
    assert PROPORTIONAL.fraction(c) == pytest.approx(0.67)


def test_proportional_bridge():
    # requester 25, owner 75 -> T_u/(T_u+T_v) = 0.25
    c = ctx(LinkKind.BRIDGE, tu=25, tv=75)
    assert PROPORTIONAL.fraction(c) == pytest.approx(0.25)


def test_proportional_peer_falls_back_to_half():
    assert PROPORTIONAL.fraction(ctx(LinkKind.PEER)) == 0.5


def test_steal_half_everywhere():
    for link in LinkKind:
        assert STEAL_HALF.fraction(ctx(link, tu=5, tv=500)) == 0.5


def test_steal_k_units():
    p = steal_k(2)
    assert p.give_units(ctx(LinkKind.PEER, amount=100)) == 2
    assert p.give_units(ctx(LinkKind.PEER, amount=1)) == 1
    assert p.give_units(ctx(LinkKind.PEER, amount=0)) == 0
    with pytest.raises(SimConfigError):
        steal_k(0)


def test_fixed_fraction():
    p = fixed_fraction(0.25)
    assert p.give_units(ctx(LinkKind.PEER, amount=100)) == 25
    with pytest.raises(SimConfigError):
        fixed_fraction(1.5)
    with pytest.raises(SimConfigError):
        fixed_fraction(0.0)


def test_registry_lookup():
    assert get_policy("proportional") is PROPORTIONAL
    assert get_policy("half") is STEAL_HALF
    assert get_policy("steal-half") is STEAL_HALF
    assert get_policy("steal-1").name == "steal-1"
    assert get_policy("steal-7").name == "steal-7"
    assert get_policy("fixed:0.3").fraction(ctx(LinkKind.PEER)) == 0.3
    with pytest.raises(SimConfigError):
        get_policy("bogus")


def test_clamp():
    assert clamp_fraction(-1) == 0.0
    assert clamp_fraction(2) == 1.0
    assert clamp_fraction(0.4) == 0.4


@given(st.integers(min_value=1, max_value=10**6),
       st.integers(min_value=1, max_value=10**6),
       st.integers(min_value=0, max_value=10**6),
       st.sampled_from(list(LinkKind)))
def test_property_fractions_always_valid(tu, tv, amount, link):
    c = ShareContext(link=link, requester_subtree=tu, victim_subtree=tv,
                     work_amount=amount)
    f = PROPORTIONAL.fraction(c)
    assert 0.0 <= f <= 1.0
    units = PROPORTIONAL.give_units(c)
    assert 0 <= units <= amount


@given(st.integers(min_value=1, max_value=10**6),
       st.integers(min_value=1, max_value=10**6))
def test_property_parent_child_fractions_complementary(t_child, t_rest):
    """Serving down T_c/T_p and serving up (T_p-T_c)/T_p sum to 1."""
    t_parent = t_child + t_rest
    down = PROPORTIONAL.fraction(ctx(LinkKind.TO_CHILD, tu=t_child,
                                     tv=t_parent))
    up = PROPORTIONAL.fraction(ctx(LinkKind.TO_PARENT, tu=t_parent,
                                   tv=t_child))
    assert down + up == pytest.approx(1.0)
