"""Tests for the splittable UTS RNG substitute."""

import numpy as np
from hypothesis import given, strategies as st

from repro.uts.rng import (child_states, decide_unit, nth_child, root_state)


def test_root_state_deterministic():
    assert root_state(599) == root_state(599)
    assert root_state(599) != root_state(316)


def test_decide_unit_range_and_determinism():
    s = np.arange(1000, dtype=np.uint64)
    u1, u2 = decide_unit(s), decide_unit(s)
    assert np.array_equal(u1, u2)
    assert (u1 >= 0).all() and (u1 < 1).all()


def test_decide_unit_roughly_uniform():
    s = np.arange(200_000, dtype=np.uint64)
    u = decide_unit(s)
    assert abs(u.mean() - 0.5) < 0.005
    hist, _ = np.histogram(u, bins=10, range=(0, 1))
    assert hist.min() > 18_000  # every decile populated

def test_child_states_shape_and_order():
    parents = np.array([10, 20, 30], dtype=np.uint64)
    counts = np.array([2, 0, 3])
    kids = child_states(parents, counts)
    assert len(kids) == 5
    # parent-major order with per-parent indices
    assert kids[0] == nth_child(parents[0], 0)
    assert kids[1] == nth_child(parents[0], 1)
    assert kids[2] == nth_child(parents[2], 0)
    assert kids[4] == nth_child(parents[2], 2)


def test_child_states_empty():
    assert len(child_states(np.array([1], dtype=np.uint64),
                            np.array([0]))) == 0
    assert len(child_states(np.empty(0, dtype=np.uint64),
                            np.empty(0, dtype=np.int64))) == 0


def test_splittability_children_depend_only_on_parent_state():
    """The same node shipped to another worker regenerates the same subtree."""
    p = root_state(42)
    kids_here = child_states(np.array([p], dtype=np.uint64), np.array([4]))
    kids_there = child_states(np.array([p], dtype=np.uint64), np.array([4]))
    assert np.array_equal(kids_here, kids_there)


def test_sibling_states_distinct():
    p = np.array([root_state(1)], dtype=np.uint64)
    kids = child_states(p, np.array([1000]))
    assert len(np.unique(kids)) == 1000


@given(st.integers(min_value=0, max_value=2**62),
       st.integers(min_value=0, max_value=100))
def test_property_nth_child_matches_vector(seed, idx):
    p = root_state(seed)
    kids = child_states(np.array([p], dtype=np.uint64),
                        np.array([idx + 1]))
    assert kids[idx] == nth_child(p, idx)


def test_different_parents_different_families():
    a = child_states(np.array([root_state(1)], dtype=np.uint64),
                     np.array([100]))
    b = child_states(np.array([root_state(2)], dtype=np.uint64),
                     np.array([100]))
    assert len(np.intersect1d(a, b)) == 0
