"""Golden tests for the vectorised bound-kernel layer.

The batched paths (``LowerBound.children`` / ``children_cached`` and the
engine's ``batch=True`` enumeration) must be *bit-identical* to the scalar
``frame``/``child`` reference: same bounds, same explored-node counts, same
optima. These tests pin that contract on every scaled Taillard instance and
every shipped bound family.
"""

import numpy as np
import pytest

from repro.bnb.bounds import JohnsonPairBound, get_bound
from repro.bnb.engine import BnBEngine
from repro.bnb.interval import tree_leaves
from repro.bnb.state import BoundState
from repro.bnb.taillard import scaled_instance
from repro.bnb.work import BnBWork

BOUNDS = ["lb1", "johnson:adjacent", "llrk", "llrk-full"]


# -- full-solve golden equivalence: all ten scaled Taillard instances ---------

@pytest.mark.parametrize("idx", range(1, 11))
@pytest.mark.parametrize("bound", BOUNDS)
def test_batch_solve_bit_identical(idx, bound):
    """Ta2{idx}s: batched solve == scalar solve (value, perm, node count)."""
    inst = scaled_instance(idx, n_jobs=8, n_machines=10)
    batched = BnBEngine(inst, bound=bound, batch=True).solve()
    scalar = BnBEngine(inst, bound=bound, batch=False).solve()
    assert batched == scalar


def test_batch_explore_bit_identical_10x10():
    """Budgeted exploration on a 10x10 matches the scalar path step by step."""
    inst = scaled_instance(1, n_jobs=10, n_machines=10)
    for bound in BOUNDS:
        eb = BnBEngine(inst, bound=bound, batch=True)
        es = BnBEngine(inst, bound=bound, batch=False)
        wb, ws = BnBWork.full_tree(10), BnBWork.full_tree(10)
        sb, ss = BoundState(), BoundState()
        for _ in range(4):
            rb = eb.explore(wb, sb, 5_000)
            rs = es.explore(ws, ss, 5_000)
            assert (rb.nodes, rb.improved, rb.exhausted) == \
                   (rs.nodes, rs.improved, rs.exhausted)
            assert sb.value == ss.value
            assert wb.intervals == ws.intervals


# -- children(): direct comparison against the scalar child() loop -----------

@pytest.mark.parametrize("bound_name", BOUNDS + ["trivial", "johnson-lag:all"])
def test_children_matches_scalar_child_loop(bound_name):
    inst = scaled_instance(3, n_jobs=9, n_machines=10)
    bound = get_bound(bound_name).attach(inst)
    ref = get_bound(bound_name).attach(inst)
    n, m = inst.n_jobs, inst.n_machines

    front = [0] * m
    scheduled = [4, 0]
    for j in scheduled:
        front = inst.advance(front, j)
    remaining = [j for j in range(n) if j not in scheduled]
    rem_sum = [sum(inst.p[i][j] for j in remaining) for i in range(m)]

    batched = bound.children(front, remaining, None, rem_sum)

    mask = [j in remaining for j in range(n)]
    scalar = []
    for child in remaining:
        fd = ref.frame(remaining)
        cf = inst.advance(front, child)
        crs = [rem_sum[i] - inst.p[i][child] for i in range(m)]
        mask[child] = False
        ref.set_mask(mask)
        scalar.append(ref.child(cf, child, fd, crs))
        mask[child] = True
    assert batched.tolist() == scalar


@pytest.mark.parametrize("bound_name", BOUNDS)
def test_children_cached_consistent_across_revisits(bound_name):
    """Cached subset tables give the same answer as the uncached call."""
    inst = scaled_instance(5, n_jobs=8, n_machines=10)
    bound = get_bound(bound_name).attach(inst)
    n, m = inst.n_jobs, inst.n_machines
    for scheduled in ([0], [1], [0, 3], [3, 0], [5, 2, 7]):
        front = [0] * m
        for j in scheduled:
            front = inst.advance(front, j)
        remaining = [j for j in range(n) if j not in scheduled]
        key = 0
        for j in remaining:
            key |= 1 << j
        rem_sum = [sum(inst.p[i][j] for j in remaining) for i in range(m)]
        for _ in range(2):  # second pass hits the subset cache
            lbs, fronts = bound.children_cached(key, front, remaining)
            direct = bound.children(front, remaining, None, rem_sum)
            assert lbs.tolist() == direct.tolist()
            expected = np.array([inst.advance(front, j) for j in remaining])
            assert fronts.tolist() == expected.tolist()


# -- decompose_block: batch path == scalar path --------------------------------

def test_decompose_block_bit_identical():
    inst = scaled_instance(2, n_jobs=10, n_machines=10)
    width = tree_leaves(10)
    for bound in BOUNDS:
        eb = BnBEngine(inst, bound=bound, batch=True)
        es = BnBEngine(inst, bound=bound, batch=False)
        blocks_b = eb.decompose_block(0, BoundState(), width)
        blocks_s = es.decompose_block(0, BoundState(), width)
        assert blocks_b == blocks_s


# -- regression: per-engine bound state must not be shared --------------------

def test_two_engines_do_not_share_bound_state():
    """JohnsonPairBound masks/caches are per-instance, not class-level."""
    inst_a = scaled_instance(1, n_jobs=8, n_machines=10)
    inst_b = scaled_instance(7, n_jobs=8, n_machines=10)

    ref_a = BnBEngine(inst_a, bound="llrk").solve()
    ref_b = BnBEngine(inst_b, bound="llrk").solve()

    # interleave two live engines on different instances
    ea = BnBEngine(inst_a, bound="llrk")
    eb = BnBEngine(inst_b, bound="llrk")
    wa, wb = BnBWork.full_tree(8), BnBWork.full_tree(8)
    sa, sb = BoundState(), BoundState()
    while True:
        ra = ea.explore(wa, sa, 500)
        rb = eb.explore(wb, sb, 500)
        if ra.exhausted and rb.exhausted:
            break
    assert sa.value == ref_a[0]
    assert sb.value == ref_b[0]

    # the scalar mask path, interleaved, must also stay independent
    ba = JohnsonPairBound("adjacent").attach(inst_a)
    bb = JohnsonPairBound("adjacent").attach(inst_b)
    ba.set_mask([True] * 8)
    bb.set_mask([False] * 8)
    assert ba._mask != bb._mask
