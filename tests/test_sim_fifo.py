"""FIFO channel guarantee: per-(src,dst) messages never overtake.

The pure-tree reasoning of the overlay protocol (an upward request arriving
after the WORK grant that preceded it) relies on this property, so it gets
its own property test — including under jitter, where raw delays would
reorder freely.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Message, SimProcess, Simulator, uniform_network


class Burst(SimProcess):
    """Sends a numbered burst of mixed-size messages to its peer."""

    def __init__(self, pid, sizes):
        super().__init__(pid)
        self.sizes = sizes

    def start(self):
        if self.pid == 0:
            for i, size in enumerate(self.sizes):
                self.send(1, "SEQ", i, body_bytes=size)


class Recorder(SimProcess):
    def __init__(self, pid):
        super().__init__(pid)
        self.seen = []

    def on_message(self, msg: Message):
        self.seen.append(msg.payload)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000_000),
                min_size=1, max_size=30),
       st.floats(min_value=0.0, max_value=10.0),
       st.integers(min_value=0, max_value=100))
def test_property_fifo_per_channel(sizes, jitter, seed):
    sim = Simulator(uniform_network(latency=1e-4, jitter=jitter), seed=seed)
    sim.add_process(Burst(0, sizes))
    rec = sim.add_process(Recorder(1))
    sim.run()
    assert rec.seen == list(range(len(sizes)))


def test_fifo_big_then_small():
    """A huge message followed by a tiny one still arrives first."""
    sim = Simulator(uniform_network(latency=1e-4), seed=1)
    sim.add_process(Burst(0, [50_000_000, 64]))
    rec = sim.add_process(Recorder(1))
    sim.run()
    assert rec.seen == [0, 1]


def test_independent_channels_not_serialized():
    """FIFO is per channel: another sender's messages are unaffected."""

    class Two(SimProcess):
        def start(self):
            if self.pid == 0:
                self.send(2, "A", "slow", body_bytes=50_000_000)
            elif self.pid == 1:
                self.send(2, "B", "fast")

    sim = Simulator(uniform_network(latency=1e-4), seed=1)
    sim.add_process(Two(0))
    sim.add_process(Two(1))
    rec = sim.add_process(Recorder(2))
    sim.run()
    assert rec.seen == ["fast", "slow"]


def test_fifo_state_bounded_on_long_random_victim_run():
    """The per-channel FIFO clock map must not grow O(channels-ever-used).

    Random work stealing touches a fresh (src, dst) channel per steal
    attempt, so an append-only map grows towards n^2 entries over a long
    run. The engine sweeps entries whose ``arrive_at`` is in the past
    (they can no longer delay anything: ``max(now + delay, stale)`` is
    ``now + delay``), keeping the map proportional to the *in-flight*
    message set. Disabling the sweep must change nothing but the memory.
    """
    from repro.apps.synthetic import SyntheticApplication
    from repro.experiments.runner import RunConfig, build_workers
    from repro.sim.engine import Simulator

    def run(disable_sweep):
        cfg = RunConfig(protocol="RWS", n=48, quantum=16, seed=3)
        sim = Simulator(network=uniform_network(cores=4096, latency=1e-4),
                        seed=cfg.seed)
        if disable_sweep:
            sim._fifo_sweep = 1 << 60
        build_workers(sim, cfg, SyntheticApplication(48 * 400,
                                                     unit_cost=1e-6))
        return sim, sim.run()

    pruned, ps = run(False)
    unpruned, us = run(True)
    # pruning is invisible to the simulation itself
    assert ps.makespan == us.makespan
    assert ps.total_msgs == us.total_msgs
    assert ps.total_work_units == us.total_work_units
    # ... but caps the map at the sweep threshold instead of the
    # ever-growing set of channels the run touched
    assert len(unpruned._fifo) > 1000
    assert len(pruned._fifo) <= pruned._fifo_sweep <= 512
