"""Tests for the flow-shop model: makespans, heads/tails, batch evaluation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bnb.flowshop import make_instance
from repro.sim.errors import SimConfigError

# Classic hand-checkable 2-machine example
TWO_M = make_instance([[3, 5, 1], [2, 4, 6]], name="2m")


def test_validation():
    with pytest.raises(SimConfigError):
        make_instance([])
    with pytest.raises(SimConfigError):
        make_instance([[1, 2], [3]])
    with pytest.raises(SimConfigError):
        make_instance([[1, 0]])


def test_makespan_by_hand():
    # jobs in order 0,1,2 on 2 machines:
    # M0: 3, 8, 9 ; M1: 5, 12, 18
    assert TWO_M.makespan([0, 1, 2]) == 18
    # order 2,0,1: M0: 1,4,9 ; M1: 7,9,13
    assert TWO_M.makespan([2, 0, 1]) == 13


def test_makespan_validates_permutation():
    with pytest.raises(SimConfigError):
        TWO_M.makespan([0, 0, 1])


def test_advance_matches_makespan():
    front = [0, 0]
    for j in (2, 0, 1):
        front = TWO_M.advance(front, j)
    assert front[-1] == 13


def test_heads_tails():
    inst = make_instance([[2, 3], [5, 7], [11, 13]])
    assert inst.tails[0] == (5 + 11, 7 + 13)
    assert inst.tails[2] == (0, 0)
    assert inst.heads[0] == (0, 0)
    assert inst.heads[2] == (2 + 5, 3 + 7)


def test_total_work_and_describe():
    assert TWO_M.total_work == 3 + 5 + 1 + 2 + 4 + 6
    assert "2m" in TWO_M.describe()


def test_batch_makespans_match_scalar():
    perms = np.array([[0, 1, 2], [2, 0, 1], [1, 2, 0]])
    batch = TWO_M.makespans_batch(perms)
    scalar = [TWO_M.makespan(p) for p in perms]
    assert batch.tolist() == scalar


def test_batch_validation():
    with pytest.raises(SimConfigError):
        TWO_M.makespans_batch(np.array([0, 1, 2]))
    with pytest.raises(SimConfigError):
        TWO_M.makespans_batch(np.array([[0, 1]]))


@given(st.lists(st.lists(st.integers(min_value=1, max_value=50),
                         min_size=4, max_size=4),
                min_size=2, max_size=4))
def test_property_makespan_bounds(rows):
    inst = make_instance(rows)
    perm = list(range(inst.n_jobs))
    c = inst.makespan(perm)
    # makespan >= max machine load, <= total work
    assert c >= max(sum(r) for r in rows)
    assert c <= inst.total_work


@given(st.permutations(list(range(5))))
def test_property_batch_equals_scalar(perm):
    inst = make_instance([[3, 1, 4, 1, 5], [9, 2, 6, 5, 3], [5, 8, 9, 7, 9]])
    assert inst.makespans_batch(np.array([perm]))[0] == inst.makespan(perm)
