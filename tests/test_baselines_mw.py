"""Protocol-level tests of the Master-Worker scheme."""

import pytest

from repro.apps.bnb_app import BnBApplication
from repro.baselines.master_worker import MIN_SPLIT, MWMaster, MWWorker
from repro.bnb.engine import solve_bruteforce
from repro.bnb.taillard import scaled_instance
from repro.core.worker import WorkerConfig
from repro.sim import Simulator, uniform_network
from repro.sim.errors import SimConfigError

INST = scaled_instance(3, n_jobs=7, n_machines=6)
OPT, _ = solve_bruteforce(INST)


def run_mw(n, seed=3, quantum=16, update_every=2, warm=False):
    app = BnBApplication(INST, warm_start=warm)
    sim = Simulator(uniform_network(latency=1e-4), seed=seed)
    workers = [sim.add_process(MWMaster(0, n, app, WorkerConfig(
        quantum=quantum, seed=seed)))]
    workers += [sim.add_process(MWWorker(p, n, app, WorkerConfig(
        quantum=quantum, seed=seed), update_every=update_every))
        for p in range(1, n)]
    stats = sim.run()
    return workers, stats


def test_master_must_be_pid_zero():
    app = BnBApplication(INST)
    with pytest.raises(SimConfigError):
        MWMaster(3, 8, app, WorkerConfig())


def test_mw_is_bnb_specific():
    from repro.apps.synthetic import SyntheticApplication
    with pytest.raises(SimConfigError):
        MWMaster(0, 8, SyntheticApplication(10), WorkerConfig())


def test_finds_optimum_and_terminates():
    workers, stats = run_mw(8)
    best = min(w.shared.value for w in workers)
    assert best == OPT
    assert all(w.terminated for w in workers)


def test_master_never_computes():
    _, stats = run_mw(8)
    assert stats.per_process[0].work_units == 0


def test_bootstrap_gives_whole_interval_first():
    """The first requester receives the whole tree from the pool."""
    workers, stats = run_mw(6)
    # first grant = everything: some worker received a full-tree interval
    # indirectly verified: master sent >= n-1 grants and work got done
    assert stats.per_process[0].work_msgs_sent >= 1
    assert stats.total_work_units > 0


def test_redundancy_nonnegative_and_bounded():
    from repro.bnb.interval import tree_leaves
    workers, _ = run_mw(10, update_every=5)
    red = sum(getattr(w, "redundancy", 0) for w in workers)
    assert 0 <= red <= 3 * tree_leaves(INST.n_jobs)


def test_stale_views_produce_redundancy_with_lazy_updates():
    """Rare updates -> more staleness -> typically more redundancy."""
    _, eager = run_mw(10, update_every=1)
    workers_lazy, lazy = run_mw(10, update_every=50)
    # both still correct
    assert min(w.shared.value
               for w in workers_lazy) == OPT


def test_all_messages_go_through_master():
    _, stats = run_mw(8)
    master = stats.per_process[0]
    others = stats.per_process[1:]
    # the master receives (almost) every protocol message: REQ/UPDATE/BOUND
    assert master.msgs_received > max(p.msgs_received for p in others)


def test_warm_start_prunes_more():
    _, cold = run_mw(8, warm=False)
    _, warm = run_mw(8, warm=True)
    assert warm.total_work_units < cold.total_work_units


def test_min_split_constant_sane():
    assert MIN_SPLIT >= 2


def test_two_node_mw():
    workers, stats = run_mw(2)
    assert min(w.shared.value for w in workers) == OPT
    assert workers[1].stats.work_units > 0
