"""Protocol-level tests of random work stealing."""

from repro.apps.synthetic import SyntheticApplication
from repro.baselines.rws import STEAL, RWSWorker, detection_tree
from repro.core.worker import WorkerConfig
from repro.sim import Simulator, uniform_network


def run_rws(n, total=2000, seed=3, quantum=16, initial_pid=0, sharing="half"):
    app = SyntheticApplication(total, unit_cost=1e-5)
    sim = Simulator(uniform_network(latency=1e-4), seed=seed)
    workers = [sim.add_process(RWSWorker(
        p, n, app, WorkerConfig(quantum=quantum, seed=seed),
        initial_pid=initial_pid, sharing=sharing)) for p in range(n)]
    stats = sim.run()
    return workers, stats


def test_detection_tree_shape():
    assert detection_tree(0, 7) == (-1, [1, 2])
    assert detection_tree(1, 7) == (0, [3, 4])
    assert detection_tree(3, 7) == (1, [])
    assert detection_tree(6, 7) == (2, [])
    # single node
    assert detection_tree(0, 1) == (-1, [])


def test_all_work_done_and_terminated():
    workers, stats = run_rws(12)
    assert stats.total_work_units == 2000
    assert all(w.terminated for w in workers)


def test_initial_work_anywhere():
    workers, stats = run_rws(8, initial_pid=5)
    assert stats.total_work_units == 2000
    assert all(w.terminated for w in workers)


def test_single_worker():
    workers, stats = run_rws(1)
    assert stats.total_work_units == 2000
    assert workers[0].terminated


def test_work_spreads():
    _, stats = run_rws(8, total=8000)
    assert sum(1 for p in stats.per_process if p.work_units > 0) >= 6


def test_steal_half_sharing():
    """A victim's first grant is about half its work."""
    from repro.baselines.rws import RWSWorker as W
    grants = []
    orig = W.handle

    def spy(self, msg):
        if msg.kind == STEAL and not self.work.is_empty():
            before = self.work.amount()
            orig(self, msg)
            grants.append((before, before - self.work.amount()))
            return
        orig(self, msg)

    W.handle = spy
    try:
        run_rws(4, total=4000, quantum=4)
    finally:
        W.handle = orig
    assert grants
    before, given = grants[0]
    assert given == before // 2


def test_nacks_happen_and_retries_follow():
    _, stats = run_rws(16, total=500)
    # with little work and many thieves, some steals fail
    assert stats.total_steals > stats.total_steals_ok


def test_victims_chosen_uniformly_ish():
    """Victim choice covers the id space (no self-steals)."""
    from repro.sim.rng import RngStream
    rng = RngStream(7, "rws", 3)
    n = 10
    seen = set()
    for _ in range(500):
        v = rng.randrange(n - 1)
        if v >= 3:
            v += 1
        assert v != 3
        seen.add(v)
    assert len(seen) == n - 1


def test_deterministic():
    a = run_rws(8, seed=11)[1]
    b = run_rws(8, seed=11)[1]
    assert a.makespan == b.makespan
    assert a.total_msgs == b.total_msgs
